//! # workload — traffic generation for the MMPTCP reproduction
//!
//! Two layers:
//!
//! * [`matrix`] — traffic matrices (permutation, random, stride, hotspot,
//!   incast) that pair sending hosts with destinations;
//! * [`flows`] — flow-level workload generators: the paper's evaluation
//!   workload (one third of hosts running long background flows, the rest
//!   generating Poisson-arriving 70 KB short flows over a permutation matrix),
//!   plus incast and heavy-tailed flow-size models for the extension
//!   experiments.
//!
//! The output is a list of protocol-agnostic [`flows::FlowSpec`]s that the
//! `mmptcp` crate turns into sender/receiver agents.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod flows;
pub mod matrix;

pub use flows::{
    incast_workload, paper_workload, ArrivalProcess, DeadlineModel, EmpiricalCdf, FlowClass,
    FlowSizeModel, FlowSpec, PaperWorkloadConfig, Workload, DATA_MINING, WEB_SEARCH,
};
pub use matrix::{assign_destinations, TrafficMatrix};
