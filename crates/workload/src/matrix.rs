//! Traffic matrices: who talks to whom.
//!
//! The paper schedules all flows "based on a permutation traffic matrix":
//! every sending host is paired with exactly one receiving host and no host
//! receives from more than one sender. The roadmap additionally mentions
//! hotspot scenarios; incast and random matrices round out the usual
//! data-centre evaluation suite.

use netsim::{Addr, SimRng};
use serde::{Deserialize, Serialize};

/// The kind of traffic matrix to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrafficMatrix {
    /// A random derangement: every host sends to exactly one other host and
    /// receives from exactly one other host (never itself).
    Permutation,
    /// Each sender picks an independent uniformly random destination
    /// (collisions allowed).
    Random,
    /// Host `i` sends to host `(i + stride) mod n`.
    Stride(usize),
    /// A fraction of senders all target the same small set of "hot" hosts.
    Hotspot {
        /// Number of hot destination hosts.
        hot_hosts: usize,
        /// Fraction (0..=1 scaled by 1000, i.e. 250 = 25 %) of senders whose
        /// destination is a hot host; the rest follow a permutation.
        hot_fraction_millis: u32,
    },
    /// `fan_in` senders all target one receiver (TCP incast).
    Incast {
        /// Number of concurrent senders per receiver.
        fan_in: usize,
    },
}

/// Assign a destination to every sender in `senders`, drawing destinations
/// from `candidates` (usually the same set, or all hosts).
///
/// Returns pairs `(src, dst)` with `src != dst` guaranteed.
pub fn assign_destinations(
    matrix: TrafficMatrix,
    senders: &[Addr],
    candidates: &[Addr],
    rng: &mut SimRng,
) -> Vec<(Addr, Addr)> {
    assert!(!senders.is_empty(), "no senders");
    assert!(candidates.len() >= 2, "need at least two candidate hosts");
    match matrix {
        TrafficMatrix::Permutation => permutation(senders, candidates, rng),
        TrafficMatrix::Random => senders
            .iter()
            .map(|&s| {
                let mut d = s;
                while d == s {
                    d = candidates[rng.range(0..candidates.len())];
                }
                (s, d)
            })
            .collect(),
        TrafficMatrix::Stride(k) => {
            let n = candidates.len();
            senders
                .iter()
                .enumerate()
                .map(|(i, &s)| {
                    let mut dst = candidates[(i + k) % n];
                    if dst == s {
                        dst = candidates[(i + k + 1) % n];
                    }
                    (s, dst)
                })
                .collect()
        }
        TrafficMatrix::Hotspot {
            hot_hosts,
            hot_fraction_millis,
        } => {
            let hot_hosts = hot_hosts.clamp(1, candidates.len());
            let hot: Vec<Addr> = candidates[..hot_hosts].to_vec();
            let base = permutation(senders, candidates, rng);
            base.into_iter()
                .map(|(s, d)| {
                    if rng.range(0..1000u32) < hot_fraction_millis {
                        let mut h = hot[rng.range(0..hot.len())];
                        if h == s {
                            h = hot[(hot.iter().position(|&x| x == h).unwrap() + 1) % hot.len()];
                        }
                        if h == s {
                            (s, d)
                        } else {
                            (s, h)
                        }
                    } else {
                        (s, d)
                    }
                })
                .collect()
        }
        TrafficMatrix::Incast { fan_in } => {
            let fan_in = fan_in.max(1);
            let n = candidates.len();
            let mut out = Vec::with_capacity(senders.len());
            for (i, &s) in senders.iter().enumerate() {
                let group = i / fan_in;
                // Receivers are taken from the end of the candidate list so
                // the first groups of senders never collide with them.
                let mut dst = candidates[n - 1 - (group % n)];
                if dst == s {
                    dst = candidates[n - 1 - ((group + 1) % n)];
                }
                out.push((s, dst));
            }
            out
        }
    }
}

/// Random permutation (derangement) of senders onto candidates.
fn permutation(senders: &[Addr], candidates: &[Addr], rng: &mut SimRng) -> Vec<(Addr, Addr)> {
    // Shuffle candidate destinations until no sender maps to itself; for the
    // rare residual fixed points, swap with a neighbour.
    let mut dsts: Vec<Addr> = candidates.to_vec();
    rng.shuffle(&mut dsts);
    // Truncate/cycle the destination list to the sender count.
    let mut result: Vec<(Addr, Addr)> = senders
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, dsts[i % dsts.len()]))
        .collect();
    let n = result.len();
    for i in 0..n {
        if result[i].0 == result[i].1 {
            let j = (i + 1) % n;
            let (di, dj) = (result[i].1, result[j].1);
            result[i].1 = dj;
            result[j].1 = di;
            // If still a fixed point (only possible when n == 1), give up and
            // panic — a one-host permutation is meaningless.
            assert!(
                result[i].0 != result[i].1,
                "cannot build a permutation over a single host"
            );
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hosts(n: usize) -> Vec<Addr> {
        (0..n as u32).map(Addr).collect()
    }

    #[test]
    fn permutation_has_no_self_pairs_and_unique_destinations() {
        let mut rng = SimRng::new(7);
        let h = hosts(64);
        let pairs = assign_destinations(TrafficMatrix::Permutation, &h, &h, &mut rng);
        assert_eq!(pairs.len(), 64);
        let mut dsts = std::collections::HashSet::new();
        for (s, d) in &pairs {
            assert_ne!(s, d, "self pair");
            dsts.insert(*d);
        }
        assert_eq!(dsts.len(), 64, "destinations must be distinct");
    }

    #[test]
    fn permutation_is_deterministic_per_seed() {
        let h = hosts(32);
        let a = assign_destinations(TrafficMatrix::Permutation, &h, &h, &mut SimRng::new(1));
        let b = assign_destinations(TrafficMatrix::Permutation, &h, &h, &mut SimRng::new(1));
        let c = assign_destinations(TrafficMatrix::Permutation, &h, &h, &mut SimRng::new(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_matrix_avoids_self() {
        let mut rng = SimRng::new(3);
        let h = hosts(16);
        for (s, d) in assign_destinations(TrafficMatrix::Random, &h, &h, &mut rng) {
            assert_ne!(s, d);
        }
    }

    #[test]
    fn stride_matrix() {
        let mut rng = SimRng::new(3);
        let h = hosts(8);
        let pairs = assign_destinations(TrafficMatrix::Stride(4), &h, &h, &mut rng);
        assert_eq!(pairs[0], (Addr(0), Addr(4)));
        assert_eq!(pairs[5], (Addr(5), Addr(1)));
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let mut rng = SimRng::new(5);
        let h = hosts(100);
        let pairs = assign_destinations(
            TrafficMatrix::Hotspot {
                hot_hosts: 2,
                hot_fraction_millis: 800,
            },
            &h,
            &h,
            &mut rng,
        );
        let hot_count = pairs.iter().filter(|(_, d)| d.0 < 2).count();
        assert!(
            hot_count > 50,
            "expected most flows to hit the hot hosts, got {hot_count}"
        );
        for (s, d) in pairs {
            assert_ne!(s, d);
        }
    }

    #[test]
    fn incast_groups_share_a_receiver() {
        let mut rng = SimRng::new(5);
        let h = hosts(33);
        let pairs = assign_destinations(TrafficMatrix::Incast { fan_in: 8 }, &h, &h, &mut rng);
        // The first 8 senders share one destination.
        let first_dst = pairs[0].1;
        assert!(pairs[..8].iter().all(|(_, d)| *d == first_dst));
        for (s, d) in pairs {
            assert_ne!(s, d);
        }
    }
}
