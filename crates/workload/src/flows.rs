//! Flow specifications and workload generators.
//!
//! The output of this module is a plain list of [`FlowSpec`]s — protocol
//! agnostic descriptions of "host A sends B bytes to host C starting at time
//! T". The experiment layer (`mmptcp` crate) turns each spec into a concrete
//! sender/receiver agent pair for whichever transport is under test.

use crate::matrix::{assign_destinations, TrafficMatrix};
use netsim::{Addr, SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Whether a flow is one of the latency-sensitive short flows or a
/// bandwidth-hungry long (background) flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowClass {
    /// Latency-sensitive short flow (the paper uses 70 KB).
    Short,
    /// Long-lived background flow (runs for the whole experiment).
    Long,
}

/// One flow to be simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Dense flow identifier (also used as the simulator `FlowId`).
    pub id: u64,
    /// Sending host.
    pub src: Addr,
    /// Receiving host.
    pub dst: Addr,
    /// Bytes to transfer; `None` means unbounded (background flow).
    pub size: Option<u64>,
    /// When the sender starts.
    pub start: SimTime,
    /// Short or long.
    pub class: FlowClass,
    /// Completion deadline relative to the flow's start, if the application
    /// has one (the paper's introduction: short flows "commonly come with
    /// strict deadlines"). Used by the deadline-miss analysis and by the
    /// deadline-aware D²TCP sender; `None` for deadline-free flows.
    pub deadline: Option<SimDuration>,
}

impl FlowSpec {
    /// Convenience constructor for a deadline-free flow.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: u64,
        src: Addr,
        dst: Addr,
        size: Option<u64>,
        start: SimTime,
        class: FlowClass,
    ) -> Self {
        FlowSpec {
            id,
            src,
            dst,
            size,
            start,
            class,
            deadline: None,
        }
    }
}

/// How deadlines are assigned to short flows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum DeadlineModel {
    /// No deadlines (the paper's Figure-1 workload).
    #[default]
    None,
    /// Every short flow gets the same relative deadline.
    Fixed(SimDuration),
    /// Deadline proportional to the flow's ideal transfer time at
    /// `reference_gbps`, multiplied by `slack` and never below `floor` — the
    /// usual model in the deadline-aware transport literature (D³, D²TCP).
    Slack {
        /// Multiplier on the ideal transfer time.
        slack: f64,
        /// Line rate used to compute the ideal transfer time.
        reference_gbps: f64,
        /// Minimum deadline handed out.
        floor: SimDuration,
    },
}

impl DeadlineModel {
    /// The deadline for a flow of `size` bytes (`None` when the model assigns
    /// no deadlines).
    pub fn deadline_for(&self, size: u64) -> Option<SimDuration> {
        match *self {
            DeadlineModel::None => None,
            DeadlineModel::Fixed(d) => Some(d),
            DeadlineModel::Slack {
                slack,
                reference_gbps,
                floor,
            } => {
                let ideal_secs = (size as f64 * 8.0) / (reference_gbps.max(1e-3) * 1e9);
                let d = SimDuration::from_secs_f64(ideal_secs * slack.max(0.0));
                Some(d.max(floor))
            }
        }
    }
}

/// An empirical flow-size distribution given as a piecewise-linear CDF:
/// `(bytes, cumulative probability)` knots, strictly increasing in both
/// coordinates, starting at probability 0 and ending at 1. Samples are drawn
/// by inverse-transform: one uniform variate is mapped through the inverse
/// CDF with linear interpolation between knots.
///
/// ```
/// use netsim::SimRng;
/// use workload::WEB_SEARCH;
///
/// WEB_SEARCH.validate();
/// // The median web-search flow is a short query; the analytic mean is
/// // dominated by the few multi-megabyte responses.
/// assert!(WEB_SEARCH.quantile(0.5) < 100_000);
/// assert!(WEB_SEARCH.mean() > 1_000_000.0);
/// // Sampling is deterministic per seed and bounded by the knot range.
/// let mut rng = SimRng::new(42);
/// let size = WEB_SEARCH.sample(&mut rng);
/// assert!(size >= WEB_SEARCH.min_bytes() && size <= WEB_SEARCH.max_bytes());
/// assert_eq!(WEB_SEARCH.sample(&mut SimRng::new(42)), size);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmpiricalCdf {
    /// Distribution name (used in labels and reports).
    pub name: &'static str,
    /// `(bytes, cumulative_probability)` knots.
    points: &'static [(u64, f64)],
}

/// The web-search flow-size distribution reported in the DCTCP paper
/// (Alizadeh et al., SIGCOMM 2010): about half the flows are short queries
/// under 20 KB, but most *bytes* come from the few multi-megabyte responses.
pub static WEB_SEARCH: EmpiricalCdf = EmpiricalCdf {
    name: "web-search",
    points: &[
        (6_000, 0.0),
        (10_000, 0.15),
        (13_000, 0.20),
        (19_000, 0.30),
        (33_000, 0.40),
        (53_000, 0.53),
        (133_000, 0.60),
        (667_000, 0.70),
        (1_333_000, 0.80),
        (3_333_000, 0.90),
        (6_667_000, 0.97),
        (20_000_000, 0.995),
        (30_000_000, 1.0),
    ],
};

/// The data-mining flow-size distribution reported for VL2-style clusters
/// (Greenberg et al., SIGCOMM 2009): even more skewed than web-search —
/// ~80 % of flows are under 10 KB while the top few percent reach 100 MB.
pub static DATA_MINING: EmpiricalCdf = EmpiricalCdf {
    name: "data-mining",
    points: &[
        (100, 0.0),
        (180, 0.10),
        (250, 0.20),
        (560, 0.30),
        (900, 0.40),
        (1_100, 0.50),
        (1_870, 0.60),
        (3_160, 0.70),
        (10_000, 0.80),
        (400_000, 0.85),
        (3_160_000, 0.90),
        (10_000_000, 0.95),
        (31_600_000, 0.98),
        (100_000_000, 1.0),
    ],
};

impl EmpiricalCdf {
    /// Check the CDF invariants (strictly increasing in both coordinates,
    /// probability spanning exactly [0, 1]). Called by tests and debug paths.
    pub fn validate(&self) {
        assert!(self.points.len() >= 2, "CDF needs at least two knots");
        assert_eq!(self.points[0].1, 0.0, "first knot must be at p=0");
        assert_eq!(
            self.points[self.points.len() - 1].1,
            1.0,
            "last knot at p=1"
        );
        for w in self.points.windows(2) {
            assert!(w[0].0 < w[1].0, "bytes must be strictly increasing");
            assert!(w[0].1 < w[1].1, "probability must be strictly increasing");
        }
    }

    /// Smallest possible sample.
    pub fn min_bytes(&self) -> u64 {
        self.points[0].0
    }

    /// Largest possible sample.
    pub fn max_bytes(&self) -> u64 {
        self.points[self.points.len() - 1].0
    }

    /// The inverse CDF at probability `u` (clamped to [0, 1]), linearly
    /// interpolated between knots.
    pub fn quantile(&self, u: f64) -> u64 {
        let u = u.clamp(0.0, 1.0);
        let mut prev = self.points[0];
        for &(bytes, p) in &self.points[1..] {
            if u <= p {
                let frac = (u - prev.1) / (p - prev.1);
                let span = (bytes - prev.0) as f64;
                return prev.0 + (span * frac).round() as u64;
            }
            prev = (bytes, p);
        }
        self.max_bytes()
    }

    /// Draw one sample by inverse-transform (consumes exactly one uniform
    /// variate, so per-seed determinism is trivial to reason about).
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        self.quantile(rng.unit())
    }

    /// Analytic mean of the piecewise-linear distribution: each segment
    /// contributes its probability mass times the segment midpoint.
    pub fn mean(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| (w[1].1 - w[0].1) * (w[0].0 + w[1].0) as f64 / 2.0)
            .sum()
    }
}

/// Flow size models for short flows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FlowSizeModel {
    /// Every flow has exactly this many bytes (the paper's 70 KB short flows).
    Fixed(u64),
    /// Uniformly distributed in `[min, max]`.
    Uniform {
        /// Smallest flow size.
        min: u64,
        /// Largest flow size.
        max: u64,
    },
    /// The empirical web-search distribution ([`WEB_SEARCH`]).
    WebSearch,
    /// The empirical data-mining distribution ([`DATA_MINING`]).
    DataMining,
    /// Any other empirical CDF.
    Empirical(&'static EmpiricalCdf),
}

impl FlowSizeModel {
    /// The empirical CDF behind this model, if it has one.
    pub fn cdf(&self) -> Option<&'static EmpiricalCdf> {
        match self {
            FlowSizeModel::WebSearch => Some(&WEB_SEARCH),
            FlowSizeModel::DataMining => Some(&DATA_MINING),
            FlowSizeModel::Empirical(cdf) => Some(cdf),
            _ => None,
        }
    }

    /// Draw one flow size.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        match *self {
            FlowSizeModel::Fixed(b) => b,
            FlowSizeModel::Uniform { min, max } => {
                assert!(min <= max);
                rng.range(min..=max)
            }
            FlowSizeModel::WebSearch => WEB_SEARCH.sample(rng),
            FlowSizeModel::DataMining => DATA_MINING.sample(rng),
            FlowSizeModel::Empirical(cdf) => cdf.sample(rng),
        }
    }
}

/// Arrival process of short flows at each sending host.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson process: exponential inter-arrival times with the given mean.
    Poisson {
        /// Mean inter-arrival time between consecutive flows at one host.
        mean_interarrival: SimDuration,
    },
    /// Fixed-rate arrivals with the given period.
    Periodic {
        /// Constant gap between consecutive flows at one host.
        period: SimDuration,
    },
    /// All flows of a host start at the same instant (burst / incast).
    Simultaneous,
}

impl ArrivalProcess {
    /// The time of the `k`-th arrival after `base` (`k` starts at 0).
    fn next(&self, base: SimTime, prev: SimTime, rng: &mut SimRng) -> SimTime {
        match *self {
            ArrivalProcess::Poisson { mean_interarrival } => {
                let gap = rng.exponential(mean_interarrival.as_secs_f64());
                prev + SimDuration::from_secs_f64(gap)
            }
            ArrivalProcess::Periodic { period } => prev + period,
            ArrivalProcess::Simultaneous => base,
        }
    }
}

/// The paper's evaluation workload (§3 / Figure 1 caption): one third of the
/// hosts run long background flows; the remaining hosts generate short flows
/// according to a Poisson process; all source/destination pairs come from a
/// permutation traffic matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperWorkloadConfig {
    /// Fraction of hosts (in thousandths) that run long flows. The paper uses
    /// one third (≈ 333).
    pub long_host_millis: u32,
    /// Short flow size model (paper: fixed 70 KB).
    pub short_size: FlowSizeModel,
    /// Number of short flows each short-flow host generates.
    pub flows_per_short_host: usize,
    /// Arrival process of short flows at each host.
    pub arrivals: ArrivalProcess,
    /// Traffic matrix for pairing sources with destinations.
    pub matrix: TrafficMatrix,
    /// When the long flows start.
    pub long_start: SimTime,
    /// When short-flow generation begins (long flows are usually given a head
    /// start so queues reach steady state).
    pub short_start: SimTime,
    /// Deadline assignment for short flows (none in the paper's Figure-1
    /// workload; used by the deadline-miss extension experiment).
    pub deadlines: DeadlineModel,
}

impl Default for PaperWorkloadConfig {
    fn default() -> Self {
        PaperWorkloadConfig {
            long_host_millis: 333,
            short_size: FlowSizeModel::Fixed(70_000),
            flows_per_short_host: 8,
            arrivals: ArrivalProcess::Poisson {
                mean_interarrival: SimDuration::from_millis(150),
            },
            matrix: TrafficMatrix::Permutation,
            long_start: SimTime::from_millis(0),
            short_start: SimTime::from_millis(100),
            deadlines: DeadlineModel::None,
        }
    }
}

/// A complete generated workload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// All flows, sorted by start time.
    pub flows: Vec<FlowSpec>,
}

impl Workload {
    /// Flows of a given class.
    pub fn of_class(&self, class: FlowClass) -> impl Iterator<Item = &FlowSpec> {
        self.flows.iter().filter(move |f| f.class == class)
    }

    /// Number of short flows.
    pub fn short_count(&self) -> usize {
        self.of_class(FlowClass::Short).count()
    }

    /// Number of long flows.
    pub fn long_count(&self) -> usize {
        self.of_class(FlowClass::Long).count()
    }

    /// The latest start time in the workload.
    pub fn last_start(&self) -> SimTime {
        self.flows
            .iter()
            .map(|f| f.start)
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

/// Generate the paper's workload over the given hosts.
pub fn paper_workload(hosts: &[Addr], cfg: &PaperWorkloadConfig, rng: &mut SimRng) -> Workload {
    assert!(hosts.len() >= 4, "need at least four hosts");
    // Split hosts into long-flow hosts and short-flow hosts. The split is
    // random but deterministic for a given seed.
    let mut shuffled: Vec<Addr> = hosts.to_vec();
    rng.shuffle(&mut shuffled);
    let num_long = ((hosts.len() as u64 * cfg.long_host_millis as u64) / 1000) as usize;
    let num_long = num_long.clamp(1, hosts.len().saturating_sub(2));
    let long_hosts: Vec<Addr> = shuffled[..num_long].to_vec();
    let short_hosts: Vec<Addr> = shuffled[num_long..].to_vec();

    let mut flows = Vec::new();
    let mut next_id = 0u64;

    // One traffic matrix over *all* hosts, exactly as in the paper ("all
    // flows are scheduled based on a permutation traffic matrix"): every host
    // is the destination of at most one sender, so a short flow never shares
    // its destination access link with a long flow.
    let all_pairs = assign_destinations(cfg.matrix, hosts, hosts, rng);
    let dest_of = |src: Addr| -> Addr {
        all_pairs
            .iter()
            .find(|(s, _)| *s == src)
            .map(|(_, d)| *d)
            .expect("every host has a destination")
    };

    // Long background flows: one per long host.
    for &src in &long_hosts {
        flows.push(FlowSpec {
            id: next_id,
            src,
            dst: dest_of(src),
            size: None,
            start: cfg.long_start,
            class: FlowClass::Long,
            deadline: None,
        });
        next_id += 1;
    }

    // Short flows: each short host keeps its single matrix destination and
    // generates a Poisson train of short flows towards it.
    let short_pairs: Vec<(Addr, Addr)> = short_hosts.iter().map(|&s| (s, dest_of(s))).collect();
    for (src, dst) in short_pairs {
        let mut prev = cfg.short_start;
        for _k in 0..cfg.flows_per_short_host {
            let start = cfg.arrivals.next(cfg.short_start, prev, rng);
            prev = start;
            let size = cfg.short_size.sample(rng);
            flows.push(FlowSpec {
                id: next_id,
                src,
                dst,
                size: Some(size),
                start,
                class: FlowClass::Short,
                deadline: cfg.deadlines.deadline_for(size),
            });
            next_id += 1;
        }
    }

    flows.sort_by_key(|f| (f.start, f.id));
    Workload { flows }
}

/// Generate an incast workload: `fan_in` senders each send `bytes` to the same
/// receiver, all starting at `start`. Repeated for as many complete groups as
/// the host list allows.
pub fn incast_workload(hosts: &[Addr], fan_in: usize, bytes: u64, start: SimTime) -> Workload {
    assert!(fan_in >= 2, "incast needs at least two senders");
    assert!(
        hosts.len() > fan_in,
        "not enough hosts for one incast group"
    );
    let mut flows = Vec::new();
    let mut next_id = 0u64;
    let groups = hosts.len() / (fan_in + 1);
    for g in 0..groups.max(1) {
        let base = g * (fan_in + 1);
        if base + fan_in >= hosts.len() {
            break;
        }
        let receiver = hosts[base + fan_in];
        for s in 0..fan_in {
            flows.push(FlowSpec {
                id: next_id,
                src: hosts[base + s],
                dst: receiver,
                size: Some(bytes),
                start,
                class: FlowClass::Short,
                deadline: None,
            });
            next_id += 1;
        }
    }
    Workload { flows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hosts(n: usize) -> Vec<Addr> {
        (0..n as u32).map(Addr).collect()
    }

    #[test]
    fn paper_workload_splits_hosts_one_third_two_thirds() {
        let mut rng = SimRng::new(11);
        let w = paper_workload(&hosts(48), &PaperWorkloadConfig::default(), &mut rng);
        assert_eq!(w.long_count(), 48 * 333 / 1000);
        let expected_short_hosts = 48 - 48 * 333 / 1000;
        assert_eq!(w.short_count(), expected_short_hosts * 8);
        // No flow sends to itself.
        for f in &w.flows {
            assert_ne!(f.src, f.dst);
        }
    }

    #[test]
    fn long_flows_are_unbounded_and_start_first() {
        let mut rng = SimRng::new(11);
        let cfg = PaperWorkloadConfig::default();
        let w = paper_workload(&hosts(24), &cfg, &mut rng);
        for f in w.of_class(FlowClass::Long) {
            assert_eq!(f.size, None);
            assert_eq!(f.start, cfg.long_start);
        }
        for f in w.of_class(FlowClass::Short) {
            assert_eq!(f.size, Some(70_000));
            assert!(f.start >= cfg.short_start);
        }
    }

    #[test]
    fn flow_ids_are_unique_and_flows_sorted_by_start() {
        let mut rng = SimRng::new(2);
        let w = paper_workload(&hosts(30), &PaperWorkloadConfig::default(), &mut rng);
        let mut ids: Vec<u64> = w.flows.iter().map(|f| f.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), w.flows.len());
        for pair in w.flows.windows(2) {
            assert!(pair[0].start <= pair[1].start);
        }
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let cfg = PaperWorkloadConfig::default();
        let a = paper_workload(&hosts(20), &cfg, &mut SimRng::new(9));
        let b = paper_workload(&hosts(20), &cfg, &mut SimRng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn poisson_arrivals_have_plausible_mean_gap() {
        let mut rng = SimRng::new(1);
        let cfg = PaperWorkloadConfig {
            flows_per_short_host: 200,
            ..PaperWorkloadConfig::default()
        };
        let w = paper_workload(&hosts(6), &cfg, &mut rng);
        // Collect inter-arrival gaps per source host.
        use std::collections::HashMap;
        let mut per_src: HashMap<Addr, Vec<SimTime>> = HashMap::new();
        for f in w.of_class(FlowClass::Short) {
            per_src.entry(f.src).or_default().push(f.start);
        }
        for starts in per_src.values() {
            let mut s = starts.clone();
            s.sort_unstable();
            let gaps: Vec<f64> = s.windows(2).map(|w| (w[1] - w[0]).as_secs_f64()).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            assert!(
                (mean - 0.150).abs() < 0.05,
                "mean inter-arrival {mean} should be near 150 ms"
            );
        }
    }

    #[test]
    fn flow_size_models_sample_within_bounds() {
        let mut rng = SimRng::new(4);
        assert_eq!(FlowSizeModel::Fixed(70_000).sample(&mut rng), 70_000);
        for _ in 0..100 {
            let v = FlowSizeModel::Uniform { min: 10, max: 20 }.sample(&mut rng);
            assert!((10..=20).contains(&v));
            let w = FlowSizeModel::WebSearch.sample(&mut rng);
            assert!((6_000..=30_000_000).contains(&w));
            let d = FlowSizeModel::DataMining.sample(&mut rng);
            assert!((100..=100_000_000).contains(&d));
        }
    }

    #[test]
    fn empirical_cdfs_are_well_formed() {
        WEB_SEARCH.validate();
        DATA_MINING.validate();
        assert_eq!(WEB_SEARCH.min_bytes(), 6_000);
        assert_eq!(WEB_SEARCH.max_bytes(), 30_000_000);
        assert_eq!(DATA_MINING.min_bytes(), 100);
        assert_eq!(DATA_MINING.max_bytes(), 100_000_000);
    }

    #[test]
    fn empirical_quantiles_interpolate_between_knots() {
        // u = 0 and u = 1 hit the endpoints exactly.
        assert_eq!(WEB_SEARCH.quantile(0.0), 6_000);
        assert_eq!(WEB_SEARCH.quantile(1.0), 30_000_000);
        // Exactly at a knot.
        assert_eq!(WEB_SEARCH.quantile(0.15), 10_000);
        // Halfway through the first segment: linear in bytes.
        assert_eq!(WEB_SEARCH.quantile(0.075), 8_000);
        // Out-of-range probabilities clamp rather than panic.
        assert_eq!(DATA_MINING.quantile(-0.5), 100);
        assert_eq!(DATA_MINING.quantile(1.5), 100_000_000);
    }

    #[test]
    fn empirical_mean_matches_hand_computation() {
        // Two-segment toy CDF: half the mass uniform on [0, 10], half on
        // [10, 30]; mean = 0.5*5 + 0.5*20 = 12.5.
        static TOY: EmpiricalCdf = EmpiricalCdf {
            name: "toy",
            points: &[(0, 0.0), (10, 0.5), (30, 1.0)],
        };
        TOY.validate();
        assert!((TOY.mean() - 12.5).abs() < 1e-9);
        assert_eq!(FlowSizeModel::Empirical(&TOY).cdf().unwrap().name, "toy");
    }

    #[test]
    fn deadline_models() {
        assert_eq!(DeadlineModel::None.deadline_for(70_000), None);
        assert_eq!(
            DeadlineModel::Fixed(SimDuration::from_millis(20)).deadline_for(1),
            Some(SimDuration::from_millis(20))
        );
        // 70 KB at 1 Gbps is 560 µs ideal; slack 10 → 5.6 ms, above the floor.
        let slack = DeadlineModel::Slack {
            slack: 10.0,
            reference_gbps: 1.0,
            floor: SimDuration::from_millis(1),
        };
        let d = slack.deadline_for(70_000).unwrap();
        assert!((d.as_secs_f64() - 5.6e-3).abs() < 1e-5, "got {:?}", d);
        // Tiny flows hit the floor.
        assert_eq!(slack.deadline_for(10), Some(SimDuration::from_millis(1)));
    }

    #[test]
    fn deadlines_are_assigned_to_short_flows_only() {
        let mut rng = SimRng::new(11);
        let cfg = PaperWorkloadConfig {
            deadlines: DeadlineModel::Fixed(SimDuration::from_millis(25)),
            ..PaperWorkloadConfig::default()
        };
        let w = paper_workload(&hosts(24), &cfg, &mut rng);
        for f in w.of_class(FlowClass::Short) {
            assert_eq!(f.deadline, Some(SimDuration::from_millis(25)));
        }
        for f in w.of_class(FlowClass::Long) {
            assert_eq!(f.deadline, None);
        }
    }

    #[test]
    fn flow_spec_new_is_deadline_free() {
        let f = FlowSpec::new(
            1,
            Addr(0),
            Addr(1),
            Some(100),
            SimTime::ZERO,
            FlowClass::Short,
        );
        assert_eq!(f.deadline, None);
        assert_eq!(f.size, Some(100));
    }

    #[test]
    fn incast_workload_shares_one_receiver_per_group() {
        let w = incast_workload(&hosts(18), 8, 32_000, SimTime::from_millis(5));
        assert_eq!(w.flows.len(), 16);
        let first_dst = w.flows[0].dst;
        assert!(w.flows[..8].iter().all(|f| f.dst == first_dst));
        assert!(w.flows[..8].iter().all(|f| f.src != f.dst));
        assert_eq!(w.last_start(), SimTime::from_millis(5));
    }

    #[test]
    fn periodic_and_simultaneous_arrivals() {
        let mut rng = SimRng::new(4);
        let base = SimTime::from_millis(10);
        let p = ArrivalProcess::Periodic {
            period: SimDuration::from_millis(2),
        };
        let t1 = p.next(base, base, &mut rng);
        let t2 = p.next(base, t1, &mut rng);
        assert_eq!(t1, SimTime::from_millis(12));
        assert_eq!(t2, SimTime::from_millis(14));
        let s = ArrivalProcess::Simultaneous;
        assert_eq!(s.next(base, t2, &mut rng), base);
    }
}
