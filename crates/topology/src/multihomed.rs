//! Multi-homed (dual-homed) FatTree.
//!
//! The paper's roadmap: *"We also plan to design multi-homed network
//! topologies as these are well-suited to MMPTCP. The more parallel paths at
//! the access layer, the higher the burst tolerance."* This builder attaches
//! every host to two edge switches of its pod, so even the access layer offers
//! path diversity for packet scatter to exploit.

use crate::built::{BuiltTopology, LinkTier, PathModel};
use crate::fattree::FatTreeConfig;
use netsim::{Addr, LinkConfig, Network, NodeId, SwitchLayer};

/// Build a dual-homed FatTree: identical fabric to [`crate::fattree::build`],
/// but every host additionally connects to the *next* edge switch of its pod
/// (wrapping around), and edge switches install routes for their secondary
/// hosts as well.
pub fn build(config: FatTreeConfig) -> BuiltTopology {
    assert!(
        config.k >= 4,
        "dual-homing needs at least two edge switches per pod"
    );
    let k = config.k;
    let half = k / 2;
    let hosts_per_edge = config.hosts_per_edge();
    let num_hosts = config.total_hosts();

    let host_link = LinkConfig {
        rate_bps: config.host_rate_bps,
        delay: config.link_delay,
        queue: config.queue,
        ..LinkConfig::default()
    };
    let fabric_link = LinkConfig {
        rate_bps: config.fabric_rate_bps,
        delay: config.link_delay,
        queue: config.queue,
        ..LinkConfig::default()
    };

    let mut net = Network::new();
    let mut tiers: Vec<LinkTier> = Vec::new();

    let hosts: Vec<_> = (0..num_hosts).map(|_| net.add_host()).collect();
    let mut edges = vec![Vec::with_capacity(half); k];
    let mut aggs = vec![Vec::with_capacity(half); k];
    for pod in 0..k {
        for _ in 0..half {
            edges[pod].push(net.add_switch(SwitchLayer::Edge, num_hosts));
        }
        for _ in 0..half {
            aggs[pod].push(net.add_switch(SwitchLayer::Aggregation, num_hosts));
        }
    }
    let cores: Vec<NodeId> = (0..half * half)
        .map(|_| net.add_switch(SwitchLayer::Core, num_hosts))
        .collect();

    // Host attachment: primary edge (by address) plus the next edge in the pod.
    // primary_down[h] / secondary_down[h] are the edge->host links.
    let mut primary_down = vec![None; num_hosts];
    let mut secondary_down = vec![None; num_hosts];
    let host_pod = |h: usize| h / config.hosts_per_pod();
    let host_primary_edge = |h: usize| (h % config.hosts_per_pod()) / hosts_per_edge;
    for (h, &host_node) in hosts.iter().enumerate() {
        let pod = host_pod(h);
        let e0 = host_primary_edge(h);
        let e1 = (e0 + 1) % half;
        let (_u0, d0) = net.add_duplex_link(host_node, edges[pod][e0], host_link);
        tiers.push(LinkTier::HostEdge);
        tiers.push(LinkTier::HostEdge);
        let (_u1, d1) = net.add_duplex_link(host_node, edges[pod][e1], host_link);
        tiers.push(LinkTier::HostEdge);
        tiers.push(LinkTier::HostEdge);
        primary_down[h] = Some(d0);
        secondary_down[h] = Some(d1);
    }

    // Fabric wiring identical to the single-homed FatTree.
    let mut edge_up = vec![vec![Vec::with_capacity(half); half]; k];
    let mut agg_down = vec![vec![vec![None; half]; half]; k];
    for pod in 0..k {
        for e in 0..half {
            for a in 0..half {
                let (up, down) = net.add_duplex_link(edges[pod][e], aggs[pod][a], fabric_link);
                tiers.push(LinkTier::EdgeAggregation);
                tiers.push(LinkTier::EdgeAggregation);
                edge_up[pod][e].push(up);
                agg_down[pod][a][e] = Some(down);
            }
        }
    }
    let mut agg_up = vec![vec![Vec::with_capacity(half); half]; k];
    let mut core_down = vec![vec![None; k]; half * half];
    for pod in 0..k {
        for a in 0..half {
            for i in 0..half {
                let core_idx = a * half + i;
                let (up, down) = net.add_duplex_link(aggs[pod][a], cores[core_idx], fabric_link);
                tiers.push(LinkTier::AggregationCore);
                tiers.push(LinkTier::AggregationCore);
                agg_up[pod][a].push(up);
                core_down[core_idx][pod] = Some(down);
            }
        }
    }
    debug_assert_eq!(tiers.len(), net.link_count());

    // Edge routing: a host attached here (as primary or secondary) is reached
    // through the direct downlink; everything else goes up.
    for pod in 0..k {
        for e in 0..half {
            let sw = net.switch_mut(edges[pod][e]);
            let up_group = sw.add_group(edge_up[pod][e].clone());
            for h in 0..num_hosts {
                let is_primary = host_pod(h) == pod && host_primary_edge(h) == e;
                let is_secondary = host_pod(h) == pod && (host_primary_edge(h) + 1) % half == e;
                if is_primary {
                    let g = sw.add_group(vec![primary_down[h].unwrap()]);
                    sw.set_route(Addr(h as u32), g);
                } else if is_secondary {
                    let g = sw.add_group(vec![secondary_down[h].unwrap()]);
                    sw.set_route(Addr(h as u32), g);
                } else {
                    sw.set_route(Addr(h as u32), up_group);
                }
            }
        }
    }

    // Aggregation routing: a host in this pod can be reached through either of
    // its two edge switches (ECMP group of two downlinks); other pods go up.
    for pod in 0..k {
        for a in 0..half {
            let sw = net.switch_mut(aggs[pod][a]);
            let up_group = sw.add_group(agg_up[pod][a].clone());
            let pod_first = pod * config.hosts_per_pod();
            for h in 0..num_hosts {
                if h >= pod_first && h < pod_first + config.hosts_per_pod() {
                    let e0 = host_primary_edge(h);
                    let e1 = (e0 + 1) % half;
                    let g = sw.add_group(vec![
                        agg_down[pod][a][e0].unwrap(),
                        agg_down[pod][a][e1].unwrap(),
                    ]);
                    sw.set_route(Addr(h as u32), g);
                } else {
                    sw.set_route(Addr(h as u32), up_group);
                }
            }
        }
    }

    // Core routing: unchanged.
    for (c, &core_node) in cores.iter().enumerate() {
        let sw = net.switch_mut(core_node);
        let mut pod_groups = Vec::with_capacity(k);
        for pod in 0..k {
            pod_groups.push(sw.add_group(vec![core_down[c][pod].unwrap()]));
        }
        for h in 0..num_hosts {
            sw.set_route(Addr(h as u32), pod_groups[host_pod(h)]);
        }
    }

    BuiltTopology {
        network: net,
        name: format!(
            "multihomed-fattree(k={}, {}:1, {} hosts)",
            k, config.oversubscription, num_hosts
        ),
        hosts,
        link_tiers: tiers,
        path_model: PathModel::MultiHomedFatTree { k, hosts_per_edge },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hosts_have_two_uplinks() {
        let t = build(FatTreeConfig::small());
        for &h in &t.hosts {
            let host = t.network.node(h).as_host().unwrap();
            assert_eq!(host.uplinks.len(), 2, "host {h:?} should be dual-homed");
        }
    }

    #[test]
    fn everything_is_routable() {
        let t = build(FatTreeConfig::small());
        for node in t.network.nodes() {
            if let Some(sw) = node.as_switch() {
                for h in 0..t.host_count() {
                    assert!(
                        sw.path_count(Addr(h as u32)) >= 1,
                        "switch {:?} cannot reach {h}",
                        sw.id
                    );
                }
            }
        }
    }

    #[test]
    fn aggregation_offers_two_downlinks_per_local_host() {
        let t = build(FatTreeConfig::small());
        let aggs = t.network.switches_at(SwitchLayer::Aggregation);
        let sw = t.network.node(aggs[0]).as_switch().unwrap();
        // Host 0 is in pod 0, reachable via two edges.
        assert_eq!(sw.path_count(Addr(0)), 2);
    }

    #[test]
    fn path_model_doubles_diversity() {
        let t = build(FatTreeConfig::small());
        assert_eq!(t.path_count(Addr(0), Addr(8)), 8); // vs 4 single-homed
    }
}
