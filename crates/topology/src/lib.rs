//! # topology — data-centre topology builders
//!
//! Builders for the network fabrics used by the MMPTCP reproduction:
//!
//! * [`fattree`] — k-ary FatTree with configurable over-subscription (the
//!   paper's 512-server, 4:1 topology is [`fattree::FatTreeConfig::paper`]);
//! * [`multihomed`] — dual-homed FatTree (the roadmap's burst-tolerance
//!   extension);
//! * [`vl2`] — simplified VL2-style Clos;
//! * [`dumbbell`] — classic transport-validation topology;
//! * [`parallel`] — two endpoints joined by `p` equal-cost paths.
//!
//! Every builder returns a [`BuiltTopology`]: the [`netsim::Network`] graph
//! plus the metadata transports and metrics need (host list, link tiers and a
//! [`PathModel`] for MMPTCP's topology-aware duplicate-ACK threshold).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// The routing-table builders index hosts/pods/edges with the same k-arithmetic
// the FatTree/VL2 papers use; iterator-chained rewrites of those loops obscure
// the correspondence without changing the generated code.
#![allow(clippy::needless_range_loop)]

pub mod addressing;
pub mod built;
pub mod dumbbell;
pub mod fattree;
pub mod multihomed;
pub mod parallel;
pub mod vl2;

pub use addressing::{FatTreeAddress, FatTreeAddressing};
pub use built::{BuiltTopology, LinkTier, PathModel};
pub use dumbbell::DumbbellConfig;
pub use fattree::{FatTreeConfig, LinkFailureSpec};
pub use parallel::ParallelPathConfig;
pub use vl2::Vl2Config;
