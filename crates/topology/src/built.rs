//! The output of a topology builder: a network graph plus the metadata the
//! transports and metrics need (host list, link tiers, path counts).

use netsim::{Addr, LinkId, Network, NodeId};
use serde::{Deserialize, Serialize};

/// Which tier of the fabric a link belongss to (classified by its endpoints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkTier {
    /// Host ↔ edge/ToR switch.
    HostEdge,
    /// Edge/ToR ↔ aggregation switch.
    EdgeAggregation,
    /// Aggregation ↔ core/intermediate switch.
    AggregationCore,
    /// Anything else (e.g. the bottleneck link of a dumbbell).
    Other,
}

/// How many equal-cost paths exist between a pair of hosts. Used by MMPTCP's
/// topology-aware duplicate-ACK threshold.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PathModel {
    /// FatTree addressing: path count depends on whether the endpoints share
    /// an edge switch, a pod, or neither.
    FatTree {
        /// FatTree arity (number of pods).
        k: usize,
        /// Hosts attached to each edge switch.
        hosts_per_edge: usize,
    },
    /// Dual-homed FatTree: hosts attach to two edge switches, doubling the
    /// edge-disjoint path count for inter-pod traffic.
    MultiHomedFatTree {
        /// FatTree arity.
        k: usize,
        /// Hosts attached to each edge switch.
        hosts_per_edge: usize,
    },
    /// Every distinct pair of hosts has the same number of paths.
    Constant(usize),
}

impl PathModel {
    /// Number of equal-cost paths between hosts `a` and `b` (1 if `a == b`).
    pub fn path_count(&self, a: Addr, b: Addr) -> usize {
        if a == b {
            return 1;
        }
        match self {
            PathModel::Constant(n) => (*n).max(1),
            PathModel::FatTree { k, hosts_per_edge } => {
                let half = k / 2;
                let per_pod = half * hosts_per_edge;
                let (pa, pb) = (a.index() / per_pod, b.index() / per_pod);
                let (ea, eb) = (a.index() / hosts_per_edge, b.index() / hosts_per_edge);
                if ea == eb {
                    1
                } else if pa == pb {
                    half
                } else {
                    half * half
                }
            }
            PathModel::MultiHomedFatTree { k, hosts_per_edge } => {
                let base = PathModel::FatTree {
                    k: *k,
                    hosts_per_edge: *hosts_per_edge,
                };
                // Each endpoint can enter the fabric through either of its two
                // edge switches, doubling the usable path diversity except for
                // the degenerate same-edge case.
                let single = base.path_count(a, b);
                if single == 1 {
                    2
                } else {
                    2 * single
                }
            }
        }
    }
}

/// A finished topology: the network graph plus metadata.
#[derive(Debug)]
pub struct BuiltTopology {
    /// The network graph, ready to hand to [`netsim::Simulator`].
    pub network: Network,
    /// Human-readable name (e.g. `fattree(k=8, 4:1)`).
    pub name: String,
    /// Host node ids in address order (index == address).
    pub hosts: Vec<NodeId>,
    /// Tier of each link, indexed by `LinkId`.
    pub link_tiers: Vec<LinkTier>,
    /// Path-count model for MMPTCP's topology-aware policies.
    pub path_model: PathModel,
}

impl BuiltTopology {
    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Node id of the host with address `addr`.
    pub fn host(&self, addr: Addr) -> NodeId {
        self.hosts[addr.index()]
    }

    /// Number of equal-cost paths between two hosts.
    pub fn path_count(&self, a: Addr, b: Addr) -> usize {
        self.path_model.path_count(a, b)
    }

    /// Tier of a link.
    pub fn link_tier(&self, link: LinkId) -> LinkTier {
        self.link_tiers[link.index()]
    }

    /// All links of a given tier.
    pub fn links_of_tier(&self, tier: LinkTier) -> Vec<LinkId> {
        self.link_tiers
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == tier)
            .map(|(i, _)| LinkId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_path_model() {
        let m = PathModel::Constant(4);
        assert_eq!(m.path_count(Addr(0), Addr(1)), 4);
        assert_eq!(m.path_count(Addr(2), Addr(2)), 1);
        assert_eq!(PathModel::Constant(0).path_count(Addr(0), Addr(1)), 1);
    }

    #[test]
    fn fattree_path_model_k4() {
        // k=4, 1:1 over-subscription: 2 hosts per edge, 4 hosts per pod.
        let m = PathModel::FatTree {
            k: 4,
            hosts_per_edge: 2,
        };
        // Same edge switch.
        assert_eq!(m.path_count(Addr(0), Addr(1)), 1);
        // Same pod, different edge.
        assert_eq!(m.path_count(Addr(0), Addr(2)), 2);
        // Different pods.
        assert_eq!(m.path_count(Addr(0), Addr(4)), 4);
    }

    #[test]
    fn fattree_path_model_oversubscribed() {
        // k=8 with 16 hosts per edge (4:1) — the paper's 512-server topology.
        let m = PathModel::FatTree {
            k: 8,
            hosts_per_edge: 16,
        };
        assert_eq!(m.path_count(Addr(0), Addr(15)), 1); // same edge
        assert_eq!(m.path_count(Addr(0), Addr(16)), 4); // same pod
        assert_eq!(m.path_count(Addr(0), Addr(64)), 16); // inter-pod
    }

    #[test]
    fn multihomed_doubles_paths() {
        let m = PathModel::MultiHomedFatTree {
            k: 4,
            hosts_per_edge: 2,
        };
        assert_eq!(m.path_count(Addr(0), Addr(1)), 2);
        assert_eq!(m.path_count(Addr(0), Addr(4)), 8);
    }
}
