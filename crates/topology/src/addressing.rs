//! FatTree structured addressing.
//!
//! The paper (§2, "Packet Scatter Phase") proposes that end hosts derive the
//! number of available paths towards a destination from *topology-specific
//! information*: "FatTree's IP addressing scheme can be exploited to calculate
//! the number of available paths between the sender and receiver". This module
//! implements that scheme: it maps the simulator's flat host addresses to the
//! classic FatTree dotted address `10.pod.edge.host` and back, and answers the
//! path-count question directly from two addresses, without consulting any
//! central routing state — exactly what an MMPTCP sender needs at connection
//! set-up time.

use crate::fattree::FatTreeConfig;
use netsim::Addr;
use serde::{Deserialize, Serialize};

/// The structured (pod, edge, host) coordinates of a FatTree host, mirroring
/// the `10.pod.switch.id` addressing of the original FatTree paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FatTreeAddress {
    /// Pod index in `0..k`.
    pub pod: u16,
    /// Edge switch index within the pod, in `0..k/2`.
    pub edge: u16,
    /// Host index under that edge switch, in `0..hosts_per_edge`.
    pub host: u16,
}

/// Address arithmetic for a specific FatTree configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FatTreeAddressing {
    k: usize,
    hosts_per_edge: usize,
}

impl FatTreeAddressing {
    /// Addressing for the given FatTree configuration.
    pub fn new(config: &FatTreeConfig) -> Self {
        FatTreeAddressing {
            k: config.k,
            hosts_per_edge: config.hosts_per_edge(),
        }
    }

    /// Addressing from raw parameters (k and hosts per edge switch).
    pub fn from_parts(k: usize, hosts_per_edge: usize) -> Self {
        assert!(k >= 2 && k.is_multiple_of(2));
        assert!(hosts_per_edge >= 1);
        FatTreeAddressing { k, hosts_per_edge }
    }

    /// Hosts attached to each pod.
    pub fn hosts_per_pod(&self) -> usize {
        self.hosts_per_edge * self.k / 2
    }

    /// Total number of hosts.
    pub fn total_hosts(&self) -> usize {
        self.hosts_per_pod() * self.k
    }

    /// Structured coordinates of a flat host address.
    pub fn decompose(&self, addr: Addr) -> FatTreeAddress {
        let idx = addr.index();
        assert!(idx < self.total_hosts(), "address out of range");
        let pod = idx / self.hosts_per_pod();
        let within_pod = idx % self.hosts_per_pod();
        FatTreeAddress {
            pod: pod as u16,
            edge: (within_pod / self.hosts_per_edge) as u16,
            host: (within_pod % self.hosts_per_edge) as u16,
        }
    }

    /// Flat host address of structured coordinates.
    pub fn compose(&self, a: FatTreeAddress) -> Addr {
        let idx = a.pod as usize * self.hosts_per_pod()
            + a.edge as usize * self.hosts_per_edge
            + a.host as usize;
        assert!(idx < self.total_hosts(), "coordinates out of range");
        Addr(idx as u32)
    }

    /// A dotted, FatTree-paper-style rendering (`10.pod.edge.host`).
    pub fn dotted(&self, addr: Addr) -> String {
        let a = self.decompose(addr);
        format!("10.{}.{}.{}", a.pod, a.edge, a.host)
    }

    /// Do two hosts share an edge (top-of-rack) switch?
    pub fn same_edge(&self, a: Addr, b: Addr) -> bool {
        let (x, y) = (self.decompose(a), self.decompose(b));
        x.pod == y.pod && x.edge == y.edge
    }

    /// Do two hosts share a pod?
    pub fn same_pod(&self, a: Addr, b: Addr) -> bool {
        self.decompose(a).pod == self.decompose(b).pod
    }

    /// The number of equal-cost paths between two hosts, computed purely from
    /// their addresses (the paper's proposal for setting the scatter-phase
    /// duplicate-ACK threshold):
    ///
    /// * same host: 1;
    /// * same edge switch: 1 (through that switch);
    /// * same pod, different edge: `k/2` (one per aggregation switch);
    /// * different pods: `(k/2)²` (one per core switch).
    pub fn path_count(&self, a: Addr, b: Addr) -> usize {
        if a == b {
            return 1;
        }
        let half = self.k / 2;
        if self.same_edge(a, b) {
            1
        } else if self.same_pod(a, b) {
            half
        } else {
            half * half
        }
    }

    /// The duplicate-ACK threshold the paper's topology-aware policy would
    /// install for a connection between `a` and `b` (never below the TCP
    /// default of 3).
    pub fn dupack_threshold(&self, a: Addr, b: Addr) -> u32 {
        (self.path_count(a, b) as u32).max(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::built::PathModel;
    use crate::fattree;

    fn addressing_paper() -> FatTreeAddressing {
        FatTreeAddressing::new(&FatTreeConfig::paper())
    }

    #[test]
    fn compose_decompose_roundtrip() {
        let a = addressing_paper();
        assert_eq!(a.total_hosts(), 512);
        for idx in [0u32, 1, 15, 16, 63, 64, 500, 511] {
            let coords = a.decompose(Addr(idx));
            assert_eq!(a.compose(coords), Addr(idx));
        }
    }

    #[test]
    fn dotted_rendering_matches_structure() {
        let a = FatTreeAddressing::from_parts(4, 2);
        assert_eq!(a.dotted(Addr(0)), "10.0.0.0");
        assert_eq!(a.dotted(Addr(1)), "10.0.0.1");
        assert_eq!(a.dotted(Addr(2)), "10.0.1.0");
        assert_eq!(a.dotted(Addr(4)), "10.1.0.0");
        assert_eq!(a.dotted(Addr(15)), "10.3.1.1");
    }

    #[test]
    fn path_counts_match_fattree_geometry() {
        let a = addressing_paper(); // k = 8, 16 hosts/edge
                                    // Same edge.
        assert_eq!(a.path_count(Addr(0), Addr(15)), 1);
        // Same pod, different edge.
        assert_eq!(a.path_count(Addr(0), Addr(16)), 4);
        // Different pods.
        assert_eq!(a.path_count(Addr(0), Addr(128)), 16);
        // Self.
        assert_eq!(a.path_count(Addr(3), Addr(3)), 1);
    }

    #[test]
    fn path_counts_agree_with_the_built_topology_model() {
        // The address-derived count must agree with the PathModel that the
        // builder attaches to the built topology, for every pair in a small
        // tree — this is the property the paper's mechanism relies on.
        let cfg = FatTreeConfig::small();
        let topo = fattree::build(cfg);
        let addressing = FatTreeAddressing::new(&cfg);
        let model = PathModel::FatTree {
            k: cfg.k,
            hosts_per_edge: cfg.hosts_per_edge(),
        };
        for i in 0..topo.host_count() {
            for j in 0..topo.host_count() {
                let (a, b) = (Addr(i as u32), Addr(j as u32));
                assert_eq!(
                    addressing.path_count(a, b),
                    model.path_count(a, b),
                    "disagreement for {a} -> {b}"
                );
            }
        }
    }

    #[test]
    fn dupack_threshold_floors_at_three() {
        let a = FatTreeAddressing::from_parts(4, 2);
        assert_eq!(a.dupack_threshold(Addr(0), Addr(1)), 3); // 1 path
        assert_eq!(a.dupack_threshold(Addr(0), Addr(2)), 3); // 2 paths
        assert_eq!(a.dupack_threshold(Addr(0), Addr(8)), 4); // 4 paths
        let big = addressing_paper();
        assert_eq!(big.dupack_threshold(Addr(0), Addr(128)), 16);
    }

    #[test]
    fn same_pod_and_edge_predicates() {
        let a = FatTreeAddressing::from_parts(4, 2);
        assert!(a.same_edge(Addr(0), Addr(1)));
        assert!(!a.same_edge(Addr(0), Addr(2)));
        assert!(a.same_pod(Addr(0), Addr(3)));
        assert!(!a.same_pod(Addr(0), Addr(4)));
    }

    #[test]
    #[should_panic(expected = "address out of range")]
    fn out_of_range_address_panics() {
        FatTreeAddressing::from_parts(4, 2).decompose(Addr(16));
    }
}
