//! Simplified VL2-style Clos topology.
//!
//! The paper's introduction cites VL2 as the other canonical data-centre
//! fabric and notes that its centralised components can provide the path-count
//! information MMPTCP's packet-scatter phase needs. This module builds a
//! three-tier Clos in the VL2 style: hosts attach to ToR switches, each ToR
//! connects to two aggregation switches, and aggregation and intermediate
//! switches form a complete bipartite graph over which traffic is spread by
//! ECMP (standing in for VL2's valiant load balancing).

use crate::built::{BuiltTopology, LinkTier, PathModel};
use netsim::{Addr, LinkConfig, Network, QueueConfig, SimDuration, SwitchLayer};
use serde::{Deserialize, Serialize};

/// Configuration of a VL2-style build.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Vl2Config {
    /// Number of ToR (edge) switches.
    pub num_tors: usize,
    /// Hosts attached to each ToR.
    pub hosts_per_tor: usize,
    /// Number of aggregation switches (must be ≥ 2).
    pub num_aggs: usize,
    /// Number of intermediate (core) switches.
    pub num_intermediates: usize,
    /// Host ↔ ToR link rate, bits/s.
    pub host_rate_bps: u64,
    /// Switch ↔ switch link rate, bits/s (VL2 uses 10x the host rate).
    pub fabric_rate_bps: u64,
    /// Propagation delay of every link.
    pub link_delay: SimDuration,
    /// Queue configuration of every port.
    pub queue: QueueConfig,
}

impl Default for Vl2Config {
    fn default() -> Self {
        Vl2Config {
            num_tors: 8,
            hosts_per_tor: 8,
            num_aggs: 4,
            num_intermediates: 4,
            host_rate_bps: 1_000_000_000,
            fabric_rate_bps: 10_000_000_000,
            link_delay: SimDuration::from_micros(5),
            queue: QueueConfig::default(),
        }
    }
}

impl Vl2Config {
    /// Total hosts.
    pub fn total_hosts(&self) -> usize {
        self.num_tors * self.hosts_per_tor
    }
}

/// Build the VL2-style topology.
pub fn build(config: Vl2Config) -> BuiltTopology {
    assert!(
        config.num_aggs >= 2,
        "VL2 needs at least two aggregation switches"
    );
    assert!(config.num_tors >= 1 && config.hosts_per_tor >= 1);
    assert!(config.num_intermediates >= 1);

    let num_hosts = config.total_hosts();
    let host_link = LinkConfig {
        rate_bps: config.host_rate_bps,
        delay: config.link_delay,
        queue: config.queue,
        ..LinkConfig::default()
    };
    let fabric_link = LinkConfig {
        rate_bps: config.fabric_rate_bps,
        delay: config.link_delay,
        queue: config.queue,
        ..LinkConfig::default()
    };

    let mut net = Network::new();
    let mut tiers = Vec::new();

    let hosts: Vec<_> = (0..num_hosts).map(|_| net.add_host()).collect();
    let tors: Vec<_> = (0..config.num_tors)
        .map(|_| net.add_switch(SwitchLayer::Edge, num_hosts))
        .collect();
    let aggs: Vec<_> = (0..config.num_aggs)
        .map(|_| net.add_switch(SwitchLayer::Aggregation, num_hosts))
        .collect();
    let ints: Vec<_> = (0..config.num_intermediates)
        .map(|_| net.add_switch(SwitchLayer::Core, num_hosts))
        .collect();

    // Hosts to ToRs.
    let mut host_down = vec![None; num_hosts];
    for (h, &host) in hosts.iter().enumerate() {
        let tor = tors[h / config.hosts_per_tor];
        let (_up, down) = net.add_duplex_link(host, tor, host_link);
        tiers.push(LinkTier::HostEdge);
        tiers.push(LinkTier::HostEdge);
        host_down[h] = Some(down);
    }

    // Each ToR connects to two aggregation switches.
    let tor_aggs =
        |t: usize| -> [usize; 2] { [(2 * t) % config.num_aggs, (2 * t + 1) % config.num_aggs] };
    let mut tor_up = vec![Vec::new(); config.num_tors];
    let mut agg_down = vec![vec![None; config.num_tors]; config.num_aggs];
    for t in 0..config.num_tors {
        for a in tor_aggs(t) {
            if agg_down[a][t].is_some() {
                // num_aggs == 2 makes both choices identical; skip duplicates.
                continue;
            }
            let (up, down) = net.add_duplex_link(tors[t], aggs[a], fabric_link);
            tiers.push(LinkTier::EdgeAggregation);
            tiers.push(LinkTier::EdgeAggregation);
            tor_up[t].push(up);
            agg_down[a][t] = Some(down);
        }
    }

    // Aggregation and intermediate switches form a complete bipartite graph.
    let mut agg_up = vec![Vec::new(); config.num_aggs];
    let mut int_down = vec![vec![None; config.num_aggs]; config.num_intermediates];
    for a in 0..config.num_aggs {
        for i in 0..config.num_intermediates {
            let (up, down) = net.add_duplex_link(aggs[a], ints[i], fabric_link);
            tiers.push(LinkTier::AggregationCore);
            tiers.push(LinkTier::AggregationCore);
            agg_up[a].push(up);
            int_down[i][a] = Some(down);
        }
    }

    debug_assert_eq!(tiers.len(), net.link_count());

    let host_tor = |h: usize| h / config.hosts_per_tor;

    // ToR routing.
    for t in 0..config.num_tors {
        let sw = net.switch_mut(tors[t]);
        let up = sw.add_group(tor_up[t].clone());
        for h in 0..num_hosts {
            if host_tor(h) == t {
                let g = sw.add_group(vec![host_down[h].unwrap()]);
                sw.set_route(Addr(h as u32), g);
            } else {
                sw.set_route(Addr(h as u32), up);
            }
        }
    }

    // Aggregation routing: hosts under a directly connected ToR go down;
    // everything else goes up over all intermediates.
    for a in 0..config.num_aggs {
        let sw = net.switch_mut(aggs[a]);
        let up = sw.add_group(agg_up[a].clone());
        let mut down_groups = vec![None; config.num_tors];
        for t in 0..config.num_tors {
            if let Some(link) = agg_down[a][t] {
                down_groups[t] = Some(sw.add_group(vec![link]));
            }
        }
        for h in 0..num_hosts {
            let t = host_tor(h);
            match down_groups[t] {
                Some(g) => sw.set_route(Addr(h as u32), g),
                None => sw.set_route(Addr(h as u32), up),
            }
        }
    }

    // Intermediate routing: go down to either aggregation switch that serves
    // the destination's ToR.
    for i in 0..config.num_intermediates {
        // Pre-compute groups keyed by ToR.
        let mut groups = vec![None; config.num_tors];
        {
            let sw = net.switch_mut(ints[i]);
            for t in 0..config.num_tors {
                let links: Vec<_> = tor_aggs(t)
                    .into_iter()
                    .collect::<std::collections::BTreeSet<_>>()
                    .into_iter()
                    .map(|a| int_down[i][a].unwrap())
                    .collect();
                groups[t] = Some(sw.add_group(links));
            }
            for h in 0..num_hosts {
                sw.set_route(Addr(h as u32), groups[host_tor(h)].unwrap());
            }
        }
    }

    // Path count between hosts on different ToRs: 2 uplinks × intermediates ×
    // (up to) 2 downlinks; we expose the dominant factor used for dup-ACK
    // tuning rather than the exact combinatorial count.
    let paths = 2 * config.num_intermediates;

    BuiltTopology {
        network: net,
        name: format!(
            "vl2({} tors x {} hosts, {} aggs, {} ints)",
            config.num_tors, config.hosts_per_tor, config.num_aggs, config.num_intermediates
        ),
        hosts,
        link_tiers: tiers,
        path_model: PathModel::Constant(paths),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_and_routability() {
        let cfg = Vl2Config::default();
        let t = build(cfg);
        assert_eq!(t.host_count(), 64);
        for node in t.network.nodes() {
            if let Some(sw) = node.as_switch() {
                for h in 0..t.host_count() {
                    assert!(
                        sw.path_count(Addr(h as u32)) >= 1,
                        "switch {:?} cannot reach host {h}",
                        sw.id
                    );
                }
            }
        }
    }

    #[test]
    fn fabric_links_are_faster_than_access() {
        let t = build(Vl2Config::default());
        let access = t.links_of_tier(LinkTier::HostEdge);
        let fabric = t.links_of_tier(LinkTier::AggregationCore);
        assert_eq!(t.network.link(access[0]).config.rate_bps, 1_000_000_000);
        assert_eq!(t.network.link(fabric[0]).config.rate_bps, 10_000_000_000);
    }

    #[test]
    fn two_aggs_special_case() {
        let cfg = Vl2Config {
            num_tors: 4,
            hosts_per_tor: 2,
            num_aggs: 2,
            num_intermediates: 2,
            ..Vl2Config::default()
        };
        let t = build(cfg);
        assert_eq!(t.host_count(), 8);
        // Still fully routable.
        for node in t.network.nodes() {
            if let Some(sw) = node.as_switch() {
                for h in 0..t.host_count() {
                    assert!(sw.path_count(Addr(h as u32)) >= 1);
                }
            }
        }
    }
}
