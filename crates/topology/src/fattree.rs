//! k-ary FatTree topology with configurable over-subscription.
//!
//! The paper's evaluation topology is a FatTree of 512 servers with a 4:1
//! over-subscription ratio: a k=8 FatTree normally hosts 128 servers (4 per
//! edge switch); attaching 16 servers per edge switch instead yields 512
//! servers whose aggregate access bandwidth exceeds the edge uplink capacity
//! by 4:1 — exactly the contention regime in which long flows collide and
//! short flows suffer.
//!
//! Structure of a k-ary FatTree (k even):
//! * `k` pods;
//! * `k/2` edge and `k/2` aggregation switches per pod;
//! * `(k/2)²` core switches;
//! * every edge switch connects to every aggregation switch in its pod;
//! * aggregation switch `j` of every pod connects to core switches
//!   `j·k/2 .. (j+1)·k/2`.
//!
//! Routing is the standard FatTree two-level scheme realised as ECMP groups:
//! packets travel up (edge → aggregation → core) choosing among all equal-cost
//! uplinks by 5-tuple hash, then down a deterministic path to the destination.

use crate::built::{BuiltTopology, LinkTier, PathModel};
use netsim::{Addr, LinkConfig, Network, NodeId, QueueConfig, SimDuration, SimRng, SwitchLayer};
use serde::{Deserialize, Serialize};

/// Deterministic link-failure injection applied after the routing tables are
/// built.
///
/// Failures are modelled on the aggregation→core *uplink* direction only:
/// each failed uplink is removed from its aggregation switch's ECMP up-group,
/// so inter-pod traffic spreads over the surviving core uplinks (exactly what
/// datacentre routing does after a failure converges), while the intact
/// core→aggregation down direction keeps every destination reachable. This
/// reduces path diversity and creates asymmetric core capacity — the failure
/// regime multipath papers study — without ever blackholing a host.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct LinkFailureSpec {
    /// Fraction (in thousandths, i.e. 250 = 25 %) of aggregation→core
    /// uplinks to fail. 0 disables injection entirely.
    pub agg_core_uplink_millis: u32,
    /// Seed for the deterministic choice of which uplinks fail.
    pub seed: u64,
}

impl LinkFailureSpec {
    /// Fail `millis`/1000 of the aggregation→core uplinks, chosen by `seed`.
    pub fn agg_core(millis: u32, seed: u64) -> Self {
        LinkFailureSpec {
            agg_core_uplink_millis: millis,
            seed,
        }
    }

    /// Whether this spec injects any failures at all.
    pub fn is_active(&self) -> bool {
        self.agg_core_uplink_millis > 0
    }
}

/// Configuration of a FatTree build.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FatTreeConfig {
    /// Arity `k` (must be even, ≥ 2). The tree has `k` pods.
    pub k: usize,
    /// Over-subscription ratio at the edge: each edge switch serves
    /// `oversubscription · k/2` hosts. 1 gives the canonical re-arrangeably
    /// non-blocking FatTree; the paper uses 4.
    pub oversubscription: usize,
    /// Link rate for host ↔ edge links, in bits/s.
    pub host_rate_bps: u64,
    /// Link rate for switch ↔ switch links, in bits/s.
    pub fabric_rate_bps: u64,
    /// One-way propagation delay of every link.
    pub link_delay: SimDuration,
    /// Output queue configuration applied to every port.
    pub queue: QueueConfig,
    /// Link failures to inject after routing is built (defaults to none).
    pub failures: LinkFailureSpec,
}

impl Default for FatTreeConfig {
    fn default() -> Self {
        FatTreeConfig {
            k: 4,
            oversubscription: 1,
            host_rate_bps: 1_000_000_000,
            fabric_rate_bps: 1_000_000_000,
            link_delay: SimDuration::from_micros(5),
            queue: QueueConfig {
                limit_packets: 100,
                limit_bytes: None,
                ecn_threshold_packets: None,
            },
            failures: LinkFailureSpec::default(),
        }
    }
}

impl FatTreeConfig {
    /// The paper's evaluation topology: k=8, 4:1 over-subscribed, 512 servers.
    pub fn paper() -> Self {
        FatTreeConfig {
            k: 8,
            oversubscription: 4,
            ..FatTreeConfig::default()
        }
    }

    /// A small 16-host FatTree (k=4, 1:1) for tests and examples.
    pub fn small() -> Self {
        FatTreeConfig::default()
    }

    /// A medium 128-host FatTree (k=8, 4:1 over-subscribed at a reduced
    /// host count per edge) used as the default benchmark scale: k=4 pods
    /// structure of the paper (same 4:1 contention) at laptop-friendly size.
    pub fn benchmark() -> Self {
        FatTreeConfig {
            k: 4,
            oversubscription: 4,
            ..FatTreeConfig::default()
        }
    }

    /// Hosts attached to each edge switch.
    pub fn hosts_per_edge(&self) -> usize {
        self.oversubscription * self.k / 2
    }

    /// Hosts per pod.
    pub fn hosts_per_pod(&self) -> usize {
        self.hosts_per_edge() * self.k / 2
    }

    /// Total number of hosts.
    pub fn total_hosts(&self) -> usize {
        self.hosts_per_pod() * self.k
    }

    /// Total number of switches (edge + aggregation + core).
    pub fn total_switches(&self) -> usize {
        self.k * self.k + (self.k / 2) * (self.k / 2)
    }

    fn validate(&self) {
        assert!(
            self.k >= 2 && self.k.is_multiple_of(2),
            "FatTree k must be even and >= 2"
        );
        assert!(self.oversubscription >= 1, "over-subscription must be >= 1");
    }

    /// Enable DCTCP-style ECN marking with threshold `k_packets` on every port.
    pub fn with_ecn_threshold(mut self, k_packets: usize) -> Self {
        self.queue.ecn_threshold_packets = Some(k_packets);
        self
    }
}

/// Build a FatTree.
pub fn build(config: FatTreeConfig) -> BuiltTopology {
    config.validate();
    let k = config.k;
    let half = k / 2;
    let hosts_per_edge = config.hosts_per_edge();
    let num_hosts = config.total_hosts();

    let host_link = LinkConfig {
        rate_bps: config.host_rate_bps,
        delay: config.link_delay,
        queue: config.queue,
        ..LinkConfig::default()
    };
    let fabric_link = LinkConfig {
        rate_bps: config.fabric_rate_bps,
        delay: config.link_delay,
        queue: config.queue,
        ..LinkConfig::default()
    };

    let mut net = Network::new();
    let mut tiers: Vec<LinkTier> = Vec::new();

    // Hosts, in (pod, edge, slot) order so addresses are structured.
    let mut hosts = Vec::with_capacity(num_hosts);
    for _ in 0..num_hosts {
        hosts.push(net.add_host());
    }

    // Switches.
    let mut edges = vec![Vec::with_capacity(half); k]; // [pod][edge]
    let mut aggs = vec![Vec::with_capacity(half); k]; // [pod][agg]
    for pod in 0..k {
        for _ in 0..half {
            edges[pod].push(net.add_switch(SwitchLayer::Edge, num_hosts));
        }
        for _ in 0..half {
            aggs[pod].push(net.add_switch(SwitchLayer::Aggregation, num_hosts));
        }
    }
    let cores: Vec<NodeId> = (0..half * half)
        .map(|_| net.add_switch(SwitchLayer::Core, num_hosts))
        .collect();

    // host <-> edge links. Record the edge->host downlink for routing.
    let mut host_downlink = vec![None; num_hosts];
    for (h, &host_node) in hosts.iter().enumerate() {
        let pod = h / config.hosts_per_pod();
        let edge_in_pod = (h % config.hosts_per_pod()) / hosts_per_edge;
        let edge_node = edges[pod][edge_in_pod];
        let (_up, down) = net.add_duplex_link(host_node, edge_node, host_link);
        tiers.push(LinkTier::HostEdge);
        tiers.push(LinkTier::HostEdge);
        host_downlink[h] = Some(down);
    }

    // edge <-> aggregation links (within each pod, complete bipartite).
    // edge_up[pod][e] = links from edge e to each agg; agg_down[pod][a][e] = link agg a -> edge e.
    let mut edge_up = vec![vec![Vec::with_capacity(half); half]; k];
    let mut agg_down = vec![vec![vec![None; half]; half]; k];
    for pod in 0..k {
        for e in 0..half {
            for a in 0..half {
                let (up, down) = net.add_duplex_link(edges[pod][e], aggs[pod][a], fabric_link);
                tiers.push(LinkTier::EdgeAggregation);
                tiers.push(LinkTier::EdgeAggregation);
                edge_up[pod][e].push(up);
                agg_down[pod][a][e] = Some(down);
            }
        }
    }

    // aggregation <-> core links. Aggregation j of each pod connects to cores
    // j*half .. (j+1)*half.
    let mut agg_up = vec![vec![Vec::with_capacity(half); half]; k];
    let mut core_down = vec![vec![None; k]; half * half]; // [core][pod] -> link core -> agg
    for pod in 0..k {
        for a in 0..half {
            for i in 0..half {
                let core_idx = a * half + i;
                let (up, down) = net.add_duplex_link(aggs[pod][a], cores[core_idx], fabric_link);
                tiers.push(LinkTier::AggregationCore);
                tiers.push(LinkTier::AggregationCore);
                agg_up[pod][a].push(up);
                core_down[core_idx][pod] = Some(down);
            }
        }
    }

    debug_assert_eq!(tiers.len(), net.link_count());

    // --- Routing tables -------------------------------------------------

    // Edge switches: directly attached hosts go down their access link;
    // everything else goes up via ECMP over all aggregation uplinks.
    for pod in 0..k {
        for e in 0..half {
            let sw = net.switch_mut(edges[pod][e]);
            let up_group = sw.add_group(edge_up[pod][e].clone());
            let first_host = pod * (half * hosts_per_edge) + e * hosts_per_edge;
            for h in 0..num_hosts {
                if h >= first_host && h < first_host + hosts_per_edge {
                    let g = sw.add_group(vec![host_downlink[h].unwrap()]);
                    sw.set_route(Addr(h as u32), g);
                } else {
                    sw.set_route(Addr(h as u32), up_group);
                }
            }
        }
    }

    // Aggregation switches: hosts in the same pod go down to the edge switch
    // that serves them; hosts in other pods go up via ECMP over core uplinks.
    for pod in 0..k {
        for a in 0..half {
            let sw = net.switch_mut(aggs[pod][a]);
            let up_group = sw.add_group(agg_up[pod][a].clone());
            let mut down_groups = Vec::with_capacity(half);
            for e in 0..half {
                down_groups.push(sw.add_group(vec![agg_down[pod][a][e].unwrap()]));
            }
            let pod_first = pod * config.hosts_per_pod();
            for h in 0..num_hosts {
                if h >= pod_first && h < pod_first + config.hosts_per_pod() {
                    let e = (h - pod_first) / hosts_per_edge;
                    sw.set_route(Addr(h as u32), down_groups[e]);
                } else {
                    sw.set_route(Addr(h as u32), up_group);
                }
            }
        }
    }

    // Core switches: every host is reached through the aggregation switch of
    // its pod that this core is wired to.
    for (c, &core_node) in cores.iter().enumerate() {
        let sw = net.switch_mut(core_node);
        let mut pod_groups = Vec::with_capacity(k);
        for pod in 0..k {
            pod_groups.push(sw.add_group(vec![core_down[c][pod].unwrap()]));
        }
        for h in 0..num_hosts {
            let pod = h / config.hosts_per_pod();
            sw.set_route(Addr(h as u32), pod_groups[pod]);
        }
    }

    // Link-failure injection: withdraw a deterministic subset of the
    // aggregation→core uplinks from their ECMP up-groups (see
    // [`LinkFailureSpec`] for the model and its reachability guarantee).
    let mut failed_uplinks = 0usize;
    if config.failures.is_active() {
        let mut failure_rng = SimRng::new(0xFA11_0000 ^ config.failures.seed);
        for pod in 0..k {
            for a in 0..half {
                for &up in &agg_up[pod][a] {
                    if failure_rng.range(0..1000u32) < config.failures.agg_core_uplink_millis {
                        failed_uplinks += net.switch_mut(aggs[pod][a]).remove_link(up);
                    }
                }
            }
        }
    }

    let mut name = format!(
        "fattree(k={}, {}:1, {} hosts)",
        k, config.oversubscription, num_hosts
    );
    if failed_uplinks > 0 {
        name = format!("{name} -{failed_uplinks} core uplinks");
    }

    BuiltTopology {
        network: net,
        name,
        hosts,
        link_tiers: tiers,
        path_model: PathModel::FatTree { k, hosts_per_edge },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Node;

    #[test]
    fn counts_match_theory_k4() {
        let cfg = FatTreeConfig::small();
        assert_eq!(cfg.total_hosts(), 16);
        let t = build(cfg);
        assert_eq!(t.host_count(), 16);
        // 16 edge+agg (k*k) + 4 core.
        assert_eq!(t.network.node_count(), 16 + cfg.total_switches());
        // Links: 16 host links + 4 pods * 2*2 edge-agg + 4 pods * 2*2 agg-core,
        // each duplex = 2 unidirectional.
        assert_eq!(t.network.link_count(), 2 * (16 + 16 + 16));
        assert_eq!(t.link_tiers.len(), t.network.link_count());
    }

    #[test]
    fn paper_scale_is_512_servers() {
        let cfg = FatTreeConfig::paper();
        assert_eq!(cfg.k, 8);
        assert_eq!(cfg.oversubscription, 4);
        assert_eq!(cfg.hosts_per_edge(), 16);
        assert_eq!(cfg.total_hosts(), 512);
    }

    #[test]
    fn every_switch_routes_every_host() {
        let t = build(FatTreeConfig::small());
        for node in t.network.nodes() {
            if let Node::Switch(sw) = node {
                for h in 0..t.host_count() {
                    assert!(
                        sw.path_count(Addr(h as u32)) >= 1,
                        "switch {:?} has no route to host {h}",
                        sw.id
                    );
                }
            }
        }
    }

    #[test]
    fn link_failures_shrink_up_groups_but_keep_full_reachability() {
        let cfg = FatTreeConfig {
            failures: LinkFailureSpec::agg_core(400, 7),
            ..FatTreeConfig::small()
        };
        let t = build(cfg);
        assert!(
            t.name.contains("core uplinks"),
            "failures must show in the name: {}",
            t.name
        );
        // Aggregate up-group capacity dropped below the healthy k/2 per agg.
        let healthy = build(FatTreeConfig::small());
        let up_members = |topo: &BuiltTopology| -> usize {
            topo.network
                .switches_at(SwitchLayer::Aggregation)
                .iter()
                .map(|&id| {
                    let sw = topo.network.node(id).as_switch().unwrap();
                    // Group 0 is the up-group (first group added).
                    sw.groups()[0].len()
                })
                .sum()
        };
        assert!(up_members(&t) < up_members(&healthy));
        // Every switch still routes every host.
        for node in t.network.nodes() {
            if let Node::Switch(sw) = node {
                for h in 0..t.host_count() {
                    assert!(sw.path_count(Addr(h as u32)) >= 1);
                }
            }
        }
    }

    #[test]
    fn link_failures_are_deterministic_per_seed() {
        let cfg = |seed| FatTreeConfig {
            failures: LinkFailureSpec::agg_core(250, seed),
            ..FatTreeConfig::small()
        };
        let a = build(cfg(1));
        let b = build(cfg(1));
        let c = build(cfg(2));
        assert_eq!(a.name, b.name);
        let groups = |topo: &BuiltTopology| -> Vec<Vec<netsim::LinkId>> {
            topo.network
                .switches_at(SwitchLayer::Aggregation)
                .iter()
                .map(|&id| topo.network.node(id).as_switch().unwrap().groups()[0].clone())
                .collect()
        };
        assert_eq!(groups(&a), groups(&b), "same seed, same surviving links");
        assert_ne!(
            (a.name.clone(), groups(&a)),
            (c.name.clone(), groups(&c)),
            "different seed should fail a different subset"
        );
    }

    #[test]
    fn zero_failure_spec_is_inactive() {
        assert!(!LinkFailureSpec::default().is_active());
        assert!(LinkFailureSpec::agg_core(125, 3).is_active());
        let t = build(FatTreeConfig::default());
        assert!(!t.name.contains("core uplinks"));
    }

    #[test]
    fn edge_uplink_group_has_k_over_2_members() {
        let cfg = FatTreeConfig::small();
        let t = build(cfg);
        // Host 0 and a host in a different pod: the edge switch must offer
        // k/2 = 2 uplinks.
        let edge_switches = t.network.switches_at(SwitchLayer::Edge);
        let first_edge = t.network.node(edge_switches[0]).as_switch().unwrap();
        // Host 15 is in the last pod.
        assert_eq!(first_edge.path_count(Addr(15)), 2);
        // Its own host has a single downlink.
        assert_eq!(first_edge.path_count(Addr(0)), 1);
    }

    #[test]
    fn tier_classification_counts() {
        let cfg = FatTreeConfig::small();
        let t = build(cfg);
        let host_edge = t.links_of_tier(LinkTier::HostEdge).len();
        let edge_agg = t.links_of_tier(LinkTier::EdgeAggregation).len();
        let agg_core = t.links_of_tier(LinkTier::AggregationCore).len();
        assert_eq!(host_edge, 2 * 16);
        assert_eq!(edge_agg, 2 * 16);
        assert_eq!(agg_core, 2 * 16);
    }

    #[test]
    fn oversubscribed_tree_attaches_more_hosts_per_edge() {
        let cfg = FatTreeConfig {
            k: 4,
            oversubscription: 4,
            ..FatTreeConfig::default()
        };
        assert_eq!(cfg.total_hosts(), 64);
        let t = build(cfg);
        assert_eq!(t.host_count(), 64);
        // Edge switch 0 serves hosts 0..8 (hosts_per_edge = 8).
        let edge_switches = t.network.switches_at(SwitchLayer::Edge);
        let sw = t.network.node(edge_switches[0]).as_switch().unwrap();
        for h in 0..8 {
            assert_eq!(sw.path_count(Addr(h)), 1);
        }
        assert_eq!(sw.path_count(Addr(8)), 2);
    }

    #[test]
    fn path_model_matches_structure() {
        let t = build(FatTreeConfig::small());
        // Same edge.
        assert_eq!(t.path_count(Addr(0), Addr(1)), 1);
        // Same pod, different edge.
        assert_eq!(t.path_count(Addr(0), Addr(2)), 2);
        // Different pod.
        assert_eq!(t.path_count(Addr(0), Addr(8)), 4);
    }

    #[test]
    fn ecn_threshold_is_applied() {
        let cfg = FatTreeConfig::small().with_ecn_threshold(20);
        let t = build(cfg);
        assert_eq!(
            t.network
                .link(netsim::LinkId(0))
                .config
                .queue
                .ecn_threshold_packets,
            Some(20)
        );
    }
}
