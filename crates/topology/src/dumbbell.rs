//! Dumbbell topology: two groups of hosts joined by a single bottleneck link.
//!
//! Not a data-centre fabric, but indispensable for validating transport
//! behaviour (congestion-window dynamics, fairness, RTO behaviour) against
//! textbook expectations before letting the protocols loose on a FatTree.

use crate::built::{BuiltTopology, LinkTier, PathModel};
use netsim::{Addr, LinkConfig, Network, QueueConfig, SimDuration, SwitchLayer};
use serde::{Deserialize, Serialize};

/// Configuration of a dumbbell build.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DumbbellConfig {
    /// Hosts on each side.
    pub hosts_per_side: usize,
    /// Access link rate (host ↔ switch), bits/s.
    pub access_rate_bps: u64,
    /// Bottleneck link rate (switch ↔ switch), bits/s.
    pub bottleneck_rate_bps: u64,
    /// Propagation delay of access links.
    pub access_delay: SimDuration,
    /// Propagation delay of the bottleneck link.
    pub bottleneck_delay: SimDuration,
    /// Queue configuration (applied to all ports).
    pub queue: QueueConfig,
}

impl Default for DumbbellConfig {
    fn default() -> Self {
        DumbbellConfig {
            hosts_per_side: 2,
            access_rate_bps: 1_000_000_000,
            bottleneck_rate_bps: 1_000_000_000,
            access_delay: SimDuration::from_micros(5),
            bottleneck_delay: SimDuration::from_micros(5),
            queue: QueueConfig::default(),
        }
    }
}

/// Build a dumbbell. Hosts `0..n` are on the left, `n..2n` on the right.
pub fn build(config: DumbbellConfig) -> BuiltTopology {
    assert!(config.hosts_per_side >= 1);
    let n = config.hosts_per_side;
    let num_hosts = 2 * n;

    let access = LinkConfig {
        rate_bps: config.access_rate_bps,
        delay: config.access_delay,
        queue: config.queue,
        ..LinkConfig::default()
    };
    let bottleneck = LinkConfig {
        rate_bps: config.bottleneck_rate_bps,
        delay: config.bottleneck_delay,
        queue: config.queue,
        ..LinkConfig::default()
    };

    let mut net = Network::new();
    let mut tiers = Vec::new();

    let hosts: Vec<_> = (0..num_hosts).map(|_| net.add_host()).collect();
    let left = net.add_switch(SwitchLayer::Edge, num_hosts);
    let right = net.add_switch(SwitchLayer::Edge, num_hosts);

    let mut downlinks = Vec::with_capacity(num_hosts);
    for (i, &h) in hosts.iter().enumerate() {
        let sw = if i < n { left } else { right };
        let (_up, down) = net.add_duplex_link(h, sw, access);
        tiers.push(LinkTier::HostEdge);
        tiers.push(LinkTier::HostEdge);
        downlinks.push(down);
    }
    let (lr, rl) = net.add_duplex_link(left, right, bottleneck);
    tiers.push(LinkTier::Other);
    tiers.push(LinkTier::Other);

    // Routing.
    {
        let sw = net.switch_mut(left);
        let cross = sw.add_group(vec![lr]);
        for h in 0..num_hosts {
            if h < n {
                let g = sw.add_group(vec![downlinks[h]]);
                sw.set_route(Addr(h as u32), g);
            } else {
                sw.set_route(Addr(h as u32), cross);
            }
        }
    }
    {
        let sw = net.switch_mut(right);
        let cross = sw.add_group(vec![rl]);
        for h in 0..num_hosts {
            if h >= n {
                let g = sw.add_group(vec![downlinks[h]]);
                sw.set_route(Addr(h as u32), g);
            } else {
                sw.set_route(Addr(h as u32), cross);
            }
        }
    }

    BuiltTopology {
        network: net,
        name: format!("dumbbell({n}x{n})"),
        hosts,
        link_tiers: tiers,
        path_model: PathModel::Constant(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure() {
        let t = build(DumbbellConfig::default());
        assert_eq!(t.host_count(), 4);
        assert_eq!(t.network.node_count(), 6);
        // 4 access duplex + 1 bottleneck duplex = 10 unidirectional links.
        assert_eq!(t.network.link_count(), 10);
        assert_eq!(t.links_of_tier(LinkTier::Other).len(), 2);
        assert_eq!(t.path_count(Addr(0), Addr(2)), 1);
    }

    #[test]
    fn all_destinations_routable() {
        let t = build(DumbbellConfig {
            hosts_per_side: 3,
            ..DumbbellConfig::default()
        });
        for node in t.network.nodes() {
            if let Some(sw) = node.as_switch() {
                for h in 0..t.host_count() {
                    assert!(sw.path_count(Addr(h as u32)) >= 1);
                }
            }
        }
    }
}
