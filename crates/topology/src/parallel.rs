//! Parallel-path topology: a pair of endpoints joined by `p` equal-cost paths.
//!
//! The smallest topology on which multipath behaviour is observable: MPTCP
//! subflows with distinct source ports hash onto different middle switches,
//! and MMPTCP's packet scatter spreads individual packets across all of them.
//! Used heavily by transport unit/integration tests and by the burst-tolerance
//! micro-benchmarks.

use crate::built::{BuiltTopology, LinkTier, PathModel};
use netsim::{Addr, LinkConfig, Network, QueueConfig, SimDuration, SwitchLayer};
use serde::{Deserialize, Serialize};

/// Configuration for a parallel-path build.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParallelPathConfig {
    /// Number of sender/receiver host pairs (hosts `0..n` send to `n..2n`).
    pub host_pairs: usize,
    /// Number of equal-cost paths between the two edge switches.
    pub paths: usize,
    /// Access link rate, bits/s.
    pub access_rate_bps: u64,
    /// Per-path core link rate, bits/s.
    pub path_rate_bps: u64,
    /// Propagation delay of every link.
    pub link_delay: SimDuration,
    /// Queue configuration for every port.
    pub queue: QueueConfig,
}

impl Default for ParallelPathConfig {
    fn default() -> Self {
        ParallelPathConfig {
            host_pairs: 1,
            paths: 4,
            access_rate_bps: 1_000_000_000,
            path_rate_bps: 1_000_000_000,
            link_delay: SimDuration::from_micros(5),
            queue: QueueConfig::default(),
        }
    }
}

/// Build a parallel-path topology: hosts — edge switch — `p` middle switches —
/// edge switch — hosts.
pub fn build(config: ParallelPathConfig) -> BuiltTopology {
    assert!(config.paths >= 1, "need at least one path");
    assert!(config.host_pairs >= 1, "need at least one host pair");
    let n = config.host_pairs;
    let num_hosts = 2 * n;

    let access = LinkConfig {
        rate_bps: config.access_rate_bps,
        delay: config.link_delay,
        queue: config.queue,
        ..LinkConfig::default()
    };
    let core = LinkConfig {
        rate_bps: config.path_rate_bps,
        delay: config.link_delay,
        queue: config.queue,
        ..LinkConfig::default()
    };

    let mut net = Network::new();
    let mut tiers = Vec::new();

    let hosts: Vec<_> = (0..num_hosts).map(|_| net.add_host()).collect();
    let left = net.add_switch(SwitchLayer::Edge, num_hosts);
    let right = net.add_switch(SwitchLayer::Edge, num_hosts);
    let middles: Vec<_> = (0..config.paths)
        .map(|_| net.add_switch(SwitchLayer::Core, num_hosts))
        .collect();

    let mut downlinks = Vec::with_capacity(num_hosts);
    for (i, &h) in hosts.iter().enumerate() {
        let sw = if i < n { left } else { right };
        let (_up, down) = net.add_duplex_link(h, sw, access);
        tiers.push(LinkTier::HostEdge);
        tiers.push(LinkTier::HostEdge);
        downlinks.push(down);
    }

    let mut left_up = Vec::new();
    let mut right_up = Vec::new();
    let mut mid_to_left = Vec::new();
    let mut mid_to_right = Vec::new();
    for &m in &middles {
        let (lu, ld) = net.add_duplex_link(left, m, core);
        let (ru, rd) = net.add_duplex_link(right, m, core);
        tiers.extend([
            LinkTier::AggregationCore,
            LinkTier::AggregationCore,
            LinkTier::AggregationCore,
            LinkTier::AggregationCore,
        ]);
        left_up.push(lu);
        right_up.push(ru);
        mid_to_left.push(ld);
        mid_to_right.push(rd);
    }

    // Routing: edges send local hosts down, remote hosts up across all paths;
    // middle switches know which side each host is on.
    {
        let sw = net.switch_mut(left);
        let up = sw.add_group(left_up.clone());
        for h in 0..num_hosts {
            if h < n {
                let g = sw.add_group(vec![downlinks[h]]);
                sw.set_route(Addr(h as u32), g);
            } else {
                sw.set_route(Addr(h as u32), up);
            }
        }
    }
    {
        let sw = net.switch_mut(right);
        let up = sw.add_group(right_up.clone());
        for h in 0..num_hosts {
            if h >= n {
                let g = sw.add_group(vec![downlinks[h]]);
                sw.set_route(Addr(h as u32), g);
            } else {
                sw.set_route(Addr(h as u32), up);
            }
        }
    }
    for (i, &m) in middles.iter().enumerate() {
        let sw = net.switch_mut(m);
        let to_left = sw.add_group(vec![mid_to_left[i]]);
        let to_right = sw.add_group(vec![mid_to_right[i]]);
        for h in 0..num_hosts {
            let g = if h < n { to_left } else { to_right };
            sw.set_route(Addr(h as u32), g);
        }
    }

    BuiltTopology {
        network: net,
        name: format!("parallel({} pairs, {} paths)", n, config.paths),
        hosts,
        link_tiers: tiers,
        path_model: PathModel::Constant(config.paths),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure() {
        let cfg = ParallelPathConfig {
            host_pairs: 2,
            paths: 4,
            ..ParallelPathConfig::default()
        };
        let t = build(cfg);
        assert_eq!(t.host_count(), 4);
        // 4 hosts + 2 edges + 4 middles.
        assert_eq!(t.network.node_count(), 10);
        // 4 access duplex + 4*2 core duplex = 24 unidirectional.
        assert_eq!(t.network.link_count(), 24);
        assert_eq!(t.path_count(Addr(0), Addr(2)), 4);
    }

    #[test]
    fn cross_traffic_routable_and_local_traffic_stays_local() {
        let t = build(ParallelPathConfig::default());
        let left = t.network.switches_at(SwitchLayer::Edge)[0];
        let sw = t.network.node(left).as_switch().unwrap();
        assert_eq!(sw.path_count(Addr(0)), 1);
        assert_eq!(sw.path_count(Addr(1)), 4);
    }
}
