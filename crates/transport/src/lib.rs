//! # transport — the protocols under study
//!
//! Implementations of every transport the paper discusses, all built from the
//! same per-path TCP engine ([`subflow::Subflow`]) and the shared
//! [`receiver::TransportReceiver`]:
//!
//! * [`tcp::TcpSender`] — single-path NewReno-style TCP (the baseline), and
//!   its DCTCP variant (`TransportConfig::dctcp()` + ECN-marking switches);
//! * [`d2tcp::D2tcpSender`] — deadline-aware DCTCP (D²TCP), one of the
//!   single-path alternatives the paper's introduction discusses;
//! * [`mptcp::MptcpSender`] — Multi-Path TCP with RFC 6356 coupled congestion
//!   control and no connection-level reinjection (the behaviour the paper
//!   criticises for short flows);
//! * [`mmptcp::MmptcpSender`] — the paper's contribution: a packet-scatter
//!   phase (per-packet source-port randomisation + raised duplicate-ACK
//!   threshold) followed by an MPTCP phase, with both switching strategies
//!   from §2;
//! * packet-scatter-only ([`mmptcp::MmptcpSender::packet_scatter`]) as an
//!   ablation;
//! * [`repflow::RepFlowSender`] — RepFlow's replicate-the-mice answer to the
//!   same problem (two racing single-path connections over ECMP-disjoint
//!   paths, first full delivery wins), plus its RepSYN handshake/first-window
//!   variant.
//!
//! Senders and receivers are [`netsim::Agent`]s: install them on hosts with
//! [`netsim::Simulator::register_agent`] and drive them with flow-start
//! events. The higher-level `mmptcp` crate does that wiring for you.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cc;
pub mod config;
pub mod d2tcp;
pub mod mmptcp;
pub mod mptcp;
pub mod receiver;
pub mod repflow;
pub mod rtt;
pub mod subflow;
pub mod tcp;

pub use cc::{Bbr, CongestionControl, CongestionController, Cubic, EcnResponder, Reno};
pub use config::TransportConfig;
pub use d2tcp::D2tcpSender;
pub use mmptcp::{DupAckPolicy, MmptcpConfig, MmptcpPhase, MmptcpSender, SwitchStrategy};
pub use mptcp::{compute_lia, MptcpConfig, MptcpScheduler, MptcpSender};
pub use receiver::{ReceiverCounters, TransportReceiver, PROGRESS_REPORT_STRIDE};
pub use repflow::{RepFlowConfig, RepFlowSender};
pub use rtt::RttEstimator;
pub use subflow::{LiaParams, Subflow, SubflowCounters, SubflowUpdate};
pub use tcp::TcpSender;

/// Emit [`netsim::Signal::RedundantBytes`] for a bounded flow when the
/// sender has put more data bytes on the wire than the application needed
/// (`needed` = flow size at completion, bytes acknowledged at finalize).
/// Zero excess emits nothing. Shared by every bounded sender so the
/// redundant-bytes metric compares replication against plain retransmission
/// on equal terms.
pub(crate) fn signal_redundant_bytes(
    ctx: &mut netsim::AgentCtx<'_>,
    flow: netsim::FlowId,
    sent: u64,
    needed: u64,
) {
    let excess = sent.saturating_sub(needed);
    if excess > 0 {
        ctx.signal(netsim::Signal::RedundantBytes {
            flow,
            at: ctx.now(),
            bytes: excess,
        });
    }
}
