//! Multi-Path TCP sender.
//!
//! An [`MptcpSender`] stripes one connection-level byte stream over `N`
//! subflows, each pinned to its own source port (and therefore, via ECMP, to
//! its own path through the fabric). Congestion control is RFC 6356's Linked
//! Increase Algorithm (LIA): subflows share a coupled additive-increase term
//! so the connection is no more aggressive than a single TCP flow on its best
//! path, while still moving traffic away from congested paths.
//!
//! Faithful to the behaviour the paper criticises, there is **no
//! connection-level reinjection**: bytes mapped onto a subflow can only be
//! retransmitted by that subflow, so a loss on a subflow whose window is tiny
//! must wait for that subflow's RTO — which is exactly what inflates short
//! flow completion times as the number of subflows grows (Figure 1(a)/(b)).

use crate::config::TransportConfig;
use crate::subflow::{LiaParams, Subflow, SubflowUpdate};
use netsim::fluid::{pacing_rate_bps, FluidHandoff};
use netsim::{Addr, Agent, AgentCtx, AgentEvent, FlowId, PacketKind, Signal, SimTime};
use serde::{Deserialize, Serialize};

/// How the connection-level scheduler assigns data to subflows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum MptcpScheduler {
    /// Round-robin over subflows with window space (the behaviour of the
    /// authors' ns-3 model for homogeneous data-centre paths).
    #[default]
    RoundRobin,
    /// Prefer the established subflow with the lowest smoothed RTT.
    LowestRtt,
}

/// MPTCP-specific configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MptcpConfig {
    /// Per-subflow TCP parameters.
    pub transport: TransportConfig,
    /// Number of subflows to open.
    pub num_subflows: usize,
    /// Whether to couple the subflows' congestion avoidance (LIA). Turning it
    /// off gives "uncoupled" MPTCP, an ablation the literature often reports.
    pub coupled: bool,
    /// Data-to-subflow scheduling policy.
    pub scheduler: MptcpScheduler,
    /// When true (the default, and what RFC 6824 mandates) only the initial
    /// subflow performs the opening handshake; the additional subflows join
    /// once it is established (MP_JOIN needs the token from the MP_CAPABLE
    /// exchange). When false all subflows send their SYN simultaneously — an
    /// idealisation some simulators use, which masks initial-SYN losses and
    /// therefore flatters MPTCP's short-flow tail.
    pub join_after_initial: bool,
}

impl Default for MptcpConfig {
    fn default() -> Self {
        MptcpConfig {
            transport: TransportConfig::default(),
            num_subflows: 8,
            coupled: true,
            scheduler: MptcpScheduler::RoundRobin,
            join_after_initial: true,
        }
    }
}

impl MptcpConfig {
    /// Config with `n` subflows and defaults otherwise.
    pub fn with_subflows(n: usize) -> Self {
        MptcpConfig {
            num_subflows: n,
            ..MptcpConfig::default()
        }
    }
}

/// Compute RFC 6356's `alpha` from the state of the established subflows.
///
/// `alpha = tot_cwnd * max_i(cwnd_i / rtt_i^2) / (sum_i cwnd_i / rtt_i)^2`
///
/// Subflows without an RTT sample yet are ignored; if nothing qualifies the
/// result falls back to `alpha = 1` (plain Reno behaviour).
pub fn compute_lia(subflows: &[Subflow]) -> LiaParams {
    let mut total_cwnd = 0.0_f64;
    let mut max_term = 0.0_f64;
    let mut sum_term = 0.0_f64;
    for sf in subflows.iter().filter(|s| s.is_established()) {
        let cwnd = sf.cwnd();
        total_cwnd += cwnd;
        let rtt = sf.srtt().map(|d| d.as_secs_f64()).unwrap_or(0.0).max(1e-6);
        max_term = max_term.max(cwnd / (rtt * rtt));
        sum_term += cwnd / rtt;
    }
    let alpha = if sum_term > 0.0 && total_cwnd > 0.0 {
        total_cwnd * max_term / (sum_term * sum_term)
    } else {
        1.0
    };
    LiaParams {
        alpha,
        total_cwnd_bytes: total_cwnd.max(1.0),
    }
}

/// A Multi-Path TCP sender.
#[derive(Debug)]
pub struct MptcpSender {
    cfg: MptcpConfig,
    flow: FlowId,
    total: Option<u64>,
    subflows: Vec<Subflow>,
    next_data_seq: u64,
    data_acked: u64,
    rr_cursor: usize,
    started_at: Option<SimTime>,
    /// True once the additional (MP_JOIN) subflows have been started.
    joined: bool,
    completed: bool,
    /// True once the remainder of the flow has been handed to the fluid fast
    /// path; the scheduler stops pumping and waits for `FluidComplete`.
    fluid_mode: bool,
}

impl MptcpSender {
    /// Create an MPTCP sender. Subflow source ports are `base_src_port`,
    /// `base_src_port + 1`, … so each subflow hashes to (generally) a
    /// different ECMP path.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: MptcpConfig,
        flow: FlowId,
        src: Addr,
        dst: Addr,
        base_src_port: u16,
        dst_port: u16,
        total: Option<u64>,
    ) -> Self {
        assert!(cfg.num_subflows >= 1, "MPTCP needs at least one subflow");
        assert!(cfg.num_subflows <= 64, "unreasonable subflow count");
        let subflows = (0..cfg.num_subflows)
            .map(|i| {
                Subflow::new(
                    cfg.transport,
                    i as u8,
                    false,
                    src,
                    dst,
                    base_src_port.wrapping_add(i as u16),
                    dst_port,
                    flow,
                )
            })
            .collect();
        MptcpSender {
            cfg,
            flow,
            total,
            subflows,
            next_data_seq: 0,
            data_acked: 0,
            rr_cursor: 0,
            started_at: None,
            joined: false,
            completed: false,
            fluid_mode: false,
        }
    }

    /// Connection-level bytes acknowledged so far.
    pub fn acked_bytes(&self) -> u64 {
        self.data_acked
    }

    /// Has the whole transfer been acknowledged?
    pub fn is_completed(&self) -> bool {
        self.completed
    }

    /// The subflows (for inspection in tests / metrics).
    pub fn subflows(&self) -> &[Subflow] {
        &self.subflows
    }

    /// Total retransmission timeouts across all subflows.
    pub fn total_rtos(&self) -> u64 {
        self.subflows.iter().map(|s| s.counters().rto_count).sum()
    }

    /// Total data bytes handed to the network across all subflows,
    /// including retransmissions.
    pub fn total_bytes_sent(&self) -> u64 {
        self.subflows
            .iter()
            .map(|s| s.counters().data_bytes_sent)
            .sum()
    }

    fn remaining(&self) -> u64 {
        match self.total {
            Some(t) => t.saturating_sub(self.next_data_seq),
            None => u64::MAX,
        }
    }

    fn lia(&self) -> Option<LiaParams> {
        if self.cfg.coupled {
            Some(compute_lia(&self.subflows))
        } else {
            None
        }
    }

    /// Pick the next subflow to receive a chunk, honouring the scheduler.
    fn pick_subflow(&mut self, len: u64) -> Option<usize> {
        let n = self.subflows.len();
        match self.cfg.scheduler {
            MptcpScheduler::RoundRobin => {
                for off in 0..n {
                    let idx = (self.rr_cursor + off) % n;
                    let sf = &self.subflows[idx];
                    if sf.is_established() && sf.window_space() >= len {
                        self.rr_cursor = (idx + 1) % n;
                        return Some(idx);
                    }
                }
                None
            }
            MptcpScheduler::LowestRtt => self
                .subflows
                .iter()
                .enumerate()
                .filter(|(_, sf)| sf.is_established() && sf.window_space() >= len)
                .min_by(|(_, a), (_, b)| {
                    let ra = a.srtt().map(|d| d.as_nanos()).unwrap_or(u64::MAX);
                    let rb = b.srtt().map(|d| d.as_nanos()).unwrap_or(u64::MAX);
                    ra.cmp(&rb)
                })
                .map(|(i, _)| i),
        }
    }

    fn pump(&mut self, ctx: &mut AgentCtx<'_>) {
        loop {
            let remaining = self.remaining();
            if remaining == 0 {
                break;
            }
            let len = (self.cfg.transport.mss as u64).min(remaining);
            let Some(idx) = self.pick_subflow(len) else {
                break;
            };
            self.subflows[idx].send_segment(ctx, self.next_data_seq, len as u32);
            self.next_data_seq += len;
        }
    }

    fn check_completion(&mut self, ctx: &mut AgentCtx<'_>) {
        if self.completed {
            return;
        }
        if let Some(total) = self.total {
            if self.data_acked >= total {
                self.completed = true;
                ctx.signal(Signal::FlowCompleted {
                    flow: self.flow,
                    at: ctx.now(),
                    bytes: total,
                });
                crate::signal_redundant_bytes(ctx, self.flow, self.total_bytes_sent(), total);
            }
        }
    }

    /// Dispatch a packet to its subflow. Returns the subflow update.
    fn route_packet(&mut self, ctx: &mut AgentCtx<'_>, pkt: &netsim::Packet) -> SubflowUpdate {
        let lia = self.lia();
        let idx = pkt.subflow as usize;
        if idx >= self.subflows.len() {
            return SubflowUpdate::default();
        }
        self.subflows[idx].on_packet(ctx, pkt, lia)
    }

    /// Whether the remainder of the flow has been handed to the fluid engine.
    pub fn is_fluid_mode(&self) -> bool {
        self.fluid_mode
    }

    /// Hand the remainder to the fluid fast path once all subflows have
    /// joined, at least one has left slow start with an RTT sample, and more
    /// than the elephant threshold is left. The pacing cap is the sum of the
    /// per-subflow cwnd/srtt rates, so the aggregate MPTCP rate is respected.
    fn maybe_fluid_handoff(&mut self, ctx: &mut AgentCtx<'_>) {
        if self.fluid_mode || self.completed || !self.joined {
            return;
        }
        let Some(threshold) = ctx.fluid_threshold() else {
            return;
        };
        let Some(total) = self.total else {
            return; // unbounded background flows stay packet-level
        };
        let remaining = total.saturating_sub(self.next_data_seq);
        if remaining <= threshold {
            return;
        }
        let mut rate_cap_bps = 0u64;
        let mut best_srtt: Option<netsim::SimDuration> = None;
        let mut out_of_slow_start = false;
        for sf in self.subflows.iter().filter(|s| s.is_established()) {
            let Some(srtt) = sf.srtt() else { continue };
            out_of_slow_start |= !sf.in_slow_start();
            rate_cap_bps = rate_cap_bps.saturating_add(
                sf.cc_pacing_rate_bps()
                    .unwrap_or_else(|| pacing_rate_bps(sf.cwnd(), srtt)),
            );
            // Cap growth runs at the base (propagation) RTT: srtt is
            // queue-inflated at handoff time, and a frozen inflated value
            // would slow additive increase forever.
            let base = sf.min_rtt().unwrap_or(srtt);
            best_srtt = Some(match best_srtt {
                Some(cur) if cur <= base => cur,
                _ => base,
            });
        }
        let Some(srtt) = best_srtt else {
            return;
        };
        if !out_of_slow_start {
            return;
        }
        let mss = self.cfg.transport.mss;
        let template = self.subflows[0].fluid_template(self.next_data_seq, mss, ctx.now());
        ctx.request_fluid_handoff(FluidHandoff {
            template,
            remaining,
            base_bytes: self.next_data_seq,
            rate_cap_bps,
            srtt,
            mss,
            cc: self.cfg.transport.cc.fluid(),
        });
        self.fluid_mode = true;
    }
}

impl Agent for MptcpSender {
    fn handle(&mut self, ctx: &mut AgentCtx<'_>, event: AgentEvent) {
        match event {
            AgentEvent::Start => {
                self.started_at = Some(ctx.now());
                ctx.signal(Signal::FlowStarted {
                    flow: self.flow,
                    at: ctx.now(),
                    bytes: self.total.unwrap_or(u64::MAX),
                });
                if self.cfg.join_after_initial {
                    // RFC 6824 semantics: MP_CAPABLE on the initial subflow
                    // first; MP_JOINs follow once it is established.
                    self.subflows[0].start(ctx);
                } else {
                    for sf in &mut self.subflows {
                        sf.start(ctx);
                    }
                    self.joined = true;
                }
            }
            AgentEvent::Packet(pkt) => {
                if matches!(pkt.kind, PacketKind::Ack | PacketKind::SynAck) {
                    self.data_acked = self.data_acked.max(pkt.data_ack);
                    self.route_packet(ctx, &pkt);
                    if !self.joined && self.subflows[0].is_established() {
                        self.joined = true;
                        for sf in self.subflows.iter_mut().skip(1) {
                            sf.start(ctx);
                        }
                    }
                    if !self.fluid_mode {
                        self.pump(ctx);
                        self.check_completion(ctx);
                        self.maybe_fluid_handoff(ctx);
                    }
                }
            }
            AgentEvent::Timer(token) => {
                let (idx, gen) = Subflow::decode_timer_token(token);
                if (idx as usize) < self.subflows.len() {
                    self.subflows[idx as usize].on_timer(ctx, gen);
                }
                if !self.fluid_mode {
                    self.pump(ctx);
                }
            }
            AgentEvent::FluidComplete { bytes } => {
                if !self.completed {
                    self.completed = true;
                    for sf in &mut self.subflows {
                        sf.abort();
                    }
                    let total = self.total.unwrap_or(self.next_data_seq + bytes);
                    ctx.signal(Signal::FlowCompleted {
                        flow: self.flow,
                        at: ctx.now(),
                        bytes: total,
                    });
                    crate::signal_redundant_bytes(
                        ctx,
                        self.flow,
                        self.total_bytes_sent() + bytes,
                        total,
                    );
                }
            }
            AgentEvent::Finalize => {
                if !self.completed && !self.fluid_mode {
                    ctx.signal(Signal::FlowProgress {
                        flow: self.flow,
                        at: ctx.now(),
                        bytes: self.data_acked,
                    });
                    if self.total.is_some() {
                        crate::signal_redundant_bytes(
                            ctx,
                            self.flow,
                            self.total_bytes_sent(),
                            self.data_acked,
                        );
                    }
                }
            }
        }
    }

    fn describe(&self) -> String {
        format!(
            "mptcp-sender({}, {} subflows, {:?} bytes)",
            self.flow,
            self.subflows.len(),
            self.total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::TransportReceiver;
    use netsim::{Packet, SimDuration, SimRng};

    /// Ideal-network harness: every packet sent is delivered next "round".
    struct Loop {
        tx: MptcpSender,
        rx: TransportReceiver,
        rng: SimRng,
        timers: Vec<(SimTime, u64)>,
        signals: Vec<Signal>,
        now: SimTime,
        to_rx: Vec<Packet>,
        to_tx: Vec<Packet>,
    }

    impl Loop {
        fn new(cfg: MptcpConfig, total: u64) -> Self {
            let flow = FlowId(1);
            Loop {
                tx: MptcpSender::new(cfg, flow, Addr(0), Addr(1), 50_000, 80, Some(total)),
                rx: TransportReceiver::new(flow),
                rng: SimRng::new(5),
                timers: Vec::new(),
                signals: Vec::new(),
                now: SimTime::from_millis(1),
                to_rx: Vec::new(),
                to_tx: Vec::new(),
            }
        }

        fn start(&mut self) {
            let mut out = Vec::new();
            let mut ctx = AgentCtx::new(
                self.now,
                FlowId(1),
                &mut self.rng,
                &mut out,
                &mut self.timers,
                &mut self.signals,
            );
            self.tx.handle(&mut ctx, AgentEvent::Start);
            self.to_rx.extend(out);
        }

        /// One round trip: deliver sender packets (optionally dropping by
        /// predicate), collect ACKs, deliver them back.
        fn round(&mut self, mut drop: impl FnMut(&Packet) -> bool) {
            self.now += SimDuration::from_micros(100);
            let mut acks = Vec::new();
            for pkt in std::mem::take(&mut self.to_rx) {
                if drop(&pkt) {
                    continue;
                }
                let mut ctx = AgentCtx::new(
                    self.now,
                    FlowId(1),
                    &mut self.rng,
                    &mut acks,
                    &mut self.timers,
                    &mut self.signals,
                );
                self.rx.handle(&mut ctx, AgentEvent::Packet(pkt));
            }
            self.to_tx.extend(acks);
            self.now += SimDuration::from_micros(100);
            let mut out = Vec::new();
            for pkt in std::mem::take(&mut self.to_tx) {
                let mut ctx = AgentCtx::new(
                    self.now,
                    FlowId(1),
                    &mut self.rng,
                    &mut out,
                    &mut self.timers,
                    &mut self.signals,
                );
                self.tx.handle(&mut ctx, AgentEvent::Packet(pkt));
            }
            self.to_rx.extend(out);
            // Fire due timers.
            let due: Vec<(SimTime, u64)> = self
                .timers
                .iter()
                .copied()
                .filter(|(t, _)| *t <= self.now)
                .collect();
            self.timers.retain(|(t, _)| *t > self.now);
            for (_, token) in due {
                let mut out = Vec::new();
                let mut ctx = AgentCtx::new(
                    self.now,
                    FlowId(1),
                    &mut self.rng,
                    &mut out,
                    &mut self.timers,
                    &mut self.signals,
                );
                self.tx.handle(&mut ctx, AgentEvent::Timer(token));
                self.to_rx.extend(out);
            }
            if self.to_rx.is_empty() && self.to_tx.is_empty() && !self.tx.is_completed() {
                if let Some(&(t, _)) = self.timers.iter().min_by_key(|(t, _)| *t) {
                    self.now = t;
                }
            }
        }

        fn run(&mut self, max_rounds: usize, mut drop: impl FnMut(&Packet) -> bool) {
            self.start();
            for _ in 0..max_rounds {
                if self.tx.is_completed() {
                    break;
                }
                self.round(&mut drop);
            }
        }
    }

    #[test]
    fn all_subflows_carry_data() {
        let mut l = Loop::new(MptcpConfig::with_subflows(4), 400_000);
        l.run(2_000, |_| false);
        assert!(l.tx.is_completed());
        for sf in l.tx.subflows() {
            assert!(
                sf.counters().data_bytes_sent > 0,
                "subflow {} never carried data",
                sf.index
            );
        }
        assert_eq!(l.tx.acked_bytes(), 400_000);
    }

    #[test]
    fn distinct_source_ports_per_subflow() {
        let tx = MptcpSender::new(
            MptcpConfig::with_subflows(8),
            FlowId(1),
            Addr(0),
            Addr(1),
            50_000,
            80,
            Some(1_000),
        );
        let ports: std::collections::HashSet<u16> =
            tx.subflows().iter().map(|s| s.src_port()).collect();
        assert_eq!(ports.len(), 8);
    }

    #[test]
    fn single_subflow_mptcp_behaves_like_tcp() {
        let mut l = Loop::new(MptcpConfig::with_subflows(1), 70_000);
        l.run(2_000, |_| false);
        assert!(l.tx.is_completed());
        assert_eq!(l.tx.total_rtos(), 0);
    }

    #[test]
    fn loss_on_one_subflow_is_recovered_by_that_subflow() {
        // Drop every data packet of subflow 2 once (the first copy).
        let mut dropped = std::collections::HashSet::new();
        let mut l = Loop::new(MptcpConfig::with_subflows(4), 200_000);
        l.run(20_000, |p: &Packet| {
            if p.kind == PacketKind::Data && p.subflow == 2 && !dropped.contains(&p.seq) {
                dropped.insert(p.seq);
                true
            } else {
                false
            }
        });
        assert!(l.tx.is_completed(), "connection must eventually complete");
        // Only subflow 2 performed retransmissions/timeouts.
        for sf in l.tx.subflows() {
            let recovering = sf.counters().fast_retransmits + sf.counters().rto_count;
            if sf.index == 2 {
                assert!(recovering > 0);
            } else {
                assert_eq!(recovering, 0, "subflow {} should be clean", sf.index);
            }
        }
    }

    #[test]
    fn additional_subflows_join_after_initial_handshake() {
        let mut l = Loop::new(MptcpConfig::with_subflows(8), 70_000);
        l.start();
        // Only the initial subflow's SYN is on the wire at connection start.
        let syns: Vec<u8> = l
            .to_rx
            .iter()
            .filter(|p| p.kind == PacketKind::Syn)
            .map(|p| p.subflow)
            .collect();
        assert_eq!(syns, vec![0]);
        // After one round trip the SYN-ACK arrives and the joins go out.
        l.round(|_| false);
        let joined: std::collections::HashSet<u8> = l
            .to_rx
            .iter()
            .filter(|p| p.kind == PacketKind::Syn)
            .map(|p| p.subflow)
            .collect();
        assert_eq!(joined.len(), 7, "seven MP_JOIN SYNs follow");
        for _ in 0..2_000 {
            if l.tx.is_completed() {
                break;
            }
            l.round(|_| false);
        }
        assert!(l.tx.is_completed());
    }

    #[test]
    fn simultaneous_start_is_available_as_an_idealisation() {
        let cfg = MptcpConfig {
            join_after_initial: false,
            ..MptcpConfig::with_subflows(4)
        };
        let mut l = Loop::new(cfg, 70_000);
        l.start();
        let syns = l.to_rx.iter().filter(|p| p.kind == PacketKind::Syn).count();
        assert_eq!(syns, 4);
        for _ in 0..2_000 {
            if l.tx.is_completed() {
                break;
            }
            l.round(|_| false);
        }
        assert!(l.tx.is_completed());
    }

    #[test]
    fn lost_initial_syn_stalls_the_whole_connection() {
        // With RFC 6824 join semantics a lost MP_CAPABLE SYN cannot be masked
        // by the other subflows: nothing moves until the retransmitted SYN
        // succeeds one initial-RTO later.
        let mut l = Loop::new(MptcpConfig::with_subflows(8), 10_000);
        let mut dropped = false;
        l.run(2, |p: &Packet| {
            if !dropped && p.kind == PacketKind::Syn {
                dropped = true;
                true
            } else {
                false
            }
        });
        assert!(!l.tx.is_completed());
        assert!(l.tx.subflows()[0].counters().rto_count >= 1);
        assert_eq!(
            l.tx.subflows()
                .iter()
                .map(|s| s.counters().data_bytes_sent)
                .sum::<u64>(),
            0,
            "no data can flow before the initial subflow establishes"
        );
    }

    #[test]
    fn compute_lia_falls_back_to_reno_when_unmeasured() {
        let subflows: Vec<Subflow> = Vec::new();
        let p = compute_lia(&subflows);
        assert_eq!(p.alpha, 1.0);
    }

    #[test]
    fn lia_alpha_for_identical_subflows_is_about_one_over_n() {
        // For n identical subflows, RFC 6356 gives alpha = 1/n of the total
        // increase spread over them: alpha = tot * (c/r^2) / (n*c/r)^2
        //   = tot * c / (n^2 c^2 / r^2 * r^2)   with tot = n*c  =>  1/n.
        let mut l = Loop::new(MptcpConfig::with_subflows(4), 400_000);
        l.run(200, |_| false);
        let p = compute_lia(l.tx.subflows());
        let cwnds: Vec<f64> = l.tx.subflows().iter().map(|s| s.cwnd()).collect();
        let mean = cwnds.iter().sum::<f64>() / cwnds.len() as f64;
        let spread = cwnds.iter().map(|c| (c - mean).abs()).fold(0.0, f64::max);
        if spread < mean * 0.2 {
            assert!(
                (p.alpha - 0.25).abs() < 0.15,
                "alpha {} should be near 1/n for similar subflows",
                p.alpha
            );
        }
    }

    #[test]
    fn lowest_rtt_scheduler_completes() {
        let cfg = MptcpConfig {
            scheduler: MptcpScheduler::LowestRtt,
            ..MptcpConfig::with_subflows(3)
        };
        let mut l = Loop::new(cfg, 100_000);
        l.run(2_000, |_| false);
        assert!(l.tx.is_completed());
    }

    #[test]
    fn uncoupled_variant_completes() {
        let cfg = MptcpConfig {
            coupled: false,
            ..MptcpConfig::with_subflows(4)
        };
        let mut l = Loop::new(cfg, 150_000);
        l.run(2_000, |_| false);
        assert!(l.tx.is_completed());
    }
}
