//! Pluggable congestion control: the [`CongestionController`] trait and the
//! controller zoo.
//!
//! [`subflow::Subflow`](crate::subflow::Subflow) owns phase and
//! loss-*detection* bookkeeping (handshake, dup-ACK counting, NewReno
//! partial-ACK retransmission, RTO timers, spurious-retransmit detection) and
//! drives a boxed [`CongestionController`] for every loss-*response* decision:
//! how the window grows on ACKs, how far it backs off on fast retransmit /
//! RTO / ECN, and how an RR-TCP/Eifel-style undo restores it when a
//! "loss" turns out to have been reordering.
//!
//! Shipped controllers:
//!
//! * [`Reno`] — the NewReno/RFC 5681 state machine extracted from the
//!   pre-refactor `Subflow`, byte-identical to it (including RFC 6356
//!   linked-increase coupling when the connection supplies
//!   [`LiaParams`]). The default.
//! * [`Cubic`] — RFC 8312 cubic window growth with a delay-based hybrid
//!   slow start (HyStart-style exit when round-trip delay inflates).
//! * [`Bbr`] — model-based control: a windowed max filter over per-ACK
//!   delivery-rate samples and the minimum RTT tracked by
//!   [`RttEstimator`] estimate the path's bottleneck bandwidth and
//!   propagation delay; startup/drain/probe-bandwidth states steer cwnd
//!   toward `gain × BDP` and export an explicit pacing rate.
//! * [`EcnResponder`] — DCTCP's α-EWMA over the marked-byte fraction,
//!   re-expressed as a layer *on top of* any controller: it accumulates
//!   marks per round trip and at each round end hands the controller a
//!   penalty via [`CongestionController::on_ecn`]. D²TCP is the same
//!   responder with a deadline-imminence penalty exponent.
//!
//! # Determinism rule
//!
//! Controllers are part of the simulator's deterministic core: all state must
//! be a pure function of the event sequence (ACK sizes, times, RTT estimator
//! state) — no wall-clock time, no RNG, no ambient configuration. Two runs
//! with the same seed must make bit-identical decisions.

#![deny(missing_docs)]

use crate::config::TransportConfig;
use crate::rtt::RttEstimator;
use crate::subflow::LiaParams;
use netsim::fluid::FluidCc;
use netsim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The congestion-control algorithm axis of an experiment: which
/// [`CongestionController`] every subflow of a connection runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CongestionControl {
    /// NewReno (RFC 5681/6582) — the paper's baseline and the default.
    #[default]
    Reno,
    /// CUBIC (RFC 8312) with hybrid slow start.
    Cubic,
    /// BBR-style model-based control with explicit pacing.
    Bbr,
}

impl CongestionControl {
    /// Stable lower-case label (CLI values, trace CSV column, run labels).
    pub fn name(&self) -> &'static str {
        match self {
            CongestionControl::Reno => "reno",
            CongestionControl::Cubic => "cubic",
            CongestionControl::Bbr => "bbr",
        }
    }

    /// Parse a CLI-style label; inverse of [`Self::name`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "reno" => Some(CongestionControl::Reno),
            "cubic" => Some(CongestionControl::Cubic),
            "bbr" => Some(CongestionControl::Bbr),
            _ => None,
        }
    }

    /// Instantiate the controller for one subflow.
    pub fn build(&self, cfg: &TransportConfig) -> Box<dyn CongestionController> {
        match self {
            CongestionControl::Reno => Box::new(Reno::new(cfg)),
            CongestionControl::Cubic => Box::new(Cubic::new(cfg)),
            CongestionControl::Bbr => Box::new(Bbr::new(cfg)),
        }
    }

    /// The fluid fast path's cap-dynamics approximation of this controller
    /// (see [`netsim::fluid`]): which growth/backoff rule a handed-off
    /// elephant's pacing cap follows between epochs.
    pub fn fluid(&self) -> FluidCc {
        match self {
            CongestionControl::Reno => FluidCc::Reno,
            CongestionControl::Cubic => FluidCc::Cubic,
            CongestionControl::Bbr => FluidCc::Bbr,
        }
    }
}

/// The congestion state machine behind one subflow.
///
/// The subflow calls exactly one hook per event, in event order; controllers
/// never see packets, only the distilled facts (bytes newly acked, bytes in
/// flight, the RTT estimator). `cwnd()` must never return less than one MSS
/// or a non-finite value, and `ssthresh()` must stay finite — the property
/// suite fuzzes every controller against random loss/ECN/RTO sequences.
pub trait CongestionController: std::fmt::Debug + Send {
    /// The controller's stable label ("reno" / "cubic" / "bbr"), used to tag
    /// flight-recorder samples.
    fn name(&self) -> &'static str;

    /// The handshake completed: open the initial window.
    fn on_established(&mut self, now: SimTime, rtt: &RttEstimator);

    /// Bytes were newly acknowledged outside recovery: grow the window.
    /// `lia` carries RFC 6356 coupling parameters when the connection links
    /// subflow increases; controllers without a coupled mode may ignore it.
    fn on_ack(
        &mut self,
        newly_acked: u64,
        now: SimTime,
        rtt: &RttEstimator,
        lia: Option<LiaParams>,
    );

    /// A duplicate ACK arrived while in fast recovery (window inflation
    /// while the hole is repaired; RFC 5681 inflates by one MSS).
    fn on_dup_ack(&mut self);

    /// Loss was detected by duplicate ACKs (fast-retransmit entry), with
    /// `flight` bytes outstanding. The controller must snapshot whatever it
    /// needs to honour a later [`Self::undo`].
    fn on_loss(&mut self, flight: u64);

    /// A full ACK ended fast recovery (window deflation).
    fn on_recovery_exit(&mut self);

    /// The ECN responder computed a round-end penalty in `[0, 1]` (DCTCP's
    /// `alpha^d`): apply the multiplicative decrease.
    fn on_ecn(&mut self, penalty: f64);

    /// A retransmission timeout fired with `flight` bytes outstanding.
    /// Timeouts are never undone.
    fn on_rto(&mut self, flight: u64);

    /// One round trip of data (`snd_una` crossed the previous `snd_nxt`)
    /// completed — the hook for per-round logic: CUBIC's hybrid-slow-start
    /// delay check, BBR's round counting and state transitions.
    fn on_round_trip(&mut self, now: SimTime, rtt: &RttEstimator);

    /// A fast retransmission was spurious (reordering, not loss): restore
    /// the state snapshotted at [`Self::on_loss`]. The subflow guarantees at
    /// most one undo per recovery episode and never after an RTO.
    fn undo(&mut self);

    /// Congestion window in bytes. Always ≥ 1 MSS and finite.
    fn cwnd(&self) -> f64;

    /// Slow-start threshold in bytes (or this controller's nearest analog).
    /// Always finite.
    fn ssthresh(&self) -> f64;

    /// Force the slow-start threshold — an instrumentation/test hook (e.g.
    /// to pin a subflow into congestion avoidance); not part of the normal
    /// event-driven flow.
    fn set_ssthresh(&mut self, ssthresh: f64);

    /// Whether the controller considers itself still in its startup regime
    /// (`cwnd < ssthresh` for loss-based controllers, the `Startup` state
    /// for BBR). The fluid fast path refuses handoffs during startup.
    fn in_slow_start(&self) -> bool;

    /// An explicit pacing rate in bits per second, if this controller paces
    /// (BBR). `None` means the caller should fall back to the classic
    /// `cwnd / srtt` estimate — returning `None` here is what keeps Reno's
    /// fluid handoffs byte-identical to the pre-refactor engine.
    fn pacing_rate_bps(&self) -> Option<u64>;
}

// --- Reno ----------------------------------------------------------------

/// NewReno (RFC 5681/6582) with optional RFC 6356 linked increase — the
/// congestion response extracted verbatim from the pre-refactor `Subflow`,
/// kept byte-identical so every golden snapshot pins it.
#[derive(Debug)]
pub struct Reno {
    mss: f64,
    initial_cwnd: f64,
    cwnd: f64,
    ssthresh: f64,
    prior_cwnd: f64,
    prior_ssthresh: f64,
}

impl Reno {
    /// Build from the transport configuration.
    pub fn new(cfg: &TransportConfig) -> Self {
        Reno {
            mss: cfg.mss as f64,
            initial_cwnd: cfg.initial_cwnd_bytes(),
            cwnd: 0.0,
            ssthresh: cfg.initial_ssthresh as f64,
            prior_cwnd: 0.0,
            prior_ssthresh: 0.0,
        }
    }
}

impl CongestionController for Reno {
    fn name(&self) -> &'static str {
        "reno"
    }

    fn on_established(&mut self, _now: SimTime, _rtt: &RttEstimator) {
        self.cwnd = self.initial_cwnd;
    }

    fn on_ack(
        &mut self,
        newly_acked: u64,
        _now: SimTime,
        _rtt: &RttEstimator,
        lia: Option<LiaParams>,
    ) {
        let mss = self.mss;
        if self.cwnd < self.ssthresh {
            // Slow start: one MSS per MSS acknowledged (ABC-limited to 2*MSS).
            self.cwnd += (newly_acked as f64).min(2.0 * mss);
        } else {
            match lia {
                None => {
                    // Reno congestion avoidance.
                    self.cwnd += mss * (newly_acked as f64) / self.cwnd;
                }
                Some(p) => {
                    // RFC 6356 linked increase.
                    let total = p.total_cwnd_bytes.max(mss);
                    let coupled = p.alpha * (newly_acked as f64) * mss / total;
                    let uncoupled = (newly_acked as f64) * mss / self.cwnd;
                    self.cwnd += coupled.min(uncoupled);
                }
            }
        }
        // Never let cwnd collapse below one segment.
        self.cwnd = self.cwnd.max(mss);
    }

    fn on_dup_ack(&mut self) {
        // Window inflation while the hole is being repaired.
        self.cwnd += self.mss;
    }

    fn on_loss(&mut self, flight: u64) {
        let flight = flight as f64;
        self.prior_cwnd = self.cwnd;
        self.prior_ssthresh = self.ssthresh;
        self.ssthresh = (flight / 2.0).max(2.0 * self.mss);
        self.cwnd = self.ssthresh + 3.0 * self.mss;
    }

    fn on_recovery_exit(&mut self) {
        self.cwnd = self.ssthresh.max(self.mss);
    }

    fn on_ecn(&mut self, penalty: f64) {
        // DCTCP-style reduction by penalty/2; the responder computes the
        // (possibly gamma-corrected) penalty.
        self.cwnd = (self.cwnd * (1.0 - penalty / 2.0)).max(self.mss);
        self.ssthresh = self.cwnd;
    }

    fn on_rto(&mut self, flight: u64) {
        let flight = flight as f64;
        self.ssthresh = (flight / 2.0).max(2.0 * self.mss);
        self.cwnd = self.mss;
    }

    fn on_round_trip(&mut self, _now: SimTime, _rtt: &RttEstimator) {}

    fn undo(&mut self) {
        self.cwnd = self.prior_cwnd.max(self.mss);
        self.ssthresh = self.prior_ssthresh.max(2.0 * self.mss);
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn set_ssthresh(&mut self, ssthresh: f64) {
        self.ssthresh = ssthresh;
    }

    fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    fn pacing_rate_bps(&self) -> Option<u64> {
        None
    }
}

// --- CUBIC ---------------------------------------------------------------

/// RFC 8312's scaling constant `C`, in segments per second cubed.
const CUBIC_C: f64 = 0.4;
/// RFC 8312's multiplicative-decrease factor `β`.
const CUBIC_BETA: f64 = 0.7;

/// CUBIC (RFC 8312) with a delay-based hybrid slow start.
///
/// Window growth in congestion avoidance follows `W(t) = C·(t−K)³ + W_max`
/// (windows in bytes, `C` scaled by the MSS), concave below the last loss
/// point and convex beyond it. Slow start is Reno's byte-counted doubling,
/// exited early when the smoothed RTT inflates by more than an eighth over
/// the round-trip floor (the HyStart delay signal) — on fabrics whose queues
/// mark delay long before they drop, this leaves slow start without a loss.
#[derive(Debug)]
pub struct Cubic {
    mss: f64,
    initial_cwnd: f64,
    cwnd: f64,
    ssthresh: f64,
    /// Window size (bytes) at the last multiplicative decrease.
    w_max: f64,
    /// Time at which the current congestion-avoidance epoch started.
    epoch_start: Option<SimTime>,
    /// `K` for the current epoch: seconds from epoch start until the cubic
    /// reaches `w_max` again.
    k: f64,
    /// cwnd at the start of the current epoch.
    w_epoch: f64,
    prior_cwnd: f64,
    prior_ssthresh: f64,
}

impl Cubic {
    /// Build from the transport configuration.
    pub fn new(cfg: &TransportConfig) -> Self {
        Cubic {
            mss: cfg.mss as f64,
            initial_cwnd: cfg.initial_cwnd_bytes(),
            cwnd: 0.0,
            ssthresh: cfg.initial_ssthresh as f64,
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
            w_epoch: 0.0,
            prior_cwnd: 0.0,
            prior_ssthresh: 0.0,
        }
    }

    /// `K = cbrt(W_max·(1−β) / (C·mss))`: seconds for the cubic to climb
    /// from the post-decrease window back to `W_max` (RFC 8312 §4.1, windows
    /// converted from segments to bytes).
    fn k_for(&self, w_max: f64, w_start: f64) -> f64 {
        ((w_max - w_start).max(0.0) / (CUBIC_C * self.mss)).cbrt()
    }

    /// The cubic window (bytes) `t` seconds into the current epoch.
    fn w_cubic(&self, t: f64) -> f64 {
        CUBIC_C * self.mss * (t - self.k).powi(3) + self.w_max
    }

    fn begin_epoch(&mut self, now: SimTime) {
        self.epoch_start = Some(now);
        if self.w_max < self.cwnd {
            // We grew past the old saturation point without a loss: restart
            // the cubic from here (RFC 8312's "w_max < cwnd" reset).
            self.w_max = self.cwnd;
        }
        self.w_epoch = self.cwnd;
        self.k = self.k_for(self.w_max, self.cwnd);
    }

    fn backoff(&mut self) {
        self.w_max = self.cwnd;
        self.ssthresh = (self.cwnd * CUBIC_BETA).max(2.0 * self.mss);
        self.cwnd = self.ssthresh;
        self.epoch_start = None;
    }
}

impl CongestionController for Cubic {
    fn name(&self) -> &'static str {
        "cubic"
    }

    fn on_established(&mut self, _now: SimTime, _rtt: &RttEstimator) {
        self.cwnd = self.initial_cwnd;
    }

    fn on_ack(
        &mut self,
        newly_acked: u64,
        now: SimTime,
        rtt: &RttEstimator,
        _lia: Option<LiaParams>,
    ) {
        if self.cwnd < self.ssthresh {
            // Slow start, byte-counted like Reno's.
            self.cwnd += (newly_acked as f64).min(2.0 * self.mss);
            self.cwnd = self.cwnd.max(self.mss);
            return;
        }
        if self.epoch_start.is_none() {
            self.begin_epoch(now);
        }
        let start = self.epoch_start.expect("epoch just began");
        let srtt = rtt
            .srtt()
            .unwrap_or(SimDuration::from_micros(100))
            .as_secs_f64();
        // Target the cubic one RTT ahead; approach it at (target−cwnd)/cwnd
        // per ACKed segment, the standard per-ACK discretisation.
        let t = (now - start).as_secs_f64() + srtt;
        let target = self.w_cubic(t).min(self.cwnd * 1.5);
        let acked_segments = (newly_acked as f64 / self.mss).max(1.0);
        if target > self.cwnd {
            self.cwnd += (target - self.cwnd) / self.cwnd * self.mss * acked_segments;
        } else {
            // Plateau region: creep forward so the flow is never stalled
            // (RFC 8312 grows by at least 1 segment per 100 RTTs; one byte
            // per segment-ACK is the same order at these window sizes).
            self.cwnd += self.mss * acked_segments / self.cwnd.max(self.mss);
        }
        self.cwnd = self.cwnd.max(self.mss);
    }

    fn on_dup_ack(&mut self) {
        self.cwnd += self.mss;
    }

    fn on_loss(&mut self, _flight: u64) {
        self.prior_cwnd = self.cwnd;
        self.prior_ssthresh = self.ssthresh;
        self.backoff();
    }

    fn on_recovery_exit(&mut self) {
        self.cwnd = self.ssthresh.max(self.mss);
    }

    fn on_ecn(&mut self, penalty: f64) {
        self.w_max = self.cwnd;
        self.cwnd = (self.cwnd * (1.0 - penalty / 2.0)).max(self.mss);
        self.ssthresh = self.cwnd;
        self.epoch_start = None;
    }

    fn on_rto(&mut self, _flight: u64) {
        self.w_max = self.cwnd;
        self.ssthresh = (self.cwnd * CUBIC_BETA).max(2.0 * self.mss);
        self.cwnd = self.mss;
        self.epoch_start = None;
    }

    fn on_round_trip(&mut self, _now: SimTime, rtt: &RttEstimator) {
        // Hybrid slow start, delay signal: once the smoothed RTT exceeds the
        // propagation floor by an eighth (clamped to [4 µs, 16 ms]), queues
        // are building — exit slow start before the overshoot loss.
        if self.cwnd < self.ssthresh {
            if let (Some(srtt), Some(base)) = (rtt.srtt(), rtt.min_rtt()) {
                let eta = (base / 8)
                    .max(SimDuration::from_micros(4))
                    .min(SimDuration::from_millis(16));
                if srtt > base + eta {
                    self.ssthresh = self.cwnd;
                }
            }
        }
    }

    fn undo(&mut self) {
        self.cwnd = self.prior_cwnd.max(self.mss);
        self.ssthresh = self.prior_ssthresh.max(2.0 * self.mss);
        self.w_max = self.w_max.max(self.cwnd);
        self.epoch_start = None;
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn set_ssthresh(&mut self, ssthresh: f64) {
        self.ssthresh = ssthresh;
    }

    fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    fn pacing_rate_bps(&self) -> Option<u64> {
        None
    }
}

// --- BBR -----------------------------------------------------------------

/// A max filter over the last `N` rounds: each slot holds the best sample of
/// one round window, and the estimate is the best across the window. The
/// three-slot layout (best, second-best from a later round, third-best from
/// a later round still) is the classic windowed-minmax structure: when the
/// best sample ages out, the runners-up are already in place.
#[derive(Debug, Clone, Copy)]
pub struct WindowedMaxFilter {
    /// (sample value, round it was taken in), best first.
    slots: [(f64, u64); 3],
    /// Window length in rounds.
    window: u64,
}

impl WindowedMaxFilter {
    /// An empty filter over a `window`-round horizon.
    pub fn new(window: u64) -> Self {
        WindowedMaxFilter {
            slots: [(0.0, 0); 3],
            window,
        }
    }

    /// Incorporate one sample taken during `round` (the windowed running-max
    /// update of Linux's `lib/minmax.c`, with rounds as the clock).
    pub fn update(&mut self, sample: f64, round: u64) {
        let s = &mut self.slots;
        // A new overall max, or nothing left in the window: restart.
        if sample >= s[0].0 || round.saturating_sub(s[2].1) > self.window {
            *s = [(sample, round); 3];
            return;
        }
        if sample >= s[1].0 {
            s[1] = (sample, round);
            s[2] = (sample, round);
        } else if sample >= s[2].0 {
            s[2] = (sample, round);
        }
        let dt = round.saturating_sub(s[0].1);
        if dt > self.window {
            // The best aged out: promote the runners-up.
            s[0] = s[1];
            s[1] = s[2];
            s[2] = (sample, round);
            if round.saturating_sub(s[0].1) > self.window {
                s[0] = s[1];
                s[1] = s[2];
            }
        } else if s[1].1 == s[0].1 && dt > self.window / 4 {
            // A quarter of the window passed with no distinct runner-up:
            // take this sample so the estimate can decay when the best ages.
            s[1] = (sample, round);
            s[2] = (sample, round);
        } else if s[2].1 == s[1].1 && dt > self.window / 2 {
            s[2] = (sample, round);
        }
    }

    /// The current windowed maximum (0 before any sample).
    pub fn get(&self) -> f64 {
        self.slots[0].0
    }
}

/// BBR's startup/drain/probe states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BbrState {
    /// Exponential search for the bottleneck bandwidth (2.89× pacing gain).
    Startup,
    /// One round at gain < 1 to drain the queue startup built.
    Drain,
    /// Steady state: an 8-phase gain cycle probing for more bandwidth.
    ProbeBw(usize),
}

/// BBR's startup pacing gain, `2/ln(2)`.
const BBR_STARTUP_GAIN: f64 = 2.885;
/// The probe-bandwidth pacing-gain cycle (RFC draft-cardwell-iccrg-bbr).
const BBR_PROBE_GAINS: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// Bandwidth filter window, in round trips.
const BBR_BW_WINDOW_ROUNDS: u64 = 10;

/// BBR-style model-based congestion control.
///
/// Instead of reacting to loss, BBR maintains an explicit model of the path
/// — bottleneck bandwidth from a [`WindowedMaxFilter`] over per-ACK delivery
/// rate samples (`newly_acked / latest_rtt`), propagation delay from the
/// [`RttEstimator`]'s min-RTT tracking — and keeps
/// `cwnd = cwnd_gain × BDP` while pacing at `pacing_gain × BtlBw`. Loss and
/// ECN apply only a conservative 0.7 backoff so the model, not the loss
/// signal, dominates steady state.
#[derive(Debug)]
pub struct Bbr {
    mss: f64,
    initial_cwnd: f64,
    cwnd: f64,
    ssthresh: f64,
    state: BbrState,
    /// Bottleneck-bandwidth estimate, bits per second, max-filtered.
    bw_filter: WindowedMaxFilter,
    /// Completed round trips (drives filter aging and the gain cycle).
    round: u64,
    /// Best bandwidth seen when the startup plateau check last advanced.
    full_bw_bps: f64,
    /// Consecutive rounds without 25% bandwidth growth.
    full_bw_rounds: u32,
    /// Rounds spent in Drain.
    drain_rounds: u32,
    prior_cwnd: f64,
    prior_ssthresh: f64,
}

impl Bbr {
    /// Build from the transport configuration.
    pub fn new(cfg: &TransportConfig) -> Self {
        Bbr {
            mss: cfg.mss as f64,
            initial_cwnd: cfg.initial_cwnd_bytes(),
            cwnd: 0.0,
            ssthresh: cfg.initial_ssthresh as f64,
            state: BbrState::Startup,
            bw_filter: WindowedMaxFilter::new(BBR_BW_WINDOW_ROUNDS),
            round: 0,
            full_bw_bps: 0.0,
            full_bw_rounds: 0,
            drain_rounds: 0,
            prior_cwnd: 0.0,
            prior_ssthresh: 0.0,
        }
    }

    /// The current bottleneck-bandwidth estimate in bits per second.
    pub fn btl_bw_bps(&self) -> f64 {
        self.bw_filter.get()
    }

    fn pacing_gain(&self) -> f64 {
        match self.state {
            BbrState::Startup => BBR_STARTUP_GAIN,
            BbrState::Drain => 1.0 / BBR_STARTUP_GAIN,
            BbrState::ProbeBw(phase) => BBR_PROBE_GAINS[phase % BBR_PROBE_GAINS.len()],
        }
    }

    fn cwnd_gain(&self) -> f64 {
        match self.state {
            BbrState::Startup | BbrState::Drain => 2.0,
            BbrState::ProbeBw(_) => 2.0,
        }
    }

    /// Bandwidth-delay product in bytes, from the filtered bandwidth and the
    /// min-RTT propagation estimate. Zero until both exist.
    fn bdp_bytes(&self, rtt: &RttEstimator) -> f64 {
        let bw = self.bw_filter.get();
        match rtt.min_rtt() {
            Some(min) if bw > 0.0 => bw / 8.0 * min.as_secs_f64(),
            _ => 0.0,
        }
    }
}

impl CongestionController for Bbr {
    fn name(&self) -> &'static str {
        "bbr"
    }

    fn on_established(&mut self, _now: SimTime, _rtt: &RttEstimator) {
        self.cwnd = self.initial_cwnd;
    }

    fn on_ack(
        &mut self,
        newly_acked: u64,
        _now: SimTime,
        rtt: &RttEstimator,
        _lia: Option<LiaParams>,
    ) {
        // Delivery-rate sample: bytes this ACK covered over the RTT it took.
        if let Some(sample_rtt) = rtt.latest_rtt() {
            let secs = sample_rtt.as_secs_f64().max(1e-9);
            let bw_bps = newly_acked as f64 * 8.0 / secs;
            self.bw_filter.update(bw_bps, self.round);
        }
        let bdp = self.bdp_bytes(rtt);
        if bdp > 0.0 {
            let target = (self.cwnd_gain() * bdp).max(4.0 * self.mss);
            if self.cwnd < target {
                // Grow at most one-for-one with delivered data toward the
                // target (never a step jump past it).
                self.cwnd = (self.cwnd + newly_acked as f64).min(target);
            } else {
                // Model says the window is too big (e.g. after a gain-cycle
                // phase ends or min-RTT drops): deflate gently.
                self.cwnd =
                    (self.cwnd - (self.cwnd - target).min(newly_acked as f64)).max(4.0 * self.mss);
            }
        } else {
            // No model yet: slow-start-like growth to feed the filter.
            self.cwnd += (newly_acked as f64).min(2.0 * self.mss);
        }
        self.cwnd = self.cwnd.max(self.mss);
    }

    fn on_dup_ack(&mut self) {
        // The model, not dup-ACK inflation, sizes the window.
    }

    fn on_loss(&mut self, _flight: u64) {
        self.prior_cwnd = self.cwnd;
        self.prior_ssthresh = self.ssthresh;
        // Conservative backoff: BBR does not treat loss as a primary signal,
        // but drop-tail fabrics need the queue released.
        self.ssthresh = (self.cwnd * 0.7).max(2.0 * self.mss);
        self.cwnd = self.ssthresh;
    }

    fn on_recovery_exit(&mut self) {
        // Let the model re-inflate via on_ack; nothing to deflate.
    }

    fn on_ecn(&mut self, penalty: f64) {
        self.cwnd = (self.cwnd * (1.0 - penalty / 2.0)).max(self.mss);
        self.ssthresh = self.cwnd.max(2.0 * self.mss);
    }

    fn on_rto(&mut self, _flight: u64) {
        self.prior_cwnd = self.cwnd;
        self.prior_ssthresh = self.ssthresh;
        self.ssthresh = (self.cwnd * 0.7).max(2.0 * self.mss);
        self.cwnd = self.mss;
    }

    fn on_round_trip(&mut self, _now: SimTime, _rtt: &RttEstimator) {
        self.round += 1;
        match self.state {
            BbrState::Startup => {
                // Plateau detection: three rounds without 25% growth in the
                // filtered bandwidth means the pipe is full.
                let bw = self.bw_filter.get();
                if bw > self.full_bw_bps * 1.25 {
                    self.full_bw_bps = bw;
                    self.full_bw_rounds = 0;
                } else if bw > 0.0 {
                    self.full_bw_rounds += 1;
                    if self.full_bw_rounds >= 3 {
                        self.state = BbrState::Drain;
                        self.drain_rounds = 0;
                    }
                }
            }
            BbrState::Drain => {
                // One full round at the drain gain empties the startup queue
                // (the simulator's ACK clocking makes inflight ≈ cwnd, so a
                // round at gain < 1 is the deterministic drain criterion).
                self.drain_rounds += 1;
                if self.drain_rounds >= 1 {
                    self.state = BbrState::ProbeBw(0);
                }
            }
            BbrState::ProbeBw(phase) => {
                self.state = BbrState::ProbeBw((phase + 1) % BBR_PROBE_GAINS.len());
            }
        }
    }

    fn undo(&mut self) {
        self.cwnd = self.prior_cwnd.max(self.mss);
        self.ssthresh = self.prior_ssthresh.max(2.0 * self.mss);
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn set_ssthresh(&mut self, ssthresh: f64) {
        self.ssthresh = ssthresh;
    }

    fn in_slow_start(&self) -> bool {
        self.state == BbrState::Startup
    }

    fn pacing_rate_bps(&self) -> Option<u64> {
        let bw = self.bw_filter.get();
        if bw > 0.0 {
            Some((bw * self.pacing_gain()) as u64)
        } else {
            None
        }
    }
}

// --- DCTCP / D²TCP as a responder layer ----------------------------------

/// DCTCP's ECN response, layered on any [`CongestionController`].
///
/// Accumulates marked/total acknowledged bytes per round trip; at each round
/// end it updates the running marked-fraction estimate
/// `α ← (1−g)·α + g·frac` and, if any byte was marked, applies the penalty
/// `α^d` through [`CongestionController::on_ecn`]. `d = 1` is plain DCTCP;
/// D²TCP's deadline-aware gamma correction sets `d = Tc/D` per ACK.
#[derive(Debug, Clone, Copy)]
pub struct EcnResponder {
    g: f64,
    alpha: f64,
    penalty_exponent: f64,
    marked_bytes: u64,
    total_bytes: u64,
}

impl EcnResponder {
    /// A responder with EWMA gain `g` (DCTCP's default is 1/16) and a unit
    /// penalty exponent (plain DCTCP).
    pub fn new(g: f64) -> Self {
        EcnResponder {
            g,
            alpha: 0.0,
            penalty_exponent: 1.0,
            marked_bytes: 0,
            total_bytes: 0,
        }
    }

    /// The running marked-fraction estimate α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The current penalty exponent `d`.
    pub fn penalty_exponent(&self) -> f64 {
        self.penalty_exponent
    }

    /// Set D²TCP's deadline-imminence exponent `d` (clamped to a sane range;
    /// 1.0 reproduces plain DCTCP). Values below 1 make the flow hold its
    /// window near a deadline; values above 1 make it yield.
    pub fn set_penalty_exponent(&mut self, d: f64) {
        self.penalty_exponent = d.clamp(0.25, 4.0);
    }

    /// Account one advancing ACK's bytes (and whether they were marked).
    pub fn on_ack(&mut self, newly_acked: u64, marked: bool) {
        self.total_bytes += newly_acked;
        if marked {
            self.marked_bytes += newly_acked;
        }
    }

    /// A round trip ended: fold the round's marked fraction into α and, if
    /// anything was marked, apply the (gamma-corrected) penalty to `cc`.
    pub fn on_round_end(&mut self, cc: &mut dyn CongestionController) {
        if self.total_bytes > 0 {
            let frac = self.marked_bytes as f64 / self.total_bytes as f64;
            self.alpha = (1.0 - self.g) * self.alpha + self.g * frac;
            if self.marked_bytes > 0 {
                // DCTCP reduces by alpha/2; D²TCP gamma-corrects the
                // penalty with the deadline-imminence exponent.
                let penalty = self.alpha.powf(self.penalty_exponent);
                cc.on_ecn(penalty);
            }
        }
        self.total_bytes = 0;
        self.marked_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: f64 = 1400.0;

    fn cfg() -> TransportConfig {
        TransportConfig::default()
    }

    fn rtt_with(sample_us: u64) -> RttEstimator {
        let mut r = RttEstimator::new(
            SimDuration::from_millis(200),
            SimDuration::from_secs(1),
            SimDuration::from_secs(60),
        );
        r.on_sample(SimDuration::from_micros(sample_us));
        r
    }

    #[test]
    fn axis_labels_round_trip() {
        for cc in [
            CongestionControl::Reno,
            CongestionControl::Cubic,
            CongestionControl::Bbr,
        ] {
            assert_eq!(CongestionControl::parse(cc.name()), Some(cc));
            assert_eq!(cc.build(&cfg()).name(), cc.name());
        }
        assert_eq!(CongestionControl::parse("vegas"), None);
        assert_eq!(CongestionControl::default(), CongestionControl::Reno);
    }

    #[test]
    fn reno_matches_the_legacy_arithmetic() {
        let mut reno = Reno::new(&cfg());
        let rtt = rtt_with(100);
        reno.on_established(SimTime::ZERO, &rtt);
        assert_eq!(reno.cwnd(), 10.0 * MSS);
        // Slow start: ABC-limited doubling.
        reno.on_ack(3 * 1400, SimTime::ZERO, &rtt, None);
        assert_eq!(reno.cwnd(), 10.0 * MSS + 2.0 * MSS);
        // Fast retransmit from 20 segments in flight.
        let before = reno.cwnd();
        reno.on_loss(20 * 1400);
        assert_eq!(reno.ssthresh(), 10.0 * MSS);
        assert_eq!(reno.cwnd(), 13.0 * MSS);
        reno.undo();
        assert_eq!(reno.cwnd(), before);
        // RTO collapses to one segment.
        reno.on_rto(20 * 1400);
        assert_eq!(reno.cwnd(), MSS);
        assert_eq!(reno.ssthresh(), 10.0 * MSS);
    }

    #[test]
    fn cubic_epoch_math_reaches_w_max_at_k() {
        let mut cubic = Cubic::new(&cfg());
        let rtt = rtt_with(100);
        cubic.on_established(SimTime::ZERO, &rtt);
        cubic.set_ssthresh(cubic.cwnd()); // force congestion avoidance
        cubic.on_loss(0);
        let w_max = cubic.w_max;
        assert!(w_max > 0.0);
        // Start an epoch and check the analytic invariants of W(t).
        cubic.begin_epoch(SimTime::from_millis(10));
        let k = cubic.k;
        assert!(k > 0.0, "K must be positive after a backoff");
        // W(K) = w_max exactly; W is monotone around K.
        assert!((cubic.w_cubic(k) - w_max).abs() < 1e-6);
        assert!(cubic.w_cubic(0.0) < w_max);
        assert!(cubic.w_cubic(2.0 * k) > w_max);
        // K matches the closed form cbrt(w_max(1-beta)/(C*mss)).
        let expected_k = ((w_max - cubic.cwnd) / (CUBIC_C * MSS)).cbrt();
        assert!((k - expected_k).abs() < 1e-9);
    }

    #[test]
    fn cubic_grows_toward_target_and_respects_floor() {
        let mut cubic = Cubic::new(&cfg());
        let rtt = rtt_with(100);
        cubic.on_established(SimTime::ZERO, &rtt);
        cubic.set_ssthresh(cubic.cwnd() / 2.0);
        let before = cubic.cwnd();
        cubic.on_ack(1400, SimTime::from_millis(1), &rtt, None);
        assert!(cubic.cwnd() > before, "CA must make progress");
        cubic.on_rto(0);
        assert_eq!(cubic.cwnd(), MSS);
        assert!(cubic.ssthresh() >= 2.0 * MSS);
    }

    #[test]
    fn cubic_hystart_exits_on_delay_inflation() {
        let mut cubic = Cubic::new(&cfg());
        let mut rtt = rtt_with(100);
        cubic.on_established(SimTime::ZERO, &rtt);
        assert!(cubic.in_slow_start());
        // RTT inflates well past base + base/8: slow start must end.
        for _ in 0..20 {
            rtt.on_sample(SimDuration::from_micros(400));
        }
        cubic.on_round_trip(SimTime::from_millis(1), &rtt);
        assert!(!cubic.in_slow_start(), "HyStart must exit on delay");
        assert_eq!(cubic.ssthresh(), cubic.cwnd());
    }

    #[test]
    fn windowed_max_filter_tracks_and_ages() {
        let mut f = WindowedMaxFilter::new(4);
        f.update(100.0, 1);
        assert_eq!(f.get(), 100.0);
        f.update(50.0, 2);
        assert_eq!(f.get(), 100.0, "smaller sample must not displace the max");
        f.update(200.0, 3);
        assert_eq!(f.get(), 200.0, "larger sample replaces immediately");
        // Round 3's 200 stays the max until round 8 (window 4): feed smaller
        // samples and watch the old max age out.
        f.update(80.0, 6);
        assert_eq!(f.get(), 200.0);
        f.update(70.0, 9);
        assert_eq!(
            f.get(),
            80.0,
            "expired max must yield to the best runner-up"
        );
        f.update(60.0, 20);
        assert_eq!(f.get(), 60.0, "everything older expired");
    }

    #[test]
    fn bbr_walks_startup_drain_probe() {
        let mut bbr = Bbr::new(&cfg());
        let rtt = rtt_with(100);
        bbr.on_established(SimTime::ZERO, &rtt);
        assert!(bbr.in_slow_start());
        // A steady bandwidth plateau: startup must end within a few rounds.
        for round in 0..8 {
            bbr.on_ack(14_000, SimTime::from_millis(round), &rtt, None);
            bbr.on_round_trip(SimTime::from_millis(round), &rtt);
        }
        assert!(!bbr.in_slow_start(), "plateau must end startup");
        assert!(matches!(bbr.state, BbrState::ProbeBw(_)));
        // The model exports a pacing rate once the filter has samples.
        let pace = bbr.pacing_rate_bps().expect("pacing rate after samples");
        assert!(pace > 0);
        assert!(bbr.btl_bw_bps() > 0.0);
    }

    #[test]
    fn bbr_cwnd_tracks_the_bdp_target() {
        let mut bbr = Bbr::new(&cfg());
        let rtt = rtt_with(100);
        bbr.on_established(SimTime::ZERO, &rtt);
        for i in 0..50 {
            bbr.on_ack(14_000, SimTime::from_micros(100 * i), &rtt, None);
        }
        let bdp = bbr.bdp_bytes(&rtt);
        assert!(bdp > 0.0);
        assert!(
            bbr.cwnd() <= (2.0 * bdp).max(4.0 * MSS) + 1e-6,
            "cwnd {} exceeds gain*BDP {}",
            bbr.cwnd(),
            2.0 * bdp
        );
    }

    #[test]
    fn ecn_responder_reproduces_dctcp_alpha() {
        let mut r = EcnResponder::new(1.0 / 16.0);
        let mut cc = Reno::new(&cfg());
        let rtt = rtt_with(100);
        cc.on_established(SimTime::ZERO, &rtt);
        // A fully-marked round: alpha moves by g, window shrinks.
        r.on_ack(14_000, true);
        let before = cc.cwnd();
        r.on_round_end(&mut cc);
        assert!((r.alpha() - 1.0 / 16.0).abs() < 1e-12);
        assert!(cc.cwnd() < before);
        assert_eq!(cc.ssthresh(), cc.cwnd());
        // An unmarked round: alpha decays, no reduction.
        r.on_ack(14_000, false);
        let before = cc.cwnd();
        r.on_round_end(&mut cc);
        assert!(r.alpha() < 1.0 / 16.0);
        assert_eq!(cc.cwnd(), before);
        // Penalty exponent clamps.
        r.set_penalty_exponent(100.0);
        assert_eq!(r.penalty_exponent(), 4.0);
        r.set_penalty_exponent(0.0);
        assert_eq!(r.penalty_exponent(), 0.25);
    }

    #[test]
    fn fluid_mapping_is_total() {
        assert_eq!(CongestionControl::Reno.fluid(), FluidCc::Reno);
        assert_eq!(CongestionControl::Cubic.fluid(), FluidCc::Cubic);
        assert_eq!(CongestionControl::Bbr.fluid(), FluidCc::Bbr);
    }
}
