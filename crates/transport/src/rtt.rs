//! Round-trip-time estimation and retransmission-timeout computation
//! (RFC 6298 style: SRTT / RTTVAR with a configurable minimum and exponential
//! backoff).

use netsim::SimDuration;

/// RTT estimator for one subflow.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    min_rtt: Option<SimDuration>,
    latest_rtt: Option<SimDuration>,
    rttvar: SimDuration,
    min_rto: SimDuration,
    initial_rto: SimDuration,
    max_rto: SimDuration,
    backoff: u32,
}

impl RttEstimator {
    /// Create an estimator.
    pub fn new(min_rto: SimDuration, initial_rto: SimDuration, max_rto: SimDuration) -> Self {
        RttEstimator {
            srtt: None,
            min_rtt: None,
            latest_rtt: None,
            rttvar: SimDuration::ZERO,
            min_rto,
            initial_rto,
            max_rto,
            backoff: 0,
        }
    }

    /// Incorporate a new RTT sample (RFC 6298 §2).
    pub fn on_sample(&mut self, sample: SimDuration) {
        self.latest_rtt = Some(sample);
        self.min_rtt = Some(match self.min_rtt {
            None => sample,
            Some(m) => m.min(sample),
        });
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2;
            }
            Some(srtt) => {
                let delta = if srtt > sample {
                    srtt - sample
                } else {
                    sample - srtt
                };
                // RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - sample|
                self.rttvar = self.rttvar.mul_f64(0.75) + delta.mul_f64(0.25);
                // SRTT = 7/8 SRTT + 1/8 sample
                self.srtt = Some(srtt.mul_f64(0.875) + sample.mul_f64(0.125));
            }
        }
        // A successful sample ends any backoff (Karn).
        self.backoff = 0;
    }

    /// The smoothed RTT, if at least one sample has been taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// The minimum RTT ever sampled — the propagation-delay estimate, free
    /// of the queueing delay that inflates [`Self::srtt`] under load.
    pub fn min_rtt(&self) -> Option<SimDuration> {
        self.min_rtt
    }

    /// The most recent raw RTT sample, unsmoothed. BBR-style controllers use
    /// this as the denominator of per-ACK delivery-rate samples.
    pub fn latest_rtt(&self) -> Option<SimDuration> {
        self.latest_rtt
    }

    /// The current retransmission timeout, including backoff.
    pub fn rto(&self) -> SimDuration {
        let base = match self.srtt {
            None => self.initial_rto,
            Some(srtt) => {
                let candidate = srtt + self.rttvar.mul_f64(4.0);
                candidate.max(self.min_rto)
            }
        };
        let backed_off = base.saturating_mul(1u64 << self.backoff.min(16));
        backed_off.min(self.max_rto)
    }

    /// Double the RTO (called when a retransmission timeout fires).
    pub fn backoff(&mut self) {
        self.backoff = (self.backoff + 1).min(16);
    }

    /// Current backoff exponent.
    pub fn backoff_count(&self) -> u32 {
        self.backoff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RttEstimator {
        RttEstimator::new(
            SimDuration::from_millis(200),
            SimDuration::from_secs(1),
            SimDuration::from_secs(60),
        )
    }

    #[test]
    fn initial_rto_before_samples() {
        let e = est();
        assert_eq!(e.rto(), SimDuration::from_secs(1));
        assert!(e.srtt().is_none());
    }

    #[test]
    fn first_sample_initialises_srtt() {
        let mut e = est();
        e.on_sample(SimDuration::from_micros(100));
        assert_eq!(e.srtt(), Some(SimDuration::from_micros(100)));
        // RTO = SRTT + 4*RTTVAR = 100 + 4*50 = 300 us, clamped to min 200 ms.
        assert_eq!(e.rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn smooths_towards_persistent_change() {
        let mut e = est();
        e.on_sample(SimDuration::from_millis(1));
        for _ in 0..100 {
            e.on_sample(SimDuration::from_millis(10));
        }
        let srtt = e.srtt().unwrap();
        assert!(srtt > SimDuration::from_millis(9));
        assert!(srtt <= SimDuration::from_millis(10));
    }

    #[test]
    fn rto_exceeds_min_for_large_rtts() {
        let mut e = est();
        for _ in 0..10 {
            e.on_sample(SimDuration::from_millis(300));
        }
        assert!(e.rto() >= SimDuration::from_millis(300));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut e = est();
        assert_eq!(e.rto(), SimDuration::from_secs(1));
        e.backoff();
        assert_eq!(e.rto(), SimDuration::from_secs(2));
        e.backoff();
        assert_eq!(e.rto(), SimDuration::from_secs(4));
        for _ in 0..20 {
            e.backoff();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(60), "capped at max");
        // A fresh sample resets backoff.
        e.on_sample(SimDuration::from_millis(1));
        assert_eq!(e.backoff_count(), 0);
        assert_eq!(e.rto(), SimDuration::from_millis(200));
    }
}
