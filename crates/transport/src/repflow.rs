//! RepFlow / RepSYN: latency-by-replication transports.
//!
//! RepFlow (Xu & Li, arXiv:1307.7451) attacks short-flow tail latency from
//! the opposite direction to MMPTCP: instead of spraying one connection's
//! packets over every path, it opens **two independent single-path
//! connections** for each mouse (flow below a size threshold) and lets them
//! race. The two connections carry identical application bytes over
//! (with high probability) ECMP-disjoint paths — different source ports hash
//! to different next-hop choices at every switch — and the flow completes as
//! soon as **either** copy is fully delivered, so one congested or lossy path
//! no longer dictates the tail. Elephants are not replicated: doubling their
//! bytes would be ruinous, and their completion time is bandwidth- not
//! latency-bound anyway.
//!
//! The [`RepFlowConfig::syn_only`] variant models RepSYN, which replicates
//! only the handshake and the first window: both SYNs race, the first
//! connection to establish carries the whole flow, and the other replica is
//! capped at one initial window. This keeps most of the tail protection
//! (lost SYNs cost a full `initial_rto` — the 1 s band of Figure 1(b) — and
//! first-window losses cost an RTO because there are too few duplicate ACKs
//! for fast retransmit) at a fraction of the redundant bytes.
//!
//! Both connections are ordinary [`Subflow`]s sharing one [`netsim::FlowId`],
//! so the unmodified [`crate::receiver::TransportReceiver`] reassembles them:
//! each replica has its own subflow sequence space, while the shared
//! connection-level data sequence numbers make the second copy a no-op at
//! reassembly. The sender's completion condition — the connection-level
//! cumulative data ACK covering the flow — is therefore exactly "first full
//! delivery wins". The bandwidth price (replica copies plus retransmissions)
//! is reported through [`netsim::Signal::RedundantBytes`].
//!
//! Because replicas are plain subflows, the flight recorder sees the race
//! for free: with tracing enabled each replica emits its own
//! [`netsim::Signal::CwndSample`] series (subflow indices 0 and 1 under the
//! shared flow id), and the losing replica's series goes quiet at the abort
//! instant — `scenarios trace battle-matrix --flow <id>` plots it.

use crate::config::TransportConfig;
use crate::subflow::Subflow;
use netsim::{Addr, Agent, AgentCtx, AgentEvent, FlowId, PacketKind, Signal};
use serde::{Deserialize, Serialize};

/// Source-port stride between replica connections. A large odd offset keeps
/// the replicas' 5-tuples far apart in the hash space so they land on
/// distinct ECMP members with high probability at every switch.
const REPLICA_PORT_STRIDE: u16 = 8191;

/// RepFlow configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepFlowConfig {
    /// Per-connection TCP parameters (each replica is a full TCP sender).
    pub transport: TransportConfig,
    /// Flows of at most this many bytes (mice) are replicated; larger flows
    /// and unbounded background flows use a single connection. The RepFlow
    /// paper draws the mice/elephant boundary at 100 KB, matching the
    /// report layer's mice classification (size ≤ threshold).
    pub replication_threshold: u64,
    /// RepSYN mode: replicate only the handshake and the first window. The
    /// first replica to establish carries the whole flow; the other stops
    /// after one initial congestion window of data.
    pub syn_only: bool,
}

impl Default for RepFlowConfig {
    fn default() -> Self {
        RepFlowConfig {
            transport: TransportConfig::default(),
            replication_threshold: 100_000,
            syn_only: false,
        }
    }
}

impl RepFlowConfig {
    /// The RepSYN variant of the default configuration.
    pub fn repsyn() -> Self {
        RepFlowConfig {
            syn_only: true,
            ..RepFlowConfig::default()
        }
    }
}

/// One replica connection: an independent single-path TCP sender plus its
/// private cursor into the shared application byte stream.
#[derive(Debug)]
struct Replica {
    subflow: Subflow,
    /// Next connection-level byte this replica will map.
    cursor: u64,
    /// Exclusive upper bound of the bytes this replica may carry (the full
    /// flow, or one initial window for a RepSYN secondary).
    limit: u64,
}

/// A RepFlow sender: mice race two replica connections, elephants and
/// unbounded flows degrade to a single plain-TCP connection.
#[derive(Debug)]
pub struct RepFlowSender {
    cfg: RepFlowConfig,
    flow: FlowId,
    total: Option<u64>,
    replicas: Vec<Replica>,
    /// Index of the first replica to establish (RepSYN's winner).
    primary: Option<usize>,
    data_acked: u64,
    completed: bool,
}

impl RepFlowSender {
    /// Create a sender. `path_count` is the number of ECMP-disjoint paths
    /// between the endpoints (from the topology's path model): replication
    /// is pointless on a single path — both copies would queue behind each
    /// other on the same bottleneck — so path-diversity-starved pairs fall
    /// back to one connection and the transport degenerates to plain TCP.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: RepFlowConfig,
        flow: FlowId,
        src: Addr,
        dst: Addr,
        base_src_port: u16,
        dst_port: u16,
        total: Option<u64>,
        path_count: usize,
    ) -> Self {
        let replicate =
            path_count >= 2 && total.is_some_and(|t| t <= cfg.replication_threshold && t > 0);
        let copies = if replicate { 2 } else { 1 };
        let limit = total.unwrap_or(u64::MAX);
        let replicas = (0..copies)
            .map(|i| Replica {
                subflow: Subflow::new(
                    cfg.transport,
                    i as u8,
                    false,
                    src,
                    dst,
                    base_src_port.wrapping_add(i as u16 * REPLICA_PORT_STRIDE),
                    dst_port,
                    flow,
                ),
                cursor: 0,
                limit,
            })
            .collect();
        RepFlowSender {
            cfg,
            flow,
            total,
            replicas,
            primary: None,
            data_acked: 0,
            completed: false,
        }
    }

    /// Connection-level bytes acknowledged so far.
    pub fn acked_bytes(&self) -> u64 {
        self.data_acked
    }

    /// Has the whole transfer been acknowledged (by either replica)?
    pub fn is_completed(&self) -> bool {
        self.completed
    }

    /// Is this flow being carried by two replica connections?
    pub fn is_replicated(&self) -> bool {
        self.replicas.len() > 1
    }

    /// The replica subflows (for tests and metrics).
    pub fn replicas(&self) -> Vec<&Subflow> {
        self.replicas.iter().map(|r| &r.subflow).collect()
    }

    /// Total data bytes handed to the network across every replica,
    /// including retransmissions.
    pub fn total_bytes_sent(&self) -> u64 {
        self.replicas
            .iter()
            .map(|r| r.subflow.counters().data_bytes_sent)
            .sum()
    }

    /// The winner of the handshake race, once one replica has established.
    pub fn primary(&self) -> Option<usize> {
        self.primary
    }

    fn on_established(&mut self, winner: usize) {
        if self.primary.is_some() {
            return;
        }
        self.primary = Some(winner);
        if self.cfg.syn_only {
            // RepSYN: the race is decided at the handshake. The winner takes
            // the whole flow; every other replica is capped at one initial
            // window (it may already be carrying that much — the cap can
            // only shrink a limit, never extend one).
            let first_window = self.cfg.transport.initial_cwnd_bytes() as u64;
            for (i, r) in self.replicas.iter_mut().enumerate() {
                if i != winner {
                    r.limit = r.limit.min(first_window.max(r.cursor));
                }
            }
        }
    }

    fn pump(&mut self, ctx: &mut AgentCtx<'_>) {
        if self.completed {
            return;
        }
        let mss = self.cfg.transport.mss as u64;
        for r in &mut self.replicas {
            loop {
                let remaining = r.limit.saturating_sub(r.cursor);
                if remaining == 0 {
                    break;
                }
                let len = mss.min(remaining);
                if !r.subflow.is_established() || r.subflow.window_space() < len {
                    break;
                }
                r.subflow.send_segment(ctx, r.cursor, len as u32);
                r.cursor += len;
            }
        }
    }

    fn check_completion(&mut self, ctx: &mut AgentCtx<'_>) {
        if self.completed {
            return;
        }
        let Some(total) = self.total else {
            return;
        };
        if self.data_acked >= total {
            self.completed = true;
            ctx.signal(Signal::FlowCompleted {
                flow: self.flow,
                at: ctx.now(),
                bytes: total,
            });
            // First full delivery wins: silence the losing replica so it
            // stops retransmitting bytes nobody needs (the real protocol
            // closes the slower connection).
            for r in &mut self.replicas {
                r.subflow.abort();
            }
            crate::signal_redundant_bytes(ctx, self.flow, self.total_bytes_sent(), total);
        }
    }
}

impl Agent for RepFlowSender {
    fn handle(&mut self, ctx: &mut AgentCtx<'_>, event: AgentEvent) {
        match event {
            AgentEvent::Start => {
                ctx.signal(Signal::FlowStarted {
                    flow: self.flow,
                    at: ctx.now(),
                    bytes: self.total.unwrap_or(u64::MAX),
                });
                // Both SYNs race from the first instant.
                for r in &mut self.replicas {
                    r.subflow.start(ctx);
                }
            }
            AgentEvent::Packet(pkt) => {
                if matches!(pkt.kind, PacketKind::Ack | PacketKind::SynAck) {
                    self.data_acked = self.data_acked.max(pkt.data_ack);
                    let idx = pkt.subflow as usize;
                    if idx < self.replicas.len() {
                        let upd = self.replicas[idx].subflow.on_packet(ctx, &pkt, None);
                        if upd.became_established {
                            self.on_established(idx);
                        }
                    }
                    self.pump(ctx);
                    self.check_completion(ctx);
                }
            }
            AgentEvent::Timer(token) => {
                let (idx, gen) = Subflow::decode_timer_token(token);
                if (idx as usize) < self.replicas.len() {
                    self.replicas[idx as usize].subflow.on_timer(ctx, gen);
                }
                self.pump(ctx);
            }
            // RepFlow replicates mice below the elephant threshold, so it
            // never requests a fluid handoff and this event cannot arrive.
            AgentEvent::FluidComplete { .. } => {}
            AgentEvent::Finalize => {
                if !self.completed {
                    ctx.signal(Signal::FlowProgress {
                        flow: self.flow,
                        at: ctx.now(),
                        bytes: self.data_acked,
                    });
                    // The replication price must be visible even (especially)
                    // for flows the run's time cap caught mid-race.
                    if self.total.is_some() {
                        crate::signal_redundant_bytes(
                            ctx,
                            self.flow,
                            self.total_bytes_sent(),
                            self.data_acked,
                        );
                    }
                }
            }
        }
    }

    fn describe(&self) -> String {
        format!(
            "repflow-sender({}, {} replicas{}, {:?} bytes)",
            self.flow,
            self.replicas.len(),
            if self.cfg.syn_only { ", syn-only" } else { "" },
            self.total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::TransportReceiver;
    use netsim::{Packet, SimDuration, SimRng, SimTime};

    /// Ideal-network round harness (same shape as the MPTCP/MMPTCP test
    /// loops): sender packets delivered next half-round, ACKs the one after.
    struct Loop {
        tx: RepFlowSender,
        rx: TransportReceiver,
        rng: SimRng,
        timers: Vec<(SimTime, u64)>,
        signals: Vec<Signal>,
        now: SimTime,
        to_rx: Vec<Packet>,
        to_tx: Vec<Packet>,
    }

    impl Loop {
        fn new(cfg: RepFlowConfig, total: u64, paths: usize) -> Self {
            let flow = FlowId(1);
            Loop {
                tx: RepFlowSender::new(cfg, flow, Addr(0), Addr(1), 50_000, 80, Some(total), paths),
                rx: TransportReceiver::new(flow),
                rng: SimRng::new(5),
                timers: Vec::new(),
                signals: Vec::new(),
                now: SimTime::from_millis(1),
                to_rx: Vec::new(),
                to_tx: Vec::new(),
            }
        }

        fn start(&mut self) {
            let mut out = Vec::new();
            let mut ctx = AgentCtx::new(
                self.now,
                FlowId(1),
                &mut self.rng,
                &mut out,
                &mut self.timers,
                &mut self.signals,
            );
            self.tx.handle(&mut ctx, AgentEvent::Start);
            self.to_rx.extend(out);
        }

        fn round(&mut self, drop: &mut impl FnMut(&Packet) -> bool) {
            self.now += SimDuration::from_micros(100);
            let mut acks = Vec::new();
            for pkt in std::mem::take(&mut self.to_rx) {
                if drop(&pkt) {
                    continue;
                }
                let mut ctx = AgentCtx::new(
                    self.now,
                    FlowId(1),
                    &mut self.rng,
                    &mut acks,
                    &mut self.timers,
                    &mut self.signals,
                );
                self.rx.handle(&mut ctx, AgentEvent::Packet(pkt));
            }
            self.to_tx.extend(acks);
            self.now += SimDuration::from_micros(100);
            let mut out = Vec::new();
            for pkt in std::mem::take(&mut self.to_tx) {
                let mut ctx = AgentCtx::new(
                    self.now,
                    FlowId(1),
                    &mut self.rng,
                    &mut out,
                    &mut self.timers,
                    &mut self.signals,
                );
                self.tx.handle(&mut ctx, AgentEvent::Packet(pkt));
            }
            self.to_rx.extend(out);
            let due: Vec<(SimTime, u64)> = self
                .timers
                .iter()
                .copied()
                .filter(|(t, _)| *t <= self.now)
                .collect();
            self.timers.retain(|(t, _)| *t > self.now);
            for (_, token) in due {
                let mut out = Vec::new();
                let mut ctx = AgentCtx::new(
                    self.now,
                    FlowId(1),
                    &mut self.rng,
                    &mut out,
                    &mut self.timers,
                    &mut self.signals,
                );
                self.tx.handle(&mut ctx, AgentEvent::Timer(token));
                self.to_rx.extend(out);
            }
            if self.to_rx.is_empty() && self.to_tx.is_empty() && !self.tx.is_completed() {
                if let Some(&(t, _)) = self.timers.iter().min_by_key(|(t, _)| *t) {
                    self.now = t;
                }
            }
        }

        fn run(&mut self, max_rounds: usize, mut drop: impl FnMut(&Packet) -> bool) {
            self.start();
            for _ in 0..max_rounds {
                if self.tx.is_completed() {
                    break;
                }
                self.round(&mut drop);
            }
        }
    }

    #[test]
    fn mice_are_replicated_over_two_connections() {
        let mut l = Loop::new(RepFlowConfig::default(), 70_000, 4);
        assert!(l.tx.is_replicated());
        l.run(2_000, |_| false);
        assert!(l.tx.is_completed());
        assert_eq!(l.tx.acked_bytes(), 70_000);
        // Both replicas carried data, on distinct source ports.
        let replicas = l.tx.replicas();
        assert_eq!(replicas.len(), 2);
        for sf in &replicas {
            assert!(sf.counters().data_bytes_sent > 0);
        }
        assert_ne!(replicas[0].src_port(), replicas[1].src_port());
        // The wire carried more than the flow size; the overhead is reported.
        assert!(l.tx.total_bytes_sent() > 70_000);
        let redundant = l
            .signals
            .iter()
            .find_map(|s| match s {
                Signal::RedundantBytes { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .expect("redundant-bytes signal must be emitted on completion");
        assert_eq!(redundant, l.tx.total_bytes_sent() - 70_000);
    }

    #[test]
    fn completes_at_first_full_delivery_despite_a_dead_replica() {
        // Replica 1's data never arrives: the flow must still complete via
        // replica 0, and the dead copy must not keep retransmitting after.
        let mut l = Loop::new(RepFlowConfig::default(), 70_000, 4);
        l.run(4_000, |p: &Packet| {
            p.kind == PacketKind::Data && p.subflow == 1
        });
        assert!(l.tx.is_completed());
        let completions = l
            .signals
            .iter()
            .filter(|s| matches!(s, Signal::FlowCompleted { .. }))
            .count();
        assert_eq!(completions, 1);
        // The losing replica was aborted: firing every remaining timer
        // produces no packets.
        let timers = std::mem::take(&mut l.timers);
        let mut out = Vec::new();
        for (_, token) in timers {
            let mut ctx = AgentCtx::new(
                l.now + SimDuration::from_secs(10),
                FlowId(1),
                &mut l.rng,
                &mut out,
                &mut l.timers,
                &mut l.signals,
            );
            l.tx.handle(&mut ctx, AgentEvent::Timer(token));
        }
        assert!(out.is_empty(), "aborted replica must stay silent");
    }

    #[test]
    fn the_boundary_flow_is_still_a_mouse() {
        // Exactly-threshold flows are mice (size <= threshold), matching the
        // report layer's mice classification — no flow may be counted in the
        // mice tail yet denied replication.
        let l = Loop::new(RepFlowConfig::default(), 100_000, 4);
        assert!(l.tx.is_replicated());
        let l = Loop::new(RepFlowConfig::default(), 100_001, 4);
        assert!(!l.tx.is_replicated());
    }

    #[test]
    fn elephants_are_not_replicated() {
        let l = Loop::new(RepFlowConfig::default(), 500_000, 4);
        assert!(
            !l.tx.is_replicated(),
            "500 KB is above the 100 KB threshold"
        );
        let mut l = Loop::new(RepFlowConfig::default(), 500_000, 4);
        l.run(5_000, |_| false);
        assert!(l.tx.is_completed());
        // Exactly the flow's bytes were sent (no losses in this harness).
        assert_eq!(l.tx.total_bytes_sent(), 500_000);
    }

    #[test]
    fn single_path_pairs_fall_back_to_one_connection() {
        let l = Loop::new(RepFlowConfig::default(), 70_000, 1);
        assert!(
            !l.tx.is_replicated(),
            "replication over one path is pure overhead"
        );
    }

    #[test]
    fn unbounded_flows_are_never_replicated() {
        let tx = RepFlowSender::new(
            RepFlowConfig::default(),
            FlowId(1),
            Addr(0),
            Addr(1),
            50_000,
            80,
            None,
            8,
        );
        assert!(!tx.is_replicated());
    }

    #[test]
    fn repsyn_caps_the_loser_at_one_initial_window() {
        let mut l = Loop::new(RepFlowConfig::repsyn(), 70_000, 4);
        assert!(l.tx.is_replicated());
        l.run(2_000, |_| false);
        assert!(l.tx.is_completed());
        let winner = l.tx.primary().expect("a replica must have established");
        let loser = 1 - winner;
        let first_window = TransportConfig::default().initial_cwnd_bytes() as u64;
        let sent = l.tx.replicas()[loser].counters().data_bytes_sent;
        assert!(
            sent <= first_window,
            "loser sent {sent} > one initial window {first_window}"
        );
        // The winner carried the whole flow.
        assert!(l.tx.replicas()[winner].counters().data_bytes_sent >= 70_000);
    }

    #[test]
    fn repsyn_masks_a_lost_initial_syn() {
        // Plain TCP pays a full initial RTO (1 s) for a lost SYN; RepSYN's
        // second SYN wins the race instead.
        let mut dropped = false;
        let mut l = Loop::new(RepFlowConfig::repsyn(), 70_000, 4);
        l.run(2_000, |p: &Packet| {
            if !dropped && p.kind == PacketKind::Syn && p.subflow == 0 {
                dropped = true;
                true
            } else {
                false
            }
        });
        assert!(l.tx.is_completed());
        assert_eq!(l.tx.primary(), Some(1), "replica 1 must win the race");
        let elapsed = l.now - SimTime::from_millis(1);
        assert!(
            elapsed < SimDuration::from_millis(900),
            "completion must not wait for the 1 s initial RTO (took {elapsed})"
        );
    }

    #[test]
    fn loss_on_one_path_does_not_stall_completion() {
        // Drop every 7th data packet of replica 0 only: replica 1's clean
        // copy completes the flow without waiting for recovery on replica 0.
        let mut count = 0usize;
        let mut l = Loop::new(RepFlowConfig::default(), 70_000, 4);
        l.run(4_000, |p: &Packet| {
            if p.kind == PacketKind::Data && p.subflow == 0 {
                count += 1;
                count.is_multiple_of(7)
            } else {
                false
            }
        });
        assert!(l.tx.is_completed());
        assert_eq!(l.tx.acked_bytes(), 70_000);
    }

    #[test]
    fn config_presets() {
        let d = RepFlowConfig::default();
        assert_eq!(d.replication_threshold, 100_000);
        assert!(!d.syn_only);
        assert!(RepFlowConfig::repsyn().syn_only);
    }
}
