//! Single-path TCP sender (NewReno flavour) and its DCTCP variant.
//!
//! This is the baseline transport of the paper's comparison: a single subflow
//! whose connection-level data sequence equals its subflow sequence. With
//! `TransportConfig::dctcp()` and ECN-marking switches it behaves as DCTCP.

use crate::config::TransportConfig;
use crate::subflow::Subflow;
use netsim::fluid::{pacing_rate_bps, FluidHandoff};
use netsim::{Addr, Agent, AgentCtx, AgentEvent, FlowId, Packet, PacketKind, Signal, SimTime};

/// A single-path TCP sender transferring `total` bytes (or running forever
/// when `total` is `None`, for background flows).
#[derive(Debug)]
pub struct TcpSender {
    cfg: TransportConfig,
    flow: FlowId,
    total: Option<u64>,
    subflow: Subflow,
    next_data_seq: u64,
    data_acked: u64,
    started_at: Option<SimTime>,
    completed: bool,
    /// True once the remainder of the flow has been handed to the fluid fast
    /// path: the sender stops pumping new data and waits for
    /// [`AgentEvent::FluidComplete`] (in-flight packets still drain normally).
    fluid_mode: bool,
}

impl TcpSender {
    /// Create a sender from `src` to `dst` transferring `total` bytes
    /// (`None` = unbounded background flow). `src_port`/`dst_port` pin the
    /// ECMP path of the single subflow.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: TransportConfig,
        flow: FlowId,
        src: Addr,
        dst: Addr,
        src_port: u16,
        dst_port: u16,
        total: Option<u64>,
    ) -> Self {
        let subflow = Subflow::new(cfg, 0, false, src, dst, src_port, dst_port, flow);
        TcpSender {
            cfg,
            flow,
            total,
            subflow,
            next_data_seq: 0,
            data_acked: 0,
            started_at: None,
            completed: false,
            fluid_mode: false,
        }
    }

    /// Convenience constructor for a DCTCP sender (ECN-reacting TCP).
    #[allow(clippy::too_many_arguments)]
    pub fn new_dctcp(
        flow: FlowId,
        src: Addr,
        dst: Addr,
        src_port: u16,
        dst_port: u16,
        total: Option<u64>,
    ) -> Self {
        TcpSender::new(
            TransportConfig::dctcp(),
            flow,
            src,
            dst,
            src_port,
            dst_port,
            total,
        )
    }

    /// Connection-level bytes acknowledged so far.
    pub fn acked_bytes(&self) -> u64 {
        self.data_acked
    }

    /// Has the whole transfer been acknowledged?
    pub fn is_completed(&self) -> bool {
        self.completed
    }

    /// The underlying subflow (for tests and ablations).
    pub fn subflow(&self) -> &Subflow {
        &self.subflow
    }

    /// Whether the remainder of the flow has been handed to the fluid engine.
    pub fn is_fluid_mode(&self) -> bool {
        self.fluid_mode
    }

    fn remaining(&self) -> u64 {
        match self.total {
            Some(t) => t.saturating_sub(self.next_data_seq),
            None => u64::MAX,
        }
    }

    fn pump(&mut self, ctx: &mut AgentCtx<'_>) {
        loop {
            let remaining = self.remaining();
            if remaining == 0 {
                break;
            }
            let len = (self.cfg.mss as u64).min(remaining) as u32;
            if self.subflow.window_space() < len as u64 {
                break;
            }
            self.subflow.send_segment(ctx, self.next_data_seq, len);
            self.next_data_seq += len as u64;
        }
    }

    /// Hand the remainder of the flow to the fluid fast path if the hybrid
    /// engine is on, the flow is a bounded elephant with more than the
    /// threshold left, and the subflow has settled out of slow start (so the
    /// pacing cap derived from cwnd/srtt approximates congestion avoidance).
    fn maybe_fluid_handoff(&mut self, ctx: &mut AgentCtx<'_>) {
        if self.fluid_mode || self.completed {
            return;
        }
        let Some(threshold) = ctx.fluid_threshold() else {
            return;
        };
        let Some(total) = self.total else {
            return; // unbounded background flows stay packet-level
        };
        let remaining = total.saturating_sub(self.next_data_seq);
        if remaining <= threshold {
            return;
        }
        if !self.subflow.is_established() || self.subflow.in_slow_start() {
            return;
        }
        let Some(srtt) = self.subflow.srtt() else {
            return;
        };
        // BBR exports an explicit model-based pacing rate; loss-based
        // controllers fall back to the classic cwnd/srtt estimate.
        let rate_cap_bps = self
            .subflow
            .cc_pacing_rate_bps()
            .unwrap_or_else(|| pacing_rate_bps(self.subflow.cwnd(), srtt));
        let template = self
            .subflow
            .fluid_template(self.next_data_seq, self.cfg.mss, ctx.now());
        ctx.request_fluid_handoff(FluidHandoff {
            template,
            remaining,
            base_bytes: self.next_data_seq,
            rate_cap_bps,
            // Cap growth must run at the base (propagation) RTT, not the
            // smoothed RTT: srtt is queue-inflated at handoff time, and a
            // frozen inflated value would slow additive increase forever
            // (packet mode self-corrects via ack clocking; fluid can't).
            srtt: self.subflow.min_rtt().unwrap_or(srtt),
            mss: self.cfg.mss,
            cc: self.cfg.cc.fluid(),
        });
        self.fluid_mode = true;
    }

    fn check_completion(&mut self, ctx: &mut AgentCtx<'_>) {
        if self.completed {
            return;
        }
        if let Some(total) = self.total {
            if self.data_acked >= total {
                self.completed = true;
                ctx.signal(Signal::FlowCompleted {
                    flow: self.flow,
                    at: ctx.now(),
                    bytes: total,
                });
                crate::signal_redundant_bytes(
                    ctx,
                    self.flow,
                    self.subflow.counters().data_bytes_sent,
                    total,
                );
            }
        }
    }
}

impl Agent for TcpSender {
    fn handle(&mut self, ctx: &mut AgentCtx<'_>, event: AgentEvent) {
        match event {
            AgentEvent::Start => {
                self.started_at = Some(ctx.now());
                ctx.signal(Signal::FlowStarted {
                    flow: self.flow,
                    at: ctx.now(),
                    bytes: self.total.unwrap_or(u64::MAX),
                });
                self.subflow.start(ctx);
            }
            AgentEvent::Packet(pkt) => {
                if matches!(pkt.kind, PacketKind::Ack | PacketKind::SynAck) {
                    self.data_acked = self.data_acked.max(pkt.data_ack);
                    self.subflow.on_packet(ctx, &pkt, None);
                    if !self.fluid_mode {
                        self.pump(ctx);
                        self.check_completion(ctx);
                        self.maybe_fluid_handoff(ctx);
                    }
                }
            }
            AgentEvent::Timer(token) => {
                let (_, gen) = Subflow::decode_timer_token(token);
                self.subflow.on_timer(ctx, gen);
                if !self.fluid_mode {
                    self.pump(ctx);
                }
            }
            AgentEvent::FluidComplete { bytes } => {
                if !self.completed {
                    self.completed = true;
                    self.subflow.abort();
                    let total = self.total.unwrap_or(self.next_data_seq + bytes);
                    ctx.signal(Signal::FlowCompleted {
                        flow: self.flow,
                        at: ctx.now(),
                        bytes: total,
                    });
                    crate::signal_redundant_bytes(
                        ctx,
                        self.flow,
                        self.subflow.counters().data_bytes_sent + bytes,
                        total,
                    );
                }
            }
            AgentEvent::Finalize => {
                if !self.completed && !self.fluid_mode {
                    ctx.signal(Signal::FlowProgress {
                        flow: self.flow,
                        at: ctx.now(),
                        bytes: self.data_acked,
                    });
                    if self.total.is_some() {
                        crate::signal_redundant_bytes(
                            ctx,
                            self.flow,
                            self.subflow.counters().data_bytes_sent,
                            self.data_acked,
                        );
                    }
                }
            }
        }
    }

    fn describe(&self) -> String {
        format!("tcp-sender({}, {:?} bytes)", self.flow, self.total)
    }
}

/// Construct the matching receiver for any sender in this crate.
pub fn receiver_for(flow: FlowId) -> crate::receiver::TransportReceiver {
    crate::receiver::TransportReceiver::new(flow)
}

/// A packet filter helper used by tests: true if `p` is a data segment.
pub fn is_data(p: &Packet) -> bool {
    p.kind == PacketKind::Data
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::TransportReceiver;
    use netsim::{SimDuration, SimRng};

    /// Drive a sender and receiver "back to back" (zero-latency ideal network)
    /// until the sender finishes or `max_rounds` is hit. Returns the signals.
    fn run_back_to_back(total: u64, loss_every: Option<usize>) -> (TcpSender, Vec<Signal>) {
        let flow = FlowId(1);
        let mut tx = TcpSender::new(
            TransportConfig::default(),
            flow,
            Addr(0),
            Addr(1),
            50_000,
            80,
            Some(total),
        );
        let mut rx = TransportReceiver::new(flow);
        let mut rng = SimRng::new(3);
        let mut signals = Vec::new();
        let mut timers: Vec<(SimTime, u64)> = Vec::new();
        let mut now = SimTime::from_millis(1);
        let mut in_flight: Vec<Packet> = Vec::new();
        let mut to_sender: Vec<Packet> = Vec::new();
        let mut sent_count = 0usize;

        // Start.
        {
            let mut out = Vec::new();
            let mut tctx = AgentCtx::new(now, flow, &mut rng, &mut out, &mut timers, &mut signals);
            tx.handle(&mut tctx, AgentEvent::Start);
            in_flight.extend(out);
        }

        for _round in 0..10_000 {
            if tx.is_completed() {
                break;
            }
            now += SimDuration::from_micros(50);
            // Deliver sender->receiver packets (possibly dropping some).
            let mut rx_out = Vec::new();
            for pkt in in_flight.drain(..) {
                sent_count += 1;
                if let Some(k) = loss_every {
                    if sent_count.is_multiple_of(k) {
                        continue; // drop
                    }
                }
                let mut rctx =
                    AgentCtx::new(now, flow, &mut rng, &mut rx_out, &mut timers, &mut signals);
                rx.handle(&mut rctx, AgentEvent::Packet(pkt));
            }
            to_sender.extend(rx_out);
            now += SimDuration::from_micros(50);
            // Deliver receiver->sender packets.
            let mut tx_out = Vec::new();
            for pkt in to_sender.drain(..) {
                let mut tctx =
                    AgentCtx::new(now, flow, &mut rng, &mut tx_out, &mut timers, &mut signals);
                tx.handle(&mut tctx, AgentEvent::Packet(pkt));
            }
            in_flight.extend(tx_out);
            // Fire any due timers.
            let due: Vec<(SimTime, u64)> =
                timers.iter().copied().filter(|(t, _)| *t <= now).collect();
            timers.retain(|(t, _)| *t > now);
            for (_, token) in due {
                let mut tx_out = Vec::new();
                let mut tctx =
                    AgentCtx::new(now, flow, &mut rng, &mut tx_out, &mut timers, &mut signals);
                tx.handle(&mut tctx, AgentEvent::Timer(token));
                in_flight.extend(tx_out);
            }
            // If nothing is moving, advance to the next timer deadline.
            if in_flight.is_empty() && to_sender.is_empty() && !tx.is_completed() {
                if let Some(&(t, _)) = timers.iter().min_by_key(|(t, _)| *t) {
                    now = t;
                }
            }
        }
        (tx, signals)
    }

    #[test]
    fn lossless_transfer_completes() {
        let (tx, signals) = run_back_to_back(70_000, None);
        assert!(tx.is_completed());
        assert_eq!(tx.acked_bytes(), 70_000);
        assert!(signals
            .iter()
            .any(|s| matches!(s, Signal::FlowCompleted { bytes: 70_000, .. })));
        assert_eq!(tx.subflow().counters().rto_count, 0);
    }

    #[test]
    fn lossy_transfer_still_completes_via_retransmission() {
        let (tx, signals) = run_back_to_back(140_000, Some(23));
        assert!(tx.is_completed(), "transfer must recover from losses");
        assert_eq!(tx.acked_bytes(), 140_000);
        // Some recovery mechanism fired.
        let recovered =
            tx.subflow().counters().fast_retransmits + tx.subflow().counters().rto_count;
        assert!(recovered > 0);
        assert!(signals
            .iter()
            .any(|s| matches!(s, Signal::FlowCompleted { .. })));
    }

    #[test]
    fn last_segment_may_be_short() {
        let (tx, _) = run_back_to_back(3_000, None);
        assert!(tx.is_completed());
        assert_eq!(tx.acked_bytes(), 3_000);
    }

    #[test]
    fn unbounded_flow_reports_progress_on_finalize() {
        let flow = FlowId(2);
        let mut tx = TcpSender::new(
            TransportConfig::default(),
            flow,
            Addr(0),
            Addr(1),
            50_000,
            80,
            None,
        );
        let mut rng = SimRng::new(1);
        let (mut out, mut timers, mut signals) = (Vec::new(), Vec::new(), Vec::new());
        let mut ctx = AgentCtx::new(
            SimTime::from_secs(1),
            flow,
            &mut rng,
            &mut out,
            &mut timers,
            &mut signals,
        );
        tx.handle(&mut ctx, AgentEvent::Finalize);
        assert!(matches!(
            signals.last().unwrap(),
            Signal::FlowProgress { bytes: 0, .. }
        ));
        assert!(!tx.is_completed());
    }

    #[test]
    fn describe_mentions_flow() {
        let tx = TcpSender::new(
            TransportConfig::default(),
            FlowId(5),
            Addr(0),
            Addr(1),
            50_000,
            80,
            Some(10),
        );
        assert!(tx.describe().contains("f5"));
    }
}
