//! D²TCP: Deadline-aware Data Center TCP (Vamanan et al., SIGCOMM 2012).
//!
//! One of the deadline-aware single-path protocols the paper's introduction
//! contrasts MMPTCP against. D²TCP starts from DCTCP (ECN marking at the
//! switches, an EWMA `α` of the marked fraction at the sender) but
//! gamma-corrects the window reduction with a *deadline imminence* factor
//! `d = Tc / D`, where `Tc` is the time the flow still needs at its current
//! rate and `D` is the time remaining until its deadline:
//!
//! * far-from-deadline flows (`d < 1`) back off **more** than DCTCP would,
//! * near-deadline flows (`d > 1`) back off **less**, stealing bandwidth from
//!   flows that can afford to wait.
//!
//! The reduction applied per marked window is `cwnd ← cwnd · (1 − α^d / 2)`.
//! Flows without a deadline use `d = 1` and therefore behave exactly like
//! DCTCP. This module exists to reproduce the qualitative comparison in the
//! paper's introduction: deadline-aware transports need application-layer
//! deadline information and ECN support in the network — precisely the
//! requirements MMPTCP avoids — and, being single-path, they cannot exploit
//! the path diversity of the FatTree.

use crate::config::TransportConfig;
use crate::subflow::Subflow;
use netsim::{Addr, Agent, AgentCtx, AgentEvent, FlowId, PacketKind, Signal, SimDuration, SimTime};

/// Bounds on the deadline-imminence factor, as in the D²TCP paper.
const MIN_IMMINENCE: f64 = 0.5;
const MAX_IMMINENCE: f64 = 2.0;

/// A deadline-aware DCTCP sender.
#[derive(Debug)]
pub struct D2tcpSender {
    cfg: TransportConfig,
    flow: FlowId,
    total: Option<u64>,
    /// Absolute deadline for the transfer, if the application provided one.
    deadline: Option<SimTime>,
    /// Relative deadline used to derive the absolute one at start time.
    relative_deadline: Option<SimDuration>,
    subflow: Subflow,
    next_data_seq: u64,
    data_acked: u64,
    started_at: Option<SimTime>,
    completed: bool,
    missed_deadline: bool,
}

impl D2tcpSender {
    /// Create a D²TCP sender transferring `total` bytes with an optional
    /// relative `deadline` (measured from the flow's start time). A sender
    /// without a deadline degenerates to DCTCP.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: TransportConfig,
        flow: FlowId,
        src: Addr,
        dst: Addr,
        src_port: u16,
        dst_port: u16,
        total: Option<u64>,
        deadline: Option<SimDuration>,
    ) -> Self {
        let ecn_cfg = TransportConfig { ecn: true, ..cfg };
        let subflow = Subflow::new(ecn_cfg, 0, false, src, dst, src_port, dst_port, flow);
        D2tcpSender {
            cfg: ecn_cfg,
            flow,
            total,
            deadline: None,
            relative_deadline: deadline,
            subflow,
            next_data_seq: 0,
            data_acked: 0,
            started_at: None,
            completed: false,
            missed_deadline: false,
        }
    }

    /// Connection-level bytes acknowledged so far.
    pub fn acked_bytes(&self) -> u64 {
        self.data_acked
    }

    /// Has the whole transfer been acknowledged?
    pub fn is_completed(&self) -> bool {
        self.completed
    }

    /// Did the transfer finish after its deadline (or not at all)?
    pub fn missed_deadline(&self) -> bool {
        self.missed_deadline
    }

    /// The underlying subflow (for tests and metrics).
    pub fn subflow(&self) -> &Subflow {
        &self.subflow
    }

    /// The absolute deadline, once the flow has started.
    pub fn absolute_deadline(&self) -> Option<SimTime> {
        self.deadline
    }

    fn remaining(&self) -> u64 {
        match self.total {
            Some(t) => t.saturating_sub(self.next_data_seq),
            None => u64::MAX,
        }
    }

    /// Recompute the deadline-imminence factor `d = Tc / D` and install it on
    /// the subflow. Called on every ACK so the factor tracks both the rate the
    /// flow is achieving and the time it has left.
    fn update_imminence(&mut self, now: SimTime) {
        let Some(deadline) = self.deadline else {
            self.subflow.set_dctcp_penalty_exponent(1.0);
            return;
        };
        let Some(total) = self.total else {
            self.subflow.set_dctcp_penalty_exponent(1.0);
            return;
        };
        let remaining_bytes = total.saturating_sub(self.data_acked) as f64;
        if remaining_bytes <= 0.0 {
            return;
        }
        // Time needed at the current rate: cwnd bytes per RTT.
        let rtt = self
            .subflow
            .srtt()
            .map(|d| d.as_secs_f64())
            .unwrap_or(200e-6)
            .max(1e-6);
        let rate = self.subflow.cwnd().max(self.cfg.mss as f64) / rtt;
        let needed = remaining_bytes / rate;
        let left = if deadline > now {
            (deadline - now).as_secs_f64()
        } else {
            // Deadline already blown: be maximally aggressive (the D²TCP paper
            // caps d so such flows do not starve everyone else).
            0.0
        };
        let d = if left <= 0.0 {
            MAX_IMMINENCE
        } else {
            (needed / left).clamp(MIN_IMMINENCE, MAX_IMMINENCE)
        };
        // D²TCP's exponent is d for the *penalty* α^d: imminent flows (d > 1)
        // see α^d < α, i.e. a smaller reduction.
        self.subflow.set_dctcp_penalty_exponent(d);
    }

    fn pump(&mut self, ctx: &mut AgentCtx<'_>) {
        loop {
            let remaining = self.remaining();
            if remaining == 0 {
                break;
            }
            let len = (self.cfg.mss as u64).min(remaining) as u32;
            if self.subflow.window_space() < len as u64 {
                break;
            }
            self.subflow.send_segment(ctx, self.next_data_seq, len);
            self.next_data_seq += len as u64;
        }
    }

    fn check_completion(&mut self, ctx: &mut AgentCtx<'_>) {
        if self.completed {
            return;
        }
        if let Some(total) = self.total {
            if self.data_acked >= total {
                self.completed = true;
                if let Some(deadline) = self.deadline {
                    if ctx.now() > deadline {
                        self.missed_deadline = true;
                    }
                }
                ctx.signal(Signal::FlowCompleted {
                    flow: self.flow,
                    at: ctx.now(),
                    bytes: total,
                });
                crate::signal_redundant_bytes(
                    ctx,
                    self.flow,
                    self.subflow.counters().data_bytes_sent,
                    total,
                );
            }
        }
    }
}

impl Agent for D2tcpSender {
    fn handle(&mut self, ctx: &mut AgentCtx<'_>, event: AgentEvent) {
        match event {
            AgentEvent::Start => {
                self.started_at = Some(ctx.now());
                self.deadline = self.relative_deadline.map(|d| ctx.now() + d);
                ctx.signal(Signal::FlowStarted {
                    flow: self.flow,
                    at: ctx.now(),
                    bytes: self.total.unwrap_or(u64::MAX),
                });
                self.subflow.start(ctx);
            }
            AgentEvent::Packet(pkt) => {
                if matches!(pkt.kind, PacketKind::Ack | PacketKind::SynAck) {
                    self.data_acked = self.data_acked.max(pkt.data_ack);
                    self.update_imminence(ctx.now());
                    self.subflow.on_packet(ctx, &pkt, None);
                    self.pump(ctx);
                    self.check_completion(ctx);
                }
            }
            AgentEvent::Timer(token) => {
                let (_, gen) = Subflow::decode_timer_token(token);
                self.subflow.on_timer(ctx, gen);
                self.pump(ctx);
            }
            // D²TCP never opts into the fluid fast path: its deadline-driven
            // window modulation depends on per-ACK ECN feedback, which the
            // analytic path does not model. The engine only sends this to
            // flows that requested a handoff, so it is unreachable here.
            AgentEvent::FluidComplete { .. } => {}
            AgentEvent::Finalize => {
                if !self.completed {
                    if self.deadline.is_some() {
                        self.missed_deadline = true;
                    }
                    ctx.signal(Signal::FlowProgress {
                        flow: self.flow,
                        at: ctx.now(),
                        bytes: self.data_acked,
                    });
                    if self.total.is_some() {
                        crate::signal_redundant_bytes(
                            ctx,
                            self.flow,
                            self.subflow.counters().data_bytes_sent,
                            self.data_acked,
                        );
                    }
                }
            }
        }
    }

    fn describe(&self) -> String {
        format!(
            "d2tcp-sender({}, {:?} bytes, deadline {:?})",
            self.flow, self.total, self.relative_deadline
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::TransportReceiver;
    use netsim::{Packet, SimRng};

    /// Back-to-back harness with an optional per-packet ECN-mark predicate.
    struct Loop {
        tx: D2tcpSender,
        rx: TransportReceiver,
        rng: SimRng,
        timers: Vec<(SimTime, u64)>,
        signals: Vec<Signal>,
        now: SimTime,
        to_rx: Vec<Packet>,
        to_tx: Vec<Packet>,
    }

    impl Loop {
        fn new(total: u64, deadline: Option<SimDuration>) -> Self {
            let flow = FlowId(1);
            Loop {
                tx: D2tcpSender::new(
                    TransportConfig::dctcp(),
                    flow,
                    Addr(0),
                    Addr(1),
                    50_000,
                    80,
                    Some(total),
                    deadline,
                ),
                rx: TransportReceiver::new(flow),
                rng: SimRng::new(5),
                timers: Vec::new(),
                signals: Vec::new(),
                now: SimTime::from_millis(1),
                to_rx: Vec::new(),
                to_tx: Vec::new(),
            }
        }

        fn run(&mut self, max_rounds: usize, mut mark: impl FnMut(&Packet) -> bool) {
            {
                let mut out = Vec::new();
                let mut ctx = AgentCtx::new(
                    self.now,
                    FlowId(1),
                    &mut self.rng,
                    &mut out,
                    &mut self.timers,
                    &mut self.signals,
                );
                self.tx.handle(&mut ctx, AgentEvent::Start);
                self.to_rx.extend(out);
            }
            for _ in 0..max_rounds {
                if self.tx.is_completed() {
                    break;
                }
                self.now += SimDuration::from_micros(100);
                let mut acks = Vec::new();
                for mut pkt in std::mem::take(&mut self.to_rx) {
                    if mark(&pkt) && pkt.ecn == netsim::Ecn::Capable {
                        pkt.ecn = netsim::Ecn::CongestionExperienced;
                    }
                    let mut ctx = AgentCtx::new(
                        self.now,
                        FlowId(1),
                        &mut self.rng,
                        &mut acks,
                        &mut self.timers,
                        &mut self.signals,
                    );
                    self.rx.handle(&mut ctx, AgentEvent::Packet(pkt));
                }
                self.to_tx.extend(acks);
                self.now += SimDuration::from_micros(100);
                let mut out = Vec::new();
                for pkt in std::mem::take(&mut self.to_tx) {
                    let mut ctx = AgentCtx::new(
                        self.now,
                        FlowId(1),
                        &mut self.rng,
                        &mut out,
                        &mut self.timers,
                        &mut self.signals,
                    );
                    self.tx.handle(&mut ctx, AgentEvent::Packet(pkt));
                }
                self.to_rx.extend(out);
                let due: Vec<(SimTime, u64)> = self
                    .timers
                    .iter()
                    .copied()
                    .filter(|(t, _)| *t <= self.now)
                    .collect();
                self.timers.retain(|(t, _)| *t > self.now);
                for (_, token) in due {
                    let mut out = Vec::new();
                    let mut ctx = AgentCtx::new(
                        self.now,
                        FlowId(1),
                        &mut self.rng,
                        &mut out,
                        &mut self.timers,
                        &mut self.signals,
                    );
                    self.tx.handle(&mut ctx, AgentEvent::Timer(token));
                    self.to_rx.extend(out);
                }
                if self.to_rx.is_empty() && self.to_tx.is_empty() && !self.tx.is_completed() {
                    if let Some(&(t, _)) = self.timers.iter().min_by_key(|(t, _)| *t) {
                        self.now = t;
                    }
                }
            }
        }
    }

    #[test]
    fn completes_without_marking_like_tcp() {
        let mut l = Loop::new(70_000, Some(SimDuration::from_millis(100)));
        l.run(5_000, |_| false);
        assert!(l.tx.is_completed());
        assert!(!l.tx.missed_deadline());
        assert_eq!(l.tx.acked_bytes(), 70_000);
    }

    #[test]
    fn without_deadline_behaves_as_dctcp() {
        let mut l = Loop::new(140_000, None);
        l.run(5_000, |p| p.kind == PacketKind::Data);
        assert!(l.tx.is_completed());
        assert!((l.tx.subflow().dctcp_penalty_exponent() - 1.0).abs() < f64::EPSILON);
        assert!(l.tx.subflow().dctcp_alpha() > 0.0, "marks must raise alpha");
    }

    #[test]
    fn near_deadline_flow_becomes_more_aggressive() {
        // A tight deadline with persistent marking: imminence should exceed 1,
        // so the penalty exponent rises above DCTCP's 1.0.
        let mut l = Loop::new(500_000, Some(SimDuration::from_micros(800)));
        l.run(400, |p| p.kind == PacketKind::Data);
        assert!(
            l.tx.subflow().dctcp_penalty_exponent() > 1.0,
            "exponent {} should exceed 1 for an imminent deadline",
            l.tx.subflow().dctcp_penalty_exponent()
        );
    }

    #[test]
    fn far_deadline_flow_yields() {
        // A huge deadline: imminence clamps low, exponent below 1.
        let mut l = Loop::new(140_000, Some(SimDuration::from_secs(30)));
        l.run(50, |p| p.kind == PacketKind::Data);
        assert!(
            l.tx.subflow().dctcp_penalty_exponent() < 1.0,
            "exponent {} should be below 1 for a distant deadline",
            l.tx.subflow().dctcp_penalty_exponent()
        );
    }

    #[test]
    fn finishing_after_the_deadline_is_recorded_as_a_miss() {
        // Impossible deadline: 70 KB in 1 µs.
        let mut l = Loop::new(70_000, Some(SimDuration::from_micros(1)));
        l.run(5_000, |_| false);
        assert!(l.tx.is_completed());
        assert!(l.tx.missed_deadline());
    }

    #[test]
    fn unfinished_flow_counts_as_missed_on_finalize() {
        let mut l = Loop::new(1_000_000, Some(SimDuration::from_millis(1)));
        l.run(3, |_| false);
        assert!(!l.tx.is_completed());
        let mut out = Vec::new();
        let mut ctx = AgentCtx::new(
            l.now,
            FlowId(1),
            &mut l.rng,
            &mut out,
            &mut l.timers,
            &mut l.signals,
        );
        l.tx.handle(&mut ctx, AgentEvent::Finalize);
        assert!(l.tx.missed_deadline());
    }

    #[test]
    fn ecn_is_forced_on() {
        let cfg = TransportConfig::default(); // ecn = false
        let tx = D2tcpSender::new(
            cfg,
            FlowId(1),
            Addr(0),
            Addr(1),
            50_000,
            80,
            Some(1_000),
            None,
        );
        assert!(tx.cfg.ecn, "D2TCP always negotiates ECN");
    }
}
