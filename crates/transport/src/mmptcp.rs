//! MMPTCP: the paper's hybrid transport.
//!
//! An [`MmptcpSender`] runs in two phases:
//!
//! 1. **Packet-Scatter (PS) phase** — a single congestion window whose data
//!    packets each carry a freshly randomised source port, so hash-based ECMP
//!    sprays them over every available path. Reordering is expected, so the
//!    duplicate-ACK threshold is raised according to a [`DupAckPolicy`]
//!    (fixed, derived from the topology's path count — the FatTree addressing
//!    trick of §2 — or adaptive à la RR-TCP).
//! 2. **MPTCP phase** — once the [`SwitchStrategy`] triggers (a configured
//!    data volume has been sent, or the first congestion event occurs), the
//!    connection opens N regular subflows governed by coupled congestion
//!    control. No new data is mapped onto the PS flow; it retires once its
//!    outstanding window drains.
//!
//! Short flows are expected to finish entirely inside the PS phase (low
//! latency, burst tolerant); long flows spend almost all their life in the
//! MPTCP phase (high throughput) — "a battle that both can win".

use crate::config::TransportConfig;
use crate::mptcp::compute_lia;
use crate::subflow::{LiaParams, Subflow};
use netsim::fluid::{pacing_rate_bps, FluidHandoff};
use netsim::{Addr, Agent, AgentCtx, AgentEvent, FlowId, Packet, PacketKind, Signal, SimTime};
use serde::{Deserialize, Serialize};

/// When MMPTCP leaves the packet-scatter phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SwitchStrategy {
    /// Switch after this many connection-level bytes have been handed to the
    /// network (paper §2, "Data Volume").
    DataVolume(u64),
    /// Switch at the first congestion event — fast retransmission or RTO —
    /// observed on the packet-scatter flow (paper §2, "Congestion Event").
    CongestionEvent,
    /// Never switch: the connection stays in packet-scatter mode for its whole
    /// life. This is the PS-only ablation (and the "packet scatter" baseline
    /// explored in the MPTCP data-centre paper the authors build on).
    Never,
}

impl Default for SwitchStrategy {
    fn default() -> Self {
        // Three times the paper's short-flow size: short flows (70 KB) finish
        // well inside the PS phase, long flows switch quickly.
        SwitchStrategy::DataVolume(210_000)
    }
}

/// How the packet-scatter phase picks its duplicate-ACK threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DupAckPolicy {
    /// A fixed threshold (3 = standard TCP; higher values tolerate scatter
    /// reordering at the cost of slower loss detection).
    Fixed(u32),
    /// Derive the threshold from the number of equal-cost paths between the
    /// endpoints (obtained from FatTree addressing or a VL2-style directory):
    /// `threshold = max(3, ceil(factor * paths))`.
    TopologyAware {
        /// Number of equal-cost paths between source and destination.
        paths: u32,
        /// Scaling factor applied to the path count.
        factor: f64,
    },
    /// RR-TCP-style adaptation: start at `initial` and raise the threshold by
    /// `step` every time a spurious retransmission is detected, up to `max`.
    Adaptive {
        /// Starting threshold.
        initial: u32,
        /// Increment per detected spurious retransmission.
        step: u32,
        /// Upper bound.
        max: u32,
    },
    /// Both mechanisms of §2 combined: the initial threshold is derived from
    /// the topology's path count (`max(3, ceil(factor * paths))`) and is then
    /// raised RR-TCP-style by `step` per detected spurious retransmission, up
    /// to `max`. This is the default the experiment runner installs, because
    /// at low path counts the queue-occupancy *difference* between paths (not
    /// the path count itself) bounds the reordering depth.
    TopologyAdaptive {
        /// Number of equal-cost paths between source and destination.
        paths: u32,
        /// Scaling factor applied to the path count for the initial threshold.
        factor: f64,
        /// Increment per detected spurious retransmission.
        step: u32,
        /// Upper bound on the adapted threshold.
        max: u32,
    },
}

impl Default for DupAckPolicy {
    fn default() -> Self {
        DupAckPolicy::TopologyAware {
            paths: 16,
            factor: 1.0,
        }
    }
}

impl DupAckPolicy {
    /// The threshold to install when the connection starts.
    pub fn initial_threshold(&self) -> u32 {
        match *self {
            DupAckPolicy::Fixed(t) => t.max(1),
            DupAckPolicy::TopologyAware { paths, factor }
            | DupAckPolicy::TopologyAdaptive { paths, factor, .. } => {
                ((paths as f64 * factor).ceil() as u32).max(3)
            }
            DupAckPolicy::Adaptive { initial, .. } => initial.max(1),
        }
    }

    /// The per-spurious-retransmission increment and upper bound, if this
    /// policy adapts at run time.
    pub fn adaptation(&self) -> Option<(u32, u32)> {
        match *self {
            DupAckPolicy::Fixed(_) | DupAckPolicy::TopologyAware { .. } => None,
            DupAckPolicy::Adaptive { step, max, .. }
            | DupAckPolicy::TopologyAdaptive { step, max, .. } => Some((step, max)),
        }
    }

    /// A topology-aware policy that also adapts (the experiment default):
    /// initial threshold = path count, bumped by `paths` per spurious
    /// retransmission, capped at `8 * paths`.
    pub fn topology_adaptive(paths: u32) -> Self {
        let paths = paths.max(1);
        DupAckPolicy::TopologyAdaptive {
            paths,
            factor: 1.0,
            step: paths.max(3),
            max: (8 * paths).max(24),
        }
    }
}

/// MMPTCP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MmptcpConfig {
    /// Per-subflow TCP parameters (shared by the PS flow and MPTCP subflows).
    pub transport: TransportConfig,
    /// Number of MPTCP subflows opened when the connection switches phase.
    pub num_subflows: usize,
    /// Phase-switching strategy.
    pub switch: SwitchStrategy,
    /// Duplicate-ACK threshold policy for the packet-scatter phase.
    pub dupack: DupAckPolicy,
    /// Couple the MPTCP-phase subflows with LIA.
    pub coupled: bool,
    /// Undo spurious fast retransmissions on the packet-scatter flow
    /// (RR-TCP/Eifel-style): when the receiver reports that a "recovered"
    /// segment had in fact arrived, the window reduction is reverted. §2 cites
    /// RR-TCP as the mechanism for minimising the cost of mis-identified
    /// losses; disable for the ablation bench.
    pub reorder_undo: bool,
}

impl Default for MmptcpConfig {
    fn default() -> Self {
        MmptcpConfig {
            transport: TransportConfig::default(),
            num_subflows: 8,
            switch: SwitchStrategy::default(),
            dupack: DupAckPolicy::default(),
            coupled: true,
            reorder_undo: true,
        }
    }
}

impl MmptcpConfig {
    /// A PS-only configuration (never switches): the packet-scatter ablation.
    pub fn packet_scatter_only() -> Self {
        MmptcpConfig {
            switch: SwitchStrategy::Never,
            num_subflows: 0,
            ..MmptcpConfig::default()
        }
    }

    /// Configure the topology-aware duplicate-ACK threshold from a path count.
    pub fn with_paths(mut self, paths: usize) -> Self {
        self.dupack = DupAckPolicy::TopologyAware {
            paths: paths as u32,
            factor: 1.0,
        };
        self
    }
}

/// Which phase the connection is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MmptcpPhase {
    /// Initial packet-scatter phase.
    PacketScatter,
    /// After the switch: standard MPTCP.
    Mptcp,
}

/// The MMPTCP sender.
#[derive(Debug)]
pub struct MmptcpSender {
    cfg: MmptcpConfig,
    flow: FlowId,
    total: Option<u64>,
    /// Subflow 0: the packet-scatter flow.
    scatter: Subflow,
    /// Subflows 1..=N, created when the phase switches.
    subflows: Vec<Subflow>,
    phase: MmptcpPhase,
    next_data_seq: u64,
    data_acked: u64,
    rr_cursor: usize,
    switched_at: Option<SimTime>,
    spurious_seen: u64,
    completed: bool,
    /// True once the remainder of the flow has been handed to the fluid fast
    /// path. Only possible in the MPTCP phase — the packet-scatter protection
    /// phase always stays packet-exact.
    fluid_mode: bool,
}

impl MmptcpSender {
    /// Create an MMPTCP sender. The packet-scatter flow uses per-packet random
    /// source ports; the MPTCP-phase subflows use `base_src_port + i`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: MmptcpConfig,
        flow: FlowId,
        src: Addr,
        dst: Addr,
        base_src_port: u16,
        dst_port: u16,
        total: Option<u64>,
    ) -> Self {
        let mut scatter = Subflow::new(
            cfg.transport,
            0,
            true,
            src,
            dst,
            base_src_port,
            dst_port,
            flow,
        );
        scatter.set_dupack_threshold(cfg.dupack.initial_threshold());
        scatter.set_undo_on_spurious(cfg.reorder_undo);
        let subflows = (0..cfg.num_subflows)
            .map(|i| {
                Subflow::new(
                    cfg.transport,
                    (i + 1) as u8,
                    false,
                    src,
                    dst,
                    base_src_port.wrapping_add((i + 1) as u16),
                    dst_port,
                    flow,
                )
            })
            .collect();
        MmptcpSender {
            cfg,
            flow,
            total,
            scatter,
            subflows,
            phase: MmptcpPhase::PacketScatter,
            next_data_seq: 0,
            data_acked: 0,
            rr_cursor: 0,
            switched_at: None,
            spurious_seen: 0,
            completed: false,
            fluid_mode: false,
        }
    }

    /// A packet-scatter-only sender (never switches to MPTCP).
    pub fn packet_scatter(
        flow: FlowId,
        src: Addr,
        dst: Addr,
        base_src_port: u16,
        dst_port: u16,
        total: Option<u64>,
    ) -> Self {
        MmptcpSender::new(
            MmptcpConfig::packet_scatter_only(),
            flow,
            src,
            dst,
            base_src_port,
            dst_port,
            total,
        )
    }

    /// Current phase.
    pub fn phase(&self) -> MmptcpPhase {
        self.phase
    }

    /// Connection-level bytes acknowledged so far.
    pub fn acked_bytes(&self) -> u64 {
        self.data_acked
    }

    /// Has the whole transfer been acknowledged?
    pub fn is_completed(&self) -> bool {
        self.completed
    }

    /// When the phase switch happened (if it has).
    pub fn switched_at(&self) -> Option<SimTime> {
        self.switched_at
    }

    /// The packet-scatter subflow.
    pub fn scatter_subflow(&self) -> &Subflow {
        &self.scatter
    }

    /// The MPTCP-phase subflows.
    pub fn mptcp_subflows(&self) -> &[Subflow] {
        &self.subflows
    }

    /// Total retransmission timeouts across the PS flow and all subflows.
    pub fn total_rtos(&self) -> u64 {
        self.scatter.counters().rto_count
            + self
                .subflows
                .iter()
                .map(|s| s.counters().rto_count)
                .sum::<u64>()
    }

    /// Total data bytes handed to the network across the PS flow and all
    /// subflows, including retransmissions.
    pub fn total_bytes_sent(&self) -> u64 {
        self.scatter.counters().data_bytes_sent
            + self
                .subflows
                .iter()
                .map(|s| s.counters().data_bytes_sent)
                .sum::<u64>()
    }

    fn remaining(&self) -> u64 {
        match self.total {
            Some(t) => t.saturating_sub(self.next_data_seq),
            None => u64::MAX,
        }
    }

    fn lia(&self) -> Option<LiaParams> {
        if self.cfg.coupled && self.phase == MmptcpPhase::Mptcp {
            Some(compute_lia(&self.subflows))
        } else {
            None
        }
    }

    fn maybe_adapt_dupack(&mut self) {
        if let Some((step, max)) = self.cfg.dupack.adaptation() {
            let spurious = self.scatter.counters().spurious_retransmits;
            if spurious > self.spurious_seen {
                let bump = ((spurious - self.spurious_seen) as u32).saturating_mul(step);
                let new = (self.scatter.dupack_threshold() + bump).min(max);
                self.scatter.set_dupack_threshold(new);
                self.spurious_seen = spurious;
            }
        }
    }

    fn should_switch(&self, congestion_event: bool) -> bool {
        if self.phase != MmptcpPhase::PacketScatter || self.cfg.num_subflows == 0 {
            return false;
        }
        match self.cfg.switch {
            SwitchStrategy::Never => false,
            SwitchStrategy::DataVolume(bytes) => self.next_data_seq >= bytes,
            SwitchStrategy::CongestionEvent => congestion_event,
        }
    }

    fn switch_to_mptcp(&mut self, ctx: &mut AgentCtx<'_>) {
        self.phase = MmptcpPhase::Mptcp;
        self.switched_at = Some(ctx.now());
        ctx.signal(Signal::PhaseSwitched {
            flow: self.flow,
            at: ctx.now(),
            bytes_sent: self.next_data_seq,
        });
        // Pin a flight-recorder sample of every subflow at the exact switch
        // instant, so traced cwnd series show the PS→MPTCP handoff even if
        // the decimating ring would otherwise skip this activation.
        self.scatter.trace_sample(ctx);
        for sf in &mut self.subflows {
            sf.start(ctx);
            sf.trace_sample(ctx);
        }
    }

    fn pump(&mut self, ctx: &mut AgentCtx<'_>) {
        loop {
            let remaining = self.remaining();
            if remaining == 0 {
                break;
            }
            let len = (self.cfg.transport.mss as u64).min(remaining);
            match self.phase {
                MmptcpPhase::PacketScatter => {
                    if self.scatter.window_space() < len {
                        break;
                    }
                    self.scatter
                        .send_segment(ctx, self.next_data_seq, len as u32);
                    self.next_data_seq += len;
                    // The data-volume trigger is checked as data is handed to
                    // the network, matching the paper's description.
                    if self.should_switch(false) {
                        self.switch_to_mptcp(ctx);
                    }
                }
                MmptcpPhase::Mptcp => {
                    let n = self.subflows.len();
                    if n == 0 {
                        break;
                    }
                    let mut assigned = false;
                    for off in 0..n {
                        let idx = (self.rr_cursor + off) % n;
                        let sf = &mut self.subflows[idx];
                        if sf.is_established() && sf.window_space() >= len {
                            sf.send_segment(ctx, self.next_data_seq, len as u32);
                            self.next_data_seq += len;
                            self.rr_cursor = (idx + 1) % n;
                            assigned = true;
                            break;
                        }
                    }
                    if !assigned {
                        break;
                    }
                }
            }
        }
    }

    fn check_completion(&mut self, ctx: &mut AgentCtx<'_>) {
        if self.completed {
            return;
        }
        if let Some(total) = self.total {
            if self.data_acked >= total {
                self.completed = true;
                ctx.signal(Signal::FlowCompleted {
                    flow: self.flow,
                    at: ctx.now(),
                    bytes: total,
                });
                crate::signal_redundant_bytes(ctx, self.flow, self.total_bytes_sent(), total);
            }
        }
    }

    fn on_packet(&mut self, ctx: &mut AgentCtx<'_>, pkt: &Packet) {
        self.data_acked = self.data_acked.max(pkt.data_ack);
        let lia = self.lia();
        let congestion = if pkt.subflow == 0 {
            let upd = self.scatter.on_packet(ctx, pkt, None);
            self.maybe_adapt_dupack();
            upd.congestion_event
        } else {
            let idx = pkt.subflow as usize - 1;
            if idx < self.subflows.len() {
                self.subflows[idx].on_packet(ctx, pkt, lia).congestion_event
            } else {
                false
            }
        };
        if self.should_switch(congestion) {
            self.switch_to_mptcp(ctx);
        }
        if !self.fluid_mode {
            self.pump(ctx);
            self.check_completion(ctx);
            self.maybe_fluid_handoff(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, token: u64) {
        let (idx, gen) = Subflow::decode_timer_token(token);
        let congestion = if idx == 0 {
            self.scatter.on_timer(ctx, gen).congestion_event
        } else {
            let i = idx as usize - 1;
            if i < self.subflows.len() {
                self.subflows[i].on_timer(ctx, gen).congestion_event
            } else {
                false
            }
        };
        if self.should_switch(congestion) {
            self.switch_to_mptcp(ctx);
        }
        if !self.fluid_mode {
            self.pump(ctx);
        }
    }

    /// Whether the remainder of the flow has been handed to the fluid engine.
    pub fn is_fluid_mode(&self) -> bool {
        self.fluid_mode
    }

    /// Hand the remainder to the fluid fast path — but **only in the MPTCP
    /// phase** (after the PS→MPTCP switch). The paper's packet-scatter
    /// protection phase stays packet-exact so the short-flow dynamics the
    /// paper studies are never approximated. The pacing cap sums the MPTCP
    /// subflows' cwnd/srtt rates.
    fn maybe_fluid_handoff(&mut self, ctx: &mut AgentCtx<'_>) {
        if self.fluid_mode || self.completed || self.phase != MmptcpPhase::Mptcp {
            return;
        }
        let Some(threshold) = ctx.fluid_threshold() else {
            return;
        };
        let Some(total) = self.total else {
            return; // unbounded background flows stay packet-level
        };
        let remaining = total.saturating_sub(self.next_data_seq);
        if remaining <= threshold {
            return;
        }
        let mut rate_cap_bps = 0u64;
        let mut best_srtt: Option<netsim::SimDuration> = None;
        let mut out_of_slow_start = false;
        for sf in self.subflows.iter().filter(|s| s.is_established()) {
            let Some(srtt) = sf.srtt() else { continue };
            out_of_slow_start |= !sf.in_slow_start();
            rate_cap_bps = rate_cap_bps.saturating_add(
                sf.cc_pacing_rate_bps()
                    .unwrap_or_else(|| pacing_rate_bps(sf.cwnd(), srtt)),
            );
            // Cap growth runs at the base (propagation) RTT: srtt is
            // queue-inflated at handoff time, and a frozen inflated value
            // would slow additive increase forever.
            let base = sf.min_rtt().unwrap_or(srtt);
            best_srtt = Some(match best_srtt {
                Some(cur) if cur <= base => cur,
                _ => base,
            });
        }
        let Some(srtt) = best_srtt else {
            return;
        };
        if !out_of_slow_start {
            return;
        }
        let mss = self.cfg.transport.mss;
        let template = self.subflows[0].fluid_template(self.next_data_seq, mss, ctx.now());
        ctx.request_fluid_handoff(FluidHandoff {
            template,
            remaining,
            base_bytes: self.next_data_seq,
            rate_cap_bps,
            srtt,
            mss,
            cc: self.cfg.transport.cc.fluid(),
        });
        self.fluid_mode = true;
    }
}

impl Agent for MmptcpSender {
    fn handle(&mut self, ctx: &mut AgentCtx<'_>, event: AgentEvent) {
        match event {
            AgentEvent::Start => {
                ctx.signal(Signal::FlowStarted {
                    flow: self.flow,
                    at: ctx.now(),
                    bytes: self.total.unwrap_or(u64::MAX),
                });
                self.scatter.start(ctx);
            }
            AgentEvent::Packet(pkt) => {
                if matches!(pkt.kind, PacketKind::Ack | PacketKind::SynAck) {
                    self.on_packet(ctx, &pkt);
                }
            }
            AgentEvent::Timer(token) => self.on_timer(ctx, token),
            AgentEvent::FluidComplete { bytes } => {
                if !self.completed {
                    self.completed = true;
                    self.scatter.abort();
                    for sf in &mut self.subflows {
                        sf.abort();
                    }
                    let total = self.total.unwrap_or(self.next_data_seq + bytes);
                    ctx.signal(Signal::FlowCompleted {
                        flow: self.flow,
                        at: ctx.now(),
                        bytes: total,
                    });
                    crate::signal_redundant_bytes(
                        ctx,
                        self.flow,
                        self.total_bytes_sent() + bytes,
                        total,
                    );
                }
            }
            AgentEvent::Finalize => {
                if !self.completed && !self.fluid_mode {
                    ctx.signal(Signal::FlowProgress {
                        flow: self.flow,
                        at: ctx.now(),
                        bytes: self.data_acked,
                    });
                    if self.total.is_some() {
                        crate::signal_redundant_bytes(
                            ctx,
                            self.flow,
                            self.total_bytes_sent(),
                            self.data_acked,
                        );
                    }
                }
            }
        }
    }

    fn describe(&self) -> String {
        format!(
            "mmptcp-sender({}, phase {:?}, {} subflows, {:?} bytes)",
            self.flow,
            self.phase,
            self.subflows.len(),
            self.total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::TransportReceiver;
    use netsim::{SimDuration, SimRng};

    struct Loop {
        tx: MmptcpSender,
        rx: TransportReceiver,
        rng: SimRng,
        timers: Vec<(SimTime, u64)>,
        signals: Vec<Signal>,
        now: SimTime,
        to_rx: Vec<Packet>,
        to_tx: Vec<Packet>,
    }

    impl Loop {
        fn new(cfg: MmptcpConfig, total: u64) -> Self {
            let flow = FlowId(1);
            Loop {
                tx: MmptcpSender::new(cfg, flow, Addr(0), Addr(1), 50_000, 80, Some(total)),
                rx: TransportReceiver::new(flow),
                rng: SimRng::new(5),
                timers: Vec::new(),
                signals: Vec::new(),
                now: SimTime::from_millis(1),
                to_rx: Vec::new(),
                to_tx: Vec::new(),
            }
        }

        fn run(&mut self, max_rounds: usize, mut drop: impl FnMut(&Packet) -> bool) {
            // Start.
            {
                let mut out = Vec::new();
                let mut ctx = AgentCtx::new(
                    self.now,
                    FlowId(1),
                    &mut self.rng,
                    &mut out,
                    &mut self.timers,
                    &mut self.signals,
                );
                self.tx.handle(&mut ctx, AgentEvent::Start);
                self.to_rx.extend(out);
            }
            for _ in 0..max_rounds {
                if self.tx.is_completed() {
                    break;
                }
                self.now += SimDuration::from_micros(100);
                let mut acks = Vec::new();
                for pkt in std::mem::take(&mut self.to_rx) {
                    if drop(&pkt) {
                        continue;
                    }
                    let mut ctx = AgentCtx::new(
                        self.now,
                        FlowId(1),
                        &mut self.rng,
                        &mut acks,
                        &mut self.timers,
                        &mut self.signals,
                    );
                    self.rx.handle(&mut ctx, AgentEvent::Packet(pkt));
                }
                self.to_tx.extend(acks);
                self.now += SimDuration::from_micros(100);
                let mut out = Vec::new();
                for pkt in std::mem::take(&mut self.to_tx) {
                    let mut ctx = AgentCtx::new(
                        self.now,
                        FlowId(1),
                        &mut self.rng,
                        &mut out,
                        &mut self.timers,
                        &mut self.signals,
                    );
                    self.tx.handle(&mut ctx, AgentEvent::Packet(pkt));
                }
                self.to_rx.extend(out);
                let due: Vec<(SimTime, u64)> = self
                    .timers
                    .iter()
                    .copied()
                    .filter(|(t, _)| *t <= self.now)
                    .collect();
                self.timers.retain(|(t, _)| *t > self.now);
                for (_, token) in due {
                    let mut out = Vec::new();
                    let mut ctx = AgentCtx::new(
                        self.now,
                        FlowId(1),
                        &mut self.rng,
                        &mut out,
                        &mut self.timers,
                        &mut self.signals,
                    );
                    self.tx.handle(&mut ctx, AgentEvent::Timer(token));
                    self.to_rx.extend(out);
                }
                if self.to_rx.is_empty() && self.to_tx.is_empty() && !self.tx.is_completed() {
                    if let Some(&(t, _)) = self.timers.iter().min_by_key(|(t, _)| *t) {
                        self.now = t;
                    }
                }
            }
        }
    }

    #[test]
    fn short_flow_completes_in_packet_scatter_phase() {
        // 70 KB (the paper's short flow) with the default 210 KB switch
        // threshold never leaves the PS phase.
        let mut l = Loop::new(MmptcpConfig::default(), 70_000);
        l.run(2_000, |_| false);
        assert!(l.tx.is_completed());
        assert_eq!(l.tx.phase(), MmptcpPhase::PacketScatter);
        assert!(l.tx.switched_at().is_none());
        // All data travelled on the scatter flow.
        assert!(l.tx.scatter_subflow().counters().data_bytes_sent >= 70_000);
        for sf in l.tx.mptcp_subflows() {
            assert_eq!(sf.counters().data_bytes_sent, 0);
        }
    }

    #[test]
    fn long_flow_switches_after_data_volume() {
        let cfg = MmptcpConfig {
            switch: SwitchStrategy::DataVolume(100_000),
            num_subflows: 4,
            ..MmptcpConfig::default()
        };
        let mut l = Loop::new(cfg, 500_000);
        l.run(5_000, |_| false);
        assert!(l.tx.is_completed());
        assert_eq!(l.tx.phase(), MmptcpPhase::Mptcp);
        assert!(l.tx.switched_at().is_some());
        assert!(l
            .signals
            .iter()
            .any(|s| matches!(s, Signal::PhaseSwitched { .. })));
        // MPTCP subflows carried the bulk of the data after the switch.
        let mptcp_bytes: u64 =
            l.tx.mptcp_subflows()
                .iter()
                .map(|s| s.counters().data_bytes_sent)
                .sum();
        assert!(mptcp_bytes > 0);
        // The PS flow stopped taking new data around the threshold.
        assert!(l.tx.scatter_subflow().counters().data_bytes_sent <= 150_000);
    }

    #[test]
    fn congestion_event_strategy_switches_on_loss() {
        let cfg = MmptcpConfig {
            switch: SwitchStrategy::CongestionEvent,
            num_subflows: 2,
            dupack: DupAckPolicy::Fixed(3),
            ..MmptcpConfig::default()
        };
        let mut l = Loop::new(cfg, 300_000);
        // Drop one early data packet (the first copy of scatter seq 0).
        let mut dropped = false;
        l.run(5_000, |p: &Packet| {
            if !dropped && p.kind == PacketKind::Data && p.subflow == 0 {
                dropped = true;
                true
            } else {
                false
            }
        });
        assert!(l.tx.is_completed());
        assert_eq!(l.tx.phase(), MmptcpPhase::Mptcp);
    }

    #[test]
    fn never_strategy_stays_in_scatter_mode() {
        let mut l = Loop::new(MmptcpConfig::packet_scatter_only(), 400_000);
        l.run(5_000, |_| false);
        assert!(l.tx.is_completed());
        assert_eq!(l.tx.phase(), MmptcpPhase::PacketScatter);
    }

    #[test]
    fn dupack_policy_thresholds() {
        assert_eq!(DupAckPolicy::Fixed(3).initial_threshold(), 3);
        assert_eq!(
            DupAckPolicy::TopologyAware {
                paths: 16,
                factor: 1.0
            }
            .initial_threshold(),
            16
        );
        assert_eq!(
            DupAckPolicy::TopologyAware {
                paths: 2,
                factor: 0.5
            }
            .initial_threshold(),
            3,
            "never below the TCP default of 3"
        );
        assert_eq!(
            DupAckPolicy::Adaptive {
                initial: 3,
                step: 2,
                max: 20
            }
            .initial_threshold(),
            3
        );
    }

    #[test]
    fn topology_aware_threshold_is_installed_on_the_scatter_flow() {
        let cfg = MmptcpConfig::default().with_paths(12);
        let tx = MmptcpSender::new(cfg, FlowId(1), Addr(0), Addr(1), 50_000, 80, Some(1));
        assert_eq!(tx.scatter_subflow().dupack_threshold(), 12);
    }

    #[test]
    fn topology_adaptive_policy_combines_both_mechanisms() {
        let p = DupAckPolicy::topology_adaptive(4);
        assert_eq!(p.initial_threshold(), 4);
        assert_eq!(p.adaptation(), Some((4, 32)));
        let q = DupAckPolicy::topology_adaptive(16);
        assert_eq!(q.initial_threshold(), 16);
        assert_eq!(q.adaptation(), Some((16, 128)));
        // Non-adaptive policies report no adaptation.
        assert_eq!(DupAckPolicy::Fixed(3).adaptation(), None);
        assert_eq!(
            DupAckPolicy::TopologyAware {
                paths: 4,
                factor: 1.0
            }
            .adaptation(),
            None
        );
    }

    #[test]
    fn adaptive_policy_raises_threshold_after_spurious_retransmits() {
        // Force a low initial threshold so reordering triggers a spurious fast
        // retransmit, then check that the threshold was bumped.
        let cfg = MmptcpConfig {
            dupack: DupAckPolicy::TopologyAdaptive {
                paths: 1,
                factor: 1.0,
                step: 5,
                max: 40,
            },
            switch: SwitchStrategy::Never,
            ..MmptcpConfig::default()
        };
        let mut l = Loop::new(cfg, 140_000);
        // Delay (reorder) one early packet: divert the first data packet and
        // deliver it two rounds later by re-injecting it into `to_rx`.
        let mut held: Option<Packet> = None;
        let mut round = 0usize;
        let initial_threshold = l.tx.scatter_subflow().dupack_threshold();
        // Custom loop: we need reordering, not loss, so run manually.
        {
            let mut out = Vec::new();
            let mut ctx = AgentCtx::new(
                l.now,
                FlowId(1),
                &mut l.rng,
                &mut out,
                &mut l.timers,
                &mut l.signals,
            );
            l.tx.handle(&mut ctx, AgentEvent::Start);
            l.to_rx.extend(out);
        }
        for _ in 0..4_000 {
            if l.tx.is_completed() {
                break;
            }
            round += 1;
            l.now += SimDuration::from_micros(100);
            let mut acks = Vec::new();
            let incoming = std::mem::take(&mut l.to_rx);
            for pkt in incoming {
                if held.is_none() && round > 2 && pkt.kind == PacketKind::Data && pkt.seq > 0 {
                    held = Some(pkt);
                    continue;
                }
                let mut ctx = AgentCtx::new(
                    l.now,
                    FlowId(1),
                    &mut l.rng,
                    &mut acks,
                    &mut l.timers,
                    &mut l.signals,
                );
                l.rx.handle(&mut ctx, AgentEvent::Packet(pkt));
            }
            // Release the held packet three rounds after capturing it.
            if round > 6 {
                if let Some(pkt) = held.take() {
                    held = None;
                    let mut ctx = AgentCtx::new(
                        l.now,
                        FlowId(1),
                        &mut l.rng,
                        &mut acks,
                        &mut l.timers,
                        &mut l.signals,
                    );
                    l.rx.handle(&mut ctx, AgentEvent::Packet(pkt));
                }
            }
            l.to_tx.extend(acks);
            l.now += SimDuration::from_micros(100);
            let mut out = Vec::new();
            for pkt in std::mem::take(&mut l.to_tx) {
                let mut ctx = AgentCtx::new(
                    l.now,
                    FlowId(1),
                    &mut l.rng,
                    &mut out,
                    &mut l.timers,
                    &mut l.signals,
                );
                l.tx.handle(&mut ctx, AgentEvent::Packet(pkt));
            }
            l.to_rx.extend(out);
            let due: Vec<(SimTime, u64)> = l
                .timers
                .iter()
                .copied()
                .filter(|(t, _)| *t <= l.now)
                .collect();
            l.timers.retain(|(t, _)| *t > l.now);
            for (_, token) in due {
                let mut out = Vec::new();
                let mut ctx = AgentCtx::new(
                    l.now,
                    FlowId(1),
                    &mut l.rng,
                    &mut out,
                    &mut l.timers,
                    &mut l.signals,
                );
                l.tx.handle(&mut ctx, AgentEvent::Timer(token));
                l.to_rx.extend(out);
            }
            if l.to_rx.is_empty() && l.to_tx.is_empty() && !l.tx.is_completed() {
                if let Some(&(t, _)) = l.timers.iter().min_by_key(|(t, _)| *t) {
                    l.now = t;
                }
            }
        }
        assert!(l.tx.is_completed());
        if l.tx.scatter_subflow().counters().spurious_retransmits > 0 {
            assert!(
                l.tx.scatter_subflow().dupack_threshold() > initial_threshold,
                "threshold must rise after a spurious retransmission"
            );
        }
    }

    #[test]
    fn reorder_undo_is_installed_by_default_and_can_be_disabled() {
        let with = MmptcpSender::new(
            MmptcpConfig::default(),
            FlowId(1),
            Addr(0),
            Addr(1),
            50_000,
            80,
            Some(1),
        );
        assert!(with.cfg.reorder_undo);
        let without_cfg = MmptcpConfig {
            reorder_undo: false,
            ..MmptcpConfig::default()
        };
        let without = MmptcpSender::new(
            without_cfg,
            FlowId(2),
            Addr(0),
            Addr(1),
            50_000,
            80,
            Some(1),
        );
        assert!(!without.cfg.reorder_undo);
    }

    #[test]
    fn completed_flow_reports_bytes_once() {
        let mut l = Loop::new(MmptcpConfig::default(), 10_000);
        l.run(1_000, |_| false);
        let completions = l
            .signals
            .iter()
            .filter(|s| matches!(s, Signal::FlowCompleted { .. }))
            .count();
        assert_eq!(completions, 1);
    }
}
