//! The per-path TCP engine ("subflow").
//!
//! A [`Subflow`] is a complete single-path TCP sender state machine: SYN
//! handshake, sliding window, slow start / congestion avoidance, duplicate-ACK
//! counting with a configurable threshold, fast retransmit + NewReno-style
//! fast recovery, RTO with exponential backoff, and optional DCTCP-style ECN
//! reaction.
//!
//! Every transport in this crate is built out of subflows:
//! * plain TCP is one subflow whose data sequence equals its subflow sequence;
//! * MPTCP is N subflows fed by a connection-level scheduler and coupled by
//!   LIA congestion control;
//! * MMPTCP starts with a single *packet-scatter* subflow (source port
//!   randomised per packet, high duplicate-ACK threshold) and later opens
//!   MPTCP subflows;
//! * DCTCP is one subflow with `ecn` enabled.
//!
//! The congestion *response* itself — how the window grows and backs off —
//! lives behind the [`crate::cc::CongestionController`] trait; the subflow
//! only detects events (dup-ACK thresholds, partial ACKs, timeouts, spurious
//! retransmissions, round-trip boundaries) and drives the trait object.

use crate::cc::{CongestionController, EcnResponder};
use crate::config::TransportConfig;
use crate::rtt::RttEstimator;
use netsim::{Addr, AgentCtx, Ecn, FlowId, Packet, PacketKind, Signal, SimTime};
use std::collections::BTreeMap;

/// Parameters of MPTCP's Linked-Increase (coupled) congestion control for one
/// ACK, computed by the connection from the state of all subflows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiaParams {
    /// The aggressiveness factor `alpha` of RFC 6356.
    pub alpha: f64,
    /// Sum of the congestion windows of all established subflows, in bytes.
    pub total_cwnd_bytes: f64,
}

/// What happened inside the subflow while processing an event; connections use
/// this to drive phase switches and coupled congestion control.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SubflowUpdate {
    /// The subflow completed its handshake during this activation.
    pub became_established: bool,
    /// A congestion event (fast retransmit or RTO) occurred.
    pub congestion_event: bool,
    /// Subflow-level bytes newly acknowledged by this activation.
    pub newly_acked: u64,
}

impl SubflowUpdate {
    fn merge(&mut self, other: SubflowUpdate) {
        self.became_established |= other.became_established;
        self.congestion_event |= other.congestion_event;
        self.newly_acked += other.newly_acked;
    }
}

/// Handshake / lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Closed,
    SynSent,
    Established,
}

/// Per-subflow counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubflowCounters {
    /// Retransmission timeouts that fired.
    pub rto_count: u64,
    /// Fast retransmissions triggered.
    pub fast_retransmits: u64,
    /// Retransmissions judged spurious (the original had in fact arrived).
    pub spurious_retransmits: u64,
    /// Data packets sent (including retransmissions).
    pub data_packets_sent: u64,
    /// Data bytes sent (including retransmissions).
    pub data_bytes_sent: u64,
}

/// A single-path TCP sender engine.
#[derive(Debug)]
pub struct Subflow {
    cfg: TransportConfig,
    /// Subflow index within the connection.
    pub index: u8,
    /// When true, every outgoing data packet gets a freshly randomised source
    /// port so ECMP sprays packets over all available paths (MMPTCP PS phase).
    pub scatter: bool,
    src: Addr,
    dst: Addr,
    src_port: u16,
    dst_port: u16,
    flow: FlowId,

    phase: Phase,
    snd_una: u64,
    snd_nxt: u64,
    /// The congestion state machine this subflow drives.
    cc: Box<dyn CongestionController>,
    dup_acks: u32,
    dupack_threshold: u32,
    in_recovery: bool,
    recover: u64,
    /// When true, a fast retransmission later found to be spurious (the
    /// receiver reports the original arrived after all) undoes the congestion
    /// response: cwnd/ssthresh are restored to their pre-recovery values and
    /// any remaining recovery state is cleared. This is the RR-TCP/Eifel-style
    /// reaction the paper cites for the packet-scatter phase, where reordering
    /// routinely masquerades as loss.
    undo_on_spurious: bool,
    /// True from entering a fast-recovery episode until either an undo is
    /// performed or an RTO fires (timeouts are never undone).
    undo_armed: bool,
    rtt: RttEstimator,

    /// Pending RTO deadline and the generation of the last armed timer.
    rto_deadline: Option<SimTime>,
    timer_gen: u64,

    /// Mapping from subflow sequence to (connection data sequence, length)
    /// for every byte range that is unacknowledged at subflow level.
    mappings: BTreeMap<u64, (u64, u32)>,

    /// Sequence number of the most recent retransmission (for spurious
    /// retransmission detection via receiver duplicate hints).
    last_retransmitted: Option<u64>,

    /// DCTCP/D²TCP ECN response, present iff the config negotiates ECN.
    ecn: Option<EcnResponder>,
    /// Subflow sequence at which the current round trip ends (`snd_una`
    /// crossing it completes the round): drives the ECN responder's α update
    /// and the controller's `on_round_trip` hook.
    round_end: u64,

    counters: SubflowCounters,
}

impl Subflow {
    /// Create a subflow in the `Closed` state.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: TransportConfig,
        index: u8,
        scatter: bool,
        src: Addr,
        dst: Addr,
        src_port: u16,
        dst_port: u16,
        flow: FlowId,
    ) -> Self {
        let rtt = RttEstimator::new(cfg.min_rto, cfg.initial_rto, cfg.max_rto);
        let cc = cfg.cc.build(&cfg);
        let ecn = if cfg.ecn {
            Some(EcnResponder::new(cfg.dctcp_g))
        } else {
            None
        };
        Subflow {
            dupack_threshold: cfg.dupack_threshold,
            cfg,
            index,
            scatter,
            src,
            dst,
            src_port,
            dst_port,
            flow,
            phase: Phase::Closed,
            snd_una: 0,
            snd_nxt: 0,
            cc,
            dup_acks: 0,
            in_recovery: false,
            recover: 0,
            undo_on_spurious: false,
            undo_armed: false,
            rtt,
            rto_deadline: None,
            timer_gen: 0,
            mappings: BTreeMap::new(),
            last_retransmitted: None,
            ecn,
            round_end: 0,
            counters: SubflowCounters::default(),
        }
    }

    // --- accessors -------------------------------------------------------

    /// Has the handshake completed?
    pub fn is_established(&self) -> bool {
        self.phase == Phase::Established
    }

    /// Congestion window in bytes.
    pub fn cwnd(&self) -> f64 {
        self.cc.cwnd()
    }

    /// Stable label of the congestion controller driving this subflow.
    pub fn cc_name(&self) -> &'static str {
        self.cc.name()
    }

    /// The controller's explicit pacing rate (BBR), if it exports one.
    /// `None` means pace from `cwnd / srtt` as always.
    pub fn cc_pacing_rate_bps(&self) -> Option<u64> {
        self.cc.pacing_rate_bps()
    }

    /// Force the controller's slow-start threshold — an instrumentation/test
    /// hook (e.g. to pin a subflow into congestion avoidance), not part of
    /// the normal event-driven flow.
    pub fn set_ssthresh(&mut self, ssthresh: f64) {
        self.cc.set_ssthresh(ssthresh);
    }

    /// Smoothed RTT, if measured.
    pub fn srtt(&self) -> Option<netsim::SimDuration> {
        self.rtt.srtt()
    }

    /// Minimum RTT ever sampled (propagation-delay estimate), if measured.
    pub fn min_rtt(&self) -> Option<netsim::SimDuration> {
        self.rtt.min_rtt()
    }

    /// Bytes in flight at subflow level.
    pub fn outstanding(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Subflow-level bytes acknowledged so far.
    pub fn acked_bytes(&self) -> u64 {
        self.snd_una
    }

    /// True when the subflow holds no unacknowledged data.
    pub fn is_drained(&self) -> bool {
        self.mappings.is_empty() && self.outstanding() == 0
    }

    /// How many more bytes the congestion window allows in flight right now.
    pub fn window_space(&self) -> u64 {
        if self.phase != Phase::Established {
            return 0;
        }
        let flight = self.outstanding() as f64;
        let cwnd = self.cc.cwnd();
        if cwnd > flight {
            (cwnd - flight) as u64
        } else {
            0
        }
    }

    /// The current duplicate-ACK threshold.
    pub fn dupack_threshold(&self) -> u32 {
        self.dupack_threshold
    }

    /// Override the duplicate-ACK threshold (used by MMPTCP's topology-aware
    /// and adaptive reordering policies).
    pub fn set_dupack_threshold(&mut self, threshold: u32) {
        self.dupack_threshold = threshold.max(1);
    }

    /// Enable or disable the RR-TCP-style undo of spurious fast retransmits.
    pub fn set_undo_on_spurious(&mut self, enabled: bool) {
        self.undo_on_spurious = enabled;
    }

    /// Whether the subflow is currently in (fast or timeout) recovery.
    pub fn in_recovery(&self) -> bool {
        self.in_recovery
    }

    /// Per-subflow counters.
    pub fn counters(&self) -> SubflowCounters {
        self.counters
    }

    /// The DCTCP marked-fraction estimate (0 when ECN is off).
    pub fn dctcp_alpha(&self) -> f64 {
        self.ecn.map(|e| e.alpha()).unwrap_or(0.0)
    }

    /// Set D²TCP's deadline-imminence exponent `d` (clamped to a sane range;
    /// 1.0 reproduces plain DCTCP). Values below 1 make the flow hold its
    /// window near a deadline; values above 1 make it yield. A no-op when
    /// ECN is off (there is no responder to correct).
    pub fn set_dctcp_penalty_exponent(&mut self, d: f64) {
        if let Some(e) = &mut self.ecn {
            e.set_penalty_exponent(d);
        }
    }

    /// The current D²TCP deadline-imminence exponent (1.0 when ECN is off).
    pub fn dctcp_penalty_exponent(&self) -> f64 {
        self.ecn.map(|e| e.penalty_exponent()).unwrap_or(1.0)
    }

    /// The source port this subflow is pinned to (ignored per-packet when
    /// `scatter` is on).
    pub fn src_port(&self) -> u16 {
        self.src_port
    }

    /// Whether the controller is still in its startup regime
    /// (`cwnd < ssthresh` for loss-based controllers, `Startup` for BBR).
    /// The fluid fast path only accepts flows that have left slow start, so
    /// the handed-off pacing rate reflects a steady-state estimate.
    pub fn in_slow_start(&self) -> bool {
        self.cc.in_slow_start()
    }

    /// Build a representative data packet for a fluid handoff: same 5-tuple
    /// (pinned source port — scatter randomisation does not apply, the fluid
    /// path pins one route), flow, subflow index and ECN capability as a real
    /// segment at `data_seq`, but never transmitted. The fluid engine walks
    /// the routing tables with it to discover which links the flow occupies.
    pub fn fluid_template(&self, data_seq: u64, payload: u32, now: SimTime) -> Packet {
        let mut pkt = Packet::data(
            self.src,
            self.dst,
            self.src_port,
            self.dst_port,
            self.flow,
            self.index,
            self.snd_nxt,
            data_seq,
            payload,
            now,
        );
        if self.cfg.ecn {
            pkt.ecn = Ecn::Capable;
        }
        pkt
    }

    /// Emit one flight-recorder [`Signal::CwndSample`] for this subflow —
    /// but only when the experiment has tracing enabled, so the default
    /// (untraced) hot path pays exactly one branch and never constructs a
    /// sample. Called automatically after every state-changing activation
    /// ([`Subflow::on_packet`] / [`Subflow::on_timer`]); connections may
    /// also call it directly to pin a sample at a significant instant (the
    /// MMPTCP phase switch does).
    pub fn trace_sample(&self, ctx: &mut AgentCtx<'_>) {
        if !ctx.trace_enabled() {
            return;
        }
        ctx.signal(Signal::CwndSample {
            flow: self.flow,
            subflow: self.index,
            at: ctx.now(),
            cwnd: self.cc.cwnd() as u64,
            srtt_us: self.rtt.srtt().map(|d| d.as_micros()).unwrap_or(0),
            outstanding: self.outstanding(),
            cc: self.cc.name(),
        });
    }

    // --- lifecycle --------------------------------------------------------

    /// Begin the handshake: send a SYN and arm the retransmission timer.
    pub fn start(&mut self, ctx: &mut AgentCtx<'_>) {
        assert_eq!(self.phase, Phase::Closed, "subflow already started");
        self.phase = Phase::SynSent;
        self.send_syn(ctx);
    }

    fn send_syn(&mut self, ctx: &mut AgentCtx<'_>) {
        let mut syn = Packet::data(
            self.src,
            self.dst,
            self.pick_port(ctx),
            self.dst_port,
            self.flow,
            self.index,
            0,
            0,
            0,
            ctx.now(),
        );
        syn.kind = PacketKind::Syn;
        if self.cfg.ecn {
            syn.ecn = Ecn::Capable;
        }
        ctx.send(syn);
        self.arm_timer(ctx);
    }

    fn pick_port(&self, ctx: &mut AgentCtx<'_>) -> u16 {
        if self.scatter {
            ctx.rng().ephemeral_port()
        } else {
            self.src_port
        }
    }

    /// Abort the subflow: forget every unacknowledged mapping and cancel the
    /// retransmission timer, leaving the subflow quiescent. RepFlow-style
    /// transports use this to silence the losing replica once the connection
    /// has completed through the other one — without an abort the laggard
    /// would keep retransmitting (and firing RTO signals) for data nobody
    /// needs any more.
    pub fn abort(&mut self) {
        self.mappings.clear();
        self.snd_una = self.snd_nxt;
        self.in_recovery = false;
        self.dup_acks = 0;
        self.cancel_timer();
    }

    // --- timers -----------------------------------------------------------

    /// Encode this subflow's timer token (subflow index in the top bits,
    /// generation below), so one agent can multiplex many subflows over the
    /// single timer token namespace.
    pub fn timer_token(index: u8, gen: u64) -> u64 {
        ((index as u64) << 48) | (gen & 0xFFFF_FFFF_FFFF)
    }

    /// Decode a timer token into (subflow index, generation).
    pub fn decode_timer_token(token: u64) -> (u8, u64) {
        ((token >> 48) as u8, token & 0xFFFF_FFFF_FFFF)
    }

    fn arm_timer(&mut self, ctx: &mut AgentCtx<'_>) {
        self.timer_gen += 1;
        let deadline = ctx.now() + self.rtt.rto();
        self.rto_deadline = Some(deadline);
        ctx.set_timer(deadline, Self::timer_token(self.index, self.timer_gen));
    }

    fn cancel_timer(&mut self) {
        self.rto_deadline = None;
        self.timer_gen += 1;
    }

    /// Handle a timer firing for this subflow. `gen` is the generation part of
    /// the token; stale timers are ignored.
    pub fn on_timer(&mut self, ctx: &mut AgentCtx<'_>, gen: u64) -> SubflowUpdate {
        let mut update = SubflowUpdate::default();
        if gen != self.timer_gen || self.rto_deadline.is_none() {
            return update; // stale or cancelled
        }
        match self.phase {
            Phase::Closed => {}
            Phase::SynSent => {
                // Lost SYN: back off and retry.
                self.rtt.backoff();
                self.counters.rto_count += 1;
                update.congestion_event = true;
                ctx.signal(Signal::RetransmissionTimeout {
                    flow: self.flow,
                    subflow: self.index,
                    at: ctx.now(),
                });
                self.send_syn(ctx);
            }
            Phase::Established => {
                if self.is_drained() {
                    self.cancel_timer();
                    return update;
                }
                // RFC 5681 timeout reaction. Entering the recovery state with
                // `recover = snd_nxt` makes subsequent partial ACKs retransmit
                // the remaining holes (go-back-N style, ACK clocked) instead of
                // waiting one RTO per lost segment — essential when a burst
                // overflows a drop-tail queue and the whole tail of the window
                // is missing.
                self.cc.on_rto(self.outstanding());
                self.in_recovery = true;
                self.recover = self.snd_nxt;
                self.dup_acks = 0;
                self.undo_armed = false;
                self.rtt.backoff();
                self.counters.rto_count += 1;
                update.congestion_event = true;
                ctx.signal(Signal::RetransmissionTimeout {
                    flow: self.flow,
                    subflow: self.index,
                    at: ctx.now(),
                });
                self.retransmit_first_unacked(ctx);
                self.arm_timer(ctx);
            }
        }
        if update.congestion_event {
            self.trace_sample(ctx);
        }
        update
    }

    // --- sending ----------------------------------------------------------

    /// Send one data segment carrying connection-level bytes
    /// `[data_seq, data_seq + len)`. The caller is responsible for respecting
    /// [`Subflow::window_space`].
    pub fn send_segment(&mut self, ctx: &mut AgentCtx<'_>, data_seq: u64, len: u32) {
        debug_assert!(
            self.phase == Phase::Established,
            "cannot send before handshake"
        );
        debug_assert!(len > 0 && len <= self.cfg.mss);
        let seq = self.snd_nxt;
        self.mappings.insert(seq, (data_seq, len));
        self.snd_nxt += len as u64;
        self.transmit(ctx, seq, data_seq, len, false);
        if self.rto_deadline.is_none() {
            self.arm_timer(ctx);
        }
    }

    fn transmit(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        seq: u64,
        data_seq: u64,
        len: u32,
        is_retransmit: bool,
    ) {
        let mut pkt = Packet::data(
            self.src,
            self.dst,
            self.pick_port(ctx),
            self.dst_port,
            self.flow,
            self.index,
            seq,
            data_seq,
            len,
            ctx.now(),
        );
        if self.cfg.ecn {
            pkt.ecn = Ecn::Capable;
        }
        self.counters.data_packets_sent += 1;
        self.counters.data_bytes_sent += len as u64;
        if is_retransmit {
            self.last_retransmitted = Some(seq);
        }
        ctx.send(pkt);
    }

    fn retransmit_first_unacked(&mut self, ctx: &mut AgentCtx<'_>) {
        // Find the mapping that covers snd_una (segments are atomic, so an
        // exact or preceding entry covers it).
        let entry = self
            .mappings
            .range(..=self.snd_una)
            .next_back()
            .map(|(s, m)| (*s, *m))
            .or_else(|| {
                self.mappings
                    .range(self.snd_una..)
                    .next()
                    .map(|(s, m)| (*s, *m))
            });
        if let Some((seq, (data_seq, len))) = entry {
            self.transmit(ctx, seq, data_seq, len, true);
        }
    }

    // --- receiving --------------------------------------------------------

    /// Process a packet addressed to this subflow (SYN-ACK or ACK).
    ///
    /// `lia` carries the coupled-congestion-control parameters when the
    /// connection uses MPTCP's linked increase; `None` means plain Reno.
    pub fn on_packet(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        pkt: &Packet,
        lia: Option<LiaParams>,
    ) -> SubflowUpdate {
        let mut update = SubflowUpdate::default();
        match pkt.kind {
            PacketKind::SynAck if self.phase == Phase::SynSent => {
                self.phase = Phase::Established;
                self.cc.on_established(ctx.now(), &self.rtt);
                self.rtt.on_sample(ctx.now() - pkt.sent_at);
                self.cancel_timer();
                update.became_established = true;
            }
            PacketKind::Ack | PacketKind::FinAck => {
                update.merge(self.on_ack(ctx, pkt, lia));
            }
            _ => {}
        }
        self.trace_sample(ctx);
        update
    }

    fn on_ack(
        &mut self,
        ctx: &mut AgentCtx<'_>,
        pkt: &Packet,
        lia: Option<LiaParams>,
    ) -> SubflowUpdate {
        let mut update = SubflowUpdate::default();
        if self.phase != Phase::Established {
            return update;
        }
        let ack = pkt.ack;
        if ack > self.snd_una {
            let newly = ack - self.snd_una;
            update.newly_acked = newly;
            self.snd_una = ack;
            self.drop_acked_mappings();
            self.dup_acks = 0;
            // RTT sample from the echoed transmit timestamp.
            if pkt.sent_at > SimTime::ZERO {
                self.rtt.on_sample(ctx.now() - pkt.sent_at);
            }

            if self.in_recovery {
                if ack >= self.recover {
                    // Full ACK: leave recovery.
                    self.in_recovery = false;
                    self.cc.on_recovery_exit();
                } else {
                    // Partial ACK (NewReno): retransmit the next hole and stay
                    // in recovery.
                    self.retransmit_first_unacked(ctx);
                }
            } else {
                self.cc.on_ack(newly, ctx.now(), &self.rtt, lia);
            }

            if let Some(resp) = &mut self.ecn {
                resp.on_ack(newly, pkt.ecn_echo);
            }
            if self.snd_una >= self.round_end {
                // One round trip of data completed: let the ECN responder
                // fold in its marked fraction and give the controller its
                // per-round hook, then start the next round at snd_nxt —
                // exactly the window DCTCP's α-EWMA has always used.
                if let Some(resp) = &mut self.ecn {
                    resp.on_round_end(self.cc.as_mut());
                }
                self.cc.on_round_trip(ctx.now(), &self.rtt);
                self.round_end = self.snd_nxt;
            }

            if self.is_drained() {
                self.cancel_timer();
            } else {
                self.arm_timer(ctx);
            }
        } else if self.outstanding() > 0 {
            // Duplicate ACK.
            if pkt.dup_hint {
                if let Some(seq) = self.last_retransmitted {
                    if seq < ack {
                        self.counters.spurious_retransmits += 1;
                        self.last_retransmitted = None;
                        ctx.signal(Signal::SpuriousRetransmit {
                            flow: self.flow,
                            subflow: self.index,
                            at: ctx.now(),
                        });
                        if self.undo_on_spurious && self.undo_armed {
                            // RR-TCP/Eifel-style undo: the "loss" was in fact
                            // reordering, so the window reduction (and any
                            // remaining recovery state) is reverted.
                            self.in_recovery = false;
                            self.cc.undo();
                            self.dup_acks = 0;
                            self.undo_armed = false;
                        }
                    }
                }
            }
            self.dup_acks += 1;
            if !self.in_recovery && self.dup_acks >= self.dupack_threshold {
                // Fast retransmit + enter fast recovery. The controller
                // snapshots its pre-loss state for a possible undo.
                self.cc.on_loss(self.outstanding());
                self.undo_armed = true;
                self.in_recovery = true;
                self.recover = self.snd_nxt;
                self.counters.fast_retransmits += 1;
                update.congestion_event = true;
                ctx.signal(Signal::FastRetransmit {
                    flow: self.flow,
                    subflow: self.index,
                    at: ctx.now(),
                });
                self.retransmit_first_unacked(ctx);
                self.arm_timer(ctx);
            } else if self.in_recovery {
                // Window inflation while the hole is being repaired.
                self.cc.on_dup_ack();
            }
        }
        update
    }

    fn drop_acked_mappings(&mut self) {
        let una = self.snd_una;
        while let Some((&seq, &(_, len))) = self.mappings.iter().next() {
            if seq + len as u64 <= una {
                self.mappings.remove(&seq);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{SimDuration, SimRng};

    const MSS: u32 = 1400;

    struct Harness {
        rng: SimRng,
        out: Vec<Packet>,
        timers: Vec<(SimTime, u64)>,
        signals: Vec<Signal>,
        now: SimTime,
    }

    impl Harness {
        fn new() -> Self {
            Harness {
                rng: SimRng::new(1),
                out: Vec::new(),
                timers: Vec::new(),
                signals: Vec::new(),
                now: SimTime::from_millis(1),
            }
        }
        fn with<R>(&mut self, f: impl FnOnce(&mut AgentCtx<'_>) -> R) -> R {
            let mut ctx = AgentCtx::new(
                self.now,
                FlowId(1),
                &mut self.rng,
                &mut self.out,
                &mut self.timers,
                &mut self.signals,
            );
            f(&mut ctx)
        }
        fn advance(&mut self, d: SimDuration) {
            self.now += d;
        }
    }

    fn subflow(scatter: bool) -> Subflow {
        Subflow::new(
            TransportConfig::default(),
            0,
            scatter,
            Addr(0),
            Addr(1),
            50_000,
            80,
            FlowId(1),
        )
    }

    /// Establish the subflow by simulating a SYN / SYN-ACK exchange.
    fn establish(h: &mut Harness, sf: &mut Subflow) {
        h.with(|ctx| sf.start(ctx));
        assert_eq!(h.out.len(), 1);
        let syn = h.out.pop().unwrap();
        assert_eq!(syn.kind, PacketKind::Syn);
        h.advance(SimDuration::from_micros(100));
        let mut synack = syn.reply_template();
        synack.kind = PacketKind::SynAck;
        synack.sent_at = syn.sent_at;
        let upd = h.with(|ctx| sf.on_packet(ctx, &synack, None));
        assert!(upd.became_established);
        assert!(sf.is_established());
    }

    fn ack_for(sf: &Subflow, ack: u64, sent_at: SimTime) -> Packet {
        let mut p = Packet::ack(
            Addr(1),
            Addr(0),
            80,
            50_000,
            FlowId(1),
            sf.index,
            ack,
            ack,
            sent_at,
        );
        p.sent_at = sent_at;
        p
    }

    #[test]
    fn handshake_and_initial_window() {
        let mut h = Harness::new();
        let mut sf = subflow(false);
        establish(&mut h, &mut sf);
        assert_eq!(sf.cwnd(), (10 * MSS) as f64);
        assert_eq!(sf.window_space(), (10 * MSS) as u64);
        assert!(sf.srtt().is_some());
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut h = Harness::new();
        let mut sf = subflow(false);
        establish(&mut h, &mut sf);
        let before = sf.cwnd();
        // Send and ack one full initial window.
        for i in 0..10u64 {
            h.with(|ctx| sf.send_segment(ctx, i * MSS as u64, MSS));
        }
        let sent_at = h.now;
        h.advance(SimDuration::from_micros(200));
        for i in 1..=10u64 {
            let ack = ack_for(&sf, i * MSS as u64, sent_at);
            h.with(|ctx| sf.on_packet(ctx, &ack, None));
        }
        // Slow start: cwnd should have grown by ~1 MSS per acked MSS.
        assert!(
            sf.cwnd() >= before + (9 * MSS) as f64,
            "cwnd {} should have nearly doubled from {}",
            sf.cwnd(),
            before
        );
    }

    #[test]
    fn congestion_avoidance_grows_slowly() {
        let mut h = Harness::new();
        let mut sf = subflow(false);
        establish(&mut h, &mut sf);
        // Force congestion avoidance by setting ssthresh below cwnd.
        sf.set_ssthresh(sf.cwnd() / 2.0);
        let before = sf.cwnd();
        h.with(|ctx| sf.send_segment(ctx, 0, MSS));
        let sent = h.now;
        h.advance(SimDuration::from_micros(100));
        let ack = ack_for(&sf, MSS as u64, sent);
        h.with(|ctx| sf.on_packet(ctx, &ack, None));
        let growth = sf.cwnd() - before;
        assert!(growth > 0.0 && growth < MSS as f64, "CA growth {growth}");
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit() {
        let mut h = Harness::new();
        let mut sf = subflow(false);
        establish(&mut h, &mut sf);
        for i in 0..5u64 {
            h.with(|ctx| sf.send_segment(ctx, i * MSS as u64, MSS));
        }
        h.out.clear();
        // Three duplicate ACKs for sequence 0 (first segment lost).
        for _ in 0..3 {
            let ack = ack_for(&sf, 0, SimTime::ZERO);
            h.with(|ctx| sf.on_packet(ctx, &ack, None));
        }
        assert_eq!(sf.counters().fast_retransmits, 1);
        // The retransmission is the segment starting at subflow seq 0.
        let retx = h.out.iter().find(|p| p.kind == PacketKind::Data).unwrap();
        assert_eq!(retx.seq, 0);
        assert!(sf.in_recovery());
        assert!(h
            .signals
            .iter()
            .any(|s| matches!(s, Signal::FastRetransmit { .. })));
    }

    #[test]
    fn high_dupack_threshold_tolerates_reordering() {
        let mut h = Harness::new();
        let mut sf = subflow(true);
        sf.set_dupack_threshold(16);
        establish(&mut h, &mut sf);
        for i in 0..8u64 {
            h.with(|ctx| sf.send_segment(ctx, i * MSS as u64, MSS));
        }
        h.out.clear();
        // Ten duplicate ACKs caused by reordering: below the threshold of 16,
        // so no fast retransmit.
        for _ in 0..10 {
            let ack = ack_for(&sf, 0, SimTime::ZERO);
            h.with(|ctx| sf.on_packet(ctx, &ack, None));
        }
        assert_eq!(sf.counters().fast_retransmits, 0);
        assert!(!sf.in_recovery());
    }

    #[test]
    fn rto_collapses_window_and_retransmits() {
        let mut h = Harness::new();
        let mut sf = subflow(false);
        establish(&mut h, &mut sf);
        for i in 0..4u64 {
            h.with(|ctx| sf.send_segment(ctx, i * MSS as u64, MSS));
        }
        // Find the armed timer and fire it.
        let (deadline, token) = *h.timers.last().unwrap();
        let (_idx, gen) = Subflow::decode_timer_token(token);
        h.now = deadline;
        h.out.clear();
        let upd = h.with(|ctx| sf.on_timer(ctx, gen));
        assert!(upd.congestion_event);
        assert_eq!(sf.counters().rto_count, 1);
        assert_eq!(sf.cwnd(), MSS as f64);
        assert_eq!(h.out.len(), 1, "exactly the first segment is retransmitted");
        assert_eq!(h.out[0].seq, 0);
        assert!(h
            .signals
            .iter()
            .any(|s| matches!(s, Signal::RetransmissionTimeout { .. })));
    }

    #[test]
    fn stale_timers_are_ignored() {
        let mut h = Harness::new();
        let mut sf = subflow(false);
        establish(&mut h, &mut sf);
        h.with(|ctx| sf.send_segment(ctx, 0, MSS));
        let (_, token) = *h.timers.last().unwrap();
        let (_, gen) = Subflow::decode_timer_token(token);
        // ACK everything: timer is cancelled.
        let ack = ack_for(&sf, MSS as u64, h.now);
        h.advance(SimDuration::from_micros(50));
        h.with(|ctx| sf.on_packet(ctx, &ack, None));
        assert!(sf.is_drained());
        let upd = h.with(|ctx| sf.on_timer(ctx, gen));
        assert_eq!(sf.counters().rto_count, 0);
        assert!(!upd.congestion_event);
    }

    #[test]
    fn newreno_partial_ack_retransmits_next_hole() {
        let mut h = Harness::new();
        let mut sf = subflow(false);
        establish(&mut h, &mut sf);
        for i in 0..6u64 {
            h.with(|ctx| sf.send_segment(ctx, i * MSS as u64, MSS));
        }
        // Lose segments 0 and 2: three dupacks at 0 trigger recovery.
        for _ in 0..3 {
            let ack = ack_for(&sf, 0, SimTime::ZERO);
            h.with(|ctx| sf.on_packet(ctx, &ack, None));
        }
        assert!(sf.in_recovery());
        h.out.clear();
        // Partial ACK up to 2*MSS (segment 0 repaired, hole at segment 2).
        let ack = ack_for(&sf, 2 * MSS as u64, SimTime::ZERO);
        h.with(|ctx| sf.on_packet(ctx, &ack, None));
        assert!(sf.in_recovery(), "partial ACK keeps us in recovery");
        assert_eq!(h.out.len(), 1);
        assert_eq!(h.out[0].seq, 2 * MSS as u64);
        // Full ACK ends recovery.
        let ack = ack_for(&sf, 6 * MSS as u64, SimTime::ZERO);
        h.with(|ctx| sf.on_packet(ctx, &ack, None));
        assert!(!sf.in_recovery());
    }

    #[test]
    fn lia_increase_is_capped_by_uncoupled_increase() {
        let mut h = Harness::new();
        let mut sf = subflow(false);
        establish(&mut h, &mut sf);
        sf.set_ssthresh(sf.cwnd() / 2.0); // congestion avoidance
        let before = sf.cwnd();
        h.with(|ctx| sf.send_segment(ctx, 0, MSS));
        let lia = LiaParams {
            alpha: 100.0, // absurdly aggressive: must be capped
            total_cwnd_bytes: before,
        };
        let ack = ack_for(&sf, MSS as u64, h.now);
        h.advance(SimDuration::from_micros(100));
        h.with(|ctx| sf.on_packet(ctx, &ack, Some(lia)));
        let growth = sf.cwnd() - before;
        let uncoupled_cap = MSS as f64 * MSS as f64 / before;
        assert!(
            growth <= uncoupled_cap + 1.0,
            "growth {growth} cap {uncoupled_cap}"
        );
    }

    #[test]
    fn scatter_randomises_source_ports() {
        let mut h = Harness::new();
        let mut sf = subflow(true);
        establish(&mut h, &mut sf);
        h.out.clear();
        for i in 0..20u64 {
            h.with(|ctx| sf.send_segment(ctx, i * MSS as u64, MSS));
        }
        let ports: std::collections::HashSet<u16> = h.out.iter().map(|p| p.src_port).collect();
        assert!(
            ports.len() > 10,
            "expected many distinct ports, got {}",
            ports.len()
        );
    }

    #[test]
    fn pinned_subflow_uses_one_source_port() {
        let mut h = Harness::new();
        let mut sf = subflow(false);
        establish(&mut h, &mut sf);
        h.out.clear();
        for i in 0..10u64 {
            h.with(|ctx| sf.send_segment(ctx, i * MSS as u64, MSS));
        }
        let ports: std::collections::HashSet<u16> = h.out.iter().map(|p| p.src_port).collect();
        assert_eq!(ports.len(), 1);
    }

    #[test]
    fn dctcp_reduces_window_proportionally_to_marks() {
        let mut h = Harness::new();
        let mut sf = Subflow::new(
            TransportConfig::dctcp(),
            0,
            false,
            Addr(0),
            Addr(1),
            50_000,
            80,
            FlowId(1),
        );
        establish(&mut h, &mut sf);
        let before = sf.cwnd();
        // Send a window, ack it all with ECN echo set.
        for i in 0..10u64 {
            h.with(|ctx| sf.send_segment(ctx, i * MSS as u64, MSS));
        }
        let sent = h.now;
        h.advance(SimDuration::from_micros(100));
        for i in 1..=10u64 {
            let mut ack = ack_for(&sf, i * MSS as u64, sent);
            ack.ecn_echo = true;
            h.with(|ctx| sf.on_packet(ctx, &ack, None));
        }
        assert!(sf.dctcp_alpha() > 0.0);
        // Window must not have grown unchecked despite slow start.
        assert!(sf.cwnd() < before + (10 * MSS) as f64);
    }

    #[test]
    fn spurious_retransmission_detection() {
        let mut h = Harness::new();
        let mut sf = subflow(false);
        sf.set_dupack_threshold(2);
        establish(&mut h, &mut sf);
        for i in 0..4u64 {
            h.with(|ctx| sf.send_segment(ctx, i * MSS as u64, MSS));
        }
        // Reordering-induced dupacks trigger a (spurious) fast retransmit.
        for _ in 0..2 {
            let ack = ack_for(&sf, 0, SimTime::ZERO);
            h.with(|ctx| sf.on_packet(ctx, &ack, None));
        }
        assert_eq!(sf.counters().fast_retransmits, 1);
        // Later the receiver advances past the retransmitted data and flags a
        // duplicate arrival.
        let ack = ack_for(&sf, 4 * MSS as u64, SimTime::ZERO);
        h.with(|ctx| sf.on_packet(ctx, &ack, None));
        let mut dup = ack_for(&sf, 4 * MSS as u64, SimTime::ZERO);
        dup.dup_hint = true;
        // Make it a duplicate ACK by keeping outstanding data around.
        h.with(|ctx| sf.send_segment(ctx, 4 * MSS as u64, MSS));
        h.with(|ctx| sf.on_packet(ctx, &dup, None));
        assert_eq!(sf.counters().spurious_retransmits, 1);
        assert!(h
            .signals
            .iter()
            .any(|s| matches!(s, Signal::SpuriousRetransmit { .. })));
    }

    #[test]
    fn timer_token_roundtrip() {
        let token = Subflow::timer_token(7, 123_456);
        assert_eq!(Subflow::decode_timer_token(token), (7, 123_456));
    }

    /// Drive a subflow through a reordering-induced (spurious) fast-recovery
    /// episode: dup-ACKs below `threshold+…`, then a full ACK (the "lost"
    /// original arrived after all), then the dup-hinted duplicate ACK caused by
    /// the unnecessary retransmitted copy. Returns the cwnd before the episode.
    fn spurious_episode(h: &mut Harness, sf: &mut Subflow) -> f64 {
        establish(h, sf);
        for i in 0..6u64 {
            h.with(|ctx| sf.send_segment(ctx, i * MSS as u64, MSS));
        }
        let cwnd_before = sf.cwnd();
        // Reordering-induced duplicate ACKs trigger a spurious fast retransmit.
        for _ in 0..2 {
            let ack = ack_for(sf, 0, SimTime::ZERO);
            h.with(|ctx| sf.on_packet(ctx, &ack, None));
        }
        assert!(sf.in_recovery());
        assert_eq!(sf.counters().fast_retransmits, 1);
        // The delayed original (and everything else) arrives: full ACK exits
        // recovery with the reduced window.
        let ack = ack_for(sf, 6 * MSS as u64, SimTime::ZERO);
        h.with(|ctx| sf.on_packet(ctx, &ack, None));
        assert!(!sf.in_recovery());
        // More data goes out, then the retransmitted copy reaches the receiver,
        // which reports it as a duplicate.
        h.with(|ctx| sf.send_segment(ctx, 6 * MSS as u64, MSS));
        let mut dup = ack_for(sf, 6 * MSS as u64, SimTime::ZERO);
        dup.dup_hint = true;
        h.with(|ctx| sf.on_packet(ctx, &dup, None));
        assert_eq!(sf.counters().spurious_retransmits, 1);
        cwnd_before
    }

    #[test]
    fn spurious_retransmit_undo_restores_window() {
        let mut h = Harness::new();
        let mut sf = subflow(true);
        sf.set_dupack_threshold(2);
        sf.set_undo_on_spurious(true);
        let cwnd_before = spurious_episode(&mut h, &mut sf);
        assert!(
            sf.cwnd() >= cwnd_before,
            "cwnd {} must be restored to at least its pre-recovery value {}",
            sf.cwnd(),
            cwnd_before
        );
    }

    #[test]
    fn without_undo_spurious_recovery_keeps_reduced_window() {
        let mut h = Harness::new();
        let mut sf = subflow(true);
        sf.set_dupack_threshold(2);
        let cwnd_before = spurious_episode(&mut h, &mut sf);
        assert!(
            sf.cwnd() < cwnd_before,
            "without undo the halved window persists: cwnd {} vs {}",
            sf.cwnd(),
            cwnd_before
        );
    }

    #[test]
    fn rto_recovery_is_never_undone() {
        let mut h = Harness::new();
        let mut sf = subflow(true);
        sf.set_undo_on_spurious(true);
        establish(&mut h, &mut sf);
        for i in 0..4u64 {
            h.with(|ctx| sf.send_segment(ctx, i * MSS as u64, MSS));
        }
        let (deadline, token) = *h.timers.last().unwrap();
        let (_idx, gen) = Subflow::decode_timer_token(token);
        h.now = deadline;
        h.with(|ctx| sf.on_timer(ctx, gen));
        assert_eq!(sf.counters().rto_count, 1);
        let collapsed = sf.cwnd();
        // A dup-hinted duplicate ACK after the timeout must not restore the
        // pre-timeout window.
        let mut dup = ack_for(&sf, 0, SimTime::ZERO);
        dup.dup_hint = true;
        h.with(|ctx| sf.on_packet(ctx, &dup, None));
        assert!(sf.cwnd() <= collapsed + MSS as f64);
    }
}
