//! Transport configuration shared by all protocol variants.

use crate::cc::CongestionControl;
use netsim::{SimDuration, DEFAULT_MSS};
use serde::{Deserialize, Serialize};

/// Configuration applied to every subflow of a connection (and to plain TCP,
/// which is a single subflow).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransportConfig {
    /// Maximum segment size in bytes.
    pub mss: u32,
    /// Initial congestion window, in segments.
    pub initial_cwnd_segments: u32,
    /// Initial slow-start threshold, in bytes (effectively "infinite" by
    /// default so connections start in slow start).
    pub initial_ssthresh: u64,
    /// Number of duplicate ACKs that triggers a fast retransmission.
    pub dupack_threshold: u32,
    /// Lower bound on the retransmission timeout. 200 ms is the classic
    /// data-centre-unfriendly default that produces the paper's RTO tail.
    pub min_rto: SimDuration,
    /// RTO used before any RTT sample exists (RFC 6298 suggests 1 s); lost
    /// SYNs and first-window losses therefore cost ~1 s, which is where the
    /// 1 s / 3 s / 7 s bands in Figure 1(b) come from.
    pub initial_rto: SimDuration,
    /// Upper bound on the (backed-off) retransmission timeout.
    pub max_rto: SimDuration,
    /// Whether this connection negotiates ECN and reacts DCTCP-style.
    pub ecn: bool,
    /// DCTCP's EWMA gain `g` for the marked-fraction estimate.
    pub dctcp_g: f64,
    /// Receive buffer advertised by the peer, in bytes. Effectively infinite
    /// by default (the paper's workloads are not receive-window limited).
    pub receive_window: u64,
    /// Which congestion controller every subflow runs (the CC axis of an
    /// experiment). Defaults to Reno, the paper's baseline.
    pub cc: CongestionControl,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            mss: DEFAULT_MSS,
            initial_cwnd_segments: 10,
            initial_ssthresh: u64::MAX / 2,
            dupack_threshold: 3,
            min_rto: SimDuration::from_millis(200),
            initial_rto: SimDuration::from_secs(1),
            max_rto: SimDuration::from_secs(60),
            ecn: false,
            dctcp_g: 1.0 / 16.0,
            receive_window: u64::MAX / 2,
            cc: CongestionControl::Reno,
        }
    }
}

impl TransportConfig {
    /// Initial congestion window in bytes.
    pub fn initial_cwnd_bytes(&self) -> f64 {
        (self.initial_cwnd_segments * self.mss) as f64
    }

    /// A configuration suitable for DCTCP experiments: ECN on, shallow
    /// marking is configured at the switches (not here).
    pub fn dctcp() -> Self {
        TransportConfig {
            ecn: true,
            ..TransportConfig::default()
        }
    }

    /// A low-latency variant with a 10 ms minimum RTO, used by ablation
    /// experiments exploring how much of the tail is due to the 200 ms floor.
    pub fn low_min_rto() -> Self {
        TransportConfig {
            min_rto: SimDuration::from_millis(10),
            initial_rto: SimDuration::from_millis(50),
            ..TransportConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = TransportConfig::default();
        assert_eq!(c.mss, DEFAULT_MSS);
        assert!(c.initial_cwnd_bytes() > 0.0);
        assert!(c.min_rto < c.initial_rto);
        assert!(c.initial_rto < c.max_rto);
        assert!(!c.ecn);
        assert_eq!(c.cc, CongestionControl::Reno);
    }

    #[test]
    fn presets() {
        assert!(TransportConfig::dctcp().ecn);
        assert!(TransportConfig::low_min_rto().min_rto < TransportConfig::default().min_rto);
    }
}
