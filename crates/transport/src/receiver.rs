//! The connection receiver used by every transport variant.
//!
//! A single receiver implementation serves TCP, MPTCP, MMPTCP, packet-scatter
//! and DCTCP senders: it acknowledges at *subflow* level (cumulative ACK per
//! subflow, which is what drives the sender's loss detection) and reassembles
//! at *connection* level (MPTCP data sequence numbers), echoing ECN marks and
//! transmit timestamps back to the sender.

use netsim::{Agent, AgentCtx, AgentEvent, Ecn, FlowId, Packet, PacketKind, Signal};
use std::collections::{BTreeMap, HashMap};

/// Reassembly state for one direction of one subflow.
#[derive(Debug, Default, Clone)]
struct SubflowRecv {
    /// Next expected subflow-level byte.
    rcv_nxt: u64,
    /// Out-of-order byte ranges above `rcv_nxt` (start -> length).
    ooo: BTreeMap<u64, u64>,
}

/// Statistics maintained by the receiver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReceiverCounters {
    /// Data packets received (including duplicates).
    pub data_packets: u64,
    /// Duplicate data packets received.
    pub duplicate_packets: u64,
    /// Data packets that arrived out of order at connection level.
    pub out_of_order_packets: u64,
    /// Distinct connection-level bytes received.
    pub distinct_bytes: u64,
}

/// Insert `[seq, seq+len)` into a cumulative-plus-out-of-order tracker and
/// return the number of *new* bytes it contributed. Advances `rcv_nxt` over
/// any now-contiguous buffered ranges.
fn insert_range(rcv_nxt: &mut u64, ooo: &mut BTreeMap<u64, u64>, seq: u64, len: u64) -> u64 {
    if len == 0 {
        return 0;
    }
    let mut start = seq;
    let end = seq + len;
    if end <= *rcv_nxt {
        return 0; // entirely duplicate
    }
    if start < *rcv_nxt {
        start = *rcv_nxt;
    }
    // Check overlap with already-buffered ranges; clip against any range that
    // covers part of [start, end). Ranges are non-overlapping by construction.
    let mut new_bytes = 0;
    let mut cursor = start;
    while cursor < end {
        // Find the buffered range that contains or follows `cursor`.
        let covering = ooo
            .range(..=cursor)
            .next_back()
            .filter(|(s, l)| **s + **l > cursor)
            .map(|(s, l)| (*s, *l));
        if let Some((s, l)) = covering {
            cursor = s + l; // skip the already-buffered part
            continue;
        }
        let next_start = ooo
            .range(cursor..)
            .next()
            .map(|(s, _)| *s)
            .unwrap_or(u64::MAX);
        let piece_end = end.min(next_start);
        if piece_end > cursor {
            ooo.insert(cursor, piece_end - cursor);
            new_bytes += piece_end - cursor;
            cursor = piece_end;
        } else {
            break;
        }
    }
    // Advance the cumulative pointer over contiguous buffered data.
    while let Some((&s, &l)) = ooo.iter().next() {
        if s <= *rcv_nxt {
            let range_end = s + l;
            ooo.remove(&s);
            if range_end > *rcv_nxt {
                *rcv_nxt = range_end;
            }
        } else {
            break;
        }
    }
    new_bytes
}

/// How often (in delivered bytes) the receiver emits a [`Signal::FlowProgress`]
/// report. Long (background) flows therefore leave a time series of progress
/// points, which lets the metrics layer compute their goodput over any fixed
/// window — the measurement the paper's "same long-flow throughput" claim
/// needs, independent of when the last short flow of a run finished.
pub const PROGRESS_REPORT_STRIDE: u64 = 1_000_000;

/// The receiving endpoint of a connection (any protocol variant).
#[derive(Debug)]
pub struct TransportReceiver {
    flow: FlowId,
    subflows: HashMap<u8, SubflowRecv>,
    data_rcv_nxt: u64,
    data_ooo: BTreeMap<u64, u64>,
    counters: ReceiverCounters,
    last_progress_report: u64,
}

impl TransportReceiver {
    /// Create a receiver for `flow`.
    pub fn new(flow: FlowId) -> Self {
        TransportReceiver {
            flow,
            subflows: HashMap::new(),
            data_rcv_nxt: 0,
            data_ooo: BTreeMap::new(),
            counters: ReceiverCounters::default(),
            last_progress_report: 0,
        }
    }

    /// Connection-level bytes received contiguously so far.
    pub fn contiguous_bytes(&self) -> u64 {
        self.data_rcv_nxt
    }

    /// Receiver counters.
    pub fn counters(&self) -> ReceiverCounters {
        self.counters
    }

    fn handle_syn(&mut self, ctx: &mut AgentCtx<'_>, pkt: &Packet) {
        // Ensure subflow state exists.
        self.subflows.entry(pkt.subflow).or_default();
        let mut synack = pkt.reply_template();
        synack.kind = PacketKind::SynAck;
        synack.sent_at = pkt.sent_at; // echo for the sender's RTT sample
        synack.ecn_echo = false;
        ctx.send(synack);
    }

    fn handle_data(&mut self, ctx: &mut AgentCtx<'_>, pkt: &Packet) {
        self.counters.data_packets += 1;
        let sf = self.subflows.entry(pkt.subflow).or_default();
        let len = pkt.payload as u64;

        let was_expected = pkt.seq == sf.rcv_nxt;
        let duplicate = pkt.seq + len <= sf.rcv_nxt;
        if duplicate {
            self.counters.duplicate_packets += 1;
        } else if !was_expected {
            self.counters.out_of_order_packets += 1;
        }

        // Subflow-level reassembly (drives the cumulative subflow ACK).
        insert_range(&mut sf.rcv_nxt, &mut sf.ooo, pkt.seq, len);
        let subflow_ack = sf.rcv_nxt;

        // Connection-level reassembly (drives the data ACK).
        let new_bytes = insert_range(
            &mut self.data_rcv_nxt,
            &mut self.data_ooo,
            pkt.data_seq,
            len,
        );
        self.counters.distinct_bytes += new_bytes;

        // Acknowledge.
        let mut ack = Packet::ack(
            pkt.dst,
            pkt.src,
            pkt.dst_port,
            pkt.src_port,
            self.flow,
            pkt.subflow,
            subflow_ack,
            self.data_rcv_nxt,
            ctx.now(),
        );
        ack.sent_at = pkt.sent_at; // echo the transmit timestamp
        ack.dup_hint = duplicate;
        ack.ecn_echo = pkt.ecn == Ecn::CongestionExperienced;
        ctx.send(ack);

        // Periodic progress reports (roughly every PROGRESS_REPORT_STRIDE
        // delivered bytes) so unbounded flows expose a goodput time series.
        if self.data_rcv_nxt >= self.last_progress_report + PROGRESS_REPORT_STRIDE {
            self.last_progress_report = self.data_rcv_nxt;
            ctx.signal(Signal::FlowProgress {
                flow: self.flow,
                at: ctx.now(),
                bytes: self.data_rcv_nxt,
            });
        }
    }
}

impl Agent for TransportReceiver {
    fn handle(&mut self, ctx: &mut AgentCtx<'_>, event: AgentEvent) {
        match event {
            AgentEvent::Packet(pkt) => match pkt.kind {
                PacketKind::Syn => self.handle_syn(ctx, &pkt),
                PacketKind::Data | PacketKind::Fin => self.handle_data(ctx, &pkt),
                _ => {}
            },
            AgentEvent::Finalize => {
                ctx.signal(Signal::FlowProgress {
                    flow: self.flow,
                    at: ctx.now(),
                    bytes: self.data_rcv_nxt,
                });
            }
            AgentEvent::Start | AgentEvent::Timer(_) | AgentEvent::FluidComplete { .. } => {}
        }
    }

    fn describe(&self) -> String {
        format!("receiver({})", self.flow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{Addr, SimRng, SimTime};

    struct Harness {
        rng: SimRng,
        out: Vec<Packet>,
        timers: Vec<(SimTime, u64)>,
        signals: Vec<Signal>,
        now: SimTime,
    }
    impl Harness {
        fn new() -> Self {
            Harness {
                rng: SimRng::new(1),
                out: Vec::new(),
                timers: Vec::new(),
                signals: Vec::new(),
                now: SimTime::from_millis(1),
            }
        }
        fn deliver(&mut self, rx: &mut TransportReceiver, pkt: Packet) -> Vec<Packet> {
            let mut ctx = AgentCtx::new(
                self.now,
                FlowId(1),
                &mut self.rng,
                &mut self.out,
                &mut self.timers,
                &mut self.signals,
            );
            rx.handle(&mut ctx, AgentEvent::Packet(pkt));
            self.out.drain(..).collect()
        }
    }

    fn data(subflow: u8, seq: u64, data_seq: u64, len: u32) -> Packet {
        Packet::data(
            Addr(0),
            Addr(1),
            50_000,
            80,
            FlowId(1),
            subflow,
            seq,
            data_seq,
            len,
            SimTime::from_micros(500),
        )
    }

    #[test]
    fn insert_range_basics() {
        let mut rcv_nxt = 0;
        let mut ooo = BTreeMap::new();
        assert_eq!(insert_range(&mut rcv_nxt, &mut ooo, 0, 100), 100);
        assert_eq!(rcv_nxt, 100);
        // Duplicate contributes nothing.
        assert_eq!(insert_range(&mut rcv_nxt, &mut ooo, 0, 100), 0);
        // Gap: buffered but not advanced.
        assert_eq!(insert_range(&mut rcv_nxt, &mut ooo, 200, 100), 100);
        assert_eq!(rcv_nxt, 100);
        // Filling the gap advances over both.
        assert_eq!(insert_range(&mut rcv_nxt, &mut ooo, 100, 100), 100);
        assert_eq!(rcv_nxt, 300);
        assert!(ooo.is_empty());
    }

    #[test]
    fn insert_range_partial_overlap() {
        let mut rcv_nxt = 0;
        let mut ooo = BTreeMap::new();
        insert_range(&mut rcv_nxt, &mut ooo, 100, 100);
        // Overlaps the buffered range on both sides.
        let added = insert_range(&mut rcv_nxt, &mut ooo, 50, 200);
        assert_eq!(added, 100, "only the non-overlapping parts count");
        assert_eq!(rcv_nxt, 0);
        insert_range(&mut rcv_nxt, &mut ooo, 0, 50);
        assert_eq!(rcv_nxt, 250);
    }

    #[test]
    fn syn_gets_synack_with_echoed_timestamp() {
        let mut h = Harness::new();
        let mut rx = TransportReceiver::new(FlowId(1));
        let mut syn = data(0, 0, 0, 0);
        syn.kind = PacketKind::Syn;
        let replies = h.deliver(&mut rx, syn.clone());
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].kind, PacketKind::SynAck);
        assert_eq!(replies[0].sent_at, syn.sent_at);
        assert_eq!(replies[0].dst, syn.src);
    }

    #[test]
    fn in_order_data_advances_both_ack_levels() {
        let mut h = Harness::new();
        let mut rx = TransportReceiver::new(FlowId(1));
        let a1 = h.deliver(&mut rx, data(0, 0, 0, 1400));
        assert_eq!(a1[0].ack, 1400);
        assert_eq!(a1[0].data_ack, 1400);
        let a2 = h.deliver(&mut rx, data(0, 1400, 1400, 1400));
        assert_eq!(a2[0].ack, 2800);
        assert_eq!(a2[0].data_ack, 2800);
        assert_eq!(rx.contiguous_bytes(), 2800);
        assert_eq!(rx.counters().out_of_order_packets, 0);
    }

    #[test]
    fn out_of_order_data_generates_duplicate_acks() {
        let mut h = Harness::new();
        let mut rx = TransportReceiver::new(FlowId(1));
        h.deliver(&mut rx, data(0, 0, 0, 1400));
        // Segment 2 arrives before segment 1.
        let a = h.deliver(&mut rx, data(0, 2800, 2800, 1400));
        assert_eq!(a[0].ack, 1400, "cumulative ACK does not advance");
        assert!(!a[0].dup_hint);
        // The missing segment fills the hole.
        let a = h.deliver(&mut rx, data(0, 1400, 1400, 1400));
        assert_eq!(a[0].ack, 4200);
        assert_eq!(a[0].data_ack, 4200);
        assert_eq!(rx.counters().out_of_order_packets, 1);
    }

    #[test]
    fn duplicate_data_sets_dup_hint() {
        let mut h = Harness::new();
        let mut rx = TransportReceiver::new(FlowId(1));
        h.deliver(&mut rx, data(0, 0, 0, 1400));
        let a = h.deliver(&mut rx, data(0, 0, 0, 1400));
        assert!(a[0].dup_hint);
        assert_eq!(rx.counters().duplicate_packets, 1);
        assert_eq!(rx.contiguous_bytes(), 1400);
    }

    #[test]
    fn multiple_subflows_reassemble_one_data_stream() {
        let mut h = Harness::new();
        let mut rx = TransportReceiver::new(FlowId(1));
        // Subflow 1 carries connection bytes 0..1400, subflow 2 carries
        // 1400..2800 — each with its own subflow sequence space starting at 0.
        let a = h.deliver(&mut rx, data(1, 0, 0, 1400));
        assert_eq!(a[0].ack, 1400);
        assert_eq!(a[0].data_ack, 1400);
        let a = h.deliver(&mut rx, data(2, 0, 1400, 1400));
        assert_eq!(a[0].ack, 1400, "subflow 2's own cumulative ack");
        assert_eq!(a[0].data_ack, 2800, "connection-level data ack");
        assert_eq!(a[0].subflow, 2);
    }

    #[test]
    fn connection_level_ack_waits_for_holes_across_subflows() {
        let mut h = Harness::new();
        let mut rx = TransportReceiver::new(FlowId(1));
        // Subflow 2 delivers bytes 1400..2800 first.
        let a = h.deliver(&mut rx, data(2, 0, 1400, 1400));
        assert_eq!(a[0].data_ack, 0);
        // Subflow 1 then fills 0..1400.
        let a = h.deliver(&mut rx, data(1, 0, 0, 1400));
        assert_eq!(a[0].data_ack, 2800);
    }

    #[test]
    fn ecn_marks_are_echoed() {
        let mut h = Harness::new();
        let mut rx = TransportReceiver::new(FlowId(1));
        let mut p = data(0, 0, 0, 1400);
        p.ecn = Ecn::CongestionExperienced;
        let a = h.deliver(&mut rx, p);
        assert!(a[0].ecn_echo);
        let a = h.deliver(&mut rx, data(0, 1400, 1400, 1400));
        assert!(!a[0].ecn_echo);
    }

    #[test]
    fn periodic_progress_reports_every_stride() {
        let mut h = Harness::new();
        let mut rx = TransportReceiver::new(FlowId(1));
        let seg = 100_000u64;
        let mut delivered = 0u64;
        while delivered < 2 * PROGRESS_REPORT_STRIDE + seg {
            h.deliver(&mut rx, data(0, delivered, delivered, seg as u32));
            delivered += seg;
        }
        let reports: Vec<u64> = h
            .signals
            .iter()
            .filter_map(|s| match s {
                Signal::FlowProgress { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .collect();
        assert_eq!(reports.len(), 2, "one report per stride crossed");
        assert!(reports[0] >= PROGRESS_REPORT_STRIDE);
        assert!(reports[1] >= 2 * PROGRESS_REPORT_STRIDE);
        assert!(reports.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn short_flows_emit_no_periodic_progress() {
        let mut h = Harness::new();
        let mut rx = TransportReceiver::new(FlowId(1));
        for i in 0..50u64 {
            h.deliver(&mut rx, data(0, i * 1400, i * 1400, 1400));
        }
        assert!(h
            .signals
            .iter()
            .all(|s| !matches!(s, Signal::FlowProgress { .. })));
    }

    #[test]
    fn finalize_reports_progress() {
        let mut h = Harness::new();
        let mut rx = TransportReceiver::new(FlowId(1));
        h.deliver(&mut rx, data(0, 0, 0, 1400));
        let mut ctx = AgentCtx::new(
            h.now,
            FlowId(1),
            &mut h.rng,
            &mut h.out,
            &mut h.timers,
            &mut h.signals,
        );
        rx.handle(&mut ctx, AgentEvent::Finalize);
        assert!(matches!(
            h.signals.last().unwrap(),
            Signal::FlowProgress { bytes: 1400, .. }
        ));
    }
}
