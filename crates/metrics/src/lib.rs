//! # metrics — the measurement pipeline
//!
//! Turns the simulator's signal stream and per-link counters into the
//! quantities the paper reports:
//!
//! * [`fct::FlowMetrics`] — per-flow completion times (mean, standard
//!   deviation, percentiles), RTO / fast-retransmit / spurious-retransmit
//!   counts and MMPTCP phase-switch times;
//! * [`netstats`] — per-layer (edge / aggregation / core) loss rates, link and
//!   tier utilisation, long-flow goodput;
//! * [`stats`] — summaries, percentiles and histograms;
//! * [`report`] — canonical, deterministic JSON metrics documents (the
//!   golden-snapshot contract of the scenario registry);
//! * [`trace`] — the flight recorder: ring-buffered per-flow cwnd/RTT and
//!   per-link queue/utilisation time series with a CSV/JSON export, behind
//!   a zero-cost [`trace::TraceConfig::Off`] default;
//! * [`table`] — the plain-text tables the benchmark harnesses print.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fct;
pub mod netstats;
pub mod report;
pub mod stats;
pub mod table;
pub mod trace;

pub use fct::{FlowMetrics, FlowRecord};
pub use netstats::{
    loss_report, overall_utilisation, tier_utilisation, LayerLoss, LossReport, UtilisationReport,
};
pub use report::{FctDoc, RunReport, ScenarioReport, TierCounts};
pub use stats::{percentile, percentile_sorted, Histogram, Summary};
pub use table::{f2, f4, pct, Table};
pub use trace::{FlowSelect, TraceConfig, TraceSettings, TraceSink};
