//! Flight-recorder telemetry: ring-buffered per-flow and per-link time
//! series, recorded during a run and exported as CSV/JSON for the paper's
//! explanatory figures.
//!
//! The scalar reports in [`crate::report`] answer *how fast* — FCT
//! percentiles, goodput, drop counts. This module answers *why*: how each
//! subflow's congestion window evolved (including the instant an MMPTCP
//! connection switched from packet scatter to MPTCP), where and when fabric
//! queues built up, which phase of a flow's life the retransmissions landed
//! in. Those are exactly the time-series arguments the paper (and RepFlow /
//! DiffFlow, which argue via queue occupancy and per-size FCT dynamics) make
//! in prose and figures.
//!
//! ## Pipeline
//!
//! 1. [`TraceConfig`] on `ExperimentConfig` selects what to record. The
//!    default, [`TraceConfig::Off`], is **zero-cost**: the simulator's
//!    tracing flag stays false, transports never construct a
//!    [`Signal::CwndSample`], the experiment loop keeps its untraced cadence,
//!    and every golden metric stays byte-identical.
//! 2. With tracing on, transports emit `CwndSample` signals after every
//!    state-changing activation and the experiment loop feeds the signal
//!    stream to a per-run [`TraceSink`]; when link tracing is requested the
//!    loop additionally snapshots every link's [`netsim::LinkTelemetry`]
//!    at [`TraceSettings::sample_every`] cadence.
//! 3. Each series lives in a [`RingSeries`]: a bounded, decimating recorder.
//!    When a series fills its capacity it drops every second retained point
//!    and doubles its acceptance stride, so arbitrarily long runs keep a
//!    bounded, evenly thinned history whose endpoints survive.
//! 4. The sink (carried inside `ExperimentResults`, so the parallel driver
//!    merges traces in config order exactly like results) renders
//!    [`TraceSink::flows_csv`] / [`TraceSink::links_csv`] /
//!    [`TraceSink::events_csv`] plus a schema-documenting
//!    [`TraceSink::manifest_json`], and [`TraceSink::write_dir`] writes the
//!    four files under `target/traces/…`.
//!
//! Determinism: the engine is single-threaded and seeded, signal order is
//! event order, and all series are keyed through `BTreeMap`s — so the same
//! seed produces byte-identical CSV across runs and across driver thread
//! counts.

use netsim::{LinkTelemetry, Network, Signal, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Which flows the recorder keeps series for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowSelect {
    /// Record every flow.
    All,
    /// Record only the flow with this id (workload `FlowSpec::id`).
    One(u64),
}

/// What to record and how densely.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSettings {
    /// Cadence of the per-link telemetry sampler (ignored unless `links`).
    /// Also the lower bound the experiment loop uses for its tick while link
    /// tracing is on.
    pub sample_every: SimDuration,
    /// Flow filter for cwnd series and flow events.
    pub flows: FlowSelect,
    /// Record per-link series (queue depth, window deltas, utilisation).
    pub links: bool,
    /// Capacity of each ring series (per subflow / per link). When a series
    /// fills up it is thinned in place; see [`RingSeries`].
    pub ring_capacity: usize,
}

impl Default for TraceSettings {
    fn default() -> Self {
        TraceSettings {
            sample_every: SimDuration::from_micros(500),
            flows: FlowSelect::All,
            links: false,
            ring_capacity: 2048,
        }
    }
}

/// Per-experiment trace switch. `Off` (the default) records nothing and
/// changes nothing; `On` wires a [`TraceSink`] through the run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum TraceConfig {
    /// No tracing: the zero-cost default.
    #[default]
    Off,
    /// Record a flight-recorder trace with these settings.
    On(TraceSettings),
}

impl TraceConfig {
    /// A convenience `On` with default settings (all flows, no links).
    pub fn flows() -> Self {
        TraceConfig::On(TraceSettings::default())
    }

    /// A convenience `On` recording flow *and* link series.
    pub fn full() -> Self {
        TraceConfig::On(TraceSettings {
            links: true,
            ..TraceSettings::default()
        })
    }

    /// Is tracing enabled at all?
    pub fn is_on(&self) -> bool {
        matches!(self, TraceConfig::On(_))
    }

    /// The settings, when tracing is on.
    pub fn settings(&self) -> Option<&TraceSettings> {
        match self {
            TraceConfig::Off => None,
            TraceConfig::On(s) => Some(s),
        }
    }
}

/// One point of a subflow's congestion time series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowPoint {
    /// When the sample was taken.
    pub at: SimTime,
    /// Congestion window in bytes.
    pub cwnd: u64,
    /// Smoothed RTT in microseconds (0 before the first RTT sample).
    pub srtt_us: u64,
    /// Subflow-level bytes in flight.
    pub outstanding: u64,
    /// Stable label of the congestion controller driving the subflow
    /// ("reno" / "cubic" / "bbr").
    pub cc: &'static str,
}

/// One point of a link's telemetry series. Counter fields are deltas over
/// the sample window ending at `at`; `depth_packets` is instantaneous.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkPoint {
    /// End of the sample window.
    pub at: SimTime,
    /// Instantaneous queue depth in packets.
    pub depth_packets: usize,
    /// Packets transmitted during the window.
    pub tx_packets: u64,
    /// Wire bytes transmitted during the window.
    pub tx_bytes: u64,
    /// Packets dropped by the output queue during the window.
    pub drops: u64,
    /// ECN marks applied during the window.
    pub ecn_marks: u64,
    /// Fraction of the window the transmitter was busy, in `[0, 1]`.
    pub utilisation: f64,
}

/// A discrete flow event worth a row of its own (never decimated, only
/// capacity-capped).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowEvent {
    /// When it happened.
    pub at: SimTime,
    /// The flow.
    pub flow: u64,
    /// Subflow index (0 for connection-level events like the phase switch).
    pub subflow: u8,
    /// What happened.
    pub kind: TraceEventKind,
    /// Event-specific detail (bytes sent at the phase switch; 0 otherwise).
    pub detail: u64,
}

/// The kinds of discrete flow events the recorder keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// MMPTCP left the packet-scatter phase (detail = bytes sent by then).
    PhaseSwitch,
    /// A retransmission timeout fired.
    Rto,
    /// A fast retransmission was triggered.
    FastRetransmit,
    /// A retransmission was detected to be spurious (reordering, not loss).
    SpuriousRetransmit,
}

impl TraceEventKind {
    /// Stable label used in the CSV export.
    pub fn label(&self) -> &'static str {
        match self {
            TraceEventKind::PhaseSwitch => "phase_switch",
            TraceEventKind::Rto => "rto",
            TraceEventKind::FastRetransmit => "fast_retransmit",
            TraceEventKind::SpuriousRetransmit => "spurious_retransmit",
        }
    }
}

/// A bounded, decimating time-series recorder.
///
/// `push` accepts every `stride`-th offered sample (stride starts at 1).
/// When the retained buffer reaches `capacity`, every second retained point
/// is dropped and the stride doubles, halving both the stored history's
/// density and the future acceptance rate. The result: memory is bounded by
/// `capacity` no matter how long the run, the retained points stay spread
/// over the whole recording (the first point is never evicted), and the
/// series degrades gracefully instead of truncating its head or tail.
///
/// ```
/// use metrics::trace::RingSeries;
/// let mut s = RingSeries::new(4);
/// for i in 0..100u64 {
///     s.push(i);
/// }
/// assert!(s.len() <= 4);
/// assert_eq!(s.items()[0], 0, "oldest sample survives thinning");
/// assert!(s.stride() > 1, "long series raised the acceptance stride");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RingSeries<T> {
    capacity: usize,
    stride: u64,
    offered: u64,
    items: Vec<T>,
}

impl<T> RingSeries<T> {
    /// A series retaining at most `capacity` points (minimum 2).
    pub fn new(capacity: usize) -> Self {
        RingSeries {
            capacity: capacity.max(2),
            stride: 1,
            offered: 0,
            items: Vec::new(),
        }
    }

    /// Offer one sample. Decimation may discard it; see the type docs.
    pub fn push(&mut self, item: T) {
        let accepted = self.offered.is_multiple_of(self.stride);
        self.offered += 1;
        if !accepted {
            return;
        }
        if self.items.len() >= self.capacity {
            // Thin in place: keep even-indexed points, double the stride.
            let mut keep = false;
            self.items.retain(|_| {
                keep = !keep;
                keep
            });
            self.stride = self.stride.saturating_mul(2);
        }
        self.items.push(item);
    }

    /// The retained points, oldest first.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total samples offered (including decimated ones).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Current acceptance stride (1 until the first thinning).
    pub fn stride(&self) -> u64 {
        self.stride
    }
}

/// Upper bound on retained discrete flow events; beyond it new events are
/// counted but dropped (queues-gone-mad pathologies should not OOM a trace).
const MAX_EVENTS: usize = 65_536;

/// The per-run flight recorder: consumes the signal stream and periodic link
/// snapshots, retains bounded series, and renders the CSV/JSON export.
#[derive(Debug, Clone)]
pub struct TraceSink {
    settings: TraceSettings,
    /// Cwnd series keyed by `(flow, subflow)` — BTreeMap for deterministic
    /// export order.
    flows: BTreeMap<(u64, u8), RingSeries<FlowPoint>>,
    /// Discrete events in emission (= simulated time) order.
    events: Vec<FlowEvent>,
    events_dropped: u64,
    /// Link series keyed by link index.
    links: BTreeMap<usize, RingSeries<LinkPoint>>,
    /// Cumulative telemetry at the previous link sample, per link index.
    prev_links: Vec<LinkTelemetry>,
    last_link_sample: Option<SimTime>,
}

impl TraceSink {
    /// An empty sink with the given settings.
    pub fn new(settings: TraceSettings) -> Self {
        TraceSink {
            settings,
            flows: BTreeMap::new(),
            events: Vec::new(),
            events_dropped: 0,
            links: BTreeMap::new(),
            prev_links: Vec::new(),
            last_link_sample: None,
        }
    }

    /// The settings this sink records under.
    pub fn settings(&self) -> &TraceSettings {
        &self.settings
    }

    /// Whether per-link sampling is requested.
    pub fn links_enabled(&self) -> bool {
        self.settings.links
    }

    /// The link-sampling cadence.
    pub fn sample_every(&self) -> SimDuration {
        self.settings.sample_every
    }

    fn wants_flow(&self, flow: u64) -> bool {
        match self.settings.flows {
            FlowSelect::All => true,
            FlowSelect::One(id) => id == flow,
        }
    }

    fn record_event(&mut self, event: FlowEvent) {
        if self.events.len() >= MAX_EVENTS {
            self.events_dropped += 1;
        } else {
            self.events.push(event);
        }
    }

    /// Consume a batch of signals: cwnd samples feed the flow series,
    /// lifecycle signals feed the event log, everything else is ignored
    /// (the flow-completion pipeline owns it).
    pub fn ingest(&mut self, signals: &[Signal]) {
        for s in signals {
            match s {
                Signal::CwndSample {
                    flow,
                    subflow,
                    at,
                    cwnd,
                    srtt_us,
                    outstanding,
                    cc,
                } if self.wants_flow(flow.0) => {
                    let cap = self.settings.ring_capacity;
                    self.flows
                        .entry((flow.0, *subflow))
                        .or_insert_with(|| RingSeries::new(cap))
                        .push(FlowPoint {
                            at: *at,
                            cwnd: *cwnd,
                            srtt_us: *srtt_us,
                            outstanding: *outstanding,
                            cc,
                        });
                }
                Signal::PhaseSwitched {
                    flow,
                    at,
                    bytes_sent,
                } if self.wants_flow(flow.0) => self.record_event(FlowEvent {
                    at: *at,
                    flow: flow.0,
                    subflow: 0,
                    kind: TraceEventKind::PhaseSwitch,
                    detail: *bytes_sent,
                }),
                Signal::RetransmissionTimeout { flow, subflow, at } if self.wants_flow(flow.0) => {
                    self.record_event(FlowEvent {
                        at: *at,
                        flow: flow.0,
                        subflow: *subflow,
                        kind: TraceEventKind::Rto,
                        detail: 0,
                    })
                }
                Signal::FastRetransmit { flow, subflow, at } if self.wants_flow(flow.0) => self
                    .record_event(FlowEvent {
                        at: *at,
                        flow: flow.0,
                        subflow: *subflow,
                        kind: TraceEventKind::FastRetransmit,
                        detail: 0,
                    }),
                Signal::SpuriousRetransmit { flow, subflow, at } if self.wants_flow(flow.0) => self
                    .record_event(FlowEvent {
                        at: *at,
                        flow: flow.0,
                        subflow: *subflow,
                        kind: TraceEventKind::SpuriousRetransmit,
                        detail: 0,
                    }),
                _ => {}
            }
        }
    }

    /// Snapshot every link at time `now`. Counter fields of the recorded
    /// point are deltas since the previous snapshot; the caller (the
    /// experiment loop) settles each link's batched-drain ledger first so
    /// the counters reflect exactly the transmissions started by `now`.
    pub fn sample_links(&mut self, now: SimTime, network: &Network) {
        if !self.settings.links {
            return;
        }
        let window_ns = self
            .last_link_sample
            .map(|prev| (now - prev).as_nanos())
            .unwrap_or(0);
        let cap = self.settings.ring_capacity;
        let mut fresh = Vec::with_capacity(network.links().len());
        for (i, link) in network.links().iter().enumerate() {
            let t = link.telemetry(now);
            let prev = self.prev_links.get(i).copied().unwrap_or_default();
            let busy_delta = t.busy_ns - prev.busy_ns;
            self.links
                .entry(i)
                .or_insert_with(|| RingSeries::new(cap))
                .push(LinkPoint {
                    at: now,
                    depth_packets: t.queue_depth_packets,
                    tx_packets: t.tx_packets - prev.tx_packets,
                    tx_bytes: t.tx_bytes - prev.tx_bytes,
                    drops: t.dropped - prev.dropped,
                    ecn_marks: t.ecn_marked - prev.ecn_marked,
                    utilisation: if window_ns > 0 {
                        (busy_delta as f64 / window_ns as f64).min(1.0)
                    } else {
                        0.0
                    },
                });
            fresh.push(t);
        }
        self.prev_links = fresh;
        self.last_link_sample = Some(now);
    }

    // --- accessors -------------------------------------------------------

    /// The `(flow, subflow)` keys with a recorded series, in order.
    pub fn flow_keys(&self) -> Vec<(u64, u8)> {
        self.flows.keys().copied().collect()
    }

    /// The series of one subflow, if recorded.
    pub fn flow_series(&self, flow: u64, subflow: u8) -> Option<&RingSeries<FlowPoint>> {
        self.flows.get(&(flow, subflow))
    }

    /// The recorded discrete events, in simulated-time order.
    pub fn events(&self) -> &[FlowEvent] {
        &self.events
    }

    /// The series of one link (by link index), if recorded.
    pub fn link_series(&self, link: usize) -> Option<&RingSeries<LinkPoint>> {
        self.links.get(&link)
    }

    /// Number of links with a recorded series.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Total retained flow samples across all series.
    pub fn flow_sample_count(&self) -> usize {
        self.flows.values().map(|s| s.len()).sum()
    }

    /// Total retained link samples across all series.
    pub fn link_sample_count(&self) -> usize {
        self.links.values().map(|s| s.len()).sum()
    }

    // --- export ----------------------------------------------------------

    /// The per-subflow congestion series as CSV. Schema (one row per
    /// retained sample): `flow,subflow,cc,t_ns,cwnd_bytes,srtt_us,
    /// outstanding_bytes`, sorted by flow, subflow, time. `cc` is the
    /// congestion controller's stable label, so mixed-controller experiments
    /// remain separable in one file.
    pub fn flows_csv(&self) -> String {
        let mut out = String::from("flow,subflow,cc,t_ns,cwnd_bytes,srtt_us,outstanding_bytes\n");
        for ((flow, subflow), series) in &self.flows {
            for p in series.items() {
                out.push_str(&format!(
                    "{flow},{subflow},{},{},{},{},{}\n",
                    p.cc,
                    p.at.as_nanos(),
                    p.cwnd,
                    p.srtt_us,
                    p.outstanding
                ));
            }
        }
        out
    }

    /// The discrete-event log as CSV. Schema: `flow,subflow,t_ns,event,
    /// detail` where `event` is one of `phase_switch`, `rto`,
    /// `fast_retransmit`, `spurious_retransmit` and `detail` carries the
    /// bytes sent at a phase switch (0 otherwise). Rows are in simulated-time
    /// order.
    pub fn events_csv(&self) -> String {
        let mut out = String::from("flow,subflow,t_ns,event,detail\n");
        for e in &self.events {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                e.flow,
                e.subflow,
                e.at.as_nanos(),
                e.kind.label(),
                e.detail
            ));
        }
        out
    }

    /// The per-link series as CSV. Schema: `link,t_ns,depth_packets,
    /// tx_packets,tx_bytes,drops,ecn_marks,utilisation` — counters are
    /// deltas over the sample window ending at `t_ns`, `utilisation` is the
    /// busy fraction of that window with six fixed decimals.
    pub fn links_csv(&self) -> String {
        let mut out = String::from(
            "link,t_ns,depth_packets,tx_packets,tx_bytes,drops,ecn_marks,utilisation\n",
        );
        for (link, series) in &self.links {
            for p in series.items() {
                out.push_str(&format!(
                    "{link},{},{},{},{},{},{},{:.6}\n",
                    p.at.as_nanos(),
                    p.depth_packets,
                    p.tx_packets,
                    p.tx_bytes,
                    p.drops,
                    p.ecn_marks,
                    p.utilisation
                ));
            }
        }
        out
    }

    /// A JSON manifest documenting the trace: run label, settings, the
    /// schema of each CSV file, and retention statistics (offered vs
    /// retained samples, decimation strides, dropped events). Hand-rolled
    /// like every canonical document in this workspace (the local `serde`
    /// is a no-op shim).
    pub fn manifest_json(&self, label: &str) -> String {
        use crate::report::json_escape;
        let flows_offered: u64 = self.flows.values().map(|s| s.offered()).sum();
        let links_offered: u64 = self.links.values().map(|s| s.offered()).sum();
        let max_flow_stride = self.flows.values().map(|s| s.stride()).max().unwrap_or(1);
        let max_link_stride = self.links.values().map(|s| s.stride()).max().unwrap_or(1);
        format!(
            concat!(
                "{{\n",
                "  \"label\": \"{label}\",\n",
                "  \"sample_every_ns\": {every},\n",
                "  \"ring_capacity\": {cap},\n",
                "  \"files\": {{\n",
                "    \"flows.csv\": \"flow,subflow,cc,t_ns,cwnd_bytes,srtt_us,outstanding_bytes — one row per retained cwnd sample (cc = congestion controller label), sorted by flow/subflow/time\",\n",
                "    \"events.csv\": \"flow,subflow,t_ns,event,detail — discrete events (phase_switch carries bytes-sent in detail) in simulated-time order\",\n",
                "    \"links.csv\": \"link,t_ns,depth_packets,tx_packets,tx_bytes,drops,ecn_marks,utilisation — window deltas ending at t_ns; depth is instantaneous\"\n",
                "  }},\n",
                "  \"flow_series\": {fseries},\n",
                "  \"flow_samples_retained\": {fkept},\n",
                "  \"flow_samples_offered\": {foff},\n",
                "  \"flow_max_stride\": {fstride},\n",
                "  \"events_retained\": {ev},\n",
                "  \"events_dropped\": {evd},\n",
                "  \"link_series\": {lseries},\n",
                "  \"link_samples_retained\": {lkept},\n",
                "  \"link_samples_offered\": {loff},\n",
                "  \"link_max_stride\": {lstride}\n",
                "}}\n",
            ),
            label = json_escape(label),
            every = self.settings.sample_every.as_nanos(),
            cap = self.settings.ring_capacity,
            fseries = self.flows.len(),
            fkept = self.flow_sample_count(),
            foff = flows_offered,
            fstride = max_flow_stride,
            ev = self.events.len(),
            evd = self.events_dropped,
            lseries = self.links.len(),
            lkept = self.link_sample_count(),
            loff = links_offered,
            lstride = max_link_stride,
        )
    }

    /// Write `flows.csv`, `events.csv`, `links.csv` (only when link tracing
    /// was on) and `manifest.json` into `dir`, creating it as needed.
    /// Returns the written paths. A stale `links.csv` from a previous
    /// links-enabled trace of the same run is removed, so the directory
    /// always reflects exactly this trace.
    pub fn write_dir(&self, dir: &Path, label: &str) -> std::io::Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        let mut write = |name: &str, contents: String| -> std::io::Result<()> {
            let path = dir.join(name);
            std::fs::write(&path, contents)?;
            written.push(path);
            Ok(())
        };
        write("flows.csv", self.flows_csv())?;
        write("events.csv", self.events_csv())?;
        if self.settings.links {
            write("links.csv", self.links_csv())?;
        } else if let Err(e) = std::fs::remove_file(dir.join("links.csv")) {
            if e.kind() != std::io::ErrorKind::NotFound {
                return Err(e);
            }
        }
        write("manifest.json", self.manifest_json(label))?;
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::FlowId;

    fn sample(flow: u64, subflow: u8, ms: u64, cwnd: u64) -> Signal {
        Signal::CwndSample {
            flow: FlowId(flow),
            subflow,
            at: SimTime::from_millis(ms),
            cwnd,
            srtt_us: 100,
            outstanding: cwnd / 2,
            cc: "reno",
        }
    }

    #[test]
    fn ring_series_accepts_everything_until_capacity() {
        let mut s = RingSeries::new(8);
        for i in 0..8u64 {
            s.push(i);
        }
        assert_eq!(s.len(), 8);
        assert_eq!(s.stride(), 1);
        assert_eq!(s.items(), (0..8).collect::<Vec<_>>().as_slice());
    }

    #[test]
    fn ring_series_thins_and_doubles_stride_at_capacity() {
        let mut s = RingSeries::new(8);
        for i in 0..9u64 {
            s.push(i);
        }
        // Compaction kept 0,2,4,6 and then accepted 8 (stride now 2).
        assert_eq!(s.items(), &[0, 2, 4, 6, 8]);
        assert_eq!(s.stride(), 2);
        // Offer 9 (decimated: offered index 9 is odd) and 10 (accepted).
        s.push(9);
        assert_eq!(s.len(), 5);
        s.push(10);
        assert_eq!(s.items(), &[0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn ring_series_is_bounded_and_keeps_its_head_under_long_input() {
        let mut s = RingSeries::new(16);
        for i in 0..100_000u64 {
            s.push(i);
        }
        assert!(s.len() <= 16, "len {} exceeds capacity", s.len());
        assert_eq!(s.items()[0], 0, "first sample must survive every thinning");
        assert_eq!(s.offered(), 100_000);
        assert!(s.stride() >= 100_000 / 16);
        // Retained points are strictly increasing (ordered history).
        for w in s.items().windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn ring_series_minimum_capacity_is_two() {
        let mut s = RingSeries::new(0);
        for i in 0..10u64 {
            s.push(i);
        }
        assert!(s.len() <= 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn sink_records_cwnd_series_per_subflow() {
        let mut sink = TraceSink::new(TraceSettings::default());
        sink.ingest(&[
            sample(1, 0, 1, 14_000),
            sample(1, 0, 2, 28_000),
            sample(1, 1, 3, 14_000),
            sample(2, 0, 4, 14_000),
        ]);
        assert_eq!(sink.flow_keys(), vec![(1, 0), (1, 1), (2, 0)]);
        let s = sink.flow_series(1, 0).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.items()[1].cwnd, 28_000);
        assert_eq!(sink.flow_sample_count(), 4);
    }

    #[test]
    fn sink_flow_filter_drops_other_flows() {
        let mut sink = TraceSink::new(TraceSettings {
            flows: FlowSelect::One(7),
            ..TraceSettings::default()
        });
        sink.ingest(&[
            sample(7, 0, 1, 14_000),
            sample(8, 0, 1, 14_000),
            Signal::PhaseSwitched {
                flow: FlowId(8),
                at: SimTime::from_millis(2),
                bytes_sent: 210_000,
            },
            Signal::PhaseSwitched {
                flow: FlowId(7),
                at: SimTime::from_millis(3),
                bytes_sent: 210_000,
            },
        ]);
        assert_eq!(sink.flow_keys(), vec![(7, 0)]);
        assert_eq!(sink.events().len(), 1);
        assert_eq!(sink.events()[0].flow, 7);
    }

    #[test]
    fn sink_records_events_with_kinds_and_details() {
        let mut sink = TraceSink::new(TraceSettings::default());
        sink.ingest(&[
            Signal::PhaseSwitched {
                flow: FlowId(1),
                at: SimTime::from_millis(5),
                bytes_sent: 210_000,
            },
            Signal::RetransmissionTimeout {
                flow: FlowId(1),
                subflow: 2,
                at: SimTime::from_millis(6),
            },
            Signal::FastRetransmit {
                flow: FlowId(1),
                subflow: 0,
                at: SimTime::from_millis(7),
            },
            Signal::SpuriousRetransmit {
                flow: FlowId(1),
                subflow: 0,
                at: SimTime::from_millis(8),
            },
            // Non-trace signals are ignored.
            Signal::FlowCompleted {
                flow: FlowId(1),
                at: SimTime::from_millis(9),
                bytes: 70_000,
            },
        ]);
        let kinds: Vec<&str> = sink.events().iter().map(|e| e.kind.label()).collect();
        assert_eq!(
            kinds,
            vec![
                "phase_switch",
                "rto",
                "fast_retransmit",
                "spurious_retransmit"
            ]
        );
        assert_eq!(sink.events()[0].detail, 210_000);
        let csv = sink.events_csv();
        assert!(csv.starts_with("flow,subflow,t_ns,event,detail\n"));
        assert!(csv.contains("1,0,5000000,phase_switch,210000"));
    }

    #[test]
    fn link_sampling_produces_window_deltas() {
        use netsim::prelude::*;
        let mut net = Network::new();
        let h0 = net.add_host();
        let sw = net.add_switch(SwitchLayer::Edge, 1);
        let (up, _down) = net.add_duplex_link(h0, sw, LinkConfig::default());
        let mut sink = TraceSink::new(TraceSettings {
            links: true,
            ..TraceSettings::default()
        });
        sink.sample_links(SimTime::ZERO, &net);
        // Put three packets on the uplink: one transmits, two queue.
        for i in 0..3u64 {
            let pkt = Packet::data(
                Addr(0),
                Addr(0),
                1,
                2,
                FlowId(1),
                0,
                i,
                i,
                1400,
                SimTime::ZERO,
            );
            let _ = net.link_mut(up).offer(SimTime::ZERO, pkt);
        }
        sink.sample_links(SimTime::from_micros(100), &net);
        let series = sink.link_series(up.index()).unwrap();
        assert_eq!(series.len(), 2);
        let p = series.items()[1];
        assert_eq!(p.depth_packets, 2);
        assert_eq!(p.tx_packets, 1, "window delta, not cumulative");
        assert!(p.utilisation > 0.0 && p.utilisation <= 1.0);
        // A quiet window records zero deltas.
        sink.sample_links(SimTime::from_micros(200), &net);
        let q = sink.link_series(up.index()).unwrap().items()[2];
        assert_eq!(q.tx_packets, 0);
        assert_eq!(q.tx_bytes, 0);
        // Every link in the network has a series.
        assert_eq!(sink.link_count(), net.link_count());
        let csv = sink.links_csv();
        assert!(csv.starts_with(
            "link,t_ns,depth_packets,tx_packets,tx_bytes,drops,ecn_marks,utilisation\n"
        ));
    }

    #[test]
    fn csv_and_manifest_are_deterministic() {
        let build = || {
            let mut sink = TraceSink::new(TraceSettings::default());
            sink.ingest(&[
                sample(2, 1, 2, 28_000),
                sample(1, 0, 1, 14_000),
                Signal::PhaseSwitched {
                    flow: FlowId(1),
                    at: SimTime::from_millis(3),
                    bytes_sent: 100,
                },
            ]);
            sink
        };
        let a = build();
        let b = build();
        assert_eq!(a.flows_csv(), b.flows_csv());
        assert_eq!(a.events_csv(), b.events_csv());
        assert_eq!(a.manifest_json("x"), b.manifest_json("x"));
        // Sorted by flow then subflow regardless of ingest order.
        let csv = a.flows_csv();
        let first_data_line = csv.lines().nth(1).unwrap();
        assert!(first_data_line.starts_with("1,0,"));
        assert!(a.manifest_json("run \"1\"").contains("run \\\"1\\\""));
    }

    #[test]
    fn write_dir_emits_the_documented_files() {
        let dir = std::env::temp_dir().join(format!(
            "mmptcp-trace-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut sink = TraceSink::new(TraceSettings {
            links: true,
            ..TraceSettings::default()
        });
        sink.ingest(&[sample(1, 0, 1, 14_000)]);
        let written = sink.write_dir(&dir, "test-run").expect("write trace dir");
        let names: Vec<String> = written
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            names,
            vec!["flows.csv", "events.csv", "links.csv", "manifest.json"]
        );
        let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
        assert!(manifest.contains("\"label\": \"test-run\""));
        assert!(manifest.contains("\"flow_samples_retained\": 1"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn off_config_is_the_default_and_reports_no_settings() {
        assert_eq!(TraceConfig::default(), TraceConfig::Off);
        assert!(!TraceConfig::Off.is_on());
        assert!(TraceConfig::Off.settings().is_none());
        assert!(TraceConfig::flows().is_on());
        assert!(TraceConfig::full().settings().unwrap().links);
        assert!(!TraceConfig::flows().settings().unwrap().links);
    }
}
