//! Flow-level measurement: completion times, retransmission statistics and
//! phase-switch accounting, derived from the [`netsim::Signal`] stream.

use crate::stats::Summary;
use netsim::{FlowId, Signal, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Everything recorded about one flow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FlowRecord {
    /// When the sender started.
    pub started: Option<SimTime>,
    /// When the transfer was fully acknowledged.
    pub completed: Option<SimTime>,
    /// Bytes of the completed transfer (or of the final progress report).
    pub bytes: u64,
    /// Retransmission timeouts experienced.
    pub rtos: u32,
    /// Fast retransmissions experienced.
    pub fast_retransmits: u32,
    /// Spurious retransmissions detected.
    pub spurious_retransmits: u32,
    /// When the MMPTCP phase switch happened, if it did.
    pub phase_switched: Option<SimTime>,
    /// Bytes the sender put on the wire beyond the flow's size (replica
    /// copies plus retransmissions), as reported by replication-based
    /// transports via [`Signal::RedundantBytes`].
    pub redundant_bytes: u64,
}

impl FlowRecord {
    /// Flow completion time, if the flow both started and completed.
    pub fn fct(&self) -> Option<SimDuration> {
        match (self.started, self.completed) {
            (Some(s), Some(c)) => Some(c - s),
            _ => None,
        }
    }
}

/// Collects per-flow records from the signal stream.
#[derive(Debug, Default, Clone)]
pub struct FlowMetrics {
    records: HashMap<FlowId, FlowRecord>,
    /// Time series of progress reports per flow: `(when, bytes delivered so
    /// far)`, in arrival order. Fed by the receivers' periodic
    /// `Signal::FlowProgress` reports; lets goodput be computed over any fixed
    /// window regardless of when the run ended.
    progress: HashMap<FlowId, Vec<(SimTime, u64)>>,
}

impl FlowMetrics {
    /// Create an empty collector.
    pub fn new() -> Self {
        FlowMetrics::default()
    }

    /// Ingest a batch of signals.
    pub fn ingest<'a>(&mut self, signals: impl IntoIterator<Item = &'a Signal>) {
        for s in signals {
            // Flight-recorder telemetry is the trace sink's input, not a
            // flow-lifecycle event; skipping it before the entry() below
            // keeps traced runs from growing phantom flow records.
            if matches!(s, Signal::CwndSample { .. }) {
                continue;
            }
            let rec = self.records.entry(s.flow()).or_default();
            match s {
                Signal::FlowStarted { at, .. } => rec.started = Some(*at),
                Signal::FlowCompleted { at, bytes, .. } => {
                    rec.completed = Some(*at);
                    rec.bytes = *bytes;
                    self.progress
                        .entry(s.flow())
                        .or_default()
                        .push((*at, *bytes));
                }
                Signal::RetransmissionTimeout { .. } => rec.rtos += 1,
                Signal::FastRetransmit { .. } => rec.fast_retransmits += 1,
                Signal::SpuriousRetransmit { .. } => rec.spurious_retransmits += 1,
                Signal::PhaseSwitched { at, .. } => rec.phase_switched = Some(*at),
                Signal::FlowProgress { at, bytes, .. } => {
                    // Keep the largest progress report (sender and receiver may
                    // both report).
                    rec.bytes = rec.bytes.max(*bytes);
                    self.progress
                        .entry(s.flow())
                        .or_default()
                        .push((*at, *bytes));
                }
                Signal::RedundantBytes { bytes, .. } => rec.redundant_bytes += bytes,
                Signal::CwndSample { .. } => unreachable!("filtered above"),
            }
        }
    }

    /// Bytes the flow had delivered by time `at`, using the most recent
    /// progress report (or completion) at or before `at`. Returns 0 if the
    /// flow had reported nothing by then.
    pub fn bytes_delivered_by(&self, flow: FlowId, at: SimTime) -> u64 {
        self.progress
            .get(&flow)
            .map(|series| {
                series
                    .iter()
                    .filter(|(t, _)| *t <= at)
                    .map(|(_, b)| *b)
                    .max()
                    .unwrap_or(0)
            })
            .unwrap_or(0)
    }

    /// Aggregate goodput (bits per second) of the selected flows over the
    /// window `[start, end]`, computed from progress-report deltas inside the
    /// window. Unlike [`FlowMetrics::goodput_bps`] this is insensitive to how
    /// long the run lasted after `end`.
    pub fn goodput_bps_windowed<F: Fn(FlowId) -> bool>(
        &self,
        filter: F,
        start: SimTime,
        end: SimTime,
    ) -> f64 {
        let window = (end - start).as_secs_f64();
        if window <= 0.0 {
            return 0.0;
        }
        let bytes: u64 = self
            .progress
            .keys()
            .filter(|id| filter(**id))
            .map(|id| {
                self.bytes_delivered_by(*id, end)
                    .saturating_sub(self.bytes_delivered_by(*id, start))
            })
            .sum();
        bytes as f64 * 8.0 / window
    }

    /// The record for one flow.
    pub fn record(&self, flow: FlowId) -> Option<&FlowRecord> {
        self.records.get(&flow)
    }

    /// Number of flows seen.
    pub fn flow_count(&self) -> usize {
        self.records.len()
    }

    /// Number of flows that completed.
    pub fn completed_count(&self) -> usize {
        self.records
            .values()
            .filter(|r| r.completed.is_some())
            .count()
    }

    /// All (flow, record) pairs, sorted by flow id for deterministic output.
    pub fn sorted_records(&self) -> Vec<(FlowId, FlowRecord)> {
        let mut v: Vec<(FlowId, FlowRecord)> = self.records.iter().map(|(k, v)| (*k, *v)).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    /// Completion times (milliseconds) of the flows selected by `filter`.
    pub fn fcts_ms<F: Fn(FlowId) -> bool>(&self, filter: F) -> Vec<f64> {
        let mut v: Vec<(FlowId, f64)> = self
            .records
            .iter()
            .filter(|(id, _)| filter(**id))
            .filter_map(|(id, r)| r.fct().map(|d| (*id, d.as_millis_f64())))
            .collect();
        v.sort_by_key(|(id, _)| *id);
        v.into_iter().map(|(_, f)| f).collect()
    }

    /// Summary of completion times (in milliseconds) over the selected flows.
    pub fn fct_summary_ms<F: Fn(FlowId) -> bool>(&self, filter: F) -> Summary {
        Summary::of(&self.fcts_ms(filter))
    }

    /// Total RTOs over the selected flows.
    pub fn total_rtos<F: Fn(FlowId) -> bool>(&self, filter: F) -> u64 {
        self.records
            .iter()
            .filter(|(id, _)| filter(**id))
            .map(|(_, r)| r.rtos as u64)
            .sum()
    }

    /// Number of selected flows that experienced at least one RTO.
    pub fn flows_with_rto<F: Fn(FlowId) -> bool>(&self, filter: F) -> usize {
        self.records
            .iter()
            .filter(|(id, r)| filter(**id) && r.rtos > 0)
            .count()
    }

    /// Total redundant bytes (replica copies + retransmissions reported via
    /// [`Signal::RedundantBytes`]) over the selected flows.
    pub fn redundant_bytes<F: Fn(FlowId) -> bool>(&self, filter: F) -> u64 {
        self.records
            .iter()
            .filter(|(id, _)| filter(**id))
            .map(|(_, r)| r.redundant_bytes)
            .sum()
    }

    /// Aggregate goodput (bytes per second) of the selected flows over the
    /// window `[start, end]`, using completed bytes and progress reports.
    pub fn goodput_bps<F: Fn(FlowId) -> bool>(
        &self,
        filter: F,
        start: SimTime,
        end: SimTime,
    ) -> f64 {
        let elapsed = (end - start).as_secs_f64();
        if elapsed <= 0.0 {
            return 0.0;
        }
        let bytes: u64 = self
            .records
            .iter()
            .filter(|(id, _)| filter(**id))
            .map(|(_, r)| r.bytes)
            .sum();
        bytes as f64 * 8.0 / elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signals_for_flow(id: u64, start_ms: u64, end_ms: u64, bytes: u64) -> Vec<Signal> {
        vec![
            Signal::FlowStarted {
                flow: FlowId(id),
                at: SimTime::from_millis(start_ms),
                bytes,
            },
            Signal::FlowCompleted {
                flow: FlowId(id),
                at: SimTime::from_millis(end_ms),
                bytes,
            },
        ]
    }

    #[test]
    fn fct_is_completion_minus_start() {
        let mut m = FlowMetrics::new();
        m.ingest(&signals_for_flow(1, 100, 216, 70_000));
        let rec = m.record(FlowId(1)).unwrap();
        assert_eq!(rec.fct(), Some(SimDuration::from_millis(116)));
        assert_eq!(rec.bytes, 70_000);
        assert_eq!(m.completed_count(), 1);
    }

    #[test]
    fn summary_over_selected_flows() {
        let mut m = FlowMetrics::new();
        m.ingest(&signals_for_flow(1, 0, 100, 70_000));
        m.ingest(&signals_for_flow(2, 0, 200, 70_000));
        m.ingest(&signals_for_flow(10, 0, 5_000, 70_000)); // excluded below
        let s = m.fct_summary_ms(|f| f.0 < 10);
        assert_eq!(s.count, 2);
        assert!((s.mean - 150.0).abs() < 1e-9);
    }

    #[test]
    fn incomplete_flows_are_not_counted_in_fct() {
        let mut m = FlowMetrics::new();
        m.ingest(&[Signal::FlowStarted {
            flow: FlowId(3),
            at: SimTime::from_millis(1),
            bytes: 100,
        }]);
        assert_eq!(m.fcts_ms(|_| true).len(), 0);
        assert_eq!(m.flow_count(), 1);
        assert_eq!(m.completed_count(), 0);
    }

    #[test]
    fn rto_and_retransmit_counting() {
        let mut m = FlowMetrics::new();
        m.ingest(&[
            Signal::RetransmissionTimeout {
                flow: FlowId(1),
                subflow: 0,
                at: SimTime::from_millis(5),
            },
            Signal::RetransmissionTimeout {
                flow: FlowId(1),
                subflow: 2,
                at: SimTime::from_millis(7),
            },
            Signal::FastRetransmit {
                flow: FlowId(2),
                subflow: 0,
                at: SimTime::from_millis(6),
            },
            Signal::SpuriousRetransmit {
                flow: FlowId(2),
                subflow: 0,
                at: SimTime::from_millis(8),
            },
        ]);
        assert_eq!(m.total_rtos(|_| true), 2);
        assert_eq!(m.flows_with_rto(|_| true), 1);
        assert_eq!(m.record(FlowId(2)).unwrap().fast_retransmits, 1);
        assert_eq!(m.record(FlowId(2)).unwrap().spurious_retransmits, 1);
    }

    #[test]
    fn windowed_goodput_uses_progress_deltas() {
        let mut m = FlowMetrics::new();
        // Flow 1 delivers 1 MB by 1 s, 3 MB by 2 s, 10 MB by 5 s.
        for (sec, mb) in [(1u64, 1u64), (2, 3), (5, 10)] {
            m.ingest(&[Signal::FlowProgress {
                flow: FlowId(1),
                at: SimTime::from_secs(sec),
                bytes: mb * 1_000_000,
            }]);
        }
        assert_eq!(
            m.bytes_delivered_by(FlowId(1), SimTime::from_secs(1)),
            1_000_000
        );
        assert_eq!(
            m.bytes_delivered_by(FlowId(1), SimTime::from_secs(3)),
            3_000_000
        );
        assert_eq!(
            m.bytes_delivered_by(FlowId(1), SimTime::from_millis(500)),
            0
        );
        // Over [1 s, 2 s] the flow moved 2 MB = 16 Mbit/s.
        let bps = m.goodput_bps_windowed(|_| true, SimTime::from_secs(1), SimTime::from_secs(2));
        assert!((bps - 16e6).abs() < 1.0, "got {bps}");
        // Over [0, 2 s] it moved 3 MB = 12 Mbit/s.
        let bps = m.goodput_bps_windowed(|_| true, SimTime::ZERO, SimTime::from_secs(2));
        assert!((bps - 12e6).abs() < 1.0, "got {bps}");
        // The window is insensitive to later progress.
        let with_tail = m.goodput_bps_windowed(|_| true, SimTime::ZERO, SimTime::from_secs(2));
        assert!((with_tail - 12e6).abs() < 1.0);
    }

    #[test]
    fn completion_counts_as_progress() {
        let mut m = FlowMetrics::new();
        m.ingest(&signals_for_flow(4, 0, 500, 70_000));
        assert_eq!(
            m.bytes_delivered_by(FlowId(4), SimTime::from_secs(1)),
            70_000
        );
        assert_eq!(
            m.bytes_delivered_by(FlowId(4), SimTime::from_millis(100)),
            0
        );
    }

    #[test]
    fn progress_reports_feed_goodput() {
        let mut m = FlowMetrics::new();
        m.ingest(&[Signal::FlowProgress {
            flow: FlowId(7),
            at: SimTime::from_secs(2),
            bytes: 250_000_000,
        }]);
        // 250 MB over 2 s = 1 Gbps.
        let bps = m.goodput_bps(|_| true, SimTime::ZERO, SimTime::from_secs(2));
        assert!((bps - 1e9).abs() < 1e6);
    }

    #[test]
    fn redundant_bytes_accumulate_per_flow() {
        let mut m = FlowMetrics::new();
        m.ingest(&[
            Signal::RedundantBytes {
                flow: FlowId(1),
                at: SimTime::from_millis(5),
                bytes: 70_000,
            },
            Signal::RedundantBytes {
                flow: FlowId(2),
                at: SimTime::from_millis(6),
                bytes: 1_400,
            },
        ]);
        assert_eq!(m.record(FlowId(1)).unwrap().redundant_bytes, 70_000);
        assert_eq!(m.redundant_bytes(|_| true), 71_400);
        assert_eq!(m.redundant_bytes(|f| f.0 == 2), 1_400);
    }

    #[test]
    fn phase_switch_is_recorded() {
        let mut m = FlowMetrics::new();
        m.ingest(&[Signal::PhaseSwitched {
            flow: FlowId(4),
            at: SimTime::from_millis(42),
            bytes_sent: 210_000,
        }]);
        assert_eq!(
            m.record(FlowId(4)).unwrap().phase_switched,
            Some(SimTime::from_millis(42))
        );
    }
}
