//! Canonical scenario metrics documents.
//!
//! Every registry scenario emits one [`ScenarioReport`]: the per-run
//! headline numbers (FCT percentiles by flow class, long-flow goodput,
//! per-tier drops and ECN marks) rendered as a *canonical* JSON string —
//! fixed key order, two-space indentation, floats rounded to four decimals
//! before formatting so last-ulp libm differences between platforms can
//! never produce spurious diffs. Golden snapshots under `tests/golden/` are
//! compared byte-for-byte against this rendering; [`diff`] produces the
//! line-level drift report CI uploads as an artifact.
//!
//! The local `serde` crate is a no-op shim (offline build), so the writer is
//! hand-rolled: a tiny escaping/formatting layer instead of a serializer.

use crate::stats::Summary;

/// Decimal places kept for every floating-point value in a report.
const FLOAT_DECIMALS: i32 = 4;

/// Round-then-format a float for canonical JSON output. Rust's shortest
/// round-trip `Display` is deterministic; rounding first collapses sub-1e-4
/// noise so cross-platform libm (ln in the Poisson sampler, etc.) cannot
/// flip a digit. Non-finite values render as `null`.
pub fn json_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    let scale = 10f64.powi(FLOAT_DECIMALS);
    let rounded = (x * scale).round() / scale;
    // Avoid "-0".
    let rounded = if rounded == 0.0 { 0.0 } else { rounded };
    format!("{rounded}")
}

/// Escape a string for JSON.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// FCT summary (milliseconds) of one flow class within one run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FctDoc {
    /// Number of completed flows in the class.
    pub count: usize,
    /// Mean completion time.
    pub mean_ms: f64,
    /// Median (p50).
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Maximum.
    pub max_ms: f64,
}

impl FctDoc {
    /// Build from a [`Summary`] over completion times in milliseconds.
    pub fn from_summary(s: &Summary) -> Self {
        FctDoc {
            count: s.count,
            mean_ms: s.mean,
            p50_ms: s.median,
            p95_ms: s.p95,
            p99_ms: s.p99,
            max_ms: s.max,
        }
    }

    fn write_json(&self, out: &mut String, indent: &str) {
        out.push_str(&format!(
            "{{\n{indent}  \"count\": {},\n{indent}  \"mean_ms\": {},\n{indent}  \"p50_ms\": {},\n{indent}  \"p95_ms\": {},\n{indent}  \"p99_ms\": {},\n{indent}  \"max_ms\": {}\n{indent}}}",
            self.count,
            json_f64(self.mean_ms),
            json_f64(self.p50_ms),
            json_f64(self.p95_ms),
            json_f64(self.p99_ms),
            json_f64(self.max_ms),
        ));
    }
}

/// Per-fabric-tier packet counters (drops or ECN marks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierCounts {
    /// Edge (ToR) switch queues.
    pub edge: u64,
    /// Aggregation switch queues.
    pub aggregation: u64,
    /// Core switch queues.
    pub core: u64,
    /// Host NIC queues.
    pub host: u64,
}

impl TierCounts {
    /// Sum over every tier.
    pub fn total(&self) -> u64 {
        self.edge + self.aggregation + self.core + self.host
    }

    fn write_json(&self, out: &mut String, indent: &str) {
        out.push_str(&format!(
            "{{\n{indent}  \"edge\": {},\n{indent}  \"aggregation\": {},\n{indent}  \"core\": {},\n{indent}  \"host\": {},\n{indent}  \"total\": {}\n{indent}}}",
            self.edge,
            self.aggregation,
            self.core,
            self.host,
            self.total(),
        ));
    }
}

/// The canonical metrics of one experiment run within a scenario.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Run label (stable across regenerations; part of the golden contract).
    pub label: String,
    /// Short-flow completion-time summary.
    pub short_fct: FctDoc,
    /// Completion-time summary of the *mice* among the short flows (at most
    /// 100 KB). With empirical flow-size workloads the overall short-flow
    /// percentiles are dominated by multi-megabyte transfers; the mice
    /// summary is the tail the short-flow transports (RepFlow, packet
    /// scatter) actually compete on.
    pub mice_fct: FctDoc,
    /// Whether every bounded short flow finished before the time cap.
    pub all_short_completed: bool,
    /// Number of short flows that saw at least one RTO.
    pub short_flows_with_rto: usize,
    /// Total retransmission timeouts over all flows.
    pub rtos: u64,
    /// Aggregate long-flow goodput in Gbps.
    pub long_goodput_gbps: f64,
    /// Packet drops by fabric tier.
    pub drops: TierCounts,
    /// ECN marks by fabric tier.
    pub ecn_marks: TierCounts,
    /// Flows that executed an MMPTCP phase switch.
    pub phase_switches: usize,
    /// Bytes sent beyond the flows' sizes (replica copies plus
    /// retransmissions, as reported by replication-based transports).
    pub redundant_bytes: u64,
    /// Mean utilisation of aggregation↔core links.
    pub core_utilisation: f64,
}

impl RunReport {
    fn write_json(&self, out: &mut String) {
        let i = "      "; // nested under "runs": [ { ...
        out.push_str(&format!(
            "    {{\n{i}\"label\": \"{}\",\n",
            json_escape(&self.label)
        ));
        out.push_str(&format!("{i}\"short_fct\": "));
        self.short_fct.write_json(out, i);
        out.push_str(&format!(",\n{i}\"mice_fct\": "));
        self.mice_fct.write_json(out, i);
        out.push_str(&format!(
            ",\n{i}\"all_short_completed\": {},\n{i}\"short_flows_with_rto\": {},\n{i}\"rtos\": {},\n{i}\"long_goodput_gbps\": {},\n",
            self.all_short_completed,
            self.short_flows_with_rto,
            self.rtos,
            json_f64(self.long_goodput_gbps),
        ));
        out.push_str(&format!("{i}\"drops\": "));
        self.drops.write_json(out, i);
        out.push_str(&format!(",\n{i}\"ecn_marks\": "));
        self.ecn_marks.write_json(out, i);
        out.push_str(&format!(
            ",\n{i}\"phase_switches\": {},\n{i}\"redundant_bytes\": {},\n{i}\"core_utilisation\": {}\n    }}",
            self.phase_switches,
            self.redundant_bytes,
            json_f64(self.core_utilisation),
        ));
    }
}

/// The canonical, deterministic metrics document of one scenario execution.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScenarioReport {
    /// Scenario name from the registry.
    pub scenario: String,
    /// Fidelity label (`fast` / `full`).
    pub fidelity: String,
    /// One entry per run, in the scenario's deterministic config order.
    pub runs: Vec<RunReport>,
}

impl ScenarioReport {
    /// Render the canonical JSON document (fixed key order, 2-space indent,
    /// trailing newline). Byte-identical output is the golden-check contract.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"scenario\": \"{}\",\n",
            json_escape(&self.scenario)
        ));
        out.push_str(&format!(
            "  \"fidelity\": \"{}\",\n",
            json_escape(&self.fidelity)
        ));
        out.push_str("  \"runs\": [\n");
        for (i, run) in self.runs.iter().enumerate() {
            run.write_json(&mut out);
            if i + 1 < self.runs.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Line-level diff between an expected and an actual canonical document.
/// Returns `None` when the documents are identical; otherwise a compact
/// report listing every differing line (`-` expected, `+` actual) with its
/// 1-based line number — the artifact the CI golden job uploads.
pub fn diff(expected: &str, actual: &str) -> Option<String> {
    if expected == actual {
        return None;
    }
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    let mut out = String::new();
    let max = exp.len().max(act.len());
    for i in 0..max {
        let e = exp.get(i).copied();
        let a = act.get(i).copied();
        if e != a {
            if let Some(e) = e {
                out.push_str(&format!("@{} - {}\n", i + 1, e));
            }
            if let Some(a) = a {
                out.push_str(&format!("@{} + {}\n", i + 1, a));
            }
        }
    }
    if exp.len() != act.len() {
        out.push_str(&format!(
            "line count: expected {}, actual {}\n",
            exp.len(),
            act.len()
        ));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ScenarioReport {
        ScenarioReport {
            scenario: "fig1a".into(),
            fidelity: "fast".into(),
            runs: vec![RunReport {
                label: "mptcp-1 seed=1".into(),
                short_fct: FctDoc {
                    count: 12,
                    mean_ms: 3.14759265,
                    p50_ms: 2.5,
                    p95_ms: 8.0,
                    p99_ms: 9.99995,
                    max_ms: 11.0,
                },
                mice_fct: FctDoc {
                    count: 8,
                    mean_ms: 1.5,
                    p50_ms: 1.25,
                    p95_ms: 2.0,
                    p99_ms: 2.5,
                    max_ms: 3.0,
                },
                all_short_completed: true,
                short_flows_with_rto: 1,
                rtos: 2,
                long_goodput_gbps: 0.91234567,
                drops: TierCounts {
                    edge: 3,
                    aggregation: 1,
                    core: 0,
                    host: 0,
                },
                ecn_marks: TierCounts::default(),
                phase_switches: 0,
                redundant_bytes: 70_000,
                core_utilisation: 0.25,
            }],
        }
    }

    #[test]
    fn floats_are_rounded_to_four_decimals() {
        assert_eq!(json_f64(3.14759265), "3.1476");
        assert_eq!(json_f64(9.99995), "10");
        assert_eq!(json_f64(0.0), "0");
        assert_eq!(json_f64(-0.00001), "0");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(42.0), "42");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{01}"), "\\u0001");
    }

    #[test]
    fn rendering_is_deterministic_and_canonical() {
        let r = sample_report();
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\n  \"scenario\": \"fig1a\",\n"));
        assert!(a.ends_with("  ]\n}\n"));
        assert!(a.contains("\"mean_ms\": 3.1476"));
        assert!(a.contains("\"p99_ms\": 10"));
        assert!(a.contains("\"total\": 4"));
        assert!(a.contains("\"mice_fct\""));
        assert!(a.contains("\"redundant_bytes\": 70000"));
    }

    #[test]
    fn diff_is_none_for_identical_docs() {
        let a = sample_report().to_json();
        assert_eq!(diff(&a, &a), None);
    }

    #[test]
    fn diff_reports_changed_lines() {
        let a = sample_report().to_json();
        let mut changed = sample_report();
        changed.runs[0].short_fct.p99_ms = 123.4;
        let b = changed.to_json();
        let d = diff(&a, &b).expect("documents differ");
        assert!(d.contains("- "), "expected side present: {d}");
        assert!(d.contains("+ "), "actual side present: {d}");
        assert!(d.contains("123.4"), "new value shown: {d}");
    }

    #[test]
    fn tier_totals() {
        let t = TierCounts {
            edge: 1,
            aggregation: 2,
            core: 3,
            host: 4,
        };
        assert_eq!(t.total(), 10);
    }
}
