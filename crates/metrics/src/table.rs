//! Plain-text tables for the benchmark harnesses.
//!
//! Every figure/table regenerator prints its results through this module so
//! EXPERIMENTS.md and the bench output share one, easily-diffable format.

use serde::{Deserialize, Serialize};

/// A simple column-aligned text table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Table {
    /// Table title (printed above the header).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each row should have `headers.len()` cells).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Render the table as aligned text.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("# {}\n", self.title));
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as comma-separated values (for plotting scripts).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a float with 2 decimal places (convenience for table cells).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 4 decimal places.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Format a fraction as a percentage with 3 decimals.
pub fn pct(x: f64) -> String {
    format!("{:.3}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["protocol", "mean (ms)", "stddev"]);
        t.add_row(vec!["mptcp".into(), "126".into(), "425".into()]);
        t.add_row(vec!["mmptcp".into(), "116".into(), "101".into()]);
        let s = t.render();
        assert!(s.contains("# Demo"));
        assert!(s.contains("protocol"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // Column starts align between header and rows.
        let header_pos = lines[1].find("mean").unwrap();
        let row_pos = lines[3].find("126").unwrap();
        assert_eq!(header_pos, row_pos);
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new("x", &["a", "b"]);
        t.add_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.add_row(vec!["1".into()]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(f2(1.23456), "1.23");
        assert_eq!(f4(1.23456), "1.2346");
        assert_eq!(pct(0.01234), "1.234%");
    }
}
