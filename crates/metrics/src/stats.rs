//! Small, dependency-free descriptive statistics used throughout the
//! measurement pipeline (means, standard deviations, percentiles, histograms).

use serde::{Deserialize, Serialize};

/// Summary statistics over a set of samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Compute summary statistics. Returns the default (all zeros) for an
    /// empty slice.
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary::default();
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / count as f64;
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            median: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
            max: sorted[count - 1],
        }
    }
}

/// Percentile (nearest-rank with linear interpolation) of an already-sorted
/// slice. `p` is in `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Percentile of an unsorted slice.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    percentile_sorted(&sorted, p)
}

/// A fixed-bin histogram (used for completion-time distributions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Left edge of the first bin.
    pub start: f64,
    /// Width of each bin.
    pub bin_width: f64,
    /// Counts per bin; the final bin is an overflow bin.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Create a histogram with `bins` regular bins of `bin_width` starting at
    /// `start`, plus an implicit overflow bin.
    pub fn new(start: f64, bin_width: f64, bins: usize) -> Self {
        assert!(bin_width > 0.0 && bins > 0);
        Histogram {
            start,
            bin_width,
            counts: vec![0; bins + 1],
        }
    }

    /// Add a sample.
    pub fn add(&mut self, value: f64) {
        let idx = if value < self.start {
            0
        } else {
            (((value - self.start) / self.bin_width) as usize).min(self.counts.len() - 1)
        };
        self.counts[idx] += 1;
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of samples at or below the right edge of bin `idx`.
    pub fn cumulative_fraction(&self, idx: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let cum: u64 = self.counts[..=idx.min(self.counts.len() - 1)].iter().sum();
        cum as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-9);
        assert!((s.std_dev - 2.0).abs() < 1e-9);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-9);
    }

    #[test]
    fn summary_of_empty_is_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let v: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert!((percentile(&v, 0.0) - 1.0).abs() < 1e-9);
        assert!((percentile(&v, 100.0) - 100.0).abs() < 1e-9);
        assert!((percentile(&v, 50.0) - 50.5).abs() < 1e-9);
        assert!((percentile(&v, 99.0) - 99.01).abs() < 1e-9);
    }

    #[test]
    fn single_sample_percentile() {
        assert_eq!(percentile(&[42.0], 99.0), 42.0);
        // Every percentile of a single sample is that sample.
        for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(percentile(&[42.0], p), 42.0);
        }
    }

    #[test]
    fn two_sample_percentiles_interpolate_not_truncate() {
        // The index-truncating failure mode: p99 of a small sample collapsing
        // to max (or, with floor(rank) indexing, to min). With linear
        // interpolation over the (n-1)-rank basis, p99 of [10, 20] must be
        // strictly between the samples: 10*0.01 + 20*0.99 = 19.9.
        let v = [10.0, 20.0];
        assert!((percentile(&v, 99.0) - 19.9).abs() < 1e-9);
        assert!(percentile(&v, 99.0) < v[1], "p99 must not collapse to max");
        assert!((percentile(&v, 50.0) - 15.0).abs() < 1e-9);
        assert!((percentile(&v, 95.0) - 19.5).abs() < 1e-9);
        let s = Summary::of(&v);
        assert!((s.median - 15.0).abs() < 1e-9);
        assert!((s.p99 - 19.9).abs() < 1e-9);
        assert_eq!(s.max, 20.0);
    }

    #[test]
    fn hundred_sample_percentiles_interpolate() {
        let v: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        // rank(p99) = 0.99 * 99 = 98.01 -> 99 * 0.99 + 100 * 0.01 = 99.01.
        assert!((percentile(&v, 99.0) - 99.01).abs() < 1e-9);
        assert!((percentile(&v, 95.0) - 95.05).abs() < 1e-9);
        let s = Summary::of(&v);
        assert!((s.p99 - 99.01).abs() < 1e-9);
        assert!(s.p99 < s.max);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_of_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn histogram_binning_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 5); // bins [0,10), [10,20) ... [40,50) + overflow
        for v in [1.0, 5.0, 15.0, 45.0, 1000.0] {
            h.add(v);
        }
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[4], 1);
        assert_eq!(*h.counts.last().unwrap(), 1, "overflow bin");
        assert_eq!(h.total(), 5);
        assert!((h.cumulative_fraction(1) - 0.6).abs() < 1e-9);
    }
}
