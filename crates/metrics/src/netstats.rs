//! Network-level measurement: per-layer loss rates and link utilisation.
//!
//! The paper's §3 reports that "the average loss rate at the core and
//! aggregation layers are slightly lower [for MMPTCP] compared to MPTCP and
//! both protocols achieve the same average throughput for long flows and
//! overall network utilisation". These functions compute exactly those
//! quantities from the simulator's per-link counters.

use netsim::{Network, SimDuration, SwitchLayer};
use serde::{Deserialize, Serialize};
use topology::{BuiltTopology, LinkTier};

/// Loss statistics for one fabric layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LayerLoss {
    /// Packets offered to the output queues of switches at this layer.
    pub offered: u64,
    /// Packets dropped at those queues.
    pub dropped: u64,
    /// Packets ECN-marked (Congestion Experienced) at those queues.
    pub marked: u64,
}

impl LayerLoss {
    /// Drop probability (0 when nothing was offered).
    pub fn loss_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.dropped as f64 / self.offered as f64
        }
    }
}

/// Loss rates grouped by the layer of the switch whose output queue dropped
/// the packet. Host NIC queues are reported separately.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LossReport {
    /// Edge (top-of-rack) switches.
    pub edge: LayerLoss,
    /// Aggregation switches.
    pub aggregation: LayerLoss,
    /// Core switches.
    pub core: LayerLoss,
    /// Host NICs (send queues of end hosts).
    pub host: LayerLoss,
}

impl LossReport {
    /// Total drops anywhere.
    pub fn total_dropped(&self) -> u64 {
        self.edge.dropped + self.aggregation.dropped + self.core.dropped + self.host.dropped
    }

    /// Total ECN marks anywhere.
    pub fn total_marked(&self) -> u64 {
        self.edge.marked + self.aggregation.marked + self.core.marked + self.host.marked
    }

    /// The layer entry for a switch layer.
    pub fn layer(&self, layer: SwitchLayer) -> LayerLoss {
        match layer {
            SwitchLayer::Edge => self.edge,
            SwitchLayer::Aggregation => self.aggregation,
            SwitchLayer::Core => self.core,
        }
    }
}

/// Compute per-layer loss by attributing each link's queue drops to the layer
/// of the node transmitting on that link.
pub fn loss_report(network: &Network) -> LossReport {
    let mut report = LossReport::default();
    for link in network.links() {
        let qs = link.queue_stats();
        let offered = qs.enqueued + qs.dropped;
        let slot = match network.node(link.from) {
            netsim::Node::Host(_) => &mut report.host,
            netsim::Node::Switch(sw) => match sw.layer {
                SwitchLayer::Edge => &mut report.edge,
                SwitchLayer::Aggregation => &mut report.aggregation,
                SwitchLayer::Core => &mut report.core,
            },
        };
        slot.offered += offered;
        slot.dropped += qs.dropped;
        slot.marked += qs.ecn_marked;
    }
    report
}

/// Utilisation statistics for a set of links.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct UtilisationReport {
    /// Number of links considered.
    pub links: usize,
    /// Mean utilisation (busy fraction) across them.
    pub mean: f64,
    /// Highest single-link utilisation.
    pub max: f64,
    /// Total bytes carried by these links.
    pub bytes: u64,
}

/// Utilisation of all links of a tier over `elapsed` simulated time.
pub fn tier_utilisation(
    topo: &BuiltTopology,
    tier: LinkTier,
    elapsed: SimDuration,
) -> UtilisationReport {
    let links = topo.links_of_tier(tier);
    if links.is_empty() || elapsed.is_zero() {
        return UtilisationReport::default();
    }
    let mut sum = 0.0;
    let mut max: f64 = 0.0;
    let mut bytes = 0;
    for id in &links {
        let l = topo.network.link(*id);
        let u = l.utilisation(elapsed);
        sum += u;
        max = max.max(u);
        bytes += l.stats().tx_bytes;
    }
    UtilisationReport {
        links: links.len(),
        mean: sum / links.len() as f64,
        max,
        bytes,
    }
}

/// Overall network utilisation: mean utilisation over every link in the
/// network during `elapsed`.
pub fn overall_utilisation(network: &Network, elapsed: SimDuration) -> f64 {
    let links = network.links();
    if links.is_empty() || elapsed.is_zero() {
        return 0.0;
    }
    links.iter().map(|l| l.utilisation(elapsed)).sum::<f64>() / links.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{Addr, FlowId, LinkConfig, Packet, QueueConfig, SimTime};
    use topology::fattree::{self, FatTreeConfig};

    #[test]
    fn loss_report_attributes_drops_to_the_transmitting_layer() {
        // Tiny hand-built network: host -> edge switch with a 1-packet queue;
        // overflow the edge switch's downlink so drops land on the Edge layer.
        let mut net = Network::new();
        let h0 = net.add_host();
        let h1 = net.add_host();
        let sw = net.add_switch(SwitchLayer::Edge, 2);
        let cfg = LinkConfig {
            queue: QueueConfig {
                limit_packets: 1,
                ..QueueConfig::default()
            },
            ..LinkConfig::default()
        };
        net.add_duplex_link(h0, sw, cfg);
        let (_up1, down1) = net.add_duplex_link(h1, sw, cfg);
        let s = net.switch_mut(sw);
        let g = s.add_group(vec![down1]);
        s.set_route(Addr(1), g);

        // Push three packets into the switch->h1 link directly.
        let mk = |seq| {
            Packet::data(
                Addr(0),
                Addr(1),
                50_000,
                80,
                FlowId(1),
                0,
                seq,
                seq,
                1400,
                SimTime::ZERO,
            )
        };
        {
            let link = net.link_mut(down1);
            let _ = link.offer(SimTime::ZERO, mk(0)); // goes on the wire
            let _ = link.offer(SimTime::ZERO, mk(1)); // queued (limit 1)
            let _ = link.offer(SimTime::ZERO, mk(2)); // dropped
        }
        let report = loss_report(&net);
        assert_eq!(report.edge.dropped, 1);
        assert_eq!(report.edge.offered, 3);
        assert!(report.edge.loss_rate() > 0.3 && report.edge.loss_rate() < 0.34);
        assert_eq!(report.core.dropped, 0);
        assert_eq!(report.host.dropped, 0);
        assert_eq!(report.total_dropped(), 1);
    }

    #[test]
    fn utilisation_of_idle_fattree_is_zero() {
        let topo = fattree::build(FatTreeConfig::small());
        let u = tier_utilisation(&topo, LinkTier::AggregationCore, SimDuration::from_secs(1));
        assert_eq!(u.links, 32);
        assert_eq!(u.mean, 0.0);
        assert_eq!(u.bytes, 0);
        assert_eq!(
            overall_utilisation(&topo.network, SimDuration::from_secs(1)),
            0.0
        );
    }

    #[test]
    fn utilisation_counts_transmitted_bytes() {
        let topo = fattree::build(FatTreeConfig::small());
        let mut net = topo.network;
        // Transmit one packet on a core link.
        let core_links = {
            let mut v = Vec::new();
            for (i, t) in topo.link_tiers.iter().enumerate() {
                if *t == LinkTier::AggregationCore {
                    v.push(netsim::LinkId(i as u32));
                }
            }
            v
        };
        let p = Packet::data(
            Addr(0),
            Addr(8),
            50_000,
            80,
            FlowId(1),
            0,
            0,
            0,
            1446,
            SimTime::ZERO,
        );
        let _ = net.link_mut(core_links[0]).offer(SimTime::ZERO, p);
        let rebuilt = BuiltTopology {
            network: net,
            name: topo.name,
            hosts: topo.hosts,
            link_tiers: topo.link_tiers,
            path_model: topo.path_model,
        };
        let u = tier_utilisation(
            &rebuilt,
            LinkTier::AggregationCore,
            SimDuration::from_micros(24),
        );
        assert!(u.bytes >= 1500);
        assert!(u.mean > 0.0);
        assert!(u.max > 0.4);
    }
}
