//! Criterion micro-benchmarks of the simulation engine: event calendar
//! throughput, ECMP hashing, FatTree construction and a single end-to-end
//! transfer. These guard the simulator's performance, which bounds how large
//! a paper-scale experiment can be run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mmptcp::prelude::*;
use netsim::{
    ecmp, event::{Event, EventQueue}, Addr as NAddr, FlowId as NFlowId, Packet,
};
use topology::fattree;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(
                    netsim::SimTime::from_nanos((i * 7919) % 1_000_000),
                    Event::FlowStart {
                        node: netsim::NodeId(0),
                        flow: NFlowId(i),
                    },
                );
            }
            let mut count = 0;
            while q.pop().is_some() {
                count += 1;
            }
            black_box(count)
        })
    });
}

fn bench_ecmp_hash(c: &mut Criterion) {
    let pkt = Packet::data(
        NAddr(3),
        NAddr(97),
        51_234,
        5_001,
        NFlowId(42),
        0,
        1_400_000,
        1_400_000,
        1_400,
        netsim::SimTime::from_millis(10),
    );
    c.bench_function("ecmp_select_16way", |b| {
        b.iter(|| black_box(ecmp::select(black_box(&pkt), 0xDEADBEEF, 16)))
    });
}

fn bench_fattree_build(c: &mut Criterion) {
    c.bench_function("fattree_build_k8_4to1_512_hosts", |b| {
        b.iter(|| black_box(fattree::build(FatTreeConfig::paper()).host_count()))
    });
}

fn bench_single_flow(c: &mut Criterion) {
    let mk = |protocol| ExperimentConfig {
        topology: TopologySpec::Parallel(ParallelPathConfig::default()),
        workload: WorkloadSpec::Custom(vec![FlowSpec {
            id: 0,
            src: Addr(0),
            dst: Addr(1),
            size: Some(70_000),
            start: SimTime::from_millis(1),
            class: FlowClass::Short,
            deadline: None,
        }]),
        protocol,
        ..ExperimentConfig::default()
    };
    c.bench_function("end_to_end_70KB_tcp", |b| {
        b.iter(|| black_box(mmptcp::run(mk(Protocol::Tcp)).short_fct_summary().mean))
    });
    c.bench_function("end_to_end_70KB_mmptcp", |b| {
        b.iter(|| {
            black_box(
                mmptcp::run(mk(Protocol::mmptcp_default()))
                    .short_fct_summary()
                    .mean,
            )
        })
    });
}

criterion_group! {
    name = engine;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_event_queue, bench_ecmp_hash, bench_fattree_build, bench_single_flow
}
criterion_main!(engine);
