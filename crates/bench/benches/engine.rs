//! Micro-benchmarks of the simulation engine: event calendar throughput
//! (timing wheel vs. the reference binary heap), ECMP hashing, FatTree
//! construction, end-to-end transfers, and parallel-driver scaling. These
//! guard the simulator's performance, which bounds how large a paper-scale
//! experiment can be run.
//!
//! Run with `cargo bench --bench engine`; `BENCH_SAMPLES` and a name-substring
//! argument filter apply (see `bench::harness`).

use bench::harness::{black_box, compare, Harness};
use mmptcp::prelude::*;
use netsim::{
    ecmp,
    event::{BinaryHeapQueue, Event, EventQueue},
    Addr as NAddr, FlowId as NFlowId, Packet, SimRng,
};
use topology::fattree;

/// Deterministic pseudo-random schedule times reused by every calendar bench
/// so the wheel and the heap chew on identical inputs.
fn calendar_times(n: usize) -> Vec<netsim::SimTime> {
    let mut rng = SimRng::new(0xCA1E);
    (0..n)
        .map(|_| {
            // Mix of near-future (in-wheel) and far-future (overflow) times,
            // weighted towards the near window like a real packet schedule.
            let ns = if rng.chance(0.9) {
                rng.range(0u64..5_000_000) // within ~5 ms
            } else {
                rng.range(0u64..2_000_000_000) // up to 2 s (RTO-like)
            };
            netsim::SimTime::from_nanos(ns)
        })
        .collect()
}

fn flow_start(i: u64) -> Event {
    Event::FlowStart {
        node: netsim::NodeId(0),
        flow: NFlowId(i),
    }
}

fn bench_event_queue(h: &mut Harness) {
    let times_10k = calendar_times(10_000);
    h.bench("event_queue_schedule_pop_10k", || {
        let mut q = EventQueue::new();
        for (i, &t) in times_10k.iter().enumerate() {
            q.schedule(t, flow_start(i as u64));
        }
        let mut count = 0;
        while q.pop().is_some() {
            count += 1;
        }
        black_box(count)
    });

    // The acceptance benchmark: wheel vs. reference heap with >= 100k queued
    // events. Each iteration fills the calendar, then alternates pop/schedule
    // (steady-state churn, the pattern the simulator's hot loop produces),
    // then drains.
    let times_100k = calendar_times(100_000);
    let churn = calendar_times(50_000);
    let wheel = h.bench("calendar_wheel_100k_churn", || {
        run_churn(&times_100k, &churn, EventQueue::new())
    });
    let heap = h.bench("calendar_heap_100k_churn", || {
        run_churn(&times_100k, &churn, BinaryHeapQueue::new())
    });
    if let (Some(wheel), Some(heap)) = (wheel, heap) {
        let speedup = compare(&wheel, &heap);
        println!(
            "calendar verdict: timing wheel is {:.2}x the heap at 100k+ events{}",
            speedup,
            if speedup >= 1.0 {
                " (at parity or faster)"
            } else {
                " (SLOWER — regression!)"
            }
        );
    }
}

/// Either calendar implementation, for the differential churn bench.
trait Calendar {
    fn schedule(&mut self, at: netsim::SimTime, event: Event);
    fn pop(&mut self) -> Option<(netsim::SimTime, Event)>;
}

impl Calendar for EventQueue {
    fn schedule(&mut self, at: netsim::SimTime, event: Event) {
        EventQueue::schedule(self, at, event)
    }
    fn pop(&mut self) -> Option<(netsim::SimTime, Event)> {
        EventQueue::pop(self)
    }
}

impl Calendar for BinaryHeapQueue {
    fn schedule(&mut self, at: netsim::SimTime, event: Event) {
        BinaryHeapQueue::schedule(self, at, event)
    }
    fn pop(&mut self) -> Option<(netsim::SimTime, Event)> {
        BinaryHeapQueue::pop(self)
    }
}

/// Shared churn driver so both calendars execute the identical op sequence.
fn run_churn(fill: &[netsim::SimTime], churn: &[netsim::SimTime], mut q: impl Calendar) -> u64 {
    let mut seq = 0u64;
    for &t in fill {
        q.schedule(t, flow_start(seq));
        seq += 1;
    }
    let mut count = 0u64;
    let mut last = netsim::SimTime::ZERO;
    for &dt in churn {
        if let Some((t, _)) = q.pop() {
            last = t;
            count += 1;
        }
        // Reschedule relative to the popped time, like packet forwarding does.
        q.schedule(
            last + netsim::SimDuration::from_nanos(dt.as_nanos() % 100_000),
            flow_start(seq),
        );
        seq += 1;
    }
    while q.pop().is_some() {
        count += 1;
    }
    black_box(count)
}

fn bench_ecmp_hash(h: &mut Harness) {
    let pkt = Packet::data(
        NAddr(3),
        NAddr(97),
        51_234,
        5_001,
        NFlowId(42),
        0,
        1_400_000,
        1_400_000,
        1_400,
        netsim::SimTime::from_millis(10),
    );
    h.bench("ecmp_select_16way_1k", || {
        let mut acc = 0usize;
        for _ in 0..1_000 {
            acc += ecmp::select(black_box(&pkt), 0xDEADBEEF, 16);
        }
        black_box(acc)
    });
}

fn bench_fattree_build(h: &mut Harness) {
    h.bench("fattree_build_k8_4to1_512_hosts", || {
        black_box(fattree::build(FatTreeConfig::paper()).host_count())
    });
}

fn bench_single_flow(h: &mut Harness) {
    let mk = |protocol| ExperimentConfig {
        topology: TopologySpec::Parallel(ParallelPathConfig::default()),
        workload: WorkloadSpec::Custom(vec![FlowSpec {
            id: 0,
            src: Addr(0),
            dst: Addr(1),
            size: Some(70_000),
            start: SimTime::from_millis(1),
            class: FlowClass::Short,
            deadline: None,
        }]),
        protocol,
        ..ExperimentConfig::default()
    };
    h.bench("end_to_end_70KB_tcp", || {
        black_box(mmptcp::run(mk(Protocol::Tcp)).short_fct_summary().mean)
    });
    h.bench("end_to_end_70KB_mmptcp", || {
        black_box(
            mmptcp::run(mk(Protocol::mmptcp_default()))
                .short_fct_summary()
                .mean,
        )
    });
}

fn bench_driver_scaling(h: &mut Harness) {
    // A 16-configuration sweep (4 protocols x 4 seeds) at test scale; the
    // acceptance criterion wants near-linear scaling to available cores.
    let configs = || -> Vec<ExperimentConfig> {
        let mut v = Vec::new();
        for protocol in [
            Protocol::Tcp,
            Protocol::mptcp8(),
            Protocol::PacketScatter,
            Protocol::mmptcp_default(),
        ] {
            for seed in 1..=4u64 {
                v.push(ExperimentConfig::small_test(protocol, seed));
            }
        }
        v
    };
    let serial = h.bench("driver_sweep16_1_thread", || {
        black_box(Driver::with_threads(1).run(configs()).len())
    });
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let parallel = h.bench(&format!("driver_sweep16_{cores}_threads"), || {
        black_box(Driver::with_threads(cores).run(configs()).len())
    });
    if let (Some(parallel), Some(serial)) = (parallel, serial) {
        let speedup = compare(&parallel, &serial);
        println!("driver verdict: {speedup:.2}x speedup on {cores} cores for a 16-config sweep");
    }
}

fn main() {
    let mut h = Harness::group("engine", 10);
    bench_event_queue(&mut h);
    bench_ecmp_hash(&mut h);
    bench_fattree_build(&mut h);
    let mut h = Harness::group("engine_e2e", 5);
    bench_single_flow(&mut h);
    let mut h = Harness::group("driver", 3);
    bench_driver_scaling(&mut h);
}
