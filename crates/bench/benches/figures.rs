//! Criterion benches that exercise every figure/table regeneration path at
//! reduced scale, so `cargo bench` covers the full experiment matrix:
//!
//! * `fig1a_point` — one point of Figure 1(a) (MPTCP, varying subflows);
//! * `fig1b_mptcp8` / `fig1c_mmptcp8` — the Figure 1(b)/(c) scatter runs;
//! * `summary_stats` — the §3 text statistics comparison;
//! * `switching`, `load`, `hotspot`, `multihomed`, `coexistence`,
//!   `dupack_ablation` — the extension experiments.
//!
//! The real harnesses (with full tables and paper-scale options) are the
//! binaries in `src/bin/`; see EXPERIMENTS.md.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mmptcp::prelude::*;

/// A scaled-down Figure-1 configuration: 16-host FatTree (same 4:1
/// over-subscription regime as the paper via `oversubscription = 4` on k=4
/// would be 64 hosts; here we use the small tree with 2 flows per host to keep
/// criterion iterations affordable).
fn small_fig1(protocol: Protocol, seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        topology: TopologySpec::FatTree(FatTreeConfig::small()),
        workload: WorkloadSpec::Paper(PaperWorkloadConfig {
            flows_per_short_host: 2,
            arrivals: ArrivalProcess::Poisson {
                mean_interarrival: SimDuration::from_millis(20),
            },
            ..PaperWorkloadConfig::default()
        }),
        protocol,
        seed,
        ..ExperimentConfig::default()
    }
}

fn fig1a(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1a_mptcp_subflow_sweep");
    group.sample_size(10);
    for subflows in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(subflows),
            &subflows,
            |b, &n| {
                b.iter(|| {
                    let r = mmptcp::run(small_fig1(Protocol::Mptcp { subflows: n }, 1));
                    black_box(r.short_fct_summary().mean)
                })
            },
        );
    }
    group.finish();
}

fn fig1bc(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1bc_scatter");
    group.sample_size(10);
    group.bench_function("fig1b_mptcp8", |b| {
        b.iter(|| black_box(mmptcp::run(small_fig1(Protocol::mptcp8(), 2)).short_fct_series()))
    });
    group.bench_function("fig1c_mmptcp8", |b| {
        b.iter(|| {
            black_box(mmptcp::run(small_fig1(Protocol::mmptcp_default(), 2)).short_fct_series())
        })
    });
    group.finish();
}

fn summary_and_extensions(c: &mut Criterion) {
    let mut group = c.benchmark_group("extension_experiments");
    group.sample_size(10);

    group.bench_function("summary_stats_pair", |b| {
        b.iter(|| {
            let a = mmptcp::run(small_fig1(Protocol::mptcp8(), 3)).summary();
            let z = mmptcp::run(small_fig1(Protocol::mmptcp_default(), 3)).summary();
            black_box((a, z))
        })
    });

    group.bench_function("switching_congestion_event", |b| {
        b.iter(|| {
            let p = Protocol::Mmptcp {
                subflows: 8,
                switch: SwitchStrategy::CongestionEvent,
                dupack: None,
            };
            black_box(mmptcp::run(small_fig1(p, 4)).summary())
        })
    });

    group.bench_function("load_heavy", |b| {
        b.iter(|| {
            let mut cfg = small_fig1(Protocol::mmptcp_default(), 5);
            if let WorkloadSpec::Paper(p) = &mut cfg.workload {
                p.arrivals = ArrivalProcess::Poisson {
                    mean_interarrival: SimDuration::from_millis(5),
                };
            }
            black_box(mmptcp::run(cfg).summary())
        })
    });

    group.bench_function("hotspot_matrix", |b| {
        b.iter(|| {
            let mut cfg = small_fig1(Protocol::mmptcp_default(), 6);
            if let WorkloadSpec::Paper(p) = &mut cfg.workload {
                p.matrix = TrafficMatrix::Hotspot {
                    hot_hosts: 2,
                    hot_fraction_millis: 250,
                };
            }
            black_box(mmptcp::run(cfg).summary())
        })
    });

    group.bench_function("multihomed_fattree", |b| {
        b.iter(|| {
            let mut cfg = small_fig1(Protocol::mmptcp_default(), 7);
            cfg.topology = TopologySpec::MultiHomedFatTree(FatTreeConfig::small());
            black_box(mmptcp::run(cfg).summary())
        })
    });

    group.bench_function("coexistence_long_tcp", |b| {
        b.iter(|| {
            let mut cfg = small_fig1(Protocol::mmptcp_default(), 8);
            cfg.long_protocol = Some(Protocol::Tcp);
            black_box(mmptcp::run(cfg).summary())
        })
    });

    group.bench_function("dupack_fixed3", |b| {
        b.iter(|| {
            let p = Protocol::Mmptcp {
                subflows: 8,
                switch: SwitchStrategy::default(),
                dupack: Some(DupAckPolicy::Fixed(3)),
            };
            black_box(mmptcp::run(small_fig1(p, 9)).short_spurious_retransmits())
        })
    });

    group.bench_function("deadline_miss_d2tcp", |b| {
        b.iter(|| {
            let mut cfg = small_fig1(Protocol::D2tcp, 11);
            if let WorkloadSpec::Paper(p) = &mut cfg.workload {
                p.deadlines = DeadlineModel::Slack {
                    slack: 10.0,
                    reference_gbps: 1.0,
                    floor: SimDuration::from_millis(10),
                };
            }
            black_box(mmptcp::run(cfg).deadline_miss_rate())
        })
    });

    group.bench_function("incast_fan_in_8", |b| {
        b.iter(|| {
            let cfg = ExperimentConfig {
                topology: TopologySpec::FatTree(FatTreeConfig::small()),
                workload: WorkloadSpec::Incast {
                    fan_in: 8,
                    bytes: 32_000,
                    start: SimTime::from_millis(1),
                },
                protocol: Protocol::mmptcp_default(),
                seed: 10,
                ..ExperimentConfig::default()
            };
            black_box(mmptcp::run(cfg).summary())
        })
    });

    group.finish();
}

criterion_group! {
    name = figures;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = fig1a, fig1bc, summary_and_extensions
}
criterion_main!(figures);
