//! Benches that exercise every figure/table regeneration path at reduced
//! scale, so `cargo bench` covers the full experiment matrix:
//!
//! * `fig1a_*` — points of Figure 1(a) (MPTCP, varying subflows);
//! * `fig1b_mptcp8` / `fig1c_mmptcp8` — the Figure 1(b)/(c) scatter runs;
//! * `summary_stats` — the §3 text statistics comparison;
//! * `switching`, `load`, `hotspot`, `multihomed`, `coexistence`,
//!   `dupack_ablation` — the extension experiments.
//!
//! The real harness (with full tables, paper-scale `--full` fidelity and
//! golden-snapshot checking) is the `scenarios` registry binary in
//! `src/bin/`; these benches only guard the wall-clock cost of the paths.

use bench::harness::{black_box, Harness};
use mmptcp::prelude::*;

/// A scaled-down Figure-1 configuration: 16-host FatTree (same 4:1
/// over-subscription regime as the paper via `oversubscription = 4` on k=4
/// would be 64 hosts; here we use the small tree with 2 flows per host to
/// keep bench iterations affordable).
fn small_fig1(protocol: Protocol, seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        topology: TopologySpec::FatTree(FatTreeConfig::small()),
        workload: WorkloadSpec::Paper(PaperWorkloadConfig {
            flows_per_short_host: 2,
            arrivals: ArrivalProcess::Poisson {
                mean_interarrival: SimDuration::from_millis(20),
            },
            ..PaperWorkloadConfig::default()
        }),
        protocol,
        seed,
        ..ExperimentConfig::default()
    }
}

fn fig1a(h: &mut Harness) {
    for subflows in [1usize, 4, 8] {
        h.bench(&format!("fig1a_mptcp_subflows_{subflows}"), || {
            let r = mmptcp::run(small_fig1(Protocol::Mptcp { subflows }, 1));
            black_box(r.short_fct_summary().mean)
        });
    }
}

fn fig1bc(h: &mut Harness) {
    h.bench("fig1b_mptcp8", || {
        black_box(mmptcp::run(small_fig1(Protocol::mptcp8(), 2)).short_fct_series())
    });
    h.bench("fig1c_mmptcp8", || {
        black_box(mmptcp::run(small_fig1(Protocol::mmptcp_default(), 2)).short_fct_series())
    });
}

fn summary_and_extensions(h: &mut Harness) {
    h.bench("summary_stats_pair", || {
        let a = mmptcp::run(small_fig1(Protocol::mptcp8(), 3)).summary();
        let z = mmptcp::run(small_fig1(Protocol::mmptcp_default(), 3)).summary();
        black_box((a, z))
    });

    h.bench("switching_congestion_event", || {
        let p = Protocol::Mmptcp {
            subflows: 8,
            switch: SwitchStrategy::CongestionEvent,
            dupack: None,
        };
        black_box(mmptcp::run(small_fig1(p, 4)).summary())
    });

    h.bench("load_heavy", || {
        let mut cfg = small_fig1(Protocol::mmptcp_default(), 5);
        if let WorkloadSpec::Paper(p) = &mut cfg.workload {
            p.arrivals = ArrivalProcess::Poisson {
                mean_interarrival: SimDuration::from_millis(5),
            };
        }
        black_box(mmptcp::run(cfg).summary())
    });

    h.bench("hotspot_matrix", || {
        let mut cfg = small_fig1(Protocol::mmptcp_default(), 6);
        if let WorkloadSpec::Paper(p) = &mut cfg.workload {
            p.matrix = TrafficMatrix::Hotspot {
                hot_hosts: 2,
                hot_fraction_millis: 250,
            };
        }
        black_box(mmptcp::run(cfg).summary())
    });

    h.bench("multihomed_fattree", || {
        let mut cfg = small_fig1(Protocol::mmptcp_default(), 7);
        cfg.topology = TopologySpec::MultiHomedFatTree(FatTreeConfig::small());
        black_box(mmptcp::run(cfg).summary())
    });

    h.bench("coexistence_long_tcp", || {
        let mut cfg = small_fig1(Protocol::mmptcp_default(), 8);
        cfg.long_protocol = Some(Protocol::Tcp);
        black_box(mmptcp::run(cfg).summary())
    });

    h.bench("dupack_fixed3", || {
        let p = Protocol::Mmptcp {
            subflows: 8,
            switch: SwitchStrategy::default(),
            dupack: Some(DupAckPolicy::Fixed(3)),
        };
        black_box(mmptcp::run(small_fig1(p, 9)).short_spurious_retransmits())
    });

    h.bench("deadline_miss_d2tcp", || {
        let mut cfg = small_fig1(Protocol::D2tcp, 11);
        if let WorkloadSpec::Paper(p) = &mut cfg.workload {
            p.deadlines = DeadlineModel::Slack {
                slack: 10.0,
                reference_gbps: 1.0,
                floor: SimDuration::from_millis(10),
            };
        }
        black_box(mmptcp::run(cfg).deadline_miss_rate())
    });

    h.bench("incast_fan_in_8", || {
        let cfg = ExperimentConfig {
            topology: TopologySpec::FatTree(FatTreeConfig::small()),
            workload: WorkloadSpec::Incast {
                fan_in: 8,
                bytes: 32_000,
                start: SimTime::from_millis(1),
            },
            protocol: Protocol::mmptcp_default(),
            seed: 10,
            ..ExperimentConfig::default()
        };
        black_box(mmptcp::run(cfg).summary())
    });
}

fn main() {
    let mut h = Harness::group("figures", 5);
    fig1a(&mut h);
    fig1bc(&mut h);
    summary_and_extensions(&mut h);
}
