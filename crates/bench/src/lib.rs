//! Shared plumbing for the benchmark harnesses: a tiny command-line parser,
//! parallel experiment sweeps, and table helpers used by every figure
//! regenerator.
//!
//! The binaries in `src/bin/` each regenerate one table or figure of the
//! paper (see DESIGN.md §6 and EXPERIMENTS.md for the mapping); the criterion
//! benches in `benches/` exercise the same code paths at reduced scale.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod harness;
pub mod suite;

use mmptcp::prelude::*;
use mmptcp::ExperimentResults;

/// Command-line options shared by every harness binary.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessOptions {
    /// Run at the paper's full 512-server scale instead of the default
    /// 64-host benchmark scale.
    pub full: bool,
    /// Short flows generated per short-flow host.
    pub flows_per_host: usize,
    /// Random seed.
    pub seed: u64,
    /// Print per-flow CSV output instead of only the summary tables.
    pub csv: bool,
    /// Number of worker threads for parameter sweeps.
    pub threads: usize,
    /// Which protocol to run (only used by harnesses that take one).
    pub protocol: Option<String>,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            full: false,
            flows_per_host: 10,
            seed: 1,
            csv: false,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            protocol: None,
        }
    }
}

impl HarnessOptions {
    /// Parse options from `std::env::args`. Unknown arguments are ignored so
    /// harnesses can add their own.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse options from an iterator of argument strings.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut opts = HarnessOptions::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--full" => opts.full = true,
                "--csv" => opts.csv = true,
                "--flows" => {
                    if let Some(v) = iter.next() {
                        opts.flows_per_host = v.parse().unwrap_or(opts.flows_per_host);
                    }
                }
                "--seed" => {
                    if let Some(v) = iter.next() {
                        opts.seed = v.parse().unwrap_or(opts.seed);
                    }
                }
                "--threads" => {
                    if let Some(v) = iter.next() {
                        opts.threads = v.parse().unwrap_or(opts.threads);
                    }
                }
                "--protocol" => {
                    opts.protocol = iter.next();
                }
                _ => {}
            }
        }
        opts
    }

    /// The Figure-1 experiment configuration for a protocol under these
    /// options.
    pub fn figure1_config(&self, protocol: Protocol) -> ExperimentConfig {
        ExperimentConfig::figure1(protocol, self.seed, self.full, self.flows_per_host)
    }

    /// Resolve a protocol name (`tcp`, `dctcp`, `d2tcp`, `mptcp`, `mptcp-4`,
    /// `packet-scatter`, `mmptcp`, `mmptcp-4`) into a [`Protocol`].
    pub fn resolve_protocol(name: &str) -> Option<Protocol> {
        let name = name.trim().to_lowercase();
        if name == "tcp" {
            return Some(Protocol::Tcp);
        }
        if name == "dctcp" {
            return Some(Protocol::Dctcp);
        }
        if name == "d2tcp" {
            return Some(Protocol::D2tcp);
        }
        if name == "packet-scatter" || name == "ps" {
            return Some(Protocol::PacketScatter);
        }
        if name == "repflow" {
            return Some(Protocol::repflow());
        }
        if name == "repsyn" {
            return Some(Protocol::repsyn());
        }
        if let Some(rest) = name.strip_prefix("mmptcp") {
            let subflows = rest.trim_start_matches('-').parse().unwrap_or(8);
            return Some(Protocol::Mmptcp {
                subflows,
                switch: SwitchStrategy::default(),
                dupack: None,
            });
        }
        if let Some(rest) = name.strip_prefix("mptcp") {
            let subflows = rest.trim_start_matches('-').parse().unwrap_or(8);
            return Some(Protocol::Mptcp { subflows });
        }
        None
    }
}

/// Run a set of labelled experiments, up to `threads` at a time, preserving
/// input order in the output. Thin wrapper over [`mmptcp::Driver`], kept so
/// the harness binaries share one entry point.
pub fn run_sweep(
    configs: Vec<(String, ExperimentConfig)>,
    threads: usize,
) -> Vec<(String, ExperimentResults)> {
    mmptcp::Driver::with_threads(threads).run_labelled(configs)
}

/// Build the standard comparison table row for one run.
pub fn summary_row(label: &str, r: &ExperimentResults) -> Vec<String> {
    let s = r.summary();
    vec![
        label.to_string(),
        s.short_flows.to_string(),
        metrics::f2(s.short_fct_mean_ms),
        metrics::f2(s.short_fct_std_ms),
        metrics::f2(s.short_fct_p99_ms),
        metrics::f2(s.short_fct_max_ms),
        s.short_flows_with_rto.to_string(),
        metrics::f2(s.long_goodput_gbps),
        metrics::pct(s.core_loss),
        metrics::pct(s.aggregation_loss),
        metrics::pct(s.overall_utilisation),
    ]
}

/// The headers matching [`summary_row`].
pub fn summary_headers() -> Vec<&'static str> {
    vec![
        "run",
        "short flows",
        "mean FCT (ms)",
        "std FCT (ms)",
        "p99 FCT (ms)",
        "max FCT (ms)",
        "flows w/ RTO",
        "long goodput (Gbps)",
        "core loss",
        "agg loss",
        "mean util",
    ]
}

/// Print the per-flow completion-time series (Figure 1(b)/(c) style) as CSV.
pub fn print_fct_series(label: &str, r: &ExperimentResults) {
    println!("# per-flow completion times: {label}");
    println!("flow_id,fct_ms");
    for (id, fct) in r.short_fct_series() {
        println!("{id},{fct:.3}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_arguments() {
        let o = HarnessOptions::parse(
            [
                "--full",
                "--flows",
                "25",
                "--seed",
                "9",
                "--csv",
                "--protocol",
                "mptcp-4",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert!(o.full);
        assert!(o.csv);
        assert_eq!(o.flows_per_host, 25);
        assert_eq!(o.seed, 9);
        assert_eq!(o.protocol.as_deref(), Some("mptcp-4"));
    }

    #[test]
    fn unknown_arguments_are_ignored() {
        let o = HarnessOptions::parse(["--wat".to_string()]);
        assert_eq!(o, HarnessOptions::default());
    }

    #[test]
    fn protocol_resolution() {
        assert_eq!(HarnessOptions::resolve_protocol("tcp"), Some(Protocol::Tcp));
        assert_eq!(
            HarnessOptions::resolve_protocol("mptcp-4"),
            Some(Protocol::Mptcp { subflows: 4 })
        );
        assert!(matches!(
            HarnessOptions::resolve_protocol("mmptcp"),
            Some(Protocol::Mmptcp { subflows: 8, .. })
        ));
        assert_eq!(
            HarnessOptions::resolve_protocol("ps"),
            Some(Protocol::PacketScatter)
        );
        assert_eq!(
            HarnessOptions::resolve_protocol("repflow"),
            Some(Protocol::repflow())
        );
        assert_eq!(
            HarnessOptions::resolve_protocol("repsyn"),
            Some(Protocol::repsyn())
        );
        assert_eq!(HarnessOptions::resolve_protocol("quic"), None);
    }

    #[test]
    fn summary_row_matches_headers() {
        assert_eq!(summary_headers().len(), 11);
    }

    #[test]
    fn sweep_runs_in_parallel_and_preserves_order() {
        use netsim::SimTime;
        let mk = |seed| ExperimentConfig {
            topology: TopologySpec::Parallel(ParallelPathConfig::default()),
            workload: WorkloadSpec::Custom(vec![FlowSpec {
                id: 0,
                src: Addr(0),
                dst: Addr(1),
                size: Some(20_000),
                start: SimTime::from_millis(1),
                class: FlowClass::Short,
                deadline: None,
            }]),
            protocol: Protocol::Tcp,
            seed,
            ..ExperimentConfig::default()
        };
        let results = run_sweep(
            vec![
                ("a".to_string(), mk(1)),
                ("b".to_string(), mk(2)),
                ("c".to_string(), mk(3)),
            ],
            2,
        );
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].0, "a");
        assert_eq!(results[2].0, "c");
        assert!(results.iter().all(|(_, r)| r.all_short_completed));
    }
}
