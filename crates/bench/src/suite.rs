//! The nightly engine-benchmark suite and its regression ledger.
//!
//! The scheduled nightly CI job runs a pinned set of engine micro-benchmarks
//! (a subset of `benches/engine.rs` with stable names), appends one JSON-lines
//! entry to `BENCH_nightly.json` at the repository root, and fails if any
//! benchmark's median regressed by more than [`REGRESSION_THRESHOLD`]
//! relative to the previous committed entry. The ledger format is one JSON
//! object per line so appending never rewrites history:
//!
//! ```text
//! {"schema":"bench-nightly-v1"}
//! {"unix_secs":1753850000,"git":"abc123","samples":7,"results":{"calendar_wheel_100k_churn":1234567, ...}}
//! ```
//!
//! Parsing is hand-rolled (the workspace `serde` is a no-op shim): entries
//! are flat `"name":integer` maps inside a `"results"` object, nothing more.

use crate::harness::{black_box, Harness};
use mmptcp::prelude::*;
use netsim::event::{Event, EventQueue};
use netsim::{SimDuration, SimRng};
use topology::fattree;
use transport::{CongestionControl, RttEstimator};

/// Relative median slow-down that fails the nightly job (+10 %).
pub const REGRESSION_THRESHOLD: f64 = 0.10;

/// Run the pinned nightly suite; returns `(benchmark name, median ns)` in a
/// stable order. `samples` is the measured-sample count per benchmark
/// (`BENCH_SAMPLES` still overrides, as everywhere in the harness).
pub fn run_nightly_suite(samples: usize) -> Vec<(String, u128)> {
    let mut h = Harness::group("nightly", samples);

    let times: Vec<netsim::SimTime> = {
        let mut rng = SimRng::new(0xCA1E);
        (0..100_000)
            .map(|_| {
                let ns = if rng.chance(0.9) {
                    rng.range(0u64..5_000_000)
                } else {
                    rng.range(0u64..2_000_000_000)
                };
                netsim::SimTime::from_nanos(ns)
            })
            .collect()
    };
    h.bench("calendar_wheel_100k_fill_drain", || {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(
                t,
                Event::FlowStart {
                    node: netsim::NodeId(0),
                    flow: netsim::FlowId(i as u64),
                },
            );
        }
        let mut count = 0u64;
        while q.pop().is_some() {
            count += 1;
        }
        black_box(count)
    });

    h.bench("fattree_build_k8_4to1_512_hosts", || {
        black_box(fattree::build(FatTreeConfig::paper()).host_count())
    });

    let single_flow = |protocol| ExperimentConfig {
        topology: TopologySpec::Parallel(ParallelPathConfig::default()),
        workload: WorkloadSpec::Custom(vec![FlowSpec::new(
            0,
            Addr(0),
            Addr(1),
            Some(70_000),
            SimTime::from_millis(1),
            FlowClass::Short,
        )]),
        protocol,
        ..ExperimentConfig::default()
    };
    h.bench("end_to_end_70KB_tcp", || {
        black_box(
            mmptcp::run(single_flow(Protocol::Tcp))
                .short_fct_summary()
                .mean,
        )
    });
    h.bench("end_to_end_70KB_mmptcp", || {
        black_box(
            mmptcp::run(single_flow(Protocol::mmptcp_default()))
                .short_fct_summary()
                .mean,
        )
    });

    h.bench("small_fattree_paper_workload_mmptcp", || {
        black_box(
            mmptcp::run(ExperimentConfig::small_test(Protocol::mmptcp_default(), 7))
                .short_fct_summary()
                .count,
        )
    });

    // The same elephant-dominated workload on both engines: four bounded
    // 3 MB TCP flows contending on the dumbbell bottleneck. The packet
    // engine pays per-packet cost for all 12 MB; the hybrid engine hands
    // each elephant to the fluid fast path once it leaves slow start (the
    // finite ssthresh makes that deterministic rather than loss-driven), so
    // the pair measures the fluid speedup and pins both engines against
    // their own baselines.
    let elephant_workload = |engine: Engine| ExperimentConfig {
        topology: TopologySpec::Dumbbell(DumbbellConfig::default()),
        workload: WorkloadSpec::Custom(
            [(0u32, 2u32), (1, 3), (0, 3), (1, 2)]
                .iter()
                .enumerate()
                .map(|(i, (src, dst))| {
                    FlowSpec::new(
                        i as u64,
                        Addr(*src),
                        Addr(*dst),
                        Some(3_000_000),
                        SimTime::from_millis(1 + i as u64),
                        FlowClass::Short,
                    )
                })
                .collect(),
        ),
        protocol: Protocol::Tcp,
        transport: TransportConfig {
            initial_ssthresh: 100_000,
            ..TransportConfig::low_min_rto()
        },
        engine,
        seed: 5,
        ..ExperimentConfig::default()
    };
    h.bench("elephant_workload_packet_engine", || {
        black_box(
            mmptcp::run(elephant_workload(Engine::Packet))
                .short_fct_summary()
                .count,
        )
    });
    h.bench("elephant_workload_hybrid_engine", || {
        black_box(
            mmptcp::run(elephant_workload(Engine::hybrid_default()))
                .short_fct_summary()
                .count,
        )
    });

    // Per-ack cost of each congestion controller behind the `transport::cc`
    // trait: drive 100k full-MSS ACK rounds (with the per-round-trip hook
    // every ~100 ACKs, as a sender at a 100-packet window would) through the
    // same virtual dispatch the subflow hot path uses. Pins the trait-object
    // overhead and each controller's arithmetic against its own baseline.
    for cc in [
        CongestionControl::Reno,
        CongestionControl::Cubic,
        CongestionControl::Bbr,
    ] {
        let cfg = TransportConfig::default();
        let mut rtt = RttEstimator::new(cfg.min_rto, cfg.initial_rto, cfg.max_rto);
        rtt.on_sample(SimDuration::from_micros(120));
        h.bench(&format!("cc_hot_path_{}", cc.name()), || {
            let mut ctl = cc.build(&cfg);
            ctl.on_established(SimTime::from_millis(1), &rtt);
            let mut now = SimTime::from_millis(1);
            for i in 0u64..100_000 {
                now += SimDuration::from_micros(1);
                ctl.on_ack(1_400, now, &rtt, None);
                if i % 100 == 99 {
                    ctl.on_round_trip(now, &rtt);
                }
            }
            black_box(ctl.cwnd())
        });
    }

    h.results()
        .iter()
        .map(|m| (m.name.clone(), m.median().as_nanos()))
        .collect()
}

/// Render one ledger entry as a single JSON line.
pub fn ledger_line(
    unix_secs: u64,
    git: &str,
    samples: usize,
    results: &[(String, u128)],
) -> String {
    let body: Vec<String> = results
        .iter()
        .map(|(name, ns)| format!("\"{}\":{}", metrics::report::json_escape(name), ns))
        .collect();
    format!(
        "{{\"unix_secs\":{unix_secs},\"git\":\"{}\",\"samples\":{samples},\"results\":{{{}}}}}",
        metrics::report::json_escape(git),
        body.join(",")
    )
}

/// Extract the `"results"` map from a ledger line, if it has one. Lines
/// without a results object (the schema header, blanks) yield `None`.
pub fn parse_ledger_results(line: &str) -> Option<Vec<(String, u128)>> {
    let start = line.find("\"results\":{")? + "\"results\":{".len();
    let rest = &line[start..];
    let end = rest.find('}')?;
    let body = &rest[..end];
    let mut out = Vec::new();
    for pair in body.split(',').filter(|p| !p.trim().is_empty()) {
        let (name, value) = pair.split_once(':')?;
        let name = name.trim().trim_matches('"').to_string();
        let value: u128 = value.trim().parse().ok()?;
        out.push((name, value));
    }
    Some(out)
}

/// The most recent baseline (last line with a results map) in ledger text.
pub fn last_baseline(ledger: &str) -> Option<Vec<(String, u128)>> {
    ledger.lines().rev().find_map(parse_ledger_results)
}

/// One benchmark's nightly verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// No previous measurement for this name.
    New,
    /// In the baseline but absent from the fresh run (e.g. a `BENCH_FILTER`
    /// leak or a renamed benchmark). Treated as a failure so a partial run
    /// can never silently become the committed baseline.
    Missing,
    /// Within the threshold of the baseline (`ratio` = new/old medians).
    Ok(f64),
    /// Slower than baseline by more than the threshold.
    Regressed(f64),
    /// Faster than baseline by more than the threshold (informational).
    Improved(f64),
}

/// Compare a fresh run against a baseline with the ±threshold rule. Covers
/// the union of both name sets: fresh-only entries are `New`, baseline-only
/// entries are `Missing`.
pub fn compare_to_baseline(
    baseline: &[(String, u128)],
    fresh: &[(String, u128)],
    threshold: f64,
) -> Vec<(String, Verdict)> {
    let mut out: Vec<(String, Verdict)> = fresh
        .iter()
        .map(|(name, ns)| {
            let verdict = match baseline.iter().find(|(b, _)| b == name) {
                None => Verdict::New,
                Some((_, old)) => {
                    let ratio = *ns as f64 / (*old).max(1) as f64;
                    if ratio > 1.0 + threshold {
                        Verdict::Regressed(ratio)
                    } else if ratio < 1.0 - threshold {
                        Verdict::Improved(ratio)
                    } else {
                        Verdict::Ok(ratio)
                    }
                }
            };
            (name.clone(), verdict)
        })
        .collect();
    for (name, _) in baseline {
        if !fresh.iter().any(|(f, _)| f == name) {
            out.push((name.clone(), Verdict::Missing));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn results() -> Vec<(String, u128)> {
        vec![("a".into(), 1_000), ("b".into(), 2_000)]
    }

    #[test]
    fn ledger_line_round_trips_through_the_parser() {
        let line = ledger_line(1_753_850_000, "abc123", 7, &results());
        assert!(line.starts_with("{\"unix_secs\":1753850000,\"git\":\"abc123\""));
        let parsed = parse_ledger_results(&line).expect("parse");
        assert_eq!(parsed, results());
    }

    #[test]
    fn header_and_blank_lines_are_not_baselines() {
        assert_eq!(
            parse_ledger_results("{\"schema\":\"bench-nightly-v1\"}"),
            None
        );
        assert_eq!(parse_ledger_results(""), None);
        let ledger = format!(
            "{{\"schema\":\"bench-nightly-v1\"}}\n{}\n{}\n",
            ledger_line(1, "old", 7, &[("a".into(), 500)]),
            ledger_line(2, "new", 7, &results()),
        );
        assert_eq!(last_baseline(&ledger), Some(results()));
    }

    #[test]
    fn threshold_classification() {
        let baseline = results();
        let fresh = vec![
            ("a".into(), 1_050), // +5 %: ok
            ("b".into(), 2_500), // +25 %: regressed
            ("c".into(), 9_999), // unknown: new
        ];
        let verdicts = compare_to_baseline(&baseline, &fresh, REGRESSION_THRESHOLD);
        assert!(matches!(verdicts[0].1, Verdict::Ok(_)));
        assert!(matches!(verdicts[1].1, Verdict::Regressed(r) if (r - 1.25).abs() < 1e-9));
        assert_eq!(verdicts[2].1, Verdict::New);
        // -25 %: improved.
        let faster = vec![("a".into(), 750u128)];
        let v = compare_to_baseline(&baseline, &faster, REGRESSION_THRESHOLD);
        assert!(matches!(v[0].1, Verdict::Improved(_)));
        // "b" dropped out of the fresh run: flagged, not silently skipped.
        assert_eq!(v[1], ("b".to_string(), Verdict::Missing));
    }
}
