//! A small criterion-style micro-benchmark harness.
//!
//! The build environment is offline, so criterion itself is unavailable; this
//! module provides the slice of it the benches need — named benchmarks,
//! warm-up, repeated sampling, and a compact `min / median / max` report —
//! with two additions the experiment benches want: per-benchmark iteration
//! budgets (full simulations are too slow for time-targeted sampling) and a
//! [`compare`] helper that prints the speedup between two benchmarks
//! (used for the timing-wheel vs. binary-heap acceptance check).
//!
//! Benchmarks honour two environment variables:
//! * `BENCH_SAMPLES` — override the number of measured samples;
//! * `BENCH_FILTER` — substring filter on benchmark names (like libtest).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measured timings of one benchmark.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name.
    pub name: String,
    /// Per-sample wall-clock times, sorted ascending.
    pub samples: Vec<Duration>,
}

impl Measurement {
    /// Fastest sample.
    pub fn min(&self) -> Duration {
        self.samples[0]
    }

    /// Median sample (linear interpolation for even sample counts, matching
    /// `metrics::percentile` — a truncating `samples[len / 2]` systematically
    /// over-reports the median of two-sample runs).
    pub fn median(&self) -> Duration {
        let n = self.samples.len();
        if n % 2 == 1 {
            self.samples[n / 2]
        } else {
            (self.samples[n / 2 - 1] + self.samples[n / 2]) / 2
        }
    }

    /// Slowest sample.
    pub fn max(&self) -> Duration {
        *self.samples.last().expect("at least one sample")
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A group of benchmarks sharing sample settings, mirroring criterion's
/// `BenchmarkGroup` API shape.
pub struct Harness {
    group: String,
    samples: usize,
    filter: Option<String>,
    results: Vec<Measurement>,
}

impl Harness {
    /// Create a benchmark group. `samples` is the measured-run count unless
    /// `BENCH_SAMPLES` overrides it.
    pub fn group(name: &str, samples: usize) -> Self {
        let samples = std::env::var("BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(samples)
            .max(1);
        let filter = std::env::args()
            .nth(1)
            .filter(|a| !a.starts_with('-'))
            .or_else(|| std::env::var("BENCH_FILTER").ok());
        println!("\n== {name} ==");
        Harness {
            group: name.to_string(),
            samples,
            filter,
            results: Vec::new(),
        }
    }

    /// Run one benchmark: `f` is executed once for warm-up, then `samples`
    /// measured times. Returns the measurement (also recorded in the group).
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> Option<Measurement> {
        let full = format!("{}/{name}", self.group);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return None;
            }
        }
        black_box(f()); // warm-up, also primes caches/allocators
        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            samples.push(start.elapsed());
        }
        samples.sort_unstable();
        let m = Measurement {
            name: full,
            samples,
        };
        println!(
            "{:<44} time: [{} {} {}]",
            m.name,
            fmt_duration(m.min()),
            fmt_duration(m.median()),
            fmt_duration(m.max()),
        );
        self.results.push(m.clone());
        Some(m)
    }

    /// All measurements taken in this group.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }
}

/// Prints the relative performance of two measurements (by median) and
/// returns `baseline_median / candidate_median` — values above 1.0 mean the
/// candidate is faster.
pub fn compare(candidate: &Measurement, baseline: &Measurement) -> f64 {
    let speedup = baseline.median().as_secs_f64() / candidate.median().as_secs_f64().max(1e-12);
    println!(
        "{:<44} {:.2}x vs {} ({} vs {})",
        candidate.name,
        speedup,
        baseline.name,
        fmt_duration(candidate.median()),
        fmt_duration(baseline.median()),
    );
    speedup
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_statistics_are_ordered() {
        let mut h = Harness::group("test", 5);
        let m = h
            .bench("spin", || {
                let mut x = 0u64;
                for i in 0..1000 {
                    x = x.wrapping_add(black_box(i));
                }
                x
            })
            .expect("not filtered");
        assert_eq!(m.samples.len(), 5);
        assert!(m.min() <= m.median() && m.median() <= m.max());
        assert_eq!(h.results().len(), 1);
    }

    #[test]
    fn even_sample_median_interpolates() {
        let m = Measurement {
            name: "even".into(),
            samples: vec![Duration::from_micros(10), Duration::from_micros(30)],
        };
        assert_eq!(m.median(), Duration::from_micros(20));
    }

    #[test]
    fn compare_reports_speedup_ratio() {
        let fast = Measurement {
            name: "fast".into(),
            samples: vec![Duration::from_micros(10)],
        };
        let slow = Measurement {
            name: "slow".into(),
            samples: vec![Duration::from_micros(40)],
        };
        let s = compare(&fast, &slow);
        assert!((s - 4.0).abs() < 1e-9);
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(50)), "50.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(50)), "50.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(50)), "50.00 s");
    }
}
