//! The §3 text statistics: mean/standard deviation of short-flow completion
//! times, per-layer loss rates, long-flow throughput and overall network
//! utilisation, for MPTCP (8 subflows) versus MMPTCP (PS + 8 subflows).
//!
//! Paper values (512-server FatTree, ns-3): MMPTCP 116 ms mean (σ 101),
//! MPTCP 126 ms mean (σ 425); loss at core and aggregation slightly lower for
//! MMPTCP; identical long-flow throughput and overall utilisation.
//!
//! Usage: `cargo run --release -p bench --bin summary_stats [--full] [--flows N]`

use bench::{run_sweep, HarnessOptions};
use metrics::{f2, pct, Table};
use mmptcp::prelude::*;

fn main() {
    let opts = HarnessOptions::from_args();
    let configs = vec![
        (
            "mptcp-8".to_string(),
            opts.figure1_config(Protocol::mptcp8()),
        ),
        (
            "mmptcp-8".to_string(),
            opts.figure1_config(Protocol::mmptcp_default()),
        ),
        ("tcp".to_string(), opts.figure1_config(Protocol::Tcp)),
        (
            "packet-scatter".to_string(),
            opts.figure1_config(Protocol::PacketScatter),
        ),
    ];
    let results = run_sweep(configs, opts.threads);

    let mut fct = Table::new(
        "Short flow completion times (paper §3: MMPTCP 116 ms / sigma 101 vs MPTCP 126 ms / sigma 425)",
        &["protocol", "flows", "mean (ms)", "std dev (ms)", "median (ms)", "p99 (ms)", "max (ms)", "flows w/ RTO"],
    );
    for (label, r) in &results {
        let s = r.short_fct_summary();
        fct.add_row(vec![
            label.clone(),
            s.count.to_string(),
            f2(s.mean),
            f2(s.std_dev),
            f2(s.median),
            f2(s.p99),
            f2(s.max),
            r.short_flows_with_rto().to_string(),
        ]);
    }
    println!("{}", fct.render());

    let mut net = Table::new(
        "Network-level statistics (paper §3: loss slightly lower for MMPTCP; same long-flow throughput and utilisation)",
        &["protocol", "core loss", "agg loss", "edge loss", "long goodput (Gbps)", "core util", "overall util"],
    );
    for (label, r) in &results {
        let s = r.summary();
        net.add_row(vec![
            label.clone(),
            pct(s.core_loss),
            pct(s.aggregation_loss),
            pct(s.edge_loss),
            f2(s.long_goodput_gbps),
            pct(s.core_utilisation),
            pct(s.overall_utilisation),
        ]);
    }
    println!("{}", net.render());

    // Extra accounting useful when comparing against the paper text.
    let mut extra = Table::new(
        "Recovery accounting",
        &[
            "protocol",
            "total RTOs (short)",
            "spurious retx (short)",
            "phase switches",
        ],
    );
    for (label, r) in &results {
        extra.add_row(vec![
            label.clone(),
            r.metrics
                .total_rtos(|f| r.short_ids.contains(&f))
                .to_string(),
            r.short_spurious_retransmits().to_string(),
            r.phase_switches().to_string(),
        ]);
    }
    println!("{}", extra.render());
}
