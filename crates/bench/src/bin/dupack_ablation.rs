//! Duplicate-ACK threshold ablation (paper §2, "Packet Scatter Phase"): the
//! paper proposes deriving the scatter-phase duplicate-ACK threshold from
//! topology information (FatTree addressing gives the path count), or using a
//! reordering-robust RR-TCP-style scheme. This harness compares:
//!
//! * the standard threshold of 3 (reordering is misread as loss → spurious
//!   fast retransmissions and collapsed windows),
//! * the topology-aware threshold alone (`paths` between the endpoints),
//! * an adaptive RR-TCP-style threshold starting from 3,
//! * the combined topology-aware + adaptive policy the experiment runner
//!   installs by default.
//!
//! Usage: `cargo run --release -p bench --bin dupack_ablation [--full] [--flows N]`

use bench::{run_sweep, HarnessOptions};
use metrics::{f2, Table};
use mmptcp::prelude::*;

fn main() {
    let opts = HarnessOptions::from_args();
    // Inter-pod equal-cost path count of the FatTree under test: (k/2)^2.
    let paths = if opts.full { 16 } else { 4 };
    let policies: Vec<(&str, Option<DupAckPolicy>)> = vec![
        ("fixed 3 (standard TCP)", Some(DupAckPolicy::Fixed(3))),
        (
            "topology-aware only",
            Some(DupAckPolicy::TopologyAware { paths, factor: 1.0 }),
        ),
        (
            "adaptive (RR-TCP style)",
            Some(DupAckPolicy::Adaptive {
                initial: 3,
                step: 4,
                max: 64,
            }),
        ),
        ("topology-adaptive (default)", None),
    ];

    let configs = policies
        .into_iter()
        .map(|(label, dupack)| {
            let protocol = Protocol::Mmptcp {
                subflows: 8,
                switch: SwitchStrategy::default(),
                dupack,
            };
            (label.to_string(), opts.figure1_config(protocol))
        })
        .collect();
    let results = run_sweep(configs, opts.threads);

    let mut table = Table::new(
        "MMPTCP packet-scatter duplicate-ACK threshold ablation",
        &[
            "policy",
            "mean FCT (ms)",
            "std (ms)",
            "p99 (ms)",
            "spurious retx",
            "fast retx (short)",
            "flows w/ RTO",
        ],
    );
    for (label, r) in &results {
        let s = r.short_fct_summary();
        let fast_retx: u64 = r
            .metrics
            .sorted_records()
            .iter()
            .filter(|(id, _)| r.short_ids.contains(id))
            .map(|(_, rec)| rec.fast_retransmits as u64)
            .sum();
        table.add_row(vec![
            label.clone(),
            f2(s.mean),
            f2(s.std_dev),
            f2(s.p99),
            r.short_spurious_retransmits().to_string(),
            fast_retx.to_string(),
            r.short_flows_with_rto().to_string(),
        ]);
    }
    println!("{}", table.render());
}
