//! Phase-switching strategy sweep (paper §2 "Phase Switching").
//!
//! Compares the two strategies the paper proposes — switching after a fixed
//! data volume and switching at the first congestion event — across a range
//! of data-volume thresholds, reporting both the short-flow completion times
//! (which should not regress as long as the threshold exceeds the short-flow
//! size) and the long-flow goodput (which the paper argues is unaffected
//! because the MPTCP subflows ramp up within a few RTTs after switching).
//!
//! Usage: `cargo run --release -p bench --bin switching_sweep [--full] [--flows N]`

use bench::{run_sweep, HarnessOptions};
use metrics::{f2, Table};
use mmptcp::prelude::*;

fn main() {
    let opts = HarnessOptions::from_args();

    let mut configs: Vec<(String, ExperimentConfig)> = Vec::new();
    for threshold in [70_000u64, 140_000, 210_000, 500_000, 1_000_000] {
        let protocol = Protocol::Mmptcp {
            subflows: 8,
            switch: SwitchStrategy::DataVolume(threshold),
            dupack: None,
        };
        configs.push((
            format!("data-volume {} KB", threshold / 1000),
            opts.figure1_config(protocol),
        ));
    }
    configs.push((
        "congestion-event".to_string(),
        opts.figure1_config(Protocol::Mmptcp {
            subflows: 8,
            switch: SwitchStrategy::CongestionEvent,
            dupack: None,
        }),
    ));
    configs.push((
        "never (PS only)".to_string(),
        opts.figure1_config(Protocol::PacketScatter),
    ));

    let results = run_sweep(configs, opts.threads);

    let mut table = Table::new(
        "MMPTCP phase-switching strategies",
        &[
            "strategy",
            "short mean FCT (ms)",
            "short std (ms)",
            "short p99 (ms)",
            "flows w/ RTO",
            "phase switches",
            "long goodput (Gbps)",
            "core loss",
        ],
    );
    for (label, r) in &results {
        let s = r.summary();
        table.add_row(vec![
            label.clone(),
            f2(s.short_fct_mean_ms),
            f2(s.short_fct_std_ms),
            f2(s.short_fct_p99_ms),
            s.short_flows_with_rto.to_string(),
            r.phase_switches().to_string(),
            f2(s.long_goodput_gbps),
            metrics::pct(s.core_loss),
        ]);
    }
    println!("{}", table.render());
}
