//! Hotspot experiment (paper §3 roadmap: "effect of hotspots").
//!
//! A fraction of short flows is redirected towards a small set of hot
//! destination hosts, concentrating load on a few access links. MMPTCP's
//! packet-scatter phase cannot help with a saturated destination access link,
//! but it should still protect flows whose paths only share the fabric with
//! the hotspot traffic.
//!
//! Usage: `cargo run --release -p bench --bin hotspot [--full] [--flows N]`

use bench::{run_sweep, summary_headers, summary_row, HarnessOptions};
use metrics::Table;
use mmptcp::prelude::*;

fn config_for(opts: &HarnessOptions, protocol: Protocol, hot: bool) -> ExperimentConfig {
    let mut cfg = opts.figure1_config(protocol);
    if hot {
        if let WorkloadSpec::Paper(p) = &mut cfg.workload {
            p.matrix = TrafficMatrix::Hotspot {
                hot_hosts: 4,
                hot_fraction_millis: 250,
            };
        }
    }
    cfg
}

fn main() {
    let opts = HarnessOptions::from_args();
    let mut configs = Vec::new();
    for (pname, p) in [
        ("mptcp-8", Protocol::mptcp8()),
        ("mmptcp-8", Protocol::mmptcp_default()),
        ("tcp", Protocol::Tcp),
    ] {
        configs.push((
            format!("{pname} / permutation"),
            config_for(&opts, p, false),
        ));
        configs.push((format!("{pname} / hotspot"), config_for(&opts, p, true)));
    }
    let results = run_sweep(configs, opts.threads);

    let mut table = Table::new(
        "Hotspot traffic matrix (25% of short flows target 4 hot hosts) vs permutation",
        &summary_headers(),
    );
    for (label, r) in &results {
        table.add_row(summary_row(label, r));
    }
    println!("{}", table.render());
}
