//! Burst-tolerance / TCP-incast sweep (paper objective (3): "tolerance to
//! sudden and high bursts of traffic").
//!
//! Groups of `fan_in` senders simultaneously blast a block at one receiver.
//! The classic incast collapse is a cliff in completion time once the
//! synchronised burst overflows the receiver-side edge queue and every sender
//! waits out an RTO. MMPTCP's packet-scatter phase spreads each sender's
//! burst over the whole fabric so only the unavoidable receiver access link
//! remains hot; MPTCP-8 splits each sender's block over eight tiny subflow
//! windows, which makes the lost-packet-with-no-dupacks case *more* likely.
//!
//! Usage:
//!   `cargo run --release -p bench --bin incast_sweep [--full] [--seed S]`

use bench::{run_sweep, HarnessOptions};
use metrics::{f2, Table};
use mmptcp::prelude::*;

const BYTES_PER_SENDER: u64 = 64_000;

fn config_for(opts: &HarnessOptions, protocol: Protocol, fan_in: usize) -> ExperimentConfig {
    ExperimentConfig {
        topology: if opts.full {
            TopologySpec::FatTree(FatTreeConfig::paper())
        } else {
            TopologySpec::FatTree(FatTreeConfig::benchmark())
        },
        workload: WorkloadSpec::Incast {
            fan_in,
            bytes: BYTES_PER_SENDER,
            start: SimTime::from_millis(1),
        },
        protocol,
        seed: opts.seed,
        ..ExperimentConfig::default()
    }
}

fn main() {
    let opts = HarnessOptions::from_args();
    let protocols = [
        ("tcp", Protocol::Tcp),
        ("dctcp", Protocol::Dctcp),
        ("mptcp-8", Protocol::mptcp8()),
        ("packet-scatter", Protocol::PacketScatter),
        ("mmptcp-8", Protocol::mmptcp_default()),
    ];
    let fan_ins = [4usize, 8, 16, 32];

    let mut configs = Vec::new();
    for &fan_in in &fan_ins {
        for &(pname, p) in &protocols {
            configs.push((format!("{pname} | {fan_in}"), config_for(&opts, p, fan_in)));
        }
    }
    let results = run_sweep(configs, opts.threads);

    let mut table = Table::new(
        format!(
            "Incast sweep: N senders x {BYTES_PER_SENDER} B to one receiver, simultaneous start"
        ),
        &[
            "protocol",
            "fan-in",
            "flows",
            "mean FCT (ms)",
            "p99 (ms)",
            "max (ms)",
            "flows w/ RTO",
            "edge drops",
            "goodput @ receiver (Gbps)",
        ],
    );
    for (label, r) in &results {
        let (pname, fan_in) = label.split_once(" | ").unwrap();
        let s = r.short_fct_summary();
        // Effective goodput of one incast group: data volume over the time the
        // slowest member needed.
        let fan: f64 = fan_in.parse().unwrap_or(1.0);
        let goodput_gbps = if s.max > 0.0 {
            (fan * BYTES_PER_SENDER as f64 * 8.0) / (s.max / 1e3) / 1e9
        } else {
            0.0
        };
        table.add_row(vec![
            pname.to_string(),
            fan_in.to_string(),
            s.count.to_string(),
            f2(s.mean),
            f2(s.p99),
            f2(s.max),
            r.short_flows_with_rto().to_string(),
            r.loss.edge.dropped.to_string(),
            f2(goodput_gbps),
        ]);
    }
    println!("{}", table.render());
}
