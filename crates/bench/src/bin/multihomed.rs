//! Multi-homed topology experiment (paper §3 roadmap: "we also plan to design
//! multi-homed network topologies as these are well-suited to MMPTCP — the
//! more parallel paths at the access layer, the higher the burst tolerance").
//!
//! Runs the Figure-1 workload on the standard FatTree and on a dual-homed
//! FatTree in which every host attaches to two edge switches, comparing
//! MMPTCP's short-flow completion times and RTO counts.
//!
//! Usage: `cargo run --release -p bench --bin multihomed [--flows N]`

use bench::{run_sweep, summary_headers, summary_row, HarnessOptions};
use metrics::Table;
use mmptcp::prelude::*;

fn main() {
    let opts = HarnessOptions::from_args();
    let ft = if opts.full {
        FatTreeConfig::paper()
    } else {
        FatTreeConfig::benchmark()
    };

    let mut configs = Vec::new();
    for (pname, p) in [
        ("mmptcp-8", Protocol::mmptcp_default()),
        ("mptcp-8", Protocol::mptcp8()),
    ] {
        let mut single = opts.figure1_config(p);
        single.topology = TopologySpec::FatTree(ft);
        configs.push((format!("{pname} / single-homed"), single));

        let mut dual = opts.figure1_config(p);
        dual.topology = TopologySpec::MultiHomedFatTree(ft);
        configs.push((format!("{pname} / dual-homed"), dual));
    }
    let results = run_sweep(configs, opts.threads);

    let mut table = Table::new(
        "Single-homed vs dual-homed FatTree (access-layer path diversity)",
        &summary_headers(),
    );
    for (label, r) in &results {
        table.add_row(summary_row(label, r));
    }
    println!("{}", table.render());
}
