//! The scenario runner: list, run, and regression-check the canonical
//! experiment catalog (`mmptcp::scenario`).
//!
//! This binary replaces the per-figure harness binaries (`fig1a`, `fig1bc`,
//! `load_sweep`, `incast_sweep`, `hotspot`, `coexistence`) with one
//! registry-driven entry point, and is the substrate of the CI `golden` job:
//! every scenario's fast variant renders a canonical JSON metrics document
//! that is compared byte-for-byte against the snapshot in `tests/golden/`.
//!
//! Usage:
//!
//! ```text
//! scenarios list
//! scenarios run <name>... [--full | --paper] [--seed N] [--engine packet|hybrid] [--cc reno|cubic|bbr] [--threads N] [--json]
//! scenarios check [<name>...] [--threads N]       # a.k.a. `scenarios --check`
//! scenarios bless [<name>...] [--threads N]       # a.k.a. `scenarios --bless`
//! scenarios conserve [<name>...] [--seeds N] [--all-configs] [--engine packet|hybrid] [--threads N]
//! scenarios trace <name>... [--flow ID] [--links] [--full | --paper] [--seed N] [--threads N]
//! ```
//!
//! `--full` runs the 64-host benchmark scale the replaced binaries used by
//! default; `--paper` the 512-server paper scale (their old `--full`).
//! `--seed N` overrides every run's seed (run command only; golden snapshots
//! are defined at the fast fidelity's pinned seed, so `check`/`bless` reject
//! scale and seed flags). `--engine packet|hybrid` overrides which engine
//! executes every selected configuration — `hybrid` installs the default
//! 1 MB elephant threshold (`Engine::hybrid_default`) so any catalog
//! scenario can be re-run on the fluid fast path, and `packet` forces the
//! exact engine on scenarios (like `mega-load-sweep`) that default to
//! hybrid. Golden snapshots pin each scenario's own engine choice, so
//! `check`/`bless` reject the flag; `conserve` accepts it and sweeps the
//! conservation laws under the chosen engine. `--cc reno|cubic|bbr`
//! similarly overrides the congestion controller on every selected run
//! (run/trace/conserve only — goldens pin each scenario's own controller
//! axis, so `check`/`bless` reject it).
//!
//! `check` compares against the golden snapshots and exits non-zero on any
//! drift, writing a line diff per drifted scenario to `target/golden-diff/`
//! (the artifact CI uploads). `bless` intentionally rewrites the snapshots,
//! so every accepted metrics change is an explicit commit.
//!
//! `conserve` is the simulator-wide conservation sweep: for every selected
//! scenario it runs the first fast-fidelity configuration (every
//! configuration with `--all-configs`) across `--seeds N` seeds (default 16)
//! and checks [`mmptcp::ExperimentResults::check_conservation`] on each run —
//! packets injected must equal delivered + dropped + still-in-network, and
//! every completed bounded flow must have delivered exactly its size. CI
//! runs this next to the golden check.
//!
//! `trace` runs the selected scenarios with the flight recorder on
//! (`metrics::trace`) and writes the per-run time series under
//! `target/traces/<scenario>/<run>/`: `flows.csv` (per-subflow cwnd / RTT /
//! outstanding samples), `events.csv` (phase switches, RTOs, fast and
//! spurious retransmits), `links.csv` with `--links` (queue depth, window
//! deltas, utilisation per sample window) and a schema-documenting
//! `manifest.json`. `--flow ID` restricts the flow series to one flow.
//! Golden metrics are unaffected: tracing rides alongside the normal run
//! and the `TraceConfig::Off` default never records anything.

use bench::{summary_headers, summary_row};
use metrics::{report, Table};
use mmptcp::scenario::{catalog, find, Fidelity, Scenario};
use mmptcp::{Engine, ExperimentConfig};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use transport::CongestionControl;

/// Repository-root-relative directory holding the golden snapshots.
fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Where `check` writes drift diffs (uploaded as a CI artifact on failure).
fn diff_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/golden-diff")
}

struct Options {
    command: Command,
    names: Vec<String>,
    threads: usize,
    fidelity: Fidelity,
    fidelity_flag_seen: bool,
    seed: Option<u64>,
    seeds: u64,
    engine: Option<Engine>,
    cc: Option<CongestionControl>,
    all_configs: bool,
    json: bool,
    flow: Option<u64>,
    links: bool,
}

enum Command {
    List,
    Run,
    Check,
    Bless,
    Conserve,
    Trace,
}

fn usage() -> ! {
    eprintln!(
        "usage: scenarios <list|run|check|bless|conserve|trace> [<name>...] [--full | --paper] \
         [--seed N] [--seeds N] [--engine packet|hybrid] [--cc reno|cubic|bbr] [--all-configs] \
         [--threads N] [--json] [--flow ID] [--links]\n\
         flags --check / --bless select the corresponding command directly; check/bless \
         always run the pinned fast fidelity and reject --full/--paper/--seed/--engine/--cc;\n\
         conserve sweeps --seeds N seeds (default 16) over every scenario's first fast \
         config (--all-configs: every config) and checks the conservation laws, optionally \
         under an --engine override;\n\
         trace re-runs the named scenarios with the flight recorder on and writes \
         CSV/JSON series under target/traces/ (--links adds per-link series, \
         --flow ID narrows the flow series to one flow)"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut opts = Options {
        command: Command::List,
        names: Vec::new(),
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
        fidelity: Fidelity::Fast,
        fidelity_flag_seen: false,
        seed: None,
        seeds: 16,
        engine: None,
        cc: None,
        all_configs: false,
        json: false,
        flow: None,
        links: false,
    };
    let mut command = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "list" if command.is_none() => command = Some(Command::List),
            "run" if command.is_none() => command = Some(Command::Run),
            "check" if command.is_none() => command = Some(Command::Check),
            "bless" if command.is_none() => command = Some(Command::Bless),
            "conserve" if command.is_none() => command = Some(Command::Conserve),
            "trace" if command.is_none() => command = Some(Command::Trace),
            "--check" => command = Some(Command::Check),
            "--bless" => command = Some(Command::Bless),
            "--all-configs" => opts.all_configs = true,
            "--links" => opts.links = true,
            "--flow" => {
                let Some(v) = args.next() else { usage() };
                opts.flow = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--seeds" => {
                let Some(v) = args.next() else { usage() };
                opts.seeds = v.parse().unwrap_or_else(|_| usage());
            }
            "--engine" => {
                let Some(v) = args.next() else { usage() };
                opts.engine = Some(match v.as_str() {
                    "packet" => Engine::Packet,
                    "hybrid" => Engine::hybrid_default(),
                    _ => usage(),
                });
            }
            "--cc" => {
                let Some(v) = args.next() else { usage() };
                opts.cc = Some(CongestionControl::parse(&v).unwrap_or_else(|| usage()));
            }
            "--full" => {
                opts.fidelity = Fidelity::Full;
                opts.fidelity_flag_seen = true;
            }
            "--paper" => {
                opts.fidelity = Fidelity::Paper;
                opts.fidelity_flag_seen = true;
            }
            "--json" => opts.json = true,
            "--seed" => {
                let Some(v) = args.next() else { usage() };
                opts.seed = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--threads" => {
                let Some(v) = args.next() else { usage() };
                opts.threads = v.parse().unwrap_or_else(|_| usage());
            }
            name if !name.starts_with('-') => opts.names.push(name.to_string()),
            _ => usage(),
        }
    }
    opts.command = command.unwrap_or_else(|| usage());
    // Golden snapshots are pinned at fast fidelity, seed and engine: a check
    // or bless under any other combination would silently compare apples to
    // oranges. The conservation sweep likewise always runs the fast fidelity
    // and owns its seeds (--seeds), but the conservation laws must hold
    // under every engine, so it does accept --engine.
    if matches!(
        opts.command,
        Command::Check | Command::Bless | Command::Conserve
    ) && (opts.fidelity_flag_seen || opts.seed.is_some())
    {
        eprintln!(
            "check/bless/conserve always run the pinned fast fidelity; \
             drop --full/--paper/--seed (conserve takes --seeds N)"
        );
        std::process::exit(2);
    }
    if matches!(opts.command, Command::Check | Command::Bless) && opts.engine.is_some() {
        eprintln!(
            "golden snapshots pin each scenario's own engine; drop --engine \
             (use `scenarios run <name> --engine ...` or `scenarios conserve --engine ...`)"
        );
        std::process::exit(2);
    }
    if matches!(opts.command, Command::Check | Command::Bless) && opts.cc.is_some() {
        eprintln!(
            "golden snapshots pin each scenario's own congestion-control axis; drop --cc \
             (use `scenarios run <name> --cc ...` or `scenarios conserve --cc ...`)"
        );
        std::process::exit(2);
    }
    opts.seeds = opts.seeds.max(1);
    opts
}

/// Resolve requested names (or the default set) into scenarios.
fn select(names: &[String], default_golden_only: bool) -> Vec<&'static Scenario> {
    if names.is_empty() {
        return catalog()
            .iter()
            .filter(|s| !default_golden_only || s.golden)
            .collect();
    }
    names
        .iter()
        .map(|n| {
            find(n).unwrap_or_else(|| {
                eprintln!("unknown scenario '{n}'; `scenarios list` shows the catalog");
                std::process::exit(2)
            })
        })
        .collect()
}

fn cmd_list() -> ExitCode {
    let mut table = Table::new("Scenario catalog", &["name", "golden", "description"]);
    for s in catalog() {
        table.add_row(vec![
            s.name.to_string(),
            if s.golden { "yes" } else { "no" }.to_string(),
            s.description.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "{} scenarios. `scenarios run <name>` executes one (--full: 64-host benchmark scale, \
         --paper: 512-server paper scale, --seed N overrides the seed);",
        catalog().len()
    );
    println!("`scenarios check` verifies golden snapshots; `scenarios bless` rewrites them.");
    ExitCode::SUCCESS
}

fn cmd_run(opts: &Options) -> ExitCode {
    let fidelity = opts.fidelity;
    for s in select(&opts.names, false) {
        let run = if opts.seed.is_none() && opts.engine.is_none() && opts.cc.is_none() {
            s.run(fidelity, opts.threads)
        } else {
            let configs: Vec<(String, ExperimentConfig)> = s
                .configs(fidelity)
                .into_iter()
                .map(|(label, mut cfg)| {
                    if let Some(seed) = opts.seed {
                        cfg.seed = seed;
                    }
                    if let Some(engine) = opts.engine {
                        cfg.engine = engine;
                    }
                    if let Some(cc) = opts.cc {
                        cfg.transport.cc = cc;
                    }
                    (label, cfg)
                })
                .collect();
            let results = mmptcp::Driver::with_threads(opts.threads).run_labelled(configs);
            let report = mmptcp::scenario::report(s.name, fidelity, &results);
            mmptcp::ScenarioRun { results, report }
        };
        if opts.json {
            print!("{}", run.report.to_json());
            continue;
        }
        let mut table = Table::new(
            format!("{} [{}]: {}", s.name, fidelity.label(), s.description),
            &summary_headers(),
        );
        for (label, r) in &run.results {
            table.add_row(summary_row(label, r));
        }
        println!("{}", table.render());
    }
    ExitCode::SUCCESS
}

fn golden_path(s: &Scenario) -> PathBuf {
    golden_dir().join(format!("{}.json", s.name))
}

fn cmd_bless(opts: &Options) -> ExitCode {
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).expect("create tests/golden");
    for s in select(&opts.names, true) {
        let run = s.run(Fidelity::Fast, opts.threads);
        let path = golden_path(s);
        std::fs::write(&path, run.report.to_json()).expect("write golden snapshot");
        println!("blessed {}", path.display());
    }
    println!("snapshots rewritten; commit the changes to make them the new baseline");
    ExitCode::SUCCESS
}

fn cmd_check(opts: &Options) -> ExitCode {
    let mut drifted = Vec::new();
    let mut missing = Vec::new();
    let diffs = diff_dir();
    for s in select(&opts.names, true) {
        let path = golden_path(s);
        let Ok(expected) = std::fs::read_to_string(&path) else {
            eprintln!("MISSING  {} (no {})", s.name, path.display());
            missing.push(s.name);
            continue;
        };
        let run = s.run(Fidelity::Fast, opts.threads);
        let actual = run.report.to_json();
        match report::diff(&expected, &actual) {
            None => println!("OK       {}", s.name),
            Some(d) => {
                eprintln!("DRIFT    {}", s.name);
                std::fs::create_dir_all(&diffs).expect("create diff dir");
                let diff_path = diffs.join(format!("{}.diff", s.name));
                let body = format!(
                    "golden-metrics drift in scenario '{}' (expected {} vs actual):\n{}",
                    s.name,
                    path.display(),
                    d
                );
                std::fs::write(&diff_path, &body).expect("write diff");
                eprintln!("{body}");
                eprintln!("diff written to {}", diff_path.display());
                drifted.push(s.name);
            }
        }
    }
    if drifted.is_empty() && missing.is_empty() {
        println!("golden check passed");
        return ExitCode::SUCCESS;
    }
    if !missing.is_empty() {
        eprintln!(
            "missing snapshots: {} — run `scenarios bless {}` and commit the result",
            missing.join(", "),
            missing.join(" ")
        );
    }
    if !drifted.is_empty() {
        eprintln!(
            "metrics drift in: {} — if intentional, rerun with `scenarios bless` and commit",
            drifted.join(", ")
        );
    }
    ExitCode::FAILURE
}

/// Conservation sweep: run the selected scenarios' fast configurations
/// across many seeds and check the packet/byte conservation laws on every
/// run. Exits non-zero (listing every violation) if any law is broken.
fn cmd_conserve(opts: &Options) -> ExitCode {
    let mut configs: Vec<(String, ExperimentConfig)> = Vec::new();
    for s in select(&opts.names, false) {
        let expanded = s.configs(Fidelity::Fast);
        let chosen: Vec<_> = if opts.all_configs {
            expanded
        } else {
            expanded.into_iter().take(1).collect()
        };
        for (label, cfg) in chosen {
            for seed in 1..=opts.seeds {
                let mut c = cfg.clone();
                c.seed = seed;
                if let Some(engine) = opts.engine {
                    c.engine = engine;
                }
                if let Some(cc) = opts.cc {
                    c.transport.cc = cc;
                }
                configs.push((
                    format!(
                        "{} / {label} seed={seed} engine={} cc={}",
                        s.name,
                        c.engine.label(),
                        c.transport.cc.name()
                    ),
                    c,
                ));
            }
        }
    }
    let total = configs.len();
    println!("conservation sweep: {total} runs ({} seeds)", opts.seeds);
    let results = mmptcp::Driver::with_threads(opts.threads).run_labelled(configs);
    let mut violations = Vec::new();
    for (label, r) in &results {
        if let Err(e) = r.check_conservation() {
            eprintln!("VIOLATION  {label}: {e}");
            violations.push(label.clone());
        }
    }
    if violations.is_empty() {
        println!("conservation laws hold across all {total} runs");
        ExitCode::SUCCESS
    } else {
        eprintln!("{} of {total} runs violated conservation", violations.len());
        ExitCode::FAILURE
    }
}

/// Where `trace` writes its per-run series directories.
fn trace_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/traces")
}

/// File-system-safe directory name for one run label, prefixed with its
/// config index so directory order matches the scenario's config order.
fn sanitize_label(index: usize, label: &str) -> String {
    let mut out = format!("{index:02}-");
    let mut last_dash = false;
    for c in label.chars() {
        if c.is_ascii_alphanumeric() || c == '.' {
            out.push(c.to_ascii_lowercase());
            last_dash = false;
        } else if !last_dash {
            out.push('-');
            last_dash = true;
        }
    }
    out.trim_end_matches('-').to_string()
}

/// Flight-recorder sweep: run the selected scenarios with tracing on and
/// write each run's CSV/JSON series under `target/traces/<scenario>/<run>/`.
fn cmd_trace(opts: &Options) -> ExitCode {
    if opts.names.is_empty() {
        eprintln!("trace needs at least one scenario name; `scenarios list` shows the catalog");
        return ExitCode::from(2);
    }
    let settings = metrics::TraceSettings {
        flows: match opts.flow {
            None => metrics::FlowSelect::All,
            Some(id) => metrics::FlowSelect::One(id),
        },
        links: opts.links,
        ..metrics::TraceSettings::default()
    };
    let mut empty = Vec::new();
    for s in select(&opts.names, false) {
        let mut configs = s.configs(opts.fidelity);
        for (_, cfg) in configs.iter_mut() {
            cfg.trace = metrics::TraceConfig::On(settings);
            if let Some(seed) = opts.seed {
                cfg.seed = seed;
            }
            if let Some(cc) = opts.cc {
                cfg.transport.cc = cc;
            }
        }
        let results = mmptcp::Driver::with_threads(opts.threads).run_labelled(configs);
        let scenario_dir = trace_dir().join(s.name);
        // Clear previous traces of this scenario so run directories from an
        // earlier fidelity/flag combination cannot linger beside fresh ones.
        if scenario_dir.exists() {
            std::fs::remove_dir_all(&scenario_dir).expect("clear stale trace directory");
        }
        for (index, (label, r)) in results.iter().enumerate() {
            let sink = r.trace.as_ref().expect("traced run must carry a sink");
            let dir = scenario_dir.join(sanitize_label(index, label));
            sink.write_dir(&dir, label).expect("write trace directory");
            let switches = sink
                .events()
                .iter()
                .filter(|e| e.kind == metrics::trace::TraceEventKind::PhaseSwitch)
                .count();
            println!(
                "{}/{label}: {} flow series ({} samples), {} events ({} phase switches), \
                 {} link series ({} samples) -> {}",
                s.name,
                sink.flow_keys().len(),
                sink.flow_sample_count(),
                sink.events().len(),
                switches,
                sink.link_count(),
                sink.link_sample_count(),
                dir.display(),
            );
            if sink.flow_sample_count() == 0 {
                empty.push(format!("{}/{label}", s.name));
            }
        }
    }
    if empty.is_empty() {
        println!(
            "trace series written under {} (schema in each manifest.json)",
            trace_dir().display()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("runs with no flow samples: {}", empty.join(", "));
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    match opts.command {
        Command::List => cmd_list(),
        Command::Run => cmd_run(&opts),
        Command::Check => cmd_check(&opts),
        Command::Bless => cmd_bless(&opts),
        Command::Conserve => cmd_conserve(&opts),
        Command::Trace => cmd_trace(&opts),
    }
}
