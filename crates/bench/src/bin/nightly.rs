//! The scheduled nightly benchmark job: run the pinned engine suite, compare
//! medians against the last committed `BENCH_nightly.json` entry with a
//! ±10 % threshold, append the fresh entry, and exit non-zero on regression.
//!
//! Usage: `cargo run --release -p bench --bin nightly [--samples N] [--dry-run]`
//!
//! `--dry-run` runs and compares but does not append to the ledger (useful
//! locally). The git revision is taken from `GITHUB_SHA` when present,
//! otherwise from `git rev-parse HEAD`, falling back to `"local"` only when
//! neither is available (e.g. a source tarball without the `.git` directory).

use bench::suite::{
    compare_to_baseline, last_baseline, ledger_line, run_nightly_suite, Verdict,
    REGRESSION_THRESHOLD,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn ledger_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_nightly.json")
}

/// The revision to record in the ledger: `GITHUB_SHA` in CI, the actual
/// `git rev-parse HEAD` of the working tree otherwise, `"local"` only when
/// neither source is available. Every ledger entry used to say `"local"`
/// outside CI, which made it impossible to bisect a regression to a commit.
fn git_revision() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.trim().is_empty() {
            return sha.trim().to_string();
        }
    }
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    if let Ok(out) = std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .current_dir(repo_root)
        .output()
    {
        if out.status.success() {
            let sha = String::from_utf8_lossy(&out.stdout).trim().to_string();
            if !sha.is_empty() {
                return sha;
            }
        }
    }
    "local".to_string()
}

fn main() -> ExitCode {
    let mut samples = 7usize;
    let mut dry_run = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--samples" => samples = args.next().and_then(|v| v.parse().ok()).unwrap_or(samples),
            "--dry-run" => dry_run = true,
            other => {
                eprintln!("usage: nightly [--samples N] [--dry-run] (got '{other}')");
                return ExitCode::from(2);
            }
        }
    }

    // BENCH_SAMPLES always wins inside `Harness::group`; mirror that here so
    // the ledger records the sample count the medians were actually measured
    // under, even when --samples was also passed.
    if let Some(env_samples) = std::env::var("BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        samples = env_samples.max(1);
    }

    let fresh = run_nightly_suite(samples);

    let path = ledger_path();
    let ledger = std::fs::read_to_string(&path).unwrap_or_default();
    let baseline = last_baseline(&ledger);

    let mut regressed = Vec::new();
    let mut missing = Vec::new();
    match &baseline {
        None => println!("\nno previous nightly entry — establishing the baseline"),
        Some(baseline) => {
            println!(
                "\nvs previous entry (threshold ±{:.0} %):",
                REGRESSION_THRESHOLD * 100.0
            );
            for (name, verdict) in compare_to_baseline(baseline, &fresh, REGRESSION_THRESHOLD) {
                match verdict {
                    Verdict::New => println!("  NEW        {name}"),
                    Verdict::Missing => {
                        println!("  MISSING    {name} (in baseline, not in this run)");
                        missing.push(name);
                    }
                    Verdict::Ok(r) => println!("  ok         {name} ({:+.1} %)", (r - 1.0) * 100.0),
                    Verdict::Improved(r) => {
                        println!("  IMPROVED   {name} ({:+.1} %)", (r - 1.0) * 100.0)
                    }
                    Verdict::Regressed(r) => {
                        println!("  REGRESSED  {name} ({:+.1} %)", (r - 1.0) * 100.0);
                        regressed.push(name);
                    }
                }
            }
        }
    }

    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let git = git_revision();
    let line = ledger_line(unix_secs, &git, samples, &fresh);
    if dry_run {
        println!("\n--dry-run: not appending\n{line}");
    } else {
        let mut contents = ledger;
        if contents.is_empty() {
            contents.push_str("{\"schema\":\"bench-nightly-v1\"}\n");
        }
        if !contents.ends_with('\n') {
            contents.push('\n');
        }
        contents.push_str(&line);
        contents.push('\n');
        std::fs::write(&path, contents).expect("write BENCH_nightly.json");
        println!("\nappended to {}", path.display());
    }

    if !missing.is_empty() {
        eprintln!(
            "benchmarks present in the baseline did not run: {} — a partial run \
             (e.g. under BENCH_FILTER) must not pass the gate",
            missing.join(", ")
        );
    }
    if !regressed.is_empty() {
        eprintln!(
            "nightly regression (> {:.0} % slower): {}",
            REGRESSION_THRESHOLD * 100.0,
            regressed.join(", ")
        );
    }
    if regressed.is_empty() && missing.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
