//! Render the paper's headline plots as gnuplot-ready `.dat` + `.gp` pairs.
//!
//! Three figure families, written under `target/figures/`:
//!
//! * **fig1a_fct_vs_subflows** — short-flow FCT versus MPTCP subflow count,
//!   read from the committed golden snapshot `tests/golden/fig1a.json`
//!   (no simulation needed: the goldens *are* the blessed numbers);
//! * **fct_vs_load** — short-flow p99 FCT versus offered load per protocol,
//!   from `tests/golden/load-sweep.json`;
//! * **cwnd_switch** — a traced MMPTCP run (the `fig1bc` Figure-1(c)
//!   configuration) showing each subflow's congestion window over time with
//!   the packet-scatter→MPTCP switch instant marked;
//! * **queue_heat** — a traced `hotspot` run's per-link queue-depth series
//!   as a time × link heat map.
//!
//! The golden snapshots are canonical JSON rendered by `metrics::report`
//! (fixed key order, one field per line), so the extractor here is a tiny
//! line-oriented scan, not a JSON parser — consistent with the offline
//! workspace's no-dependency rule.
//!
//! Usage: `figures [--out DIR]` (default `target/figures`). Render with
//! `gnuplot <name>.gp`; every script writes `<name>.png` next to its data.

use metrics::trace::{FlowSelect, TraceConfig, TraceEventKind, TraceSettings};
use mmptcp::scenario::{find, Fidelity};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn default_out_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/figures")
}

// --- canonical-golden extraction ----------------------------------------

/// Split a canonical `ScenarioReport` JSON document into per-run chunks:
/// `(label, chunk text up to the next run)`.
fn run_chunks(json: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let parts: Vec<&str> = json.split("\"label\": \"").collect();
    for part in &parts[1..] {
        let Some(label_end) = part.find('"') else {
            continue;
        };
        // `part` came from splitting on the label delimiter, so everything
        // after the label's closing quote is this run's chunk.
        let label = part[..label_end].to_string();
        out.push((label, part[label_end..].to_string()));
    }
    out
}

/// Extract `"<field>": <number>` from the `"<object>": { ... }` block of a
/// run chunk (canonical rendering: one field per line, fixed order).
fn field_f64(chunk: &str, object: &str, field: &str) -> Option<f64> {
    let obj_key = format!("\"{object}\": {{");
    let start = chunk.find(&obj_key)? + obj_key.len();
    let block = &chunk[start..chunk[start..].find('}').map(|e| start + e)?];
    let field_key = format!("\"{field}\": ");
    let fstart = block.find(&field_key)? + field_key.len();
    let rest = &block[fstart..];
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

// --- figure writers ------------------------------------------------------

fn write(out_dir: &Path, name: &str, contents: String) -> std::io::Result<()> {
    let path = out_dir.join(name);
    std::fs::write(&path, contents)?;
    println!("wrote {}", path.display());
    Ok(())
}

/// Figure 1(a) from the committed golden: FCT vs subflow count.
fn fig1a(out_dir: &Path) -> std::io::Result<bool> {
    let Ok(json) = std::fs::read_to_string(golden_dir().join("fig1a.json")) else {
        eprintln!("skipping fig1a figure: tests/golden/fig1a.json missing");
        return Ok(false);
    };
    let mut dat = String::from("# subflows  mean_ms  p99_ms   (from tests/golden/fig1a.json)\n");
    for (label, chunk) in run_chunks(&json) {
        let Some(n) = label
            .strip_prefix("mptcp-")
            .and_then(|s| s.parse::<u32>().ok())
        else {
            continue;
        };
        let mean = field_f64(&chunk, "short_fct", "mean_ms").unwrap_or(f64::NAN);
        let p99 = field_f64(&chunk, "short_fct", "p99_ms").unwrap_or(f64::NAN);
        dat.push_str(&format!("{n} {mean} {p99}\n"));
    }
    write(out_dir, "fig1a_fct_vs_subflows.dat", dat)?;
    write(
        out_dir,
        "fig1a_fct_vs_subflows.gp",
        concat!(
            "set terminal png size 800,600\n",
            "set output 'fig1a_fct_vs_subflows.png'\n",
            "set title 'Short-flow FCT vs MPTCP subflow count (golden fig1a)'\n",
            "set xlabel 'subflows'\nset ylabel 'FCT (ms)'\nset key top left\nset grid\n",
            "plot 'fig1a_fct_vs_subflows.dat' using 1:2 with linespoints title 'mean', \\\n",
            "     '' using 1:3 with linespoints title 'p99'\n",
        )
        .to_string(),
    )?;
    Ok(true)
}

/// FCT-vs-load curves from the load-sweep golden: one column per protocol,
/// x = Poisson mean inter-arrival (smaller = heavier load).
fn fct_vs_load(out_dir: &Path) -> std::io::Result<bool> {
    let Ok(json) = std::fs::read_to_string(golden_dir().join("load-sweep.json")) else {
        eprintln!("skipping fct_vs_load figure: tests/golden/load-sweep.json missing");
        return Ok(false);
    };
    // Labels look like "tcp @ 40 ms": collect protocols and loads in first-
    // appearance order, then emit a column per protocol.
    let mut protocols: Vec<String> = Vec::new();
    let mut loads: Vec<u64> = Vec::new();
    let mut cells: Vec<(String, u64, f64)> = Vec::new();
    for (label, chunk) in run_chunks(&json) {
        let Some((proto, rest)) = label.split_once(" @ ") else {
            continue;
        };
        let Some(ms) = rest.strip_suffix(" ms").and_then(|s| s.parse::<u64>().ok()) else {
            continue;
        };
        let p99 = field_f64(&chunk, "short_fct", "p99_ms").unwrap_or(f64::NAN);
        if !protocols.iter().any(|p| p == proto) {
            protocols.push(proto.to_string());
        }
        if !loads.contains(&ms) {
            loads.push(ms);
        }
        cells.push((proto.to_string(), ms, p99));
    }
    loads.sort_unstable_by(|a, b| b.cmp(a)); // lightest load first
    let mut dat = format!(
        "# interarrival_ms  {}   (short-flow p99 ms, from tests/golden/load-sweep.json)\n",
        protocols.join("  ")
    );
    for &ms in &loads {
        dat.push_str(&format!("{ms}"));
        for proto in &protocols {
            let v = cells
                .iter()
                .find(|(p, l, _)| p == proto && *l == ms)
                .map(|(_, _, v)| *v)
                .unwrap_or(f64::NAN);
            dat.push_str(&format!(" {v}"));
        }
        dat.push('\n');
    }
    let mut gp = String::from(concat!(
        "set terminal png size 800,600\n",
        "set output 'fct_vs_load.png'\n",
        "set title 'Short-flow p99 FCT vs offered load (golden load-sweep)'\n",
        "set xlabel 'Poisson mean inter-arrival (ms; left = heavier load)'\n",
        "set ylabel 'p99 FCT (ms)'\nset key top right\nset grid\n",
        "plot ",
    ));
    for (i, proto) in protocols.iter().enumerate() {
        if i > 0 {
            gp.push_str(", \\\n     ");
        }
        gp.push_str(&format!(
            "'fct_vs_load.dat' using 1:{} with linespoints title '{proto}'",
            i + 2
        ));
    }
    gp.push('\n');
    write(out_dir, "fct_vs_load.dat", dat)?;
    write(out_dir, "fct_vs_load.gp", gp)?;
    Ok(true)
}

/// Traced MMPTCP run: per-subflow cwnd series with the PS→MPTCP switch
/// instant marked. Uses the Figure-1(c) configuration from `fig1bc`.
fn cwnd_switch(out_dir: &Path) -> std::io::Result<bool> {
    let scenario = find("fig1bc").expect("fig1bc is in the catalog");
    let Some((label, mut config)) = scenario
        .configs(Fidelity::Fast)
        .into_iter()
        .find(|(label, _)| label.contains("mmptcp"))
    else {
        eprintln!("skipping cwnd_switch figure: no mmptcp config in fig1bc");
        return Ok(false);
    };
    config.trace = TraceConfig::On(TraceSettings {
        flows: FlowSelect::All,
        ..TraceSettings::default()
    });
    println!("running traced '{label}' for the cwnd-switch figure...");
    let results = mmptcp::run(config);
    let sink = results.trace.as_ref().expect("traced run carries a sink");
    // The flow whose series we plot: the first one that switched phase.
    let Some(switch) = sink
        .events()
        .iter()
        .find(|e| e.kind == TraceEventKind::PhaseSwitch)
        .copied()
    else {
        eprintln!("skipping cwnd_switch figure: no flow switched phase");
        return Ok(false);
    };
    let subflows: Vec<u8> = sink
        .flow_keys()
        .iter()
        .filter(|(f, _)| *f == switch.flow)
        .map(|(_, s)| *s)
        .collect();
    let mut dat = format!(
        "# traced run: {label}; flow {} switched PS->MPTCP at {:.4} ms\n\
         # one index block per subflow (0 = packet-scatter flow): t_ms cwnd_bytes outstanding_bytes\n",
        switch.flow,
        switch.at.as_millis_f64()
    );
    for &sf in &subflows {
        let series = sink.flow_series(switch.flow, sf).expect("keyed series");
        dat.push_str(&format!("# subflow {sf}\n"));
        for p in series.items() {
            dat.push_str(&format!(
                "{:.6} {} {}\n",
                p.at.as_millis_f64(),
                p.cwnd,
                p.outstanding
            ));
        }
        dat.push_str("\n\n");
    }
    let mut gp = format!(
        concat!(
            "set terminal png size 900,600\n",
            "set output 'cwnd_switch.png'\n",
            "set title 'MMPTCP flow {flow}: subflow cwnd across the PS->MPTCP switch'\n",
            "set xlabel 'time (ms)'\nset ylabel 'cwnd (bytes)'\nset key top left\nset grid\n",
            "set arrow from {at}, graph 0 to {at}, graph 1 nohead dashtype 2 lc rgb 'red'\n",
            "set label 'switch' at {at}, graph 0.95 offset 1,0 tc rgb 'red'\n",
            "plot ",
        ),
        flow = switch.flow,
        at = switch.at.as_millis_f64(),
    );
    for (i, sf) in subflows.iter().enumerate() {
        if i > 0 {
            gp.push_str(", \\\n     ");
        }
        let title = if *sf == 0 {
            "packet-scatter".to_string()
        } else {
            format!("mptcp subflow {sf}")
        };
        gp.push_str(&format!(
            "'cwnd_switch.dat' index {i} using 1:2 with steps title '{title}'"
        ));
    }
    gp.push('\n');
    write(out_dir, "cwnd_switch.dat", dat)?;
    write(out_dir, "cwnd_switch.gp", gp)?;
    Ok(true)
}

/// Traced hotspot run: per-link queue-depth series as time × link heat data.
fn queue_heat(out_dir: &Path) -> std::io::Result<bool> {
    let scenario = find("hotspot").expect("hotspot is in the catalog");
    let Some((label, mut config)) = scenario
        .configs(Fidelity::Fast)
        .into_iter()
        .find(|(label, _)| label.contains("hotspot") && label.contains("mmptcp"))
    else {
        eprintln!("skipping queue_heat figure: no mmptcp hotspot config");
        return Ok(false);
    };
    config.trace = TraceConfig::On(TraceSettings {
        links: true,
        ..TraceSettings::default()
    });
    println!("running traced '{label}' for the queue-heat figure...");
    let results = mmptcp::run(config);
    let sink = results.trace.as_ref().expect("traced run carries a sink");
    let mut dat = format!(
        "# traced run: {label}\n# t_ms link_index depth_packets (blank line between link blocks)\n"
    );
    let mut links = 0usize;
    let mut link = 0usize;
    while let Some(series) = sink.link_series(link) {
        for p in series.items() {
            dat.push_str(&format!(
                "{:.6} {link} {}\n",
                p.at.as_millis_f64(),
                p.depth_packets
            ));
        }
        dat.push('\n');
        links += 1;
        link += 1;
    }
    let gp = format!(
        concat!(
            "set terminal png size 1000,700\n",
            "set output 'queue_heat.png'\n",
            "set title 'Queue depth over time, every link ({label})'\n",
            "set xlabel 'time (ms)'\nset ylabel 'link index'\nset cblabel 'queue depth (packets)'\n",
            "set view map\nset palette rgbformulae 22,13,-31\n",
            "splot 'queue_heat.dat' using 1:2:3 with points pointtype 5 pointsize 0.5 palette notitle\n",
        ),
        label = label,
    );
    write(out_dir, "queue_heat.dat", dat)?;
    write(out_dir, "queue_heat.gp", gp)?;
    println!("queue_heat: {links} link blocks");
    Ok(true)
}

fn main() -> ExitCode {
    let mut out_dir = default_out_dir();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("usage: figures [--out DIR]");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("usage: figures [--out DIR] (got '{other}')");
                return ExitCode::from(2);
            }
        }
    }
    std::fs::create_dir_all(&out_dir).expect("create figures dir");
    let mut rendered = 0;
    for result in [
        fig1a(&out_dir),
        fct_vs_load(&out_dir),
        cwnd_switch(&out_dir),
        queue_heat(&out_dir),
    ] {
        match result {
            Ok(true) => rendered += 1,
            Ok(false) => {}
            Err(e) => {
                eprintln!("figure rendering failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "{rendered} figure(s) under {} — render with `gnuplot <name>.gp`",
        out_dir.display()
    );
    if rendered > 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "{\n  \"scenario\": \"load-sweep\",\n  \"fidelity\": \"fast\",\n  \"runs\": [\n",
        "    {\n      \"label\": \"tcp @ 40 ms\",\n      \"short_fct\": {\n",
        "      \"count\": 12,\n      \"mean_ms\": 3.5,\n      \"p50_ms\": 2.5,\n",
        "      \"p95_ms\": 8,\n      \"p99_ms\": 9.75,\n      \"max_ms\": 11\n      },\n",
        "      \"rtos\": 2\n    },\n",
        "    {\n      \"label\": \"mmptcp-8 @ 40 ms\",\n      \"short_fct\": {\n",
        "      \"count\": 12,\n      \"mean_ms\": 1.25,\n      \"p50_ms\": 1,\n",
        "      \"p95_ms\": 2,\n      \"p99_ms\": 2.5,\n      \"max_ms\": 3\n      }\n    }\n",
        "  ]\n}\n",
    );

    #[test]
    fn run_chunks_split_on_labels() {
        let chunks = run_chunks(SAMPLE);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].0, "tcp @ 40 ms");
        assert_eq!(chunks[1].0, "mmptcp-8 @ 40 ms");
        assert!(chunks[0].1.contains("short_fct"));
        assert!(!chunks[0].1.contains("mmptcp-8"));
    }

    #[test]
    fn field_extraction_reads_nested_scalars() {
        let chunks = run_chunks(SAMPLE);
        assert_eq!(field_f64(&chunks[0].1, "short_fct", "p99_ms"), Some(9.75));
        assert_eq!(field_f64(&chunks[0].1, "short_fct", "mean_ms"), Some(3.5));
        assert_eq!(field_f64(&chunks[1].1, "short_fct", "p99_ms"), Some(2.5));
        assert_eq!(field_f64(&chunks[0].1, "missing", "p99_ms"), None);
        assert_eq!(field_f64(&chunks[0].1, "short_fct", "nope"), None);
    }

    #[test]
    fn extractor_handles_the_committed_goldens() {
        // The real golden files must be extractable (they are the canonical
        // rendering this parser is written against).
        let json = std::fs::read_to_string(golden_dir().join("fig1a.json")).expect("golden");
        let chunks = run_chunks(&json);
        assert!(!chunks.is_empty());
        for (label, chunk) in &chunks {
            assert!(label.starts_with("mptcp-"), "{label}");
            assert!(
                field_f64(chunk, "short_fct", "p99_ms").is_some(),
                "{label} lacks p99"
            );
        }
    }
}
