//! Deadline-miss extension experiment.
//!
//! The paper's introduction motivates MMPTCP with deadline-bound short flows:
//! "short ones commonly come with strict deadlines … even a single RTO may
//! result in flow deadline violation", and contrasts MMPTCP with
//! deadline-aware single-path transports (DCTCP, D²TCP, D³) that need
//! network support or application-layer deadline information. This harness
//! assigns every short flow a deadline (slack × ideal transfer time, with a
//! floor) and reports the miss rate per protocol — including D²TCP, which uses
//! the deadline information, and MMPTCP, which does not.
//!
//! Usage:
//!   `cargo run --release -p bench --bin deadlines [--full] [--flows N] [--seed S]`

use bench::{run_sweep, HarnessOptions};
use metrics::{f2, pct, Table};
use mmptcp::prelude::*;

/// Deadline models to sweep: tight, moderate and loose.
fn deadline_models() -> Vec<(&'static str, DeadlineModel)> {
    vec![
        (
            "tight (5x, 10 ms floor)",
            DeadlineModel::Slack {
                slack: 5.0,
                reference_gbps: 1.0,
                floor: SimDuration::from_millis(10),
            },
        ),
        (
            "moderate (20x, 25 ms floor)",
            DeadlineModel::Slack {
                slack: 20.0,
                reference_gbps: 1.0,
                floor: SimDuration::from_millis(25),
            },
        ),
        (
            "loose (fixed 100 ms)",
            DeadlineModel::Fixed(SimDuration::from_millis(100)),
        ),
    ]
}

fn config_for(
    opts: &HarnessOptions,
    protocol: Protocol,
    deadlines: DeadlineModel,
) -> ExperimentConfig {
    let mut cfg = opts.figure1_config(protocol);
    if let WorkloadSpec::Paper(p) = &mut cfg.workload {
        p.deadlines = deadlines;
    }
    cfg
}

fn main() {
    let opts = HarnessOptions::from_args();
    let protocols = [
        ("tcp", Protocol::Tcp),
        ("dctcp", Protocol::Dctcp),
        ("d2tcp", Protocol::D2tcp),
        ("mptcp-8", Protocol::mptcp8()),
        ("mmptcp-8", Protocol::mmptcp_default()),
    ];

    let mut configs = Vec::new();
    for (dname, model) in deadline_models() {
        for &(pname, p) in &protocols {
            configs.push((format!("{pname} | {dname}"), config_for(&opts, p, model)));
        }
    }
    let results = run_sweep(configs, opts.threads);

    let mut table = Table::new(
        "Deadline misses of short flows (lower is better); MMPTCP needs no deadline information",
        &[
            "protocol",
            "deadline model",
            "flows",
            "missed",
            "miss rate",
            "mean FCT (ms)",
            "p99 FCT (ms)",
            "flows w/ RTO",
        ],
    );
    for (label, r) in &results {
        let (pname, dname) = label.split_once(" | ").unwrap();
        let (missed, total) = r.deadline_misses();
        let s = r.short_fct_summary();
        table.add_row(vec![
            pname.to_string(),
            dname.to_string(),
            total.to_string(),
            missed.to_string(),
            pct(r.deadline_miss_rate()),
            f2(s.mean),
            f2(s.p99),
            r.short_flows_with_rto().to_string(),
        ]);
    }
    println!("{}", table.render());
}
