//! Figure 1(a): mean short-flow completion time and its standard deviation
//! under MPTCP as the number of subflows grows from 1 to 9.
//!
//! The paper's claim: the mean rises (≈ 90 ms → ≈ 130 ms in the inset) and
//! the standard deviation explodes as subflows are added, because more
//! subflows mean smaller per-subflow windows, so a single lost packet cannot
//! be repaired by fast retransmission and the whole connection waits for an
//! RTO.
//!
//! Usage: `cargo run --release -p bench --bin fig1a [--full] [--flows N] [--seed N]`

use bench::{run_sweep, HarnessOptions};
use metrics::{f2, Table};
use mmptcp::prelude::*;

fn main() {
    let opts = HarnessOptions::from_args();
    println!(
        "Figure 1(a): MPTCP short-flow FCT vs number of subflows ({} scale, {} flows/host, seed {})",
        if opts.full { "paper (512 hosts)" } else { "benchmark (64 hosts)" },
        opts.flows_per_host,
        opts.seed
    );

    let configs: Vec<(String, ExperimentConfig)> = (1..=9)
        .map(|n| {
            (
                format!("{n}"),
                opts.figure1_config(Protocol::Mptcp { subflows: n }),
            )
        })
        .collect();
    let results = run_sweep(configs, opts.threads);

    let mut table = Table::new(
        "Figure 1(a): MPTCP short flow completion times vs subflow count",
        &[
            "# subflows",
            "mean FCT (ms)",
            "std dev (ms)",
            "p99 (ms)",
            "max (ms)",
            "flows w/ RTO",
            "completed",
        ],
    );
    for (label, r) in &results {
        let s = r.short_fct_summary();
        table.add_row(vec![
            label.clone(),
            f2(s.mean),
            f2(s.std_dev),
            f2(s.p99),
            f2(s.max),
            r.short_flows_with_rto().to_string(),
            s.count.to_string(),
        ]);
    }
    println!("\n{}", table.render());
    if opts.csv {
        println!("{}", table.to_csv());
    }

    // The paper's qualitative claims, checked mechanically.
    let first = results.first().unwrap().1.short_fct_summary();
    let last = results.last().unwrap().1.short_fct_summary();
    println!(
        "shape check: mean(1 subflow) = {:.2} ms, mean(9 subflows) = {:.2} ms",
        first.mean, last.mean
    );
    println!(
        "shape check: std(1 subflow) = {:.2} ms, std(9 subflows) = {:.2} ms (paper: grows strongly with subflows)",
        first.std_dev, last.std_dev
    );
}
