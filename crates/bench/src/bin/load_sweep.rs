//! Network-load sweep (paper §3 roadmap: "effect of … network loads").
//!
//! Varies the short-flow arrival rate (Poisson mean inter-arrival time) and
//! compares TCP, MPTCP-8 and MMPTCP-8 short-flow completion times at each
//! load level.
//!
//! Usage: `cargo run --release -p bench --bin load_sweep [--full] [--flows N]`

use bench::{run_sweep, HarnessOptions};
use metrics::{f2, Table};
use mmptcp::prelude::*;

fn config_for(
    opts: &HarnessOptions,
    protocol: Protocol,
    mean_interarrival_ms: u64,
) -> ExperimentConfig {
    let mut cfg = opts.figure1_config(protocol);
    if let WorkloadSpec::Paper(p) = &mut cfg.workload {
        p.arrivals = ArrivalProcess::Poisson {
            mean_interarrival: SimDuration::from_millis(mean_interarrival_ms),
        };
    }
    cfg
}

fn main() {
    let opts = HarnessOptions::from_args();
    let protocols = [
        ("tcp", Protocol::Tcp),
        ("mptcp-8", Protocol::mptcp8()),
        ("mmptcp-8", Protocol::mmptcp_default()),
    ];
    // Heavier load = shorter inter-arrival time.
    let loads_ms = [300u64, 150, 75, 40];

    let mut configs = Vec::new();
    for &(pname, p) in &protocols {
        for &ms in &loads_ms {
            configs.push((format!("{pname} @ {ms} ms"), config_for(&opts, p, ms)));
        }
    }
    let results = run_sweep(configs, opts.threads);

    let mut table = Table::new(
        "Short-flow FCT vs offered load (mean inter-arrival per host)",
        &[
            "protocol",
            "inter-arrival (ms)",
            "mean FCT (ms)",
            "std (ms)",
            "p99 (ms)",
            "flows w/ RTO",
            "core loss",
        ],
    );
    for (label, r) in &results {
        let (pname, ms) = label.split_once(" @ ").unwrap();
        let s = r.summary();
        table.add_row(vec![
            pname.to_string(),
            ms.trim_end_matches(" ms").to_string(),
            f2(s.short_fct_mean_ms),
            f2(s.short_fct_std_ms),
            f2(s.short_fct_p99_ms),
            s.short_flows_with_rto.to_string(),
            metrics::pct(s.core_loss),
        ]);
    }
    println!("{}", table.render());
}
