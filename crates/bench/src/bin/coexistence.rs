//! Co-existence experiment (paper §3: "In-depth investigation of how MMPTCP
//! shares network resources with TCP and MPTCP is part of our current work.
//! Early results suggest that it could co-exist in harmony with them.").
//!
//! Short flows always use MMPTCP; long background flows use TCP, MPTCP or
//! MMPTCP. If MMPTCP co-exists gracefully, the short-flow completion times
//! and the long-flow goodput should be broadly similar across the three
//! combinations.
//!
//! Usage: `cargo run --release -p bench --bin coexistence [--full] [--flows N]`

use bench::{run_sweep, summary_headers, summary_row, HarnessOptions};
use metrics::Table;
use mmptcp::prelude::*;

fn main() {
    let opts = HarnessOptions::from_args();
    let combos: Vec<(&str, Protocol, Option<Protocol>)> = vec![
        (
            "short mmptcp / long mmptcp",
            Protocol::mmptcp_default(),
            None,
        ),
        (
            "short mmptcp / long mptcp-8",
            Protocol::mmptcp_default(),
            Some(Protocol::mptcp8()),
        ),
        (
            "short mmptcp / long tcp",
            Protocol::mmptcp_default(),
            Some(Protocol::Tcp),
        ),
        (
            "short mptcp-8 / long tcp",
            Protocol::mptcp8(),
            Some(Protocol::Tcp),
        ),
    ];

    let configs = combos
        .into_iter()
        .map(|(label, short, long)| {
            let mut cfg = opts.figure1_config(short);
            cfg.long_protocol = long;
            (label.to_string(), cfg)
        })
        .collect();
    let results = run_sweep(configs, opts.threads);

    let mut table = Table::new(
        "Co-existence: MMPTCP short flows sharing the fabric with TCP/MPTCP long flows",
        &summary_headers(),
    );
    for (label, r) in &results {
        table.add_row(summary_row(label, r));
    }
    println!("{}", table.render());
}
