//! Figures 1(b) and 1(c): per-flow completion-time scatter for MPTCP with 8
//! subflows (b) versus MMPTCP (packet scatter + 8 subflows) (c).
//!
//! The paper's claim: under MPTCP many short flows suffer one or more RTOs and
//! land in bands at whole seconds; under MMPTCP the tail collapses and the
//! majority of flows finish within 100 ms.
//!
//! Usage:
//!   `cargo run --release -p bench --bin fig1bc [--protocol mptcp-8|mmptcp-8] [--csv] [--full]`
//! With no `--protocol`, both protocols are run and compared.

use bench::{print_fct_series, run_sweep, summary_headers, summary_row, HarnessOptions};
use metrics::{f2, pct, Table};
use mmptcp::prelude::*;

fn band_fractions(fcts: &[f64]) -> (f64, f64, f64) {
    if fcts.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let n = fcts.len() as f64;
    let under_100ms = fcts.iter().filter(|f| **f <= 100.0).count() as f64 / n;
    let over_200ms = fcts.iter().filter(|f| **f > 200.0).count() as f64 / n;
    let over_1s = fcts.iter().filter(|f| **f > 1_000.0).count() as f64 / n;
    (under_100ms, over_200ms, over_1s)
}

fn main() {
    let opts = HarnessOptions::from_args();
    let protocols: Vec<(String, Protocol)> = match opts.protocol.as_deref() {
        Some(name) => {
            let p = HarnessOptions::resolve_protocol(name)
                .unwrap_or_else(|| panic!("unknown protocol {name}"));
            vec![(name.to_string(), p)]
        }
        None => vec![
            ("mptcp-8 (Figure 1b)".to_string(), Protocol::mptcp8()),
            (
                "mmptcp-8 (Figure 1c)".to_string(),
                Protocol::mmptcp_default(),
            ),
        ],
    };

    let configs = protocols
        .iter()
        .map(|(label, p)| (label.clone(), opts.figure1_config(*p)))
        .collect();
    let results = run_sweep(configs, opts.threads);

    let mut table = Table::new(
        "Figures 1(b)/1(c): per-flow completion time distribution",
        &[
            "run",
            "flows",
            "mean (ms)",
            "std (ms)",
            "median (ms)",
            "<=100ms",
            ">200ms",
            ">1s",
            "flows w/ RTO",
        ],
    );
    for (label, r) in &results {
        let s = r.short_fct_summary();
        let fcts = r.short_fcts_ms();
        let (u100, o200, o1s) = band_fractions(&fcts);
        table.add_row(vec![
            label.clone(),
            s.count.to_string(),
            f2(s.mean),
            f2(s.std_dev),
            f2(s.median),
            pct(u100),
            pct(o200),
            pct(o1s),
            r.short_flows_with_rto().to_string(),
        ]);
    }
    println!("{}", table.render());

    let mut cmp = Table::new("Full comparison", &summary_headers());
    for (label, r) in &results {
        cmp.add_row(summary_row(label, r));
    }
    println!("{}", cmp.render());

    if opts.csv {
        for (label, r) in &results {
            print_fct_series(label, r);
        }
    }
}
