//! The experiment runner: build the topology, generate the workload, install
//! one sender/receiver agent pair per flow, run the event loop to completion
//! and collect every measurement the paper reports.

use crate::config::{ExperimentConfig, Protocol, TopologySpec, WorkloadSpec};
use crate::results::{ConservationAudit, ExperimentResults};
use metrics::trace::{TraceConfig, TraceSink};
use metrics::{loss_report, overall_utilisation, tier_utilisation, FlowMetrics};
use netsim::{Addr, Agent, FlowId, PathPolicy, SimRng, SimTime, Simulator};
use std::collections::HashSet;
use topology::{BuiltTopology, LinkTier};
use transport::{
    D2tcpSender, DupAckPolicy, MmptcpConfig, MmptcpSender, MptcpConfig, MptcpSender, RepFlowConfig,
    RepFlowSender, TcpSender, TransportConfig, TransportReceiver,
};
use workload::{incast_workload, paper_workload, FlowClass, FlowSpec, Workload};

/// Deterministic per-flow base source port: spreads flows across the ephemeral
/// range so different flows (and different subflows of one flow) hash to
/// different ECMP paths, without consuming RNG state.
fn base_port_for(flow_id: u64) -> u16 {
    20_000 + ((flow_id.wrapping_mul(257)) % 30_000) as u16
}

/// Destination port: stable per flow (the receiver's "service" port).
fn dst_port_for(flow_id: u64) -> u16 {
    5_000 + (flow_id % 1_000) as u16
}

/// Build the sender agent for one flow.
fn build_sender(
    protocol: Protocol,
    transport: TransportConfig,
    topo: &BuiltTopology,
    spec: &FlowSpec,
) -> Box<dyn Agent> {
    let flow = FlowId(spec.id);
    let src_port = base_port_for(spec.id);
    let dst_port = dst_port_for(spec.id);
    match protocol {
        Protocol::Tcp => Box::new(TcpSender::new(
            transport, flow, spec.src, spec.dst, src_port, dst_port, spec.size,
        )),
        Protocol::Dctcp => {
            let cfg = TransportConfig {
                ecn: true,
                ..transport
            };
            Box::new(TcpSender::new(
                cfg, flow, spec.src, spec.dst, src_port, dst_port, spec.size,
            ))
        }
        Protocol::D2tcp => Box::new(D2tcpSender::new(
            transport,
            flow,
            spec.src,
            spec.dst,
            src_port,
            dst_port,
            spec.size,
            spec.deadline,
        )),
        Protocol::Mptcp { subflows } => {
            let cfg = MptcpConfig {
                transport,
                num_subflows: subflows.max(1),
                ..MptcpConfig::default()
            };
            Box::new(MptcpSender::new(
                cfg, flow, spec.src, spec.dst, src_port, dst_port, spec.size,
            ))
        }
        Protocol::PacketScatter => {
            let paths = topo.path_count(spec.src, spec.dst);
            let cfg = MmptcpConfig {
                transport,
                dupack: DupAckPolicy::topology_adaptive(paths as u32),
                ..MmptcpConfig::packet_scatter_only()
            };
            Box::new(MmptcpSender::new(
                cfg, flow, spec.src, spec.dst, src_port, dst_port, spec.size,
            ))
        }
        Protocol::RepFlow {
            threshold,
            syn_only,
        } => {
            let cfg = RepFlowConfig {
                transport,
                replication_threshold: threshold,
                syn_only,
            };
            // Path diversity decides whether replication can pay off: with a
            // single path both copies would share one bottleneck, so such
            // pairs degenerate to plain TCP inside the sender.
            let paths = topo.path_count(spec.src, spec.dst);
            Box::new(RepFlowSender::new(
                cfg, flow, spec.src, spec.dst, src_port, dst_port, spec.size, paths,
            ))
        }
        Protocol::Mmptcp {
            subflows,
            switch,
            dupack,
        } => {
            // §2 proposes both a topology-derived threshold and an RR-TCP-style
            // adaptive one; the default combines them (see DESIGN.md).
            let dupack = dupack.unwrap_or_else(|| {
                DupAckPolicy::topology_adaptive(topo.path_count(spec.src, spec.dst) as u32)
            });
            let cfg = MmptcpConfig {
                transport,
                num_subflows: subflows,
                switch,
                dupack,
                coupled: true,
                reorder_undo: true,
            };
            Box::new(MmptcpSender::new(
                cfg, flow, spec.src, spec.dst, src_port, dst_port, spec.size,
            ))
        }
    }
}

/// If DCTCP is in play and the topology has no ECN marking threshold, install
/// the conventional K = 20 packets.
fn ensure_ecn_marking(config: &mut ExperimentConfig) {
    let needs_ecn = matches!(config.protocol, Protocol::Dctcp | Protocol::D2tcp)
        || matches!(
            config.long_protocol,
            Some(Protocol::Dctcp) | Some(Protocol::D2tcp)
        );
    if !needs_ecn {
        return;
    }
    let set = |q: &mut netsim::QueueConfig| {
        if q.ecn_threshold_packets.is_none() {
            q.ecn_threshold_packets = Some(20);
        }
    };
    match &mut config.topology {
        TopologySpec::FatTree(c) | TopologySpec::MultiHomedFatTree(c) => set(&mut c.queue),
        TopologySpec::Vl2(c) => set(&mut c.queue),
        TopologySpec::Dumbbell(c) => set(&mut c.queue),
        TopologySpec::Parallel(c) => set(&mut c.queue),
    }
}

/// Generate the workload for a topology.
fn generate_workload(spec: &WorkloadSpec, hosts: &[Addr], rng: &mut SimRng) -> Workload {
    match spec {
        WorkloadSpec::Paper(cfg) => paper_workload(hosts, cfg, rng),
        WorkloadSpec::Incast {
            fan_in,
            bytes,
            start,
        } => incast_workload(hosts, *fan_in, *bytes, *start),
        WorkloadSpec::Custom(flows) => Workload {
            flows: flows.clone(),
        },
    }
}

/// Run one experiment to completion.
pub fn run(mut config: ExperimentConfig) -> ExperimentResults {
    ensure_ecn_marking(&mut config);
    let mut topo = config.topology.build();
    // The path policy is a fabric property: install it on every switch before
    // the simulator takes ownership of the network.
    if config.path_policy != PathPolicy::FlowHash {
        for sw in topo.network.switches_mut() {
            sw.set_path_policy(config.path_policy);
        }
    }
    let host_addrs: Vec<Addr> = (0..topo.host_count() as u32).map(Addr).collect();

    // Workload generation uses a forked RNG stream so changing the workload
    // never perturbs packet-level randomness and vice versa.
    let mut wl_rng = SimRng::new(config.seed).fork(0xBEEF);
    let workload = generate_workload(&config.workload, &host_addrs, &mut wl_rng);
    assert!(!workload.flows.is_empty(), "workload generated no flows");

    let name = format!("{} on {}", config.protocol.name(), topo.name);

    // The simulator takes ownership of the network; keep the metadata parts of
    // the topology for metrics afterwards.
    let BuiltTopology {
        network,
        name: topo_name,
        hosts,
        link_tiers,
        path_model,
    } = topo;
    let meta = BuiltTopology {
        network: netsim::Network::new(), // placeholder; real network lives in the simulator
        name: topo_name,
        hosts: hosts.clone(),
        link_tiers: link_tiers.clone(),
        path_model: path_model.clone(),
    };

    let mut sim = Simulator::new(network, config.seed);
    // Hybrid engine: arm the fluid fast path. Transports see the threshold on
    // every activation and hand off elephant remainders; `Engine::Packet`
    // leaves the threshold `None` and the run is byte-identical to before.
    sim.set_fluid_threshold(config.engine.fluid_threshold());

    // Flight recorder: with tracing on, transports emit cwnd samples and
    // (optionally) the loop below snapshots link telemetry. With the default
    // `TraceConfig::Off` nothing here runs and the loop cadence is untouched,
    // so untraced runs — and their golden metrics — stay byte-identical.
    let mut trace_sink = match config.trace {
        TraceConfig::Off => None,
        TraceConfig::On(settings) => {
            sim.set_flow_tracing(true);
            Some(TraceSink::new(settings))
        }
    };

    // Install agents and schedule starts.
    let mut short_ids = HashSet::new();
    let mut long_ids = HashSet::new();
    let mut bounded_ids = HashSet::new();
    for spec in &workload.flows {
        let flow = FlowId(spec.id);
        match spec.class {
            FlowClass::Short => short_ids.insert(flow),
            FlowClass::Long => long_ids.insert(flow),
        };
        if spec.size.is_some() {
            bounded_ids.insert(flow);
        }
        let protocol = match spec.class {
            FlowClass::Long => config.long_protocol.unwrap_or(config.protocol),
            FlowClass::Short => config.protocol,
        };
        // Rebuild a BuiltTopology view for path counting (uses only metadata).
        let sender = build_sender(protocol, config.transport, &meta, spec);
        let receiver: Box<dyn Agent> = Box::new(TransportReceiver::new(flow));
        let src_node = hosts[spec.src.index()];
        let dst_node = hosts[spec.dst.index()];
        sim.register_agent(src_node, flow, sender);
        sim.register_agent(dst_node, flow, receiver);
        sim.schedule_flow_start(spec.start, src_node, flow);
    }

    // Run until every bounded flow completes (or the cap is hit), draining
    // signals incrementally so memory stays flat. Link tracing tightens the
    // tick to the telemetry cadence; otherwise it is the progress interval.
    let mut metrics = FlowMetrics::new();
    let cap = SimTime::ZERO + config.max_sim_time;
    let mut completed: HashSet<FlowId> = HashSet::new();
    let tick = match &trace_sink {
        Some(sink) if sink.links_enabled() => config.progress_interval.min(sink.sample_every()),
        _ => config.progress_interval,
    };
    if let Some(sink) = trace_sink.as_mut() {
        // Baseline link snapshot at time zero so the first window's deltas
        // measure from the start of the run.
        sink.sample_links(sim.now(), sim.network());
    }
    loop {
        let next = (sim.now() + tick).min(cap);
        sim.run_until(next);
        let signals = sim.drain_signals();
        for s in &signals {
            if let netsim::Signal::FlowCompleted { flow, .. } = s {
                completed.insert(*flow);
            }
        }
        metrics.ingest(signals.iter());
        if let Some(sink) = trace_sink.as_mut() {
            sink.ingest(&signals);
            if sink.links_enabled() {
                let now = sim.now();
                for link in sim.network_mut().links_mut() {
                    link.settle(now);
                }
                sink.sample_links(now, sim.network());
            }
        }
        let all_done = bounded_ids.iter().all(|f| completed.contains(f));
        if all_done || sim.now() >= cap || sim.pending_events() == 0 {
            break;
        }
    }
    let all_short_completed = short_ids
        .iter()
        .filter(|f| bounded_ids.contains(f))
        .all(|f| completed.contains(f));

    // Final measurements from long-running flows and receivers.
    sim.finalize();
    let final_signals = sim.drain_signals();
    metrics.ingest(final_signals.iter());
    if let Some(sink) = trace_sink.as_mut() {
        sink.ingest(&final_signals);
    }

    let elapsed = sim.now() - SimTime::ZERO;
    let counters = sim.counters();
    let in_flight_at_end = sim.in_flight_packets() as u64;
    let fluid_delivered_bytes = sim.fluid_delivered_bytes();

    // Re-assemble a BuiltTopology around the simulator's network for the
    // tier-based utilisation metrics.
    let network = std::mem::replace(sim.network_mut(), netsim::Network::new());
    let backlog_at_end: u64 = network.links().iter().map(|l| l.backlog() as u64).sum();
    let no_route: u64 = network
        .nodes()
        .iter()
        .filter_map(|n| n.as_switch())
        .map(|s| s.stats().no_route)
        .sum();
    let audit = ConservationAudit {
        in_flight_at_end,
        backlog_at_end,
        no_route,
        fluid_delivered_bytes,
    };
    let loss = loss_report(&network);
    let overall = overall_utilisation(&network, elapsed);
    let full_topo = BuiltTopology {
        network,
        name: meta.name.clone(),
        hosts,
        link_tiers,
        path_model,
    };
    let core_utilisation = tier_utilisation(&full_topo, LinkTier::AggregationCore, elapsed);

    ExperimentResults {
        name,
        protocol: config.protocol,
        seed: config.seed,
        elapsed,
        flows: workload.flows,
        short_ids,
        long_ids,
        metrics,
        loss,
        core_utilisation,
        overall_utilisation: overall,
        counters,
        audit,
        all_short_completed,
        goodput_horizon: config.goodput_horizon,
        trace: trace_sink,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::SimTime;
    use topology::ParallelPathConfig;

    /// A tiny custom workload on the parallel-path topology: one short flow.
    fn one_flow_config(protocol: Protocol) -> ExperimentConfig {
        ExperimentConfig {
            topology: TopologySpec::Parallel(ParallelPathConfig {
                host_pairs: 1,
                paths: 4,
                ..ParallelPathConfig::default()
            }),
            workload: WorkloadSpec::Custom(vec![FlowSpec {
                id: 0,
                src: Addr(0),
                dst: Addr(1),
                size: Some(70_000),
                start: SimTime::from_millis(1),
                class: FlowClass::Short,
                deadline: None,
            }]),
            protocol,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn single_tcp_flow_completes_with_sensible_fct() {
        let r = run(one_flow_config(Protocol::Tcp));
        assert!(r.all_short_completed);
        let s = r.short_fct_summary();
        assert_eq!(s.count, 1);
        // 70 KB over a 1 Gbps path with microsecond RTTs: well under 10 ms,
        // but not zero.
        assert!(s.mean > 0.1 && s.mean < 10.0, "FCT {} ms", s.mean);
        assert_eq!(r.loss.total_dropped(), 0);
    }

    #[test]
    fn every_protocol_completes_the_single_flow() {
        for p in [
            Protocol::Tcp,
            Protocol::Dctcp,
            Protocol::D2tcp,
            Protocol::Mptcp { subflows: 4 },
            Protocol::PacketScatter,
            Protocol::mmptcp_default(),
        ] {
            let r = run(one_flow_config(p));
            assert!(r.all_short_completed, "protocol {:?} failed to complete", p);
        }
    }

    #[test]
    fn identical_seeds_give_identical_results() {
        let a = run(ExperimentConfig::small_test(Protocol::mmptcp_default(), 42));
        let b = run(ExperimentConfig::small_test(Protocol::mmptcp_default(), 42));
        assert_eq!(a.short_fcts_ms(), b.short_fcts_ms());
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.loss, b.loss);
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = run(ExperimentConfig::small_test(Protocol::Tcp, 1));
        let b = run(ExperimentConfig::small_test(Protocol::Tcp, 2));
        assert_ne!(a.short_fcts_ms(), b.short_fcts_ms());
    }

    #[test]
    fn paper_workload_on_small_fattree_completes_for_mmptcp() {
        let r = run(ExperimentConfig::small_test(Protocol::mmptcp_default(), 7));
        assert!(r.short_fct_summary().count > 0);
        assert!(r.all_short_completed, "short flows must finish");
        // Long flows made progress.
        assert!(r.long_goodput_bps() > 0.0);
        assert!(r.overall_utilisation > 0.0);
    }

    #[test]
    fn base_ports_are_spread() {
        let mut seen = std::collections::HashSet::new();
        for id in 0..1000 {
            seen.insert(base_port_for(id));
        }
        assert!(seen.len() > 900);
    }
}
