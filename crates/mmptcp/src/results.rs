//! Results of one experiment run.

use metrics::{FlowMetrics, LossReport, Summary, UtilisationReport};
use netsim::{FlowId, SimCounters, SimDuration};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use workload::{FlowClass, FlowSpec};

use crate::config::Protocol;

/// Mice/elephant boundary used by the per-class report metrics: short flows
/// of at most this many bytes are "mice" — the population RepFlow replicates
/// and DiffFlow scatters, and the one whose tail latency the short-flow
/// transports compete on.
pub const MICE_THRESHOLD_BYTES: u64 = 100_000;

/// End-of-run engine state needed to close the packet conservation law —
/// packets that were accepted by a queue but had not yet been delivered,
/// dropped or handed to a host when the run ended.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConservationAudit {
    /// Packets with a scheduled delivery still pending in the calendar (the
    /// engine's packet arena) when the run ended.
    pub in_flight_at_end: u64,
    /// Packets sitting in link queues, not yet committed to a wire.
    pub backlog_at_end: u64,
    /// Packets dropped by switches for lack of a route (0 on well-formed
    /// topologies; kept separate from queue drops in the engine counter).
    pub no_route: u64,
    /// Bytes delivered analytically by the fluid fast path (hybrid engine
    /// only; exactly 0 under `Engine::Packet`). These bytes never ride in
    /// packets, so they appear in no link counter — they are a separate
    /// ledger term that closes the per-flow byte law: for a flow that
    /// completed in fluid mode, packet-delivered + fluid-delivered == size.
    pub fluid_delivered_bytes: u64,
}

/// Everything measured during one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResults {
    /// Human-readable run name (protocol + topology).
    pub name: String,
    /// Protocol used by short flows.
    pub protocol: Protocol,
    /// Seed of the run.
    pub seed: u64,
    /// Simulated time at which the run ended.
    pub elapsed: SimDuration,
    /// The workload that was executed.
    pub flows: Vec<FlowSpec>,
    /// Flow ids of short flows.
    pub short_ids: HashSet<FlowId>,
    /// Flow ids of long (background) flows.
    pub long_ids: HashSet<FlowId>,
    /// Per-flow measurements.
    pub metrics: FlowMetrics,
    /// Per-layer loss report.
    pub loss: LossReport,
    /// Utilisation of the aggregation↔core tier.
    pub core_utilisation: UtilisationReport,
    /// Mean utilisation over every link.
    pub overall_utilisation: f64,
    /// Engine counters (events, drops, forwards).
    pub counters: SimCounters,
    /// End-of-run state closing the packet conservation law.
    pub audit: ConservationAudit,
    /// Whether every short flow completed before the simulated-time cap.
    pub all_short_completed: bool,
    /// Fixed measurement window for long-flow goodput (see
    /// `ExperimentConfig::goodput_horizon`); `None` measures over the run.
    pub goodput_horizon: Option<SimDuration>,
    /// The flight-recorder trace, when `ExperimentConfig::trace` asked for
    /// one (`None` for untraced runs). Collected per run on the worker that
    /// executed it, so the parallel driver's config-order result merge is
    /// also the deterministic trace merge.
    pub trace: Option<metrics::TraceSink>,
}

/// A compact, serialisable summary of a run (used by the bench harnesses to
/// print tables and record EXPERIMENTS.md entries).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Run name.
    pub name: String,
    /// Number of short flows that completed.
    pub short_flows: usize,
    /// Mean short-flow completion time (ms).
    pub short_fct_mean_ms: f64,
    /// Standard deviation of short-flow completion time (ms).
    pub short_fct_std_ms: f64,
    /// 99th percentile of short-flow completion time (ms).
    pub short_fct_p99_ms: f64,
    /// Largest short-flow completion time (ms).
    pub short_fct_max_ms: f64,
    /// Number of short flows that suffered at least one RTO.
    pub short_flows_with_rto: usize,
    /// Aggregate goodput of the long flows (Gbps).
    pub long_goodput_gbps: f64,
    /// Loss rate at the core layer.
    pub core_loss: f64,
    /// Loss rate at the aggregation layer.
    pub aggregation_loss: f64,
    /// Loss rate at the edge layer.
    pub edge_loss: f64,
    /// Mean utilisation of aggregation↔core links.
    pub core_utilisation: f64,
    /// Mean utilisation over all links.
    pub overall_utilisation: f64,
}

impl ExperimentResults {
    /// Is this flow a short flow?
    pub fn is_short(&self, flow: FlowId) -> bool {
        self.short_ids.contains(&flow)
    }

    /// Is this flow a long flow?
    pub fn is_long(&self, flow: FlowId) -> bool {
        self.long_ids.contains(&flow)
    }

    /// Completion times (ms) of short flows, ordered by flow id — the series
    /// plotted in Figures 1(b) and 1(c).
    pub fn short_fcts_ms(&self) -> Vec<f64> {
        self.metrics.fcts_ms(|f| self.short_ids.contains(&f))
    }

    /// Per-flow (flow id, FCT ms) pairs for the scatter plots.
    pub fn short_fct_series(&self) -> Vec<(u64, f64)> {
        let mut v: Vec<(u64, f64)> = self
            .metrics
            .sorted_records()
            .into_iter()
            .filter(|(id, _)| self.short_ids.contains(id))
            .filter_map(|(id, r)| r.fct().map(|d| (id.0, d.as_millis_f64())))
            .collect();
        v.sort_by_key(|(id, _)| *id);
        v
    }

    /// Summary (ms) of short-flow completion times.
    pub fn short_fct_summary(&self) -> Summary {
        self.metrics.fct_summary_ms(|f| self.short_ids.contains(&f))
    }

    /// Summary (ms) of completion times over the *mice* among the short
    /// flows (size ≤ [`MICE_THRESHOLD_BYTES`]). With empirical flow-size
    /// workloads the overall short-flow percentiles are dominated by
    /// multi-megabyte transfers; this is the tail the mice-focused
    /// transports compete on.
    pub fn mice_fct_summary(&self) -> Summary {
        let mice: HashSet<FlowId> = self
            .flows
            .iter()
            .filter(|f| {
                f.class == FlowClass::Short && f.size.is_some_and(|s| s <= MICE_THRESHOLD_BYTES)
            })
            .map(|f| FlowId(f.id))
            .collect();
        self.metrics.fct_summary_ms(|f| mice.contains(&f))
    }

    /// Total bytes senders put on the wire beyond their flows' sizes
    /// (replica copies plus retransmissions, as reported by
    /// replication-based transports).
    pub fn redundant_bytes(&self) -> u64 {
        self.metrics.redundant_bytes(|_| true)
    }

    /// Check the engine's packet and byte conservation laws for this run.
    ///
    /// Packet law: every packet accepted by any queue is eventually exactly
    /// one of — delivered to a host, forwarded by a switch (and then offered
    /// to the next queue), dropped (queue overflow or no route), still in
    /// flight, or still queued:
    ///
    /// ```text
    /// offered == delivered_to_hosts + forwarded + dropped
    ///            + in_flight_at_end + backlog_at_end
    /// ```
    ///
    /// where `offered` sums `enqueued + dropped` over every link queue, and
    /// `dropped` is the engine counter (queue drops + no-route drops).
    ///
    /// Byte law: every *completed* bounded flow delivered exactly its size,
    /// and no bounded flow reports more bytes than its size (replication
    /// must be invisible at connection level).
    ///
    /// Fluid ledger (hybrid engine): bytes the fluid fast path delivered
    /// analytically never ride in packets, so the packet law above is
    /// untouched by mode transitions — but the fluid term must itself be
    /// bounded by the workload: it can never exceed the total bytes of the
    /// bounded flows (only bounded elephants ever hand off).
    pub fn check_conservation(&self) -> Result<(), String> {
        let offered = self.loss.edge.offered
            + self.loss.aggregation.offered
            + self.loss.core.offered
            + self.loss.host.offered;
        let accounted = self.counters.delivered_to_hosts
            + self.counters.forwarded
            + self.counters.dropped
            + self.audit.in_flight_at_end
            + self.audit.backlog_at_end;
        if offered != accounted {
            return Err(format!(
                "packet conservation violated in '{}' (seed {}): offered {} != \
                 delivered {} + forwarded {} + dropped {} + in-flight {} + backlog {}",
                self.name,
                self.seed,
                offered,
                self.counters.delivered_to_hosts,
                self.counters.forwarded,
                self.counters.dropped,
                self.audit.in_flight_at_end,
                self.audit.backlog_at_end,
            ));
        }
        let queue_drops = self.loss.total_dropped();
        if self.counters.dropped != queue_drops + self.audit.no_route {
            return Err(format!(
                "drop accounting violated in '{}' (seed {}): engine dropped {} != \
                 queue drops {} + no-route {}",
                self.name, self.seed, self.counters.dropped, queue_drops, self.audit.no_route,
            ));
        }
        let bounded_total: u64 = self.flows.iter().filter_map(|f| f.size).sum();
        if self.audit.fluid_delivered_bytes > bounded_total {
            return Err(format!(
                "fluid ledger violated in '{}' (seed {}): fluid delivered {} bytes > \
                 total bounded workload {} bytes",
                self.name, self.seed, self.audit.fluid_delivered_bytes, bounded_total,
            ));
        }
        for spec in &self.flows {
            let Some(size) = spec.size else { continue };
            let Some(rec) = self.metrics.record(FlowId(spec.id)) else {
                continue;
            };
            if rec.completed.is_some() && rec.bytes != size {
                return Err(format!(
                    "byte conservation violated in '{}' (seed {}): flow {} completed \
                     with {} bytes, size is {}",
                    self.name, self.seed, spec.id, rec.bytes, size,
                ));
            }
            if rec.bytes > size {
                return Err(format!(
                    "over-delivery in '{}' (seed {}): flow {} reports {} bytes > size {}",
                    self.name, self.seed, spec.id, rec.bytes, size,
                ));
            }
        }
        Ok(())
    }

    /// Number of short flows that experienced at least one RTO.
    pub fn short_flows_with_rto(&self) -> usize {
        self.metrics.flows_with_rto(|f| self.short_ids.contains(&f))
    }

    /// Aggregate goodput of long flows in bits/second.
    ///
    /// When a goodput horizon is configured the measurement window is
    /// `[0, min(horizon, elapsed)]` and uses the receivers' progress-report
    /// time series, so runs that lasted different amounts of simulated time
    /// remain comparable. Without a horizon the whole run is used.
    pub fn long_goodput_bps(&self) -> f64 {
        let end = match self.goodput_horizon {
            Some(h) => netsim::SimTime::ZERO + h.min(self.elapsed),
            None => netsim::SimTime::ZERO + self.elapsed,
        };
        match self.goodput_horizon {
            Some(_) => self.metrics.goodput_bps_windowed(
                |f| self.long_ids.contains(&f),
                netsim::SimTime::ZERO,
                end,
            ),
            None => {
                self.metrics
                    .goodput_bps(|f| self.long_ids.contains(&f), netsim::SimTime::ZERO, end)
            }
        }
    }

    /// Number of flows that switched phase (MMPTCP only).
    pub fn phase_switches(&self) -> usize {
        self.metrics
            .sorted_records()
            .iter()
            .filter(|(_, r)| r.phase_switched.is_some())
            .count()
    }

    /// Number of spurious retransmissions across short flows.
    pub fn short_spurious_retransmits(&self) -> u64 {
        self.metrics
            .sorted_records()
            .iter()
            .filter(|(id, _)| self.short_ids.contains(id))
            .map(|(_, r)| r.spurious_retransmits as u64)
            .sum()
    }

    /// Build the compact summary.
    pub fn summary(&self) -> RunSummary {
        let s = self.short_fct_summary();
        RunSummary {
            name: self.name.clone(),
            short_flows: s.count,
            short_fct_mean_ms: s.mean,
            short_fct_std_ms: s.std_dev,
            short_fct_p99_ms: s.p99,
            short_fct_max_ms: s.max,
            short_flows_with_rto: self.short_flows_with_rto(),
            long_goodput_gbps: self.long_goodput_bps() / 1e9,
            core_loss: self.loss.core.loss_rate(),
            aggregation_loss: self.loss.aggregation.loss_rate(),
            edge_loss: self.loss.edge.loss_rate(),
            core_utilisation: self.core_utilisation.mean,
            overall_utilisation: self.overall_utilisation,
        }
    }

    /// Classify a workload flow spec by class using the stored spec list.
    pub fn class_of(&self, flow: FlowId) -> Option<FlowClass> {
        self.flows.iter().find(|f| f.id == flow.0).map(|f| f.class)
    }

    /// Deadline accounting over flows that carry a deadline in the workload:
    /// `(missed, total_with_deadline)`. A flow misses its deadline when it
    /// either finished later than `start + deadline` or never finished at all.
    pub fn deadline_misses(&self) -> (usize, usize) {
        let mut missed = 0usize;
        let mut total = 0usize;
        for spec in &self.flows {
            let Some(deadline) = spec.deadline else {
                continue;
            };
            total += 1;
            let rec = self.metrics.record(FlowId(spec.id));
            let met = rec
                .and_then(|r| r.completed)
                .map(|done| done <= spec.start + deadline)
                .unwrap_or(false);
            if !met {
                missed += 1;
            }
        }
        (missed, total)
    }

    /// Fraction of deadline-carrying flows that missed their deadline
    /// (0.0 when the workload has no deadlines).
    pub fn deadline_miss_rate(&self) -> f64 {
        let (missed, total) = self.deadline_misses();
        if total == 0 {
            0.0
        } else {
            missed as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metrics::LossReport;
    use netsim::Signal;
    use netsim::SimTime;

    fn fake_results() -> ExperimentResults {
        let mut metrics = FlowMetrics::new();
        metrics.ingest(&[
            Signal::FlowStarted {
                flow: FlowId(1),
                at: SimTime::from_millis(0),
                bytes: 70_000,
            },
            Signal::FlowCompleted {
                flow: FlowId(1),
                at: SimTime::from_millis(100),
                bytes: 70_000,
            },
            Signal::FlowStarted {
                flow: FlowId(2),
                at: SimTime::from_millis(0),
                bytes: 70_000,
            },
            Signal::FlowCompleted {
                flow: FlowId(2),
                at: SimTime::from_millis(300),
                bytes: 70_000,
            },
            Signal::FlowProgress {
                flow: FlowId(0),
                at: SimTime::from_secs(1),
                bytes: 125_000_000,
            },
            Signal::RetransmissionTimeout {
                flow: FlowId(2),
                subflow: 0,
                at: SimTime::from_millis(150),
            },
        ]);
        ExperimentResults {
            name: "test".into(),
            protocol: Protocol::Tcp,
            seed: 1,
            elapsed: SimDuration::from_secs(1),
            flows: vec![],
            short_ids: [FlowId(1), FlowId(2)].into_iter().collect(),
            long_ids: [FlowId(0)].into_iter().collect(),
            metrics,
            loss: LossReport::default(),
            core_utilisation: UtilisationReport::default(),
            overall_utilisation: 0.0,
            counters: SimCounters::default(),
            audit: ConservationAudit::default(),
            all_short_completed: true,
            goodput_horizon: None,
            trace: None,
        }
    }

    #[test]
    fn summary_aggregates_short_flows_only() {
        let r = fake_results();
        let s = r.summary();
        assert_eq!(s.short_flows, 2);
        assert!((s.short_fct_mean_ms - 200.0).abs() < 1e-9);
        assert_eq!(s.short_flows_with_rto, 1);
        // 125 MB over 1 s = 1 Gbps of long-flow goodput.
        assert!((s.long_goodput_gbps - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fct_series_is_ordered_by_flow_id() {
        let r = fake_results();
        let series = r.short_fct_series();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].0, 1);
        assert_eq!(series[1].0, 2);
        assert!((series[0].1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn classification_helpers() {
        let r = fake_results();
        assert!(r.is_short(FlowId(1)));
        assert!(r.is_long(FlowId(0)));
        assert!(!r.is_short(FlowId(0)));
        assert_eq!(r.phase_switches(), 0);
        assert_eq!(r.short_spurious_retransmits(), 0);
    }

    #[test]
    fn mice_summary_filters_by_flow_size() {
        use netsim::Addr;
        use workload::FlowSpec;
        let mut r = fake_results();
        // Flow 1 (70 KB) is a mouse; flow 2 (5 MB) is not.
        r.flows = vec![
            FlowSpec::new(
                1,
                Addr(0),
                Addr(1),
                Some(70_000),
                SimTime::from_millis(0),
                workload::FlowClass::Short,
            ),
            FlowSpec::new(
                2,
                Addr(2),
                Addr(3),
                Some(5_000_000),
                SimTime::from_millis(0),
                workload::FlowClass::Short,
            ),
        ];
        let mice = r.mice_fct_summary();
        assert_eq!(mice.count, 1);
        assert!((mice.mean - 100.0).abs() < 1e-9, "only flow 1 qualifies");
        assert_eq!(r.short_fct_summary().count, 2);
    }

    #[test]
    fn conservation_checks_pass_on_consistent_results_and_catch_tampering() {
        let r = fake_results();
        assert!(r.check_conservation().is_ok());
        // A lost packet that is neither delivered nor dropped must be caught.
        let mut broken = fake_results();
        broken.loss.edge.offered = 10;
        let err = broken.check_conservation().unwrap_err();
        assert!(err.contains("packet conservation"), "{err}");
        // Engine drop counter inconsistent with queue drops + no-route.
        let mut broken = fake_results();
        broken.counters.dropped = 3;
        let err = broken.check_conservation().unwrap_err();
        assert!(
            err.contains("conservation") || err.contains("accounting"),
            "{err}"
        );
        // A completed flow that delivered the wrong byte count must be caught.
        let mut broken = fake_results();
        broken.flows = vec![workload::FlowSpec::new(
            1,
            netsim::Addr(0),
            netsim::Addr(1),
            Some(69_999),
            SimTime::from_millis(0),
            workload::FlowClass::Short,
        )];
        let err = broken.check_conservation().unwrap_err();
        assert!(err.contains("byte conservation"), "{err}");
        // Fluid bytes exceeding the bounded workload must be caught (the
        // fake workload is unbounded, so any fluid delivery is impossible).
        let mut broken = fake_results();
        broken.audit.fluid_delivered_bytes = 1;
        let err = broken.check_conservation().unwrap_err();
        assert!(err.contains("fluid ledger"), "{err}");
    }

    #[test]
    fn redundant_bytes_roll_up_from_the_signal_stream() {
        let mut r = fake_results();
        r.metrics.ingest(&[netsim::Signal::RedundantBytes {
            flow: FlowId(1),
            at: SimTime::from_millis(50),
            bytes: 42_000,
        }]);
        assert_eq!(r.redundant_bytes(), 42_000);
    }

    #[test]
    fn deadline_miss_accounting() {
        use netsim::Addr;
        use workload::FlowSpec;
        let mut r = fake_results();
        // No deadlines in the workload: rate is zero.
        assert_eq!(r.deadline_misses(), (0, 0));
        assert_eq!(r.deadline_miss_rate(), 0.0);
        // Flow 1 completed at 100 ms, flow 2 at 300 ms (see fake_results).
        let spec = |id: u64, deadline_ms: u64| FlowSpec {
            deadline: Some(SimDuration::from_millis(deadline_ms)),
            ..FlowSpec::new(
                id,
                Addr(0),
                Addr(1),
                Some(70_000),
                SimTime::from_millis(0),
                workload::FlowClass::Short,
            )
        };
        r.flows = vec![spec(1, 150), spec(2, 150), spec(99, 150)];
        // Flow 1 met (100 <= 150), flow 2 missed (300 > 150), flow 99 never
        // completed (no record) so it also counts as a miss.
        assert_eq!(r.deadline_misses(), (2, 3));
        assert!((r.deadline_miss_rate() - 2.0 / 3.0).abs() < 1e-9);
    }
}
