//! Results of one experiment run.

use metrics::{FlowMetrics, LossReport, Summary, UtilisationReport};
use netsim::{FlowId, SimCounters, SimDuration};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use workload::{FlowClass, FlowSpec};

use crate::config::Protocol;

/// Everything measured during one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResults {
    /// Human-readable run name (protocol + topology).
    pub name: String,
    /// Protocol used by short flows.
    pub protocol: Protocol,
    /// Seed of the run.
    pub seed: u64,
    /// Simulated time at which the run ended.
    pub elapsed: SimDuration,
    /// The workload that was executed.
    pub flows: Vec<FlowSpec>,
    /// Flow ids of short flows.
    pub short_ids: HashSet<FlowId>,
    /// Flow ids of long (background) flows.
    pub long_ids: HashSet<FlowId>,
    /// Per-flow measurements.
    pub metrics: FlowMetrics,
    /// Per-layer loss report.
    pub loss: LossReport,
    /// Utilisation of the aggregation↔core tier.
    pub core_utilisation: UtilisationReport,
    /// Mean utilisation over every link.
    pub overall_utilisation: f64,
    /// Engine counters (events, drops, forwards).
    pub counters: SimCounters,
    /// Whether every short flow completed before the simulated-time cap.
    pub all_short_completed: bool,
    /// Fixed measurement window for long-flow goodput (see
    /// `ExperimentConfig::goodput_horizon`); `None` measures over the run.
    pub goodput_horizon: Option<SimDuration>,
}

/// A compact, serialisable summary of a run (used by the bench harnesses to
/// print tables and record EXPERIMENTS.md entries).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Run name.
    pub name: String,
    /// Number of short flows that completed.
    pub short_flows: usize,
    /// Mean short-flow completion time (ms).
    pub short_fct_mean_ms: f64,
    /// Standard deviation of short-flow completion time (ms).
    pub short_fct_std_ms: f64,
    /// 99th percentile of short-flow completion time (ms).
    pub short_fct_p99_ms: f64,
    /// Largest short-flow completion time (ms).
    pub short_fct_max_ms: f64,
    /// Number of short flows that suffered at least one RTO.
    pub short_flows_with_rto: usize,
    /// Aggregate goodput of the long flows (Gbps).
    pub long_goodput_gbps: f64,
    /// Loss rate at the core layer.
    pub core_loss: f64,
    /// Loss rate at the aggregation layer.
    pub aggregation_loss: f64,
    /// Loss rate at the edge layer.
    pub edge_loss: f64,
    /// Mean utilisation of aggregation↔core links.
    pub core_utilisation: f64,
    /// Mean utilisation over all links.
    pub overall_utilisation: f64,
}

impl ExperimentResults {
    /// Is this flow a short flow?
    pub fn is_short(&self, flow: FlowId) -> bool {
        self.short_ids.contains(&flow)
    }

    /// Is this flow a long flow?
    pub fn is_long(&self, flow: FlowId) -> bool {
        self.long_ids.contains(&flow)
    }

    /// Completion times (ms) of short flows, ordered by flow id — the series
    /// plotted in Figures 1(b) and 1(c).
    pub fn short_fcts_ms(&self) -> Vec<f64> {
        self.metrics.fcts_ms(|f| self.short_ids.contains(&f))
    }

    /// Per-flow (flow id, FCT ms) pairs for the scatter plots.
    pub fn short_fct_series(&self) -> Vec<(u64, f64)> {
        let mut v: Vec<(u64, f64)> = self
            .metrics
            .sorted_records()
            .into_iter()
            .filter(|(id, _)| self.short_ids.contains(id))
            .filter_map(|(id, r)| r.fct().map(|d| (id.0, d.as_millis_f64())))
            .collect();
        v.sort_by_key(|(id, _)| *id);
        v
    }

    /// Summary (ms) of short-flow completion times.
    pub fn short_fct_summary(&self) -> Summary {
        self.metrics.fct_summary_ms(|f| self.short_ids.contains(&f))
    }

    /// Number of short flows that experienced at least one RTO.
    pub fn short_flows_with_rto(&self) -> usize {
        self.metrics.flows_with_rto(|f| self.short_ids.contains(&f))
    }

    /// Aggregate goodput of long flows in bits/second.
    ///
    /// When a goodput horizon is configured the measurement window is
    /// `[0, min(horizon, elapsed)]` and uses the receivers' progress-report
    /// time series, so runs that lasted different amounts of simulated time
    /// remain comparable. Without a horizon the whole run is used.
    pub fn long_goodput_bps(&self) -> f64 {
        let end = match self.goodput_horizon {
            Some(h) => netsim::SimTime::ZERO + h.min(self.elapsed),
            None => netsim::SimTime::ZERO + self.elapsed,
        };
        match self.goodput_horizon {
            Some(_) => self.metrics.goodput_bps_windowed(
                |f| self.long_ids.contains(&f),
                netsim::SimTime::ZERO,
                end,
            ),
            None => {
                self.metrics
                    .goodput_bps(|f| self.long_ids.contains(&f), netsim::SimTime::ZERO, end)
            }
        }
    }

    /// Number of flows that switched phase (MMPTCP only).
    pub fn phase_switches(&self) -> usize {
        self.metrics
            .sorted_records()
            .iter()
            .filter(|(_, r)| r.phase_switched.is_some())
            .count()
    }

    /// Number of spurious retransmissions across short flows.
    pub fn short_spurious_retransmits(&self) -> u64 {
        self.metrics
            .sorted_records()
            .iter()
            .filter(|(id, _)| self.short_ids.contains(id))
            .map(|(_, r)| r.spurious_retransmits as u64)
            .sum()
    }

    /// Build the compact summary.
    pub fn summary(&self) -> RunSummary {
        let s = self.short_fct_summary();
        RunSummary {
            name: self.name.clone(),
            short_flows: s.count,
            short_fct_mean_ms: s.mean,
            short_fct_std_ms: s.std_dev,
            short_fct_p99_ms: s.p99,
            short_fct_max_ms: s.max,
            short_flows_with_rto: self.short_flows_with_rto(),
            long_goodput_gbps: self.long_goodput_bps() / 1e9,
            core_loss: self.loss.core.loss_rate(),
            aggregation_loss: self.loss.aggregation.loss_rate(),
            edge_loss: self.loss.edge.loss_rate(),
            core_utilisation: self.core_utilisation.mean,
            overall_utilisation: self.overall_utilisation,
        }
    }

    /// Classify a workload flow spec by class using the stored spec list.
    pub fn class_of(&self, flow: FlowId) -> Option<FlowClass> {
        self.flows.iter().find(|f| f.id == flow.0).map(|f| f.class)
    }

    /// Deadline accounting over flows that carry a deadline in the workload:
    /// `(missed, total_with_deadline)`. A flow misses its deadline when it
    /// either finished later than `start + deadline` or never finished at all.
    pub fn deadline_misses(&self) -> (usize, usize) {
        let mut missed = 0usize;
        let mut total = 0usize;
        for spec in &self.flows {
            let Some(deadline) = spec.deadline else {
                continue;
            };
            total += 1;
            let rec = self.metrics.record(FlowId(spec.id));
            let met = rec
                .and_then(|r| r.completed)
                .map(|done| done <= spec.start + deadline)
                .unwrap_or(false);
            if !met {
                missed += 1;
            }
        }
        (missed, total)
    }

    /// Fraction of deadline-carrying flows that missed their deadline
    /// (0.0 when the workload has no deadlines).
    pub fn deadline_miss_rate(&self) -> f64 {
        let (missed, total) = self.deadline_misses();
        if total == 0 {
            0.0
        } else {
            missed as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metrics::LossReport;
    use netsim::Signal;
    use netsim::SimTime;

    fn fake_results() -> ExperimentResults {
        let mut metrics = FlowMetrics::new();
        metrics.ingest(&[
            Signal::FlowStarted {
                flow: FlowId(1),
                at: SimTime::from_millis(0),
                bytes: 70_000,
            },
            Signal::FlowCompleted {
                flow: FlowId(1),
                at: SimTime::from_millis(100),
                bytes: 70_000,
            },
            Signal::FlowStarted {
                flow: FlowId(2),
                at: SimTime::from_millis(0),
                bytes: 70_000,
            },
            Signal::FlowCompleted {
                flow: FlowId(2),
                at: SimTime::from_millis(300),
                bytes: 70_000,
            },
            Signal::FlowProgress {
                flow: FlowId(0),
                at: SimTime::from_secs(1),
                bytes: 125_000_000,
            },
            Signal::RetransmissionTimeout {
                flow: FlowId(2),
                subflow: 0,
                at: SimTime::from_millis(150),
            },
        ]);
        ExperimentResults {
            name: "test".into(),
            protocol: Protocol::Tcp,
            seed: 1,
            elapsed: SimDuration::from_secs(1),
            flows: vec![],
            short_ids: [FlowId(1), FlowId(2)].into_iter().collect(),
            long_ids: [FlowId(0)].into_iter().collect(),
            metrics,
            loss: LossReport::default(),
            core_utilisation: UtilisationReport::default(),
            overall_utilisation: 0.0,
            counters: SimCounters::default(),
            all_short_completed: true,
            goodput_horizon: None,
        }
    }

    #[test]
    fn summary_aggregates_short_flows_only() {
        let r = fake_results();
        let s = r.summary();
        assert_eq!(s.short_flows, 2);
        assert!((s.short_fct_mean_ms - 200.0).abs() < 1e-9);
        assert_eq!(s.short_flows_with_rto, 1);
        // 125 MB over 1 s = 1 Gbps of long-flow goodput.
        assert!((s.long_goodput_gbps - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fct_series_is_ordered_by_flow_id() {
        let r = fake_results();
        let series = r.short_fct_series();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].0, 1);
        assert_eq!(series[1].0, 2);
        assert!((series[0].1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn classification_helpers() {
        let r = fake_results();
        assert!(r.is_short(FlowId(1)));
        assert!(r.is_long(FlowId(0)));
        assert!(!r.is_short(FlowId(0)));
        assert_eq!(r.phase_switches(), 0);
        assert_eq!(r.short_spurious_retransmits(), 0);
    }

    #[test]
    fn deadline_miss_accounting() {
        use netsim::Addr;
        use workload::FlowSpec;
        let mut r = fake_results();
        // No deadlines in the workload: rate is zero.
        assert_eq!(r.deadline_misses(), (0, 0));
        assert_eq!(r.deadline_miss_rate(), 0.0);
        // Flow 1 completed at 100 ms, flow 2 at 300 ms (see fake_results).
        let spec = |id: u64, deadline_ms: u64| FlowSpec {
            deadline: Some(SimDuration::from_millis(deadline_ms)),
            ..FlowSpec::new(
                id,
                Addr(0),
                Addr(1),
                Some(70_000),
                SimTime::from_millis(0),
                workload::FlowClass::Short,
            )
        };
        r.flows = vec![spec(1, 150), spec(2, 150), spec(99, 150)];
        // Flow 1 met (100 <= 150), flow 2 missed (300 > 150), flow 99 never
        // completed (no record) so it also counts as a miss.
        assert_eq!(r.deadline_misses(), (2, 3));
        assert!((r.deadline_miss_rate() - 2.0 / 3.0).abs() < 1e-9);
    }
}
