//! Experiment configuration: which topology, which workload, which transport.

use metrics::trace::TraceConfig;
use netsim::{PathPolicy, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use topology::{DumbbellConfig, FatTreeConfig, ParallelPathConfig, Vl2Config};
use transport::{DupAckPolicy, SwitchStrategy, TransportConfig};
use workload::{FlowSpec, PaperWorkloadConfig};

/// The transport protocol a flow uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Protocol {
    /// Single-path TCP (NewReno flavour).
    Tcp,
    /// DCTCP: TCP with ECN marking and α-proportional window reduction.
    /// Requires switches with an ECN marking threshold (the experiment runner
    /// configures one automatically if the topology does not).
    Dctcp,
    /// D²TCP: deadline-aware DCTCP. Flows without a deadline in the workload
    /// behave exactly like DCTCP; flows with one gamma-correct their window
    /// reduction by the deadline-imminence factor. Requires ECN like DCTCP.
    D2tcp,
    /// Multi-Path TCP with the given number of subflows.
    Mptcp {
        /// Number of subflows.
        subflows: usize,
    },
    /// Packet scatter only: MMPTCP that never leaves its first phase.
    PacketScatter,
    /// MMPTCP: packet-scatter phase followed by MPTCP with `subflows`
    /// subflows.
    Mmptcp {
        /// Number of subflows opened at the phase switch.
        subflows: usize,
        /// Phase-switching strategy.
        switch: SwitchStrategy,
        /// Duplicate-ACK policy for the packet-scatter phase. `None` derives a
        /// topology-aware threshold from the path count between the endpoints.
        dupack: Option<DupAckPolicy>,
    },
    /// RepFlow: flows of at most `threshold` bytes (the same mice boundary
    /// the report layer uses) race two replicated single-path connections
    /// over ECMP-disjoint paths and complete at the first full delivery;
    /// larger (and unbounded) flows use one plain TCP connection.
    /// `syn_only` selects the RepSYN variant, which replicates only the
    /// handshake and the first window. Host pairs without path diversity
    /// (path count < 2) never replicate.
    RepFlow {
        /// Mice/elephant boundary in bytes (the paper uses 100 KB).
        threshold: u64,
        /// Replicate only the handshake + first window (RepSYN).
        syn_only: bool,
    },
}

impl Protocol {
    /// MMPTCP with default settings (8 subflows, data-volume switching,
    /// topology-aware duplicate-ACK threshold).
    pub fn mmptcp_default() -> Protocol {
        Protocol::Mmptcp {
            subflows: 8,
            switch: SwitchStrategy::default(),
            dupack: None,
        }
    }

    /// MPTCP with 8 subflows (the configuration of Figure 1(b)).
    pub fn mptcp8() -> Protocol {
        Protocol::Mptcp { subflows: 8 }
    }

    /// RepFlow with the paper's 100 KB replication threshold.
    pub fn repflow() -> Protocol {
        Protocol::RepFlow {
            threshold: 100_000,
            syn_only: false,
        }
    }

    /// RepSYN: replicate only the handshake and the first window.
    pub fn repsyn() -> Protocol {
        Protocol::RepFlow {
            threshold: 100_000,
            syn_only: true,
        }
    }

    /// Short human-readable name for tables.
    pub fn name(&self) -> String {
        match self {
            Protocol::Tcp => "tcp".into(),
            Protocol::Dctcp => "dctcp".into(),
            Protocol::D2tcp => "d2tcp".into(),
            Protocol::Mptcp { subflows } => format!("mptcp-{subflows}"),
            Protocol::PacketScatter => "packet-scatter".into(),
            Protocol::Mmptcp { subflows, .. } => format!("mmptcp-{subflows}"),
            Protocol::RepFlow {
                syn_only: false, ..
            } => "repflow".into(),
            Protocol::RepFlow { syn_only: true, .. } => "repsyn".into(),
        }
    }
}

/// Which simulation engine executes the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Engine {
    /// Pure packet-level simulation: every byte of every flow rides in a
    /// simulated packet. The reference engine — exact, but its cost scales
    /// with bytes transferred.
    #[default]
    Packet,
    /// Hybrid fluid/packet: once a bounded flow leaves slow start with more
    /// than `elephant_threshold` bytes still to send, its remainder is
    /// advanced analytically between epochs by the fluid engine
    /// (`netsim::fluid`) at max-min fair link shares, while mice, handshakes
    /// and all control traffic stay packet-level. MMPTCP hands off only after
    /// its PS→MPTCP switch, so the paper's protection phase stays
    /// packet-exact.
    Hybrid {
        /// Remaining-bytes boundary above which a flow is handed to the
        /// fluid fast path.
        elephant_threshold: u64,
    },
}

impl Engine {
    /// The default hybrid engine: elephants are flows with more than 1 MB
    /// left after slow start (10× the paper's 100 KB mice boundary, so the
    /// whole mice distribution — and a fat margin above it — is packet-exact).
    pub fn hybrid_default() -> Engine {
        Engine::Hybrid {
            elephant_threshold: 1_000_000,
        }
    }

    /// Short name for tables and ledger keys.
    pub fn label(&self) -> &'static str {
        match self {
            Engine::Packet => "packet",
            Engine::Hybrid { .. } => "hybrid",
        }
    }

    /// The fluid threshold to install on the simulator (`None` = packet-only).
    pub fn fluid_threshold(&self) -> Option<u64> {
        match self {
            Engine::Packet => None,
            Engine::Hybrid { elephant_threshold } => Some(*elephant_threshold),
        }
    }
}

/// Which topology to build.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// k-ary FatTree.
    FatTree(FatTreeConfig),
    /// Dual-homed FatTree.
    MultiHomedFatTree(FatTreeConfig),
    /// VL2-style Clos.
    Vl2(Vl2Config),
    /// Dumbbell.
    Dumbbell(DumbbellConfig),
    /// Two edge switches joined by `p` parallel paths.
    Parallel(ParallelPathConfig),
}

impl TopologySpec {
    /// Build the topology.
    pub fn build(&self) -> topology::BuiltTopology {
        match self {
            TopologySpec::FatTree(c) => topology::fattree::build(*c),
            TopologySpec::MultiHomedFatTree(c) => topology::multihomed::build(*c),
            TopologySpec::Vl2(c) => topology::vl2::build(*c),
            TopologySpec::Dumbbell(c) => topology::dumbbell::build(*c),
            TopologySpec::Parallel(c) => topology::parallel::build(*c),
        }
    }
}

/// Which workload to generate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// The paper's evaluation workload (long background flows on one third of
    /// hosts, Poisson short flows on the rest, permutation matrix).
    Paper(PaperWorkloadConfig),
    /// A TCP-incast workload: groups of `fan_in` senders each blast `bytes`
    /// at one receiver simultaneously.
    Incast {
        /// Senders per receiver.
        fan_in: usize,
        /// Bytes per sender.
        bytes: u64,
        /// Start time of the burst.
        start: SimTime,
    },
    /// An explicit list of flows.
    Custom(Vec<FlowSpec>),
}

/// A complete experiment description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Topology to build.
    pub topology: TopologySpec,
    /// Workload to run over it.
    pub workload: WorkloadSpec,
    /// Transport protocol used by short flows (and by long flows unless
    /// `long_protocol` overrides it).
    pub protocol: Protocol,
    /// Optional different protocol for long (background) flows — used by the
    /// co-existence experiments.
    pub long_protocol: Option<Protocol>,
    /// Per-subflow TCP parameters.
    pub transport: TransportConfig,
    /// Multi-path member selection installed on every switch of the fabric:
    /// per-flow hash ECMP (the default), per-packet scatter, or
    /// DiffFlow-style size-aware routing (mice scattered, elephants pinned).
    /// A fabric property, orthogonal to the transport under test.
    pub path_policy: PathPolicy,
    /// Random seed. The same seed reproduces the same packet-level schedule.
    pub seed: u64,
    /// Hard cap on simulated time.
    pub max_sim_time: SimDuration,
    /// Interval at which the runner checks for completion and drains signals.
    pub progress_interval: SimDuration,
    /// Flight-recorder telemetry: [`TraceConfig::Off`] (the default) records
    /// nothing and leaves the run — including every golden metric —
    /// byte-identical; `On` collects per-flow cwnd/RTT series, discrete flow
    /// events and (optionally) per-link queue/utilisation series into
    /// `ExperimentResults::trace`.
    pub trace: TraceConfig,
    /// Which engine executes the run: pure packet (the default, exact) or
    /// hybrid fluid/packet (elephant remainders advanced analytically).
    pub engine: Engine,
    /// Fixed window over which long-flow goodput is measured (from time zero).
    /// `None` measures over the whole run, which makes runs of different
    /// lengths incomparable: a protocol whose short flows straggle keeps
    /// simulating long after the others, and its long flows then enjoy an
    /// uncontended network that inflates their average. The Figure-1 configs
    /// therefore pin this to one second — inside the loaded period for every
    /// protocol under comparison.
    pub goodput_horizon: Option<SimDuration>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            topology: TopologySpec::FatTree(FatTreeConfig::benchmark()),
            workload: WorkloadSpec::Paper(PaperWorkloadConfig::default()),
            protocol: Protocol::mmptcp_default(),
            long_protocol: None,
            transport: TransportConfig::default(),
            path_policy: PathPolicy::FlowHash,
            seed: 1,
            max_sim_time: SimDuration::from_secs(20),
            progress_interval: SimDuration::from_millis(50),
            trace: TraceConfig::Off,
            engine: Engine::Packet,
            goodput_horizon: None,
        }
    }
}

impl ExperimentConfig {
    /// A small, fast configuration for unit/integration tests: a 16-host
    /// FatTree with a light paper-style workload.
    pub fn small_test(protocol: Protocol, seed: u64) -> Self {
        ExperimentConfig {
            topology: TopologySpec::FatTree(FatTreeConfig::small()),
            workload: WorkloadSpec::Paper(PaperWorkloadConfig {
                flows_per_short_host: 2,
                arrivals: workload::ArrivalProcess::Poisson {
                    mean_interarrival: SimDuration::from_millis(20),
                },
                ..PaperWorkloadConfig::default()
            }),
            protocol,
            seed,
            max_sim_time: SimDuration::from_secs(10),
            ..ExperimentConfig::default()
        }
    }

    /// The paper's Figure 1 scenario at the requested scale. `full` uses the
    /// 512-server topology; otherwise a 4:1 over-subscribed 64-host FatTree is
    /// used, preserving the contention regime at laptop-friendly cost.
    pub fn figure1(protocol: Protocol, seed: u64, full: bool, flows_per_host: usize) -> Self {
        let topo = if full {
            FatTreeConfig::paper()
        } else {
            FatTreeConfig::benchmark()
        };
        ExperimentConfig {
            topology: TopologySpec::FatTree(topo),
            workload: WorkloadSpec::Paper(PaperWorkloadConfig {
                flows_per_short_host: flows_per_host,
                ..PaperWorkloadConfig::default()
            }),
            protocol,
            seed,
            goodput_horizon: Some(SimDuration::from_secs(1)),
            ..ExperimentConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_names() {
        assert_eq!(Protocol::Tcp.name(), "tcp");
        assert_eq!(Protocol::mptcp8().name(), "mptcp-8");
        assert_eq!(Protocol::mmptcp_default().name(), "mmptcp-8");
        assert_eq!(Protocol::PacketScatter.name(), "packet-scatter");
        assert_eq!(Protocol::Dctcp.name(), "dctcp");
        assert_eq!(Protocol::D2tcp.name(), "d2tcp");
        assert_eq!(Protocol::repflow().name(), "repflow");
        assert_eq!(Protocol::repsyn().name(), "repsyn");
    }

    #[test]
    fn repflow_presets_use_the_100kb_boundary() {
        let Protocol::RepFlow {
            threshold,
            syn_only,
        } = Protocol::repflow()
        else {
            panic!("wrong variant");
        };
        assert_eq!(threshold, 100_000);
        assert!(!syn_only);
        assert!(matches!(
            Protocol::repsyn(),
            Protocol::RepFlow { syn_only: true, .. }
        ));
    }

    #[test]
    fn default_engine_is_packet_and_hybrid_carries_its_threshold() {
        assert_eq!(ExperimentConfig::default().engine, Engine::Packet);
        assert_eq!(Engine::Packet.fluid_threshold(), None);
        assert_eq!(Engine::Packet.label(), "packet");
        let h = Engine::hybrid_default();
        assert_eq!(h.fluid_threshold(), Some(1_000_000));
        assert_eq!(h.label(), "hybrid");
    }

    #[test]
    fn default_path_policy_is_flow_hash_ecmp() {
        assert_eq!(
            ExperimentConfig::default().path_policy,
            PathPolicy::FlowHash
        );
    }

    #[test]
    fn figure1_pins_a_goodput_horizon() {
        let c = ExperimentConfig::figure1(Protocol::Tcp, 1, false, 4);
        assert_eq!(c.goodput_horizon, Some(SimDuration::from_secs(1)));
        assert_eq!(ExperimentConfig::default().goodput_horizon, None);
    }

    #[test]
    fn topology_specs_build() {
        assert_eq!(
            TopologySpec::FatTree(FatTreeConfig::small())
                .build()
                .host_count(),
            16
        );
        assert_eq!(
            TopologySpec::Dumbbell(DumbbellConfig::default())
                .build()
                .host_count(),
            4
        );
        assert_eq!(
            TopologySpec::Parallel(ParallelPathConfig::default())
                .build()
                .host_count(),
            2
        );
        assert!(TopologySpec::Vl2(Vl2Config::default()).build().host_count() > 0);
        assert_eq!(
            TopologySpec::MultiHomedFatTree(FatTreeConfig::small())
                .build()
                .host_count(),
            16
        );
    }

    #[test]
    fn default_config_is_benchmark_scale() {
        let c = ExperimentConfig::default();
        match c.topology {
            TopologySpec::FatTree(ft) => assert_eq!(ft.total_hosts(), 64),
            _ => panic!("unexpected default topology"),
        }
    }

    #[test]
    fn figure1_full_uses_paper_scale() {
        let c = ExperimentConfig::figure1(Protocol::mptcp8(), 1, true, 8);
        match c.topology {
            TopologySpec::FatTree(ft) => assert_eq!(ft.total_hosts(), 512),
            _ => panic!(),
        }
    }
}
