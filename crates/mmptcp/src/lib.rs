//! # mmptcp — reproduction of *Short vs. Long Flows: A Battle That Both Can Win*
//!
//! This crate is the user-facing API of the reproduction: describe an
//! experiment (topology + workload + transport protocol), run it on the
//! packet-level simulator, and read back the measurements the paper reports —
//! short-flow completion times, long-flow throughput, per-layer loss rates and
//! network utilisation.
//!
//! ```
//! use mmptcp::prelude::*;
//!
//! // One 70 KB MMPTCP flow across a 4-path topology.
//! let config = ExperimentConfig {
//!     topology: TopologySpec::Parallel(ParallelPathConfig::default()),
//!     workload: WorkloadSpec::Custom(vec![FlowSpec::new(
//!         0,
//!         Addr(0),
//!         Addr(1),
//!         Some(70_000),
//!         SimTime::from_millis(1),
//!         FlowClass::Short,
//!     )]),
//!     protocol: Protocol::mmptcp_default(),
//!     ..ExperimentConfig::default()
//! };
//! let results = mmptcp::run(config);
//! assert!(results.all_short_completed);
//! println!("FCT: {:.2} ms", results.short_fct_summary().mean);
//! ```
//!
//! The crates underneath are reusable on their own:
//!
//! * [`netsim`] — the discrete-event network simulator;
//! * [`topology`] — FatTree / VL2 / dumbbell / multi-homed builders;
//! * [`transport`] — TCP, MPTCP, MMPTCP, packet-scatter, DCTCP and D²TCP agents;
//! * [`workload`] — traffic matrices and flow generators;
//! * [`metrics`] — completion-time, loss and utilisation measurement.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod driver;
pub mod experiment;
pub mod results;
pub mod scenario;

pub use config::{Engine, ExperimentConfig, Protocol, TopologySpec, WorkloadSpec};
pub use driver::{Driver, ExperimentSweep};
pub use experiment::run;
pub use results::{ExperimentResults, RunSummary};
pub use scenario::{Fidelity, Scenario, ScenarioRun};

// Re-export the sub-crates so downstream users need a single dependency.
pub use metrics;
pub use netsim;
pub use topology;
pub use transport;
pub use workload;

/// Convenient glob import for examples and benches.
pub mod prelude {
    pub use crate::config::{Engine, ExperimentConfig, Protocol, TopologySpec, WorkloadSpec};
    pub use crate::driver::{Driver, ExperimentSweep};
    pub use crate::experiment::run;
    pub use crate::results::{ExperimentResults, RunSummary};
    pub use crate::scenario::{Fidelity, Scenario, ScenarioRun};
    pub use metrics::{FlowSelect, Summary, Table, TraceConfig, TraceSettings, TraceSink};
    pub use netsim::{Addr, FlowId, SimDuration, SimTime};
    pub use topology::{
        DumbbellConfig, FatTreeConfig, LinkFailureSpec, ParallelPathConfig, Vl2Config,
    };
    pub use transport::{DupAckPolicy, MmptcpPhase, SwitchStrategy, TransportConfig};
    pub use workload::{
        ArrivalProcess, DeadlineModel, FlowClass, FlowSizeModel, FlowSpec, PaperWorkloadConfig,
        TrafficMatrix,
    };
}
