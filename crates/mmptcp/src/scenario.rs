//! The scenario registry: every canonical experiment as a named, data-driven
//! spec instead of a copy-pasted binary.
//!
//! A [`Scenario`] expands to a deterministic, labelled list of
//! [`ExperimentConfig`]s at one of three fidelities — [`Fidelity::Fast`]
//! (the CI / golden-snapshot scale, seconds per scenario), [`Fidelity::Full`]
//! (the 64-host benchmark scale the replaced binaries ran by default) or
//! [`Fidelity::Paper`] (their old `--full` 512-server scale). Running a
//! scenario fans the configs across the parallel [`Driver`] and distils each
//! run into a canonical [`metrics::report::ScenarioReport`] JSON document;
//! `tests/golden/` pins those documents and the `scenarios` binary (crate
//! `bench`) checks them in CI, so any behavioural drift in the simulator,
//! transports, workloads or topologies becomes an explicit, reviewable diff.
//!
//! The catalog covers the paper's figures (`fig1a`, `fig1bc`), the load and
//! incast sweeps, empirical flow-size workloads (`web-search`,
//! `data-mining`), traffic-matrix variations (`hotspot`), link-failure
//! injection (`link-failure`) and protocol co-existence (`coexistence`).

use crate::config::{Engine, ExperimentConfig, Protocol, TopologySpec, WorkloadSpec};
use crate::driver::Driver;
use crate::results::ExperimentResults;
use metrics::report::{FctDoc, RunReport, ScenarioReport, TierCounts};
use netsim::{PathPolicy, SimDuration, SimTime};
use topology::{FatTreeConfig, LinkFailureSpec};
use transport::CongestionControl;
use workload::{ArrivalProcess, FlowSizeModel, PaperWorkloadConfig, TrafficMatrix};

/// The scale a scenario expands to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Small, seconds-per-scenario scale used by tests and the CI golden
    /// check: 16-host FatTree, few flows, one seed.
    Fast,
    /// The scale the replaced harness binaries ran by default: the 64-host,
    /// 4:1 over-subscribed benchmark FatTree with 10 flows per short host —
    /// the paper's contention regime at laptop-friendly cost.
    Full,
    /// The paper's actual evaluation scale (the binaries' old `--full`
    /// flag): the 512-server, 4:1 over-subscribed k=8 FatTree.
    Paper,
}

impl Fidelity {
    /// Stable label used in reports and golden file names.
    pub fn label(&self) -> &'static str {
        match self {
            Fidelity::Fast => "fast",
            Fidelity::Full => "full",
            Fidelity::Paper => "paper",
        }
    }
}

/// A named, data-driven experiment: topology + workload + transport +
/// parameter sweep + seeds, expanded deterministically per fidelity.
///
/// ```
/// use mmptcp::scenario::{find, Fidelity};
///
/// let scenario = find("fig1a").expect("fig1a is in the catalog");
/// assert!(scenario.golden, "fig1a is part of the pinned golden subset");
/// // Expansion is deterministic: the same fidelity always yields the same
/// // labelled configuration list (the golden-snapshot contract).
/// let configs = scenario.configs(Fidelity::Fast);
/// assert_eq!(configs.len(), 3);
/// assert_eq!(configs[0].0, "mptcp-1");
/// assert_eq!(configs, scenario.configs(Fidelity::Fast));
/// // `scenario.run(fidelity, threads)` would execute them on the parallel
/// // driver and distil the canonical `ScenarioReport`.
/// ```
pub struct Scenario {
    /// Registry name (also the golden snapshot file stem).
    pub name: &'static str,
    /// One-line description shown by `scenarios list`.
    pub description: &'static str,
    /// Whether the scenario's fast variant is part of the pinned golden
    /// subset checked in CI.
    pub golden: bool,
    build: fn(Fidelity) -> Vec<(String, ExperimentConfig)>,
}

/// The outcome of executing one scenario.
pub struct ScenarioRun {
    /// Full per-run results, in config order.
    pub results: Vec<(String, ExperimentResults)>,
    /// The canonical metrics document distilled from `results`.
    pub report: ScenarioReport,
}

impl Scenario {
    /// Expand into labelled configurations (deterministic per fidelity).
    pub fn configs(&self, fidelity: Fidelity) -> Vec<(String, ExperimentConfig)> {
        (self.build)(fidelity)
    }

    /// Run every configuration on the parallel driver and build the report.
    pub fn run(&self, fidelity: Fidelity, threads: usize) -> ScenarioRun {
        let results = Driver::with_threads(threads).run_labelled(self.configs(fidelity));
        let report = report(self.name, fidelity, &results);
        ScenarioRun { results, report }
    }
}

/// Distil labelled results into the canonical metrics document.
pub fn report(
    scenario: &str,
    fidelity: Fidelity,
    results: &[(String, ExperimentResults)],
) -> ScenarioReport {
    ScenarioReport {
        scenario: scenario.to_string(),
        fidelity: fidelity.label().to_string(),
        runs: results
            .iter()
            .map(|(label, r)| run_report(label, r))
            .collect(),
    }
}

fn run_report(label: &str, r: &ExperimentResults) -> RunReport {
    let s = r.short_fct_summary();
    RunReport {
        label: label.to_string(),
        short_fct: FctDoc::from_summary(&s),
        mice_fct: FctDoc::from_summary(&r.mice_fct_summary()),
        all_short_completed: r.all_short_completed,
        short_flows_with_rto: r.short_flows_with_rto(),
        rtos: r.metrics.total_rtos(|_| true),
        long_goodput_gbps: r.long_goodput_bps() / 1e9,
        drops: TierCounts {
            edge: r.loss.edge.dropped,
            aggregation: r.loss.aggregation.dropped,
            core: r.loss.core.dropped,
            host: r.loss.host.dropped,
        },
        ecn_marks: TierCounts {
            edge: r.loss.edge.marked,
            aggregation: r.loss.aggregation.marked,
            core: r.loss.core.marked,
            host: r.loss.host.marked,
        },
        phase_switches: r.phase_switches(),
        redundant_bytes: r.redundant_bytes(),
        core_utilisation: r.core_utilisation.mean,
    }
}

/// The full scenario catalog, in stable display order.
pub fn catalog() -> &'static [Scenario] {
    static CATALOG: [Scenario; 12] = [
        Scenario {
            name: "fig1a",
            description: "Figure 1(a): MPTCP short-flow FCT vs subflow count (1..9)",
            golden: true,
            build: fig1a,
        },
        Scenario {
            name: "fig1bc",
            description: "Figures 1(b)/(c): per-flow FCT, MPTCP-8 vs MMPTCP-8",
            golden: true,
            build: fig1bc,
        },
        Scenario {
            name: "load-sweep",
            description: "Short-flow FCT vs offered load (Poisson inter-arrival sweep)",
            golden: true,
            build: load_sweep,
        },
        Scenario {
            name: "incast",
            description: "TCP-incast fan-in sweep: N synchronised senders per receiver",
            golden: true,
            build: incast,
        },
        Scenario {
            name: "web-search",
            description: "Empirical web-search flow-size CDF (DCTCP paper) workload",
            golden: true,
            build: web_search,
        },
        Scenario {
            name: "data-mining",
            description: "Empirical data-mining flow-size CDF (VL2 paper) workload",
            golden: true,
            build: data_mining,
        },
        Scenario {
            name: "hotspot",
            description: "Permutation vs hotspot traffic matrix (25% of flows on 4 hot hosts)",
            golden: true,
            build: hotspot,
        },
        Scenario {
            name: "link-failure",
            description: "Aggregation-to-core uplink failures: 0 / 12.5% / 25% failed",
            golden: true,
            build: link_failure,
        },
        Scenario {
            name: "coexistence",
            description: "MMPTCP short flows sharing the fabric with TCP/MPTCP long flows",
            golden: true,
            build: coexistence,
        },
        Scenario {
            name: "battle-matrix",
            description: "Every transport (incl. RepFlow/RepSYN, DiffFlow routing) x empirical workload x load",
            golden: true,
            build: battle_matrix,
        },
        Scenario {
            name: "cc-battle",
            description: "Congestion-controller duel: Reno vs CUBIC vs BBR vs DCTCP on the Figure-1 cell",
            golden: true,
            build: cc_battle,
        },
        Scenario {
            name: "mega-load-sweep",
            description: "Hybrid-engine stress: 100k+ bounded data-mining flows, cap-limited burst",
            golden: true,
            build: mega_load_sweep,
        },
    ];
    &CATALOG
}

/// Look a scenario up by name.
pub fn find(name: &str) -> Option<&'static Scenario> {
    catalog().iter().find(|s| s.name == name)
}

// --- Base configurations ------------------------------------------------

/// The figure-faithful base the replaced harness binaries used by default:
/// `ExperimentConfig::figure1` at benchmark scale, seed 1, 10 flows per
/// short-flow host (`HarnessOptions::default()`).
fn full_base(protocol: Protocol) -> ExperimentConfig {
    ExperimentConfig::figure1(protocol, 1, false, 10)
}

/// CI-scale base: the `small_test` configuration plus the Figure-1 goodput
/// horizon so long-flow goodput stays comparable across runs.
fn fast_base(protocol: Protocol) -> ExperimentConfig {
    ExperimentConfig {
        goodput_horizon: Some(SimDuration::from_secs(1)),
        ..ExperimentConfig::small_test(protocol, 1)
    }
}

/// Paper-scale base: what the replaced binaries ran under their `--full`
/// flag — the 512-server FatTree of the paper's evaluation.
fn paper_base(protocol: Protocol) -> ExperimentConfig {
    ExperimentConfig::figure1(protocol, 1, true, 10)
}

fn base(fidelity: Fidelity, protocol: Protocol) -> ExperimentConfig {
    match fidelity {
        Fidelity::Fast => fast_base(protocol),
        Fidelity::Full => full_base(protocol),
        Fidelity::Paper => paper_base(protocol),
    }
}

fn with_paper_workload(
    mut config: ExperimentConfig,
    f: impl FnOnce(&mut PaperWorkloadConfig),
) -> ExperimentConfig {
    if let WorkloadSpec::Paper(p) = &mut config.workload {
        f(p);
    }
    config
}

// --- Scenario builders --------------------------------------------------

fn fig1a(fidelity: Fidelity) -> Vec<(String, ExperimentConfig)> {
    let subflows: &[usize] = match fidelity {
        Fidelity::Fast => &[1, 4, 8],
        _ => &[1, 2, 3, 4, 5, 6, 7, 8, 9],
    };
    subflows
        .iter()
        .map(|&n| {
            (
                format!("mptcp-{n}"),
                base(fidelity, Protocol::Mptcp { subflows: n }),
            )
        })
        .collect()
}

fn fig1bc(fidelity: Fidelity) -> Vec<(String, ExperimentConfig)> {
    [
        ("mptcp-8 (Figure 1b)", Protocol::mptcp8()),
        ("mmptcp-8 (Figure 1c)", Protocol::mmptcp_default()),
    ]
    .into_iter()
    .map(|(label, p)| (label.to_string(), base(fidelity, p)))
    .collect()
}

fn load_sweep(fidelity: Fidelity) -> Vec<(String, ExperimentConfig)> {
    let (protocols, loads_ms): (&[Protocol], &[u64]) = match fidelity {
        Fidelity::Fast => (&[Protocol::Tcp, Protocol::mmptcp_default()], &[40, 20]),
        _ => (
            &[
                Protocol::Tcp,
                Protocol::mptcp8(),
                Protocol::mmptcp_default(),
            ],
            &[300, 150, 75, 40],
        ),
    };
    let mut out = Vec::new();
    for &p in protocols {
        for &ms in loads_ms {
            let cfg = with_paper_workload(base(fidelity, p), |w| {
                w.arrivals = ArrivalProcess::Poisson {
                    mean_interarrival: SimDuration::from_millis(ms),
                };
            });
            out.push((format!("{} @ {ms} ms", p.name()), cfg));
        }
    }
    out
}

fn incast(fidelity: Fidelity) -> Vec<(String, ExperimentConfig)> {
    let (protocols, fan_ins, bytes): (&[Protocol], &[usize], u64) = match fidelity {
        Fidelity::Fast => (
            &[Protocol::Tcp, Protocol::mmptcp_default()],
            &[4, 8],
            32_000,
        ),
        _ => (
            &[
                Protocol::Tcp,
                Protocol::Dctcp,
                Protocol::mptcp8(),
                Protocol::PacketScatter,
                Protocol::mmptcp_default(),
            ],
            &[4, 8, 16, 32],
            64_000,
        ),
    };
    let topology = match fidelity {
        Fidelity::Fast => TopologySpec::FatTree(FatTreeConfig::small()),
        Fidelity::Full => TopologySpec::FatTree(FatTreeConfig::benchmark()),
        Fidelity::Paper => TopologySpec::FatTree(FatTreeConfig::paper()),
    };
    let mut out = Vec::new();
    for &fan_in in fan_ins {
        for &p in protocols {
            out.push((
                format!("{} | {fan_in}", p.name()),
                ExperimentConfig {
                    topology,
                    workload: WorkloadSpec::Incast {
                        fan_in,
                        bytes,
                        start: SimTime::from_millis(1),
                    },
                    protocol: p,
                    seed: 1,
                    ..ExperimentConfig::default()
                },
            ));
        }
    }
    out
}

fn empirical(fidelity: Fidelity, size: FlowSizeModel) -> Vec<(String, ExperimentConfig)> {
    let protocols: &[Protocol] = match fidelity {
        Fidelity::Fast => &[Protocol::Tcp, Protocol::mmptcp_default()],
        _ => &[
            Protocol::Tcp,
            Protocol::mptcp8(),
            Protocol::mmptcp_default(),
        ],
    };
    protocols
        .iter()
        .map(|&p| {
            let cfg = with_paper_workload(base(fidelity, p), |w| {
                w.short_size = size;
            });
            (p.name(), cfg)
        })
        .collect()
}

fn web_search(fidelity: Fidelity) -> Vec<(String, ExperimentConfig)> {
    empirical(fidelity, FlowSizeModel::WebSearch)
}

fn data_mining(fidelity: Fidelity) -> Vec<(String, ExperimentConfig)> {
    empirical(fidelity, FlowSizeModel::DataMining)
}

fn hotspot(fidelity: Fidelity) -> Vec<(String, ExperimentConfig)> {
    let protocols: &[Protocol] = match fidelity {
        Fidelity::Fast => &[Protocol::Tcp, Protocol::mmptcp_default()],
        _ => &[
            Protocol::mptcp8(),
            Protocol::mmptcp_default(),
            Protocol::Tcp,
        ],
    };
    let mut out = Vec::new();
    for &p in protocols {
        out.push((format!("{} / permutation", p.name()), base(fidelity, p)));
        out.push((
            format!("{} / hotspot", p.name()),
            with_paper_workload(base(fidelity, p), |w| {
                w.matrix = TrafficMatrix::Hotspot {
                    hot_hosts: 4,
                    hot_fraction_millis: 250,
                };
            }),
        ));
    }
    out
}

fn link_failure(fidelity: Fidelity) -> Vec<(String, ExperimentConfig)> {
    let protocols: &[Protocol] = match fidelity {
        Fidelity::Fast => &[Protocol::mmptcp_default()],
        _ => &[Protocol::mptcp8(), Protocol::mmptcp_default()],
    };
    let mut out = Vec::new();
    for &p in protocols {
        for &millis in &[0u32, 125, 250] {
            let mut cfg = base(fidelity, p);
            if let TopologySpec::FatTree(ft) = &mut cfg.topology {
                ft.failures = LinkFailureSpec::agg_core(millis, 42);
            }
            out.push((format!("{} / failed {millis}/1000", p.name()), cfg));
        }
    }
    out
}

fn coexistence(fidelity: Fidelity) -> Vec<(String, ExperimentConfig)> {
    let combos: &[(&str, Protocol, Option<Protocol>)] = &[
        (
            "short mmptcp / long mmptcp",
            Protocol::mmptcp_default(),
            None,
        ),
        (
            "short mmptcp / long mptcp-8",
            Protocol::mmptcp_default(),
            Some(Protocol::mptcp8()),
        ),
        (
            "short mmptcp / long tcp",
            Protocol::mmptcp_default(),
            Some(Protocol::Tcp),
        ),
        (
            "short mptcp-8 / long tcp",
            Protocol::mptcp8(),
            Some(Protocol::Tcp),
        ),
    ];
    combos
        .iter()
        .map(|&(label, short, long)| {
            let mut cfg = base(fidelity, short);
            cfg.long_protocol = long;
            (label.to_string(), cfg)
        })
        .collect()
}

/// The short-vs-long battleground: every transport family (including the
/// replication-based RepFlow/RepSYN and switch-side DiffFlow size-aware
/// routing) crossed with both empirical flow-size workloads and an offered
/// load sweep. Load is expressed as the target fraction of a host's access
/// link consumed by its short-flow arrivals: the Poisson mean inter-arrival
/// is derived from the workload CDF's analytic mean flow size, so "load 0.6"
/// means the same pressure under web-search and data-mining sizes.
fn battle_matrix(fidelity: Fidelity) -> Vec<(String, ExperimentConfig)> {
    let variants: Vec<(&'static str, Protocol, PathPolicy)> = match fidelity {
        Fidelity::Fast => vec![
            ("tcp", Protocol::Tcp, PathPolicy::FlowHash),
            ("mptcp-8", Protocol::mptcp8(), PathPolicy::FlowHash),
            ("mmptcp-8", Protocol::mmptcp_default(), PathPolicy::FlowHash),
            ("repflow", Protocol::repflow(), PathPolicy::FlowHash),
            (
                "tcp+diffflow",
                Protocol::Tcp,
                PathPolicy::diffflow_default(),
            ),
        ],
        _ => vec![
            ("tcp", Protocol::Tcp, PathPolicy::FlowHash),
            ("dctcp", Protocol::Dctcp, PathPolicy::FlowHash),
            ("mptcp-8", Protocol::mptcp8(), PathPolicy::FlowHash),
            (
                "packet-scatter",
                Protocol::PacketScatter,
                PathPolicy::FlowHash,
            ),
            ("mmptcp-8", Protocol::mmptcp_default(), PathPolicy::FlowHash),
            ("repflow", Protocol::repflow(), PathPolicy::FlowHash),
            ("repsyn", Protocol::repsyn(), PathPolicy::FlowHash),
            (
                "tcp+diffflow",
                Protocol::Tcp,
                PathPolicy::diffflow_default(),
            ),
        ],
    };
    // The congestion-control axis joins the battle at the larger fidelities:
    // single-path TCP re-run under CUBIC and BBR. The fast (golden-pinned)
    // arm stays Reno-only so the snapshot grid keeps its size.
    let cc_of = |variant: &str| match variant {
        "tcp-cubic" => CongestionControl::Cubic,
        "tcp-bbr" => CongestionControl::Bbr,
        _ => CongestionControl::Reno,
    };
    let variants: Vec<(&'static str, Protocol, PathPolicy)> = match fidelity {
        Fidelity::Fast => variants,
        _ => {
            let mut v = variants;
            v.push(("tcp-cubic", Protocol::Tcp, PathPolicy::FlowHash));
            v.push(("tcp-bbr", Protocol::Tcp, PathPolicy::FlowHash));
            v
        }
    };
    let workloads: &[(&str, FlowSizeModel)] = &[
        ("web-search", FlowSizeModel::WebSearch),
        ("data-mining", FlowSizeModel::DataMining),
    ];
    // Target loads in thousandths of the access-link rate.
    let loads: &[u32] = match fidelity {
        Fidelity::Fast => &[400, 600],
        _ => &[200, 400, 600, 800],
    };
    // At the 16-host fast scale a single permutation matrix leaves only ~5
    // long flows, so per-cell goodput is dominated by which paths collide;
    // two seeds per cell make cross-transport comparisons meaningful. The
    // larger fidelities have enough flows per run.
    let seeds: &[u64] = match fidelity {
        Fidelity::Fast => &[1, 2],
        _ => &[1],
    };
    let mut out = Vec::new();
    for &(wl_name, model) in workloads {
        let mean_flow_bits = model.cdf().expect("empirical workload").mean() * 8.0;
        for &load in loads {
            // Host access links are 1 Gbps in every battle topology.
            let arrival_rate = 1e9 * (load as f64 / 1000.0) / mean_flow_bits;
            let interarrival = SimDuration::from_secs_f64(1.0 / arrival_rate);
            for &(variant, protocol, policy) in &variants {
                let mut cfg = with_paper_workload(base(fidelity, protocol), |w| {
                    w.short_size = model;
                    w.arrivals = ArrivalProcess::Poisson {
                        mean_interarrival: interarrival,
                    };
                });
                cfg.path_policy = policy;
                cfg.transport.cc = cc_of(variant);
                // Empirical-CDF mice bursts displace elephants for hundreds
                // of milliseconds at a time; a multi-second goodput window
                // averages over those transients so long-flow comparisons
                // across transports are not dominated by which burst the
                // 1 s Figure-1 window happens to straddle.
                cfg.goodput_horizon = Some(SimDuration::from_secs(3));
                for &seed in seeds {
                    let mut c = cfg.clone();
                    c.seed = seed;
                    let load_label = format!("load {:.1}", load as f64 / 1000.0);
                    let label = if seeds.len() == 1 {
                        format!("{variant} | {wl_name} @ {load_label}")
                    } else {
                        format!("{variant} | {wl_name} @ {load_label} seed={seed}")
                    };
                    out.push((label, c));
                }
            }
        }
    }
    out
}

/// The congestion-controller battleground: the same Figure-1 cell
/// (permutation matrix, short flows arriving over long background flows)
/// run under every controller behind the `transport::cc` trait — single-path
/// TCP with Reno, CUBIC and BBR, DCTCP (the ECN responder layered on Reno),
/// and MMPTCP-8 under Reno vs BBR. The fast variant is golden-pinned, so the
/// per-ack arithmetic of every controller (and the DCTCP-on-trait layering)
/// is frozen as an explicit, reviewable snapshot; it is also the only fast
/// golden that exercises `Protocol::Dctcp` at all.
fn cc_battle(fidelity: Fidelity) -> Vec<(String, ExperimentConfig)> {
    let cells: &[(&str, Protocol, CongestionControl)] = &[
        ("tcp-reno", Protocol::Tcp, CongestionControl::Reno),
        ("tcp-cubic", Protocol::Tcp, CongestionControl::Cubic),
        ("tcp-bbr", Protocol::Tcp, CongestionControl::Bbr),
        ("dctcp", Protocol::Dctcp, CongestionControl::Reno),
        (
            "mmptcp-8-reno",
            Protocol::mmptcp_default(),
            CongestionControl::Reno,
        ),
        (
            "mmptcp-8-bbr",
            Protocol::mmptcp_default(),
            CongestionControl::Bbr,
        ),
    ];
    cells
        .iter()
        .map(|&(label, p, cc)| {
            let mut cfg = base(fidelity, p);
            cfg.transport.cc = cc;
            (label.to_string(), cfg)
        })
        .collect()
}

/// Hybrid-engine stress scenario: a flow-count sweep whose top rung is only
/// routinely runnable on the fluid fast path. Every host generates bounded
/// data-mining flows (no unbounded background flows, so the CDF's heavy tail
/// is eligible for fluid handoff), arrivals are compressed into the first few
/// tens of milliseconds, and the run is hard-capped, so the golden document
/// pins a deterministic cap-limited snapshot. At fast fidelity the largest
/// rung alone generates 16 hosts x 6500 = 104 000 flows; the smallest rung
/// leads the expansion so debug-profile conformance sweeps (which take each
/// scenario's first fast config) stay tractable on the packet engine too.
fn mega_load_sweep(fidelity: Fidelity) -> Vec<(String, ExperimentConfig)> {
    // Hosts per fidelity mirror `base`: small/benchmark/paper FatTrees.
    let (flow_counts, hosts): (&[usize], usize) = match fidelity {
        Fidelity::Fast => (&[50, 1_000, 6_500], 16),
        Fidelity::Full => (&[50, 1_000, 6_500], 64),
        Fidelity::Paper => (&[500, 2_500], 512),
    };
    flow_counts
        .iter()
        .map(|&n| {
            let mut cfg = with_paper_workload(base(fidelity, Protocol::mmptcp_default()), |w| {
                w.long_host_millis = 0;
                w.short_size = FlowSizeModel::DataMining;
                w.flows_per_short_host = n;
                w.arrivals = ArrivalProcess::Poisson {
                    mean_interarrival: SimDuration::from_micros(5),
                };
                w.short_start = SimTime::from_millis(1);
            });
            cfg.engine = Engine::hybrid_default();
            cfg.max_sim_time = SimDuration::from_millis(250);
            // No unbounded long flows exist, so the Figure-1 goodput window
            // would just measure zero over a second the run never reaches.
            cfg.goodput_horizon = None;
            (format!("mmptcp-8 hybrid | {} flows", n * hosts), cfg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_plentiful() {
        let names: Vec<&str> = catalog().iter().map(|s| s.name).collect();
        assert!(names.len() >= 8, "catalog must have >= 8 scenarios");
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate scenario names");
        assert!(find("fig1a").is_some());
        assert!(find("no-such-scenario").is_none());
    }

    #[test]
    fn every_scenario_expands_deterministically_at_every_fidelity() {
        for s in catalog() {
            for fidelity in [Fidelity::Fast, Fidelity::Full, Fidelity::Paper] {
                let a = s.configs(fidelity);
                let b = s.configs(fidelity);
                assert!(!a.is_empty(), "{} has no configs", s.name);
                assert_eq!(a, b, "{} expansion must be deterministic", s.name);
                let mut labels: Vec<&String> = a.iter().map(|(l, _)| l).collect();
                labels.sort_unstable();
                labels.dedup();
                assert_eq!(labels.len(), a.len(), "{} labels must be unique", s.name);
            }
        }
    }

    #[test]
    fn fast_configs_stay_at_test_scale() {
        for s in catalog() {
            for (label, cfg) in s.configs(Fidelity::Fast) {
                let hosts = cfg.topology.build().host_count();
                assert!(
                    hosts <= 16,
                    "{}/{label} fast config uses {hosts} hosts",
                    s.name
                );
            }
        }
    }

    /// Differential guard for the deleted `fig1a` binary: the registry's full
    /// expansion must be exactly the configuration list the binary ran
    /// (`ExperimentConfig::figure1` per subflow count with the default
    /// harness options), so registry runs reproduce the old numbers
    /// run-for-run (the engine is deterministic per config+seed).
    #[test]
    fn fig1a_full_matches_the_replaced_binary() {
        let registry = find("fig1a").unwrap().configs(Fidelity::Full);
        let legacy: Vec<ExperimentConfig> = (1..=9)
            .map(|n| ExperimentConfig::figure1(Protocol::Mptcp { subflows: n }, 1, false, 10))
            .collect();
        assert_eq!(registry.len(), legacy.len());
        for ((label, cfg), old) in registry.iter().zip(&legacy) {
            assert_eq!(cfg, old, "config drift for {label}");
        }
    }

    /// Paper fidelity reproduces the deleted binaries' `--full` flag: the
    /// 512-server evaluation topology of the paper.
    #[test]
    fn paper_fidelity_uses_the_512_server_topology() {
        for (label, cfg) in find("fig1a").unwrap().configs(Fidelity::Paper) {
            assert_eq!(
                cfg,
                ExperimentConfig::figure1(cfg.protocol, 1, true, 10),
                "{label}"
            );
            let TopologySpec::FatTree(ft) = cfg.topology else {
                panic!("{label}: expected a FatTree");
            };
            assert_eq!(ft.total_hosts(), 512, "{label}");
        }
        for (label, cfg) in find("incast").unwrap().configs(Fidelity::Paper) {
            let TopologySpec::FatTree(ft) = cfg.topology else {
                panic!("{label}: expected a FatTree");
            };
            assert_eq!(ft.total_hosts(), 512, "{label}");
        }
    }

    /// Differential guard for the deleted `fig1bc` binary.
    #[test]
    fn fig1bc_full_matches_the_replaced_binary() {
        let registry = find("fig1bc").unwrap().configs(Fidelity::Full);
        let legacy = [
            ExperimentConfig::figure1(Protocol::mptcp8(), 1, false, 10),
            ExperimentConfig::figure1(Protocol::mmptcp_default(), 1, false, 10),
        ];
        assert_eq!(registry.len(), legacy.len());
        for ((_, cfg), old) in registry.iter().zip(&legacy) {
            assert_eq!(cfg, old);
        }
    }

    /// Differential guards for the other replaced binaries (`load_sweep`,
    /// `incast_sweep`, `hotspot`, `coexistence`): spot-check that the full
    /// expansion reproduces the binaries' configuration grids.
    #[test]
    fn remaining_full_expansions_match_the_replaced_binaries() {
        // load_sweep: 3 protocols x 4 loads, protocol-major, 300..40 ms.
        let loads = find("load-sweep").unwrap().configs(Fidelity::Full);
        assert_eq!(loads.len(), 12);
        assert_eq!(loads[0].0, "tcp @ 300 ms");
        let expected = with_paper_workload(full_base(Protocol::Tcp), |w| {
            w.arrivals = ArrivalProcess::Poisson {
                mean_interarrival: SimDuration::from_millis(300),
            };
        });
        assert_eq!(loads[0].1, expected);

        // incast_sweep: 4 fan-ins x 5 protocols, 64 KB per sender.
        let incast = find("incast").unwrap().configs(Fidelity::Full);
        assert_eq!(incast.len(), 20);
        assert_eq!(incast[0].0, "tcp | 4");
        match &incast[0].1.workload {
            WorkloadSpec::Incast {
                fan_in,
                bytes,
                start,
            } => {
                assert_eq!(*fan_in, 4);
                assert_eq!(*bytes, 64_000);
                assert_eq!(*start, SimTime::from_millis(1));
            }
            other => panic!("unexpected workload {other:?}"),
        }

        // hotspot: permutation baseline must be exactly the figure-1 config.
        let hotspot = find("hotspot").unwrap().configs(Fidelity::Full);
        assert_eq!(hotspot.len(), 6);
        assert_eq!(hotspot[0].1, full_base(Protocol::mptcp8()));

        // coexistence: 4 combos, long_protocol overrides as in the binary.
        let coex = find("coexistence").unwrap().configs(Fidelity::Full);
        assert_eq!(coex.len(), 4);
        assert_eq!(coex[1].1.long_protocol, Some(Protocol::mptcp8()));
        assert_eq!(coex[3].1.protocol, Protocol::mptcp8());
        assert_eq!(coex[3].1.long_protocol, Some(Protocol::Tcp));
    }

    /// Registry-driven execution equals running the same configs by hand:
    /// the registry adds no hidden state on top of the deterministic engine.
    #[test]
    fn registry_run_equals_direct_run() {
        let scenario = find("fig1bc").unwrap();
        let run = scenario.run(Fidelity::Fast, 2);
        let direct = Driver::with_threads(1).run_labelled(scenario.configs(Fidelity::Fast));
        assert_eq!(run.results.len(), direct.len());
        for ((la, ra), (lb, rb)) in run.results.iter().zip(&direct) {
            assert_eq!(la, lb);
            assert_eq!(ra.short_fcts_ms(), rb.short_fcts_ms());
            assert_eq!(ra.counters, rb.counters);
        }
        // And the report is itself reproducible.
        let again = scenario.run(Fidelity::Fast, 3);
        assert_eq!(run.report.to_json(), again.report.to_json());
        assert_eq!(run.report.runs.len(), 2);
    }

    #[test]
    fn link_failure_scenario_wires_the_failure_spec() {
        for (label, cfg) in find("link-failure").unwrap().configs(Fidelity::Full) {
            let TopologySpec::FatTree(ft) = cfg.topology else {
                panic!("link-failure must use a FatTree");
            };
            if label.ends_with(" 0/1000") {
                assert!(!ft.failures.is_active());
            } else {
                assert!(ft.failures.is_active(), "{label}");
            }
        }
    }

    #[test]
    fn battle_matrix_crosses_variants_workloads_and_loads() {
        // Fast: 5 variants x 2 workloads x 2 loads x 2 seeds; full: 10 x 2 x 4
        // (the 8 transport variants plus the tcp-cubic / tcp-bbr CC cells).
        let fast = find("battle-matrix").unwrap().configs(Fidelity::Fast);
        assert_eq!(fast.len(), 5 * 2 * 2 * 2);
        let full = find("battle-matrix").unwrap().configs(Fidelity::Full);
        assert_eq!(full.len(), 10 * 2 * 4);
        // The DiffFlow variant carries the size-aware path policy; everything
        // else runs plain per-flow ECMP.
        for (label, cfg) in &fast {
            if label.starts_with("tcp+diffflow") {
                assert_eq!(cfg.path_policy, PathPolicy::diffflow_default(), "{label}");
            } else {
                assert_eq!(cfg.path_policy, PathPolicy::FlowHash, "{label}");
            }
            let WorkloadSpec::Paper(p) = &cfg.workload else {
                panic!("{label} must use the paper workload");
            };
            assert!(matches!(
                p.short_size,
                FlowSizeModel::WebSearch | FlowSizeModel::DataMining
            ));
        }
        // RepFlow and RepSYN are distinct variants at full fidelity.
        assert!(full.iter().any(|(l, c)| l.starts_with("repflow")
            && matches!(
                c.protocol,
                Protocol::RepFlow {
                    syn_only: false,
                    ..
                }
            )));
        assert!(full.iter().any(|(l, c)| l.starts_with("repsyn")
            && matches!(c.protocol, Protocol::RepFlow { syn_only: true, .. })));
        // The CC axis: tcp-cubic / tcp-bbr carry their controller, everything
        // else (fast arm included: golden-pinned) stays on the Reno default.
        assert!(
            full.iter()
                .any(|(l, c)| l.starts_with("tcp-cubic")
                    && c.transport.cc == CongestionControl::Cubic)
        );
        assert!(full
            .iter()
            .any(|(l, c)| l.starts_with("tcp-bbr") && c.transport.cc == CongestionControl::Bbr));
        for (label, cfg) in &fast {
            assert_eq!(cfg.transport.cc, CongestionControl::Reno, "{label}");
        }
    }

    /// The cc-battle scenario wires each cell's controller through
    /// `ExperimentConfig::transport` and keeps DCTCP on the ECN-responder
    /// layering over Reno.
    #[test]
    fn cc_battle_wires_the_controller_axis() {
        let configs = find("cc-battle").unwrap().configs(Fidelity::Fast);
        assert_eq!(configs.len(), 6);
        let cc_of = |name: &str| {
            configs
                .iter()
                .find(|(l, _)| l == name)
                .map(|(_, c)| c.transport.cc)
                .unwrap_or_else(|| panic!("missing cell {name}"))
        };
        assert_eq!(cc_of("tcp-reno"), CongestionControl::Reno);
        assert_eq!(cc_of("tcp-cubic"), CongestionControl::Cubic);
        assert_eq!(cc_of("tcp-bbr"), CongestionControl::Bbr);
        assert_eq!(cc_of("dctcp"), CongestionControl::Reno);
        assert_eq!(cc_of("mmptcp-8-bbr"), CongestionControl::Bbr);
        let dctcp = &configs.iter().find(|(l, _)| l == "dctcp").unwrap().1;
        assert_eq!(dctcp.protocol, Protocol::Dctcp);
        // Apart from the controller override, every cell is the plain
        // fast-fidelity Figure-1 base — cc-battle isolates the CC axis.
        let (_, tcp_reno) = configs.iter().find(|(l, _)| l == "tcp-reno").unwrap();
        assert_eq!(*tcp_reno, fast_base(Protocol::Tcp));
    }

    #[test]
    fn battle_matrix_load_sets_the_interarrival_from_the_cdf_mean() {
        // At load L the mean inter-arrival must equal mean_flow_bits / (L * 1 Gbps).
        for (label, cfg) in find("battle-matrix").unwrap().configs(Fidelity::Fast) {
            let WorkloadSpec::Paper(p) = &cfg.workload else {
                panic!("paper workload expected");
            };
            let mean_bits = p.short_size.cdf().unwrap().mean() * 8.0;
            let load: f64 = label
                .rsplit("load ")
                .next()
                .unwrap()
                .split_whitespace()
                .next()
                .unwrap()
                .parse()
                .expect("load suffix");
            let ArrivalProcess::Poisson { mean_interarrival } = p.arrivals else {
                panic!("poisson arrivals expected");
            };
            let expected_secs = mean_bits / (load * 1e9);
            let got = mean_interarrival.as_secs_f64();
            assert!(
                (got - expected_secs).abs() / expected_secs < 1e-6,
                "{label}: interarrival {got} vs expected {expected_secs}"
            );
        }
    }

    /// The hybrid stress scenario must actually exercise the fluid fast
    /// path: every rung runs the hybrid engine over bounded data-mining
    /// flows, and the top fast rung generates at least 100 000 of them.
    #[test]
    fn mega_load_sweep_is_hybrid_and_tops_100k_flows_at_fast() {
        let configs = find("mega-load-sweep").unwrap().configs(Fidelity::Fast);
        let mut biggest = 0usize;
        for (label, cfg) in &configs {
            assert_eq!(cfg.engine, Engine::hybrid_default(), "{label}");
            let WorkloadSpec::Paper(p) = &cfg.workload else {
                panic!("{label} must use the paper workload");
            };
            assert_eq!(p.long_host_millis, 0, "{label}: all flows must be bounded");
            assert_eq!(p.short_size, FlowSizeModel::DataMining, "{label}");
            let hosts = cfg.topology.build().host_count();
            assert!(label.ends_with(&format!("{} flows", p.flows_per_short_host * hosts)));
            biggest = biggest.max(p.flows_per_short_host * hosts);
        }
        assert!(
            biggest >= 100_000,
            "largest fast rung generates only {biggest} flows"
        );
        // Smallest rung first: debug-profile conformance sweeps take the
        // first config of each scenario.
        let first_flows = match &configs[0].1.workload {
            WorkloadSpec::Paper(p) => p.flows_per_short_host,
            _ => unreachable!(),
        };
        assert_eq!(first_flows, 50);
    }

    #[test]
    fn empirical_scenarios_use_the_cdf_models() {
        for (name, model) in [
            ("web-search", FlowSizeModel::WebSearch),
            ("data-mining", FlowSizeModel::DataMining),
        ] {
            for (label, cfg) in find(name).unwrap().configs(Fidelity::Fast) {
                let WorkloadSpec::Paper(p) = cfg.workload else {
                    panic!("{name}/{label} must use the paper workload");
                };
                assert_eq!(p.short_size, model, "{name}/{label}");
            }
        }
    }
}
