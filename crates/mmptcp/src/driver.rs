//! The parallel experiment driver: fan a sweep of [`ExperimentConfig`]s
//! across worker threads and merge the results deterministically.
//!
//! Every figure in the paper is an aggregate over many runs — seeds ×
//! offered loads × protocols — and each run is an independent, seeded,
//! single-threaded simulation. That makes the sweep embarrassingly parallel:
//! the [`Driver`] hands each worker thread its own isolated [`netsim::Simulator`]
//! (created inside [`crate::run`]), workers pull configurations from a shared
//! index counter, and results are written back into the slot matching the
//! configuration's position, so the output order is exactly the input order
//! no matter how the OS schedules the threads.
//!
//! The work-pulling executor is implemented on `std::thread::scope` rather
//! than rayon because the build environment is offline; the API mirrors a
//! rayon `par_iter().map().collect()` so swapping the substrate later is
//! mechanical.

use crate::config::{ExperimentConfig, Protocol, WorkloadSpec};
use crate::results::ExperimentResults;
use netsim::SimDuration;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs batches of experiments in parallel, preserving configuration order.
#[derive(Debug, Clone)]
pub struct Driver {
    threads: usize,
}

impl Default for Driver {
    fn default() -> Self {
        Driver::new()
    }
}

impl Driver {
    /// A driver using every available core.
    pub fn new() -> Self {
        Driver {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }

    /// A driver pinned to `threads` workers (minimum 1).
    pub fn with_threads(threads: usize) -> Self {
        Driver {
            threads: threads.max(1),
        }
    }

    /// Number of worker threads this driver will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run every configuration and return the results in input order.
    pub fn run(&self, configs: Vec<ExperimentConfig>) -> Vec<ExperimentResults> {
        self.run_map(configs, |_, r| r)
    }

    /// Run every labelled configuration, preserving labels and order.
    pub fn run_labelled(
        &self,
        configs: Vec<(String, ExperimentConfig)>,
    ) -> Vec<(String, ExperimentResults)> {
        let (labels, configs): (Vec<_>, Vec<_>) = configs.into_iter().unzip();
        let results = self.run(configs);
        labels.into_iter().zip(results).collect()
    }

    /// Run every configuration, post-processing each result on the worker
    /// thread with `f` (e.g. summarising so full per-flow metrics never cross
    /// threads). Results come back in input order.
    pub fn run_map<T, F>(&self, configs: Vec<ExperimentConfig>, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, ExperimentResults) -> T + Sync,
    {
        let n = configs.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(n);
        if workers == 1 {
            return configs
                .into_iter()
                .enumerate()
                .map(|(i, c)| f(i, crate::run(c)))
                .collect();
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    // Each run builds its own Simulator; nothing is shared
                    // between workers except the index counter and the
                    // result slots.
                    let result = crate::run(configs[idx].clone());
                    *slots[idx].lock().expect("result slot poisoned") = Some(f(idx, result));
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker skipped a configuration")
            })
            .collect()
    }
}

/// A declarative sweep: the cartesian product of protocols × loads × seeds
/// over one base configuration, expanded in a deterministic order
/// (protocol-major, then load, then seed).
#[derive(Debug, Clone)]
pub struct ExperimentSweep {
    base: ExperimentConfig,
    protocols: Vec<Protocol>,
    seeds: Vec<u64>,
    /// Mean inter-arrival overrides applied to Poisson paper workloads;
    /// empty means "keep the base workload's load".
    loads: Vec<SimDuration>,
}

impl ExperimentSweep {
    /// Sweep over one base configuration.
    pub fn new(base: ExperimentConfig) -> Self {
        ExperimentSweep {
            base,
            protocols: Vec::new(),
            seeds: Vec::new(),
            loads: Vec::new(),
        }
    }

    /// Add protocols to the sweep (default: the base configuration's).
    pub fn protocols(mut self, protocols: impl IntoIterator<Item = Protocol>) -> Self {
        self.protocols.extend(protocols);
        self
    }

    /// Add seeds to the sweep (default: the base configuration's).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds.extend(seeds);
        self
    }

    /// Add offered-load points, expressed as the mean inter-arrival time of
    /// the Poisson short-flow arrival process (smaller = heavier).
    pub fn loads(mut self, loads: impl IntoIterator<Item = SimDuration>) -> Self {
        self.loads.extend(loads);
        self
    }

    /// Expand into labelled configurations, protocol-major then load then
    /// seed, so merged results line up with the nested-loop order a serial
    /// harness would produce.
    ///
    /// Load points only apply to [`WorkloadSpec::Paper`] workloads (they
    /// rewrite the Poisson inter-arrival time); for any other workload they
    /// are ignored rather than expanded into duplicate runs with misleading
    /// labels.
    pub fn configs(&self) -> Vec<(String, ExperimentConfig)> {
        let protocols = if self.protocols.is_empty() {
            vec![self.base.protocol]
        } else {
            self.protocols.clone()
        };
        let seeds = if self.seeds.is_empty() {
            vec![self.base.seed]
        } else {
            self.seeds.clone()
        };
        let load_points: Vec<Option<SimDuration>> =
            if self.loads.is_empty() || !matches!(self.base.workload, WorkloadSpec::Paper(_)) {
                vec![None]
            } else {
                self.loads.iter().copied().map(Some).collect()
            };
        let mut out = Vec::with_capacity(protocols.len() * seeds.len() * load_points.len());
        for protocol in &protocols {
            for &load in &load_points {
                for &seed in &seeds {
                    let mut config = self.base.clone();
                    config.protocol = *protocol;
                    config.seed = seed;
                    let label = match load {
                        Some(ia) => {
                            let WorkloadSpec::Paper(p) = &mut config.workload else {
                                unreachable!("load points are gated on Paper workloads above");
                            };
                            p.arrivals = workload::ArrivalProcess::Poisson {
                                mean_interarrival: ia,
                            };
                            format!("{} ia={}us seed={}", protocol.name(), ia.as_micros(), seed)
                        }
                        None => format!("{} seed={}", protocol.name(), seed),
                    };
                    out.push((label, config));
                }
            }
        }
        out
    }

    /// Expand and run the sweep on `driver`.
    pub fn run(&self, driver: &Driver) -> Vec<(String, ExperimentResults)> {
        driver.run_labelled(self.configs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TopologySpec;
    use netsim::{Addr, SimTime};
    use topology::ParallelPathConfig;
    use workload::{FlowClass, FlowSpec};

    fn tiny(seed: u64) -> ExperimentConfig {
        ExperimentConfig {
            topology: TopologySpec::Parallel(ParallelPathConfig::default()),
            workload: WorkloadSpec::Custom(vec![FlowSpec {
                id: 0,
                src: Addr(0),
                dst: Addr(1),
                size: Some(30_000),
                start: SimTime::from_millis(1),
                class: FlowClass::Short,
                deadline: None,
            }]),
            protocol: Protocol::Tcp,
            seed,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn results_come_back_in_config_order() {
        let configs: Vec<ExperimentConfig> = (1..=8).map(tiny).collect();
        let results = Driver::with_threads(4).run(configs);
        assert_eq!(results.len(), 8);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.seed, (i + 1) as u64);
            assert!(r.all_short_completed);
        }
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let configs: Vec<ExperimentConfig> = (1..=6).map(tiny).collect();
        let serial = Driver::with_threads(1).run(configs.clone());
        let parallel = Driver::with_threads(4).run(configs);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.short_fcts_ms(), b.short_fcts_ms());
            assert_eq!(a.counters, b.counters);
            assert_eq!(a.loss, b.loss);
        }
    }

    #[test]
    fn run_map_postprocesses_on_workers() {
        let configs: Vec<ExperimentConfig> = (1..=4).map(tiny).collect();
        let means =
            Driver::with_threads(2).run_map(configs, |i, r| (i, r.short_fct_summary().mean));
        assert_eq!(means.len(), 4);
        for (i, (idx, mean)) in means.iter().enumerate() {
            assert_eq!(i, *idx);
            assert!(*mean > 0.0);
        }
    }

    #[test]
    fn sweep_expansion_is_protocol_major_and_deterministic() {
        let sweep = ExperimentSweep::new(tiny(1))
            .protocols([Protocol::Tcp, Protocol::mptcp8()])
            .seeds([1, 2, 3]);
        let configs = sweep.configs();
        assert_eq!(configs.len(), 6);
        assert_eq!(configs[0].0, "tcp seed=1");
        assert_eq!(configs[2].0, "tcp seed=3");
        assert_eq!(configs[3].0, "mptcp-8 seed=1");
        assert_eq!(sweep.configs(), configs, "expansion must be deterministic");
    }

    #[test]
    fn sweep_load_points_are_ignored_for_non_paper_workloads() {
        // A Custom workload has no arrival process to rewrite: load points
        // must not fan out into duplicate runs with misleading labels.
        let sweep = ExperimentSweep::new(tiny(1))
            .loads([SimDuration::from_millis(10), SimDuration::from_millis(20)]);
        let configs = sweep.configs();
        assert_eq!(configs.len(), 1);
        assert_eq!(configs[0].0, "tcp seed=1");
    }

    #[test]
    fn sweep_load_points_rewrite_paper_workloads() {
        let base = ExperimentConfig {
            seed: 5,
            ..ExperimentConfig::default()
        };
        let sweep = ExperimentSweep::new(base)
            .loads([SimDuration::from_millis(10), SimDuration::from_millis(20)]);
        let configs = sweep.configs();
        assert_eq!(configs.len(), 2);
        for ((label, config), expect_us) in configs.iter().zip([10_000u64, 20_000]) {
            assert!(
                label.contains(&format!("ia={expect_us}us")),
                "label {label}"
            );
            match &config.workload {
                WorkloadSpec::Paper(p) => match p.arrivals {
                    workload::ArrivalProcess::Poisson { mean_interarrival } => {
                        assert_eq!(mean_interarrival.as_micros(), expect_us);
                    }
                    _ => panic!("expected Poisson arrivals"),
                },
                _ => panic!("expected paper workload"),
            }
        }
    }
}
