//! Small copyable identifier newtypes used throughout the simulator.
//!
//! All identifiers are dense indices handed out by the [`crate::network::Network`]
//! builder, so they can be used to index the corresponding vectors directly.

use core::fmt;
use serde::{Deserialize, Serialize};

/// Identifier of a node (host or switch) in the network graph.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

/// Identifier of a unidirectional link (channel) in the network graph.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct LinkId(pub u32);

/// Identifier of a transport-level flow (one connection; all of its subflows
/// share the same `FlowId`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct FlowId(pub u64);

/// Network-layer address of a host. In this simulator addresses are dense
/// host indices; topology builders may additionally expose a structured
/// (pod, edge, host) view of the same value (FatTree addressing).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Addr(pub u32);

impl NodeId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Addr {
    /// The underlying host index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl FlowId {
    /// The underlying integer value.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn ids_are_usable_as_map_keys() {
        let mut m = HashMap::new();
        m.insert(FlowId(7), "seven");
        assert_eq!(m[&FlowId(7)], "seven");
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(LinkId(4).to_string(), "l4");
        assert_eq!(FlowId(5).to_string(), "f5");
        assert_eq!(Addr(6).to_string(), "h6");
    }

    #[test]
    fn index_accessors() {
        assert_eq!(NodeId(9).index(), 9);
        assert_eq!(LinkId(9).index(), 9);
        assert_eq!(Addr(9).index(), 9);
        assert_eq!(FlowId(9).value(), 9);
    }
}
