//! Simulated time primitives.
//!
//! Simulation time is measured in integer nanoseconds since the start of the
//! experiment. Using an integer representation keeps the simulator fully
//! deterministic (no floating-point accumulation error) and makes ordering of
//! events exact.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// A point in simulated time, in nanoseconds since the start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant. Used as a sentinel for "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Rounds to the nearest nanosecond.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0, "negative simulation time");
        SimTime((s * 1e9).round() as u64)
    }

    /// Raw nanosecond value.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Value in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Value in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Value in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`. Saturates at zero if `earlier` is later.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration. Used as a sentinel for "infinite".
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Rounds to the nearest nanosecond.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0, "negative duration");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanosecond value.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Value in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Value in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Value in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Is this the zero duration?
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by an integer factor, saturating.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scale by a float factor (used by RTO backoff / RTT smoothing helpers).
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(k >= 0.0, "negative scale factor");
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Time needed to serialise `bytes` bytes onto a link of `rate_bps` bits/s.
    ///
    /// This is the canonical transmission-delay computation used by the link
    /// model; exposing it here keeps tests and analytic checks consistent.
    pub fn transmission(bytes: u64, rate_bps: u64) -> SimDuration {
        assert!(rate_bps > 0, "link rate must be positive");
        // bits * 1e9 / rate, computed in u128 to avoid overflow for large payloads.
        let bits = (bytes as u128) * 8;
        let ns = bits * 1_000_000_000u128 / rate_bps as u128;
        SimDuration(ns as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        let d = t - SimTime::from_millis(10);
        assert_eq!(d.as_millis(), 5);
        // Saturating subtraction never goes negative.
        let d2 = SimTime::from_millis(1) - SimTime::from_millis(10);
        assert_eq!(d2, SimDuration::ZERO);
    }

    #[test]
    fn float_conversion() {
        let t = SimTime::from_secs_f64(0.5);
        assert_eq!(t.as_millis(), 500);
        assert!((t.as_secs_f64() - 0.5).abs() < 1e-12);
        let d = SimDuration::from_secs_f64(1.25);
        assert_eq!(d.as_millis(), 1250);
    }

    #[test]
    fn transmission_delay() {
        // 1500 bytes at 1 Gbps = 12 microseconds.
        let d = SimDuration::transmission(1500, 1_000_000_000);
        assert_eq!(d.as_nanos(), 12_000);
        // 1 byte at 8 bps = 1 second.
        let d = SimDuration::transmission(1, 8);
        assert_eq!(d.as_secs_f64(), 1.0);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_f64(2.5).as_millis(), 25);
        assert_eq!((d * 3).as_millis(), 30);
        assert_eq!((d / 2).as_millis(), 5);
        assert_eq!(d.saturating_mul(u64::MAX), SimDuration::MAX);
    }

    #[test]
    fn min_max() {
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(10)), "10ns");
        assert_eq!(format!("{}", SimDuration::from_micros(10)), "10.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(10)), "10.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(10)), "10.000s");
    }
}
