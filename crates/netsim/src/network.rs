//! The static network graph: nodes plus unidirectional links.
//!
//! Topology builders (FatTree, VL2, dumbbell, …) live in the `topology` crate
//! and use this builder API; the simulator only ever sees the finished graph.

use crate::host::Host;
use crate::ids::{Addr, LinkId, NodeId};
use crate::link::{Link, LinkConfig};
use crate::node::Node;
use crate::switch::{Switch, SwitchLayer};

/// The network graph.
#[derive(Debug, Default)]
pub struct Network {
    nodes: Vec<Node>,
    links: Vec<Link>,
    hosts: Vec<NodeId>,
    salt_counter: u64,
}

impl Network {
    /// Create an empty network.
    pub fn new() -> Self {
        Network::default()
    }

    fn next_salt(&mut self) -> u64 {
        self.salt_counter += 1;
        crate::ecmp::mix64(self.salt_counter)
    }

    /// Add a host. Hosts receive dense addresses in creation order.
    pub fn add_host(&mut self) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let addr = Addr(self.hosts.len() as u32);
        let salt = self.next_salt();
        self.nodes.push(Node::Host(Host::new(id, addr, salt)));
        self.hosts.push(id);
        id
    }

    /// Add a switch at the given fabric layer. The routing table is sized
    /// lazily when routes are installed; `expected_hosts` sizes it up front.
    pub fn add_switch(&mut self, layer: SwitchLayer, expected_hosts: usize) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let salt = self.next_salt();
        self.nodes
            .push(Node::Switch(Switch::new(id, layer, expected_hosts, salt)));
        id
    }

    /// Add a unidirectional link from `from` to `to`.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, config: LinkConfig) -> LinkId {
        assert!(from.index() < self.nodes.len(), "unknown 'from' node");
        assert!(to.index() < self.nodes.len(), "unknown 'to' node");
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link::new(id, from, to, config));
        // If the source is a host, record the uplink so the host knows its NIC.
        if let Node::Host(h) = &mut self.nodes[from.index()] {
            h.attach_uplink(id);
        }
        id
    }

    /// Add a full-duplex link (two unidirectional links). Returns
    /// `(a_to_b, b_to_a)`.
    pub fn add_duplex_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        config: LinkConfig,
    ) -> (LinkId, LinkId) {
        let ab = self.add_link(a, b, config);
        let ba = self.add_link(b, a, config);
        (ab, ba)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links (unidirectional).
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Node ids of all hosts, in address order.
    pub fn hosts(&self) -> &[NodeId] {
        &self.hosts
    }

    /// The node id of the host with address `addr`.
    pub fn host_node(&self, addr: Addr) -> NodeId {
        self.hosts[addr.index()]
    }

    /// The address of the host at node `id`. Panics if `id` is not a host.
    pub fn host_addr(&self, id: NodeId) -> Addr {
        self.nodes[id.index()]
            .as_host()
            .expect("node is not a host")
            .addr
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutably borrow a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Borrow a link.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Mutably borrow a link.
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.index()]
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// All links, mutably (e.g. for settling batched-drain ledgers before
    /// reading statistics).
    pub fn links_mut(&mut self) -> &mut [Link] {
        &mut self.links
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Mutable access to the parallel node and link arrays at once. The
    /// simulator needs this to hand a node's output to a link without cloning.
    pub fn split_mut(&mut self) -> (&mut [Node], &mut [Link]) {
        (&mut self.nodes, &mut self.links)
    }

    /// Convenience for builders: mutably borrow a switch, panicking with a
    /// clear message if the node is not one.
    pub fn switch_mut(&mut self, id: NodeId) -> &mut Switch {
        self.nodes[id.index()]
            .as_switch_mut()
            .expect("node is not a switch")
    }

    /// Convenience: mutably borrow a host, panicking if the node is not one.
    pub fn host_mut(&mut self, id: NodeId) -> &mut Host {
        self.nodes[id.index()]
            .as_host_mut()
            .expect("node is not a host")
    }

    /// Outgoing links of a node (linear scan; intended for topology
    /// construction and tests, not the forwarding fast path).
    pub fn outgoing_links(&self, id: NodeId) -> Vec<LinkId> {
        self.links
            .iter()
            .filter(|l| l.from == id)
            .map(|l| l.id)
            .collect()
    }

    /// Mutable iterator over every switch, e.g. for installing a fabric-wide
    /// [`crate::switch::PathPolicy`] after the topology is built.
    pub fn switches_mut(&mut self) -> impl Iterator<Item = &mut Switch> {
        self.nodes.iter_mut().filter_map(|n| n.as_switch_mut())
    }

    /// The list of switch node ids at a given layer.
    pub fn switches_at(&self, layer: SwitchLayer) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter_map(|n| n.as_switch())
            .filter(|s| s.layer == layer)
            .map(|s| s.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_a_small_graph() {
        let mut net = Network::new();
        let h0 = net.add_host();
        let h1 = net.add_host();
        let sw = net.add_switch(SwitchLayer::Edge, 2);
        net.add_duplex_link(h0, sw, LinkConfig::default());
        net.add_duplex_link(h1, sw, LinkConfig::default());

        assert_eq!(net.node_count(), 3);
        assert_eq!(net.link_count(), 4);
        assert_eq!(net.host_count(), 2);
        assert_eq!(net.host_addr(h0), Addr(0));
        assert_eq!(net.host_addr(h1), Addr(1));
        assert_eq!(net.host_node(Addr(1)), h1);
        assert_eq!(net.switches_at(SwitchLayer::Edge), vec![sw]);
        assert_eq!(net.switches_at(SwitchLayer::Core), Vec::<NodeId>::new());

        // Hosts learned their uplinks automatically.
        let host0 = net.node(h0).as_host().unwrap();
        assert_eq!(host0.uplinks.len(), 1);
        assert_eq!(net.link(host0.uplinks[0]).to, sw);

        // Switch has two outgoing (downlink) links.
        assert_eq!(net.outgoing_links(sw).len(), 2);
    }

    #[test]
    fn per_node_salts_differ() {
        let mut net = Network::new();
        let a = net.add_switch(SwitchLayer::Core, 1);
        let b = net.add_switch(SwitchLayer::Core, 1);
        let sa = net.node(a).as_switch().unwrap().ecmp_salt;
        let sb = net.node(b).as_switch().unwrap().ecmp_salt;
        assert_ne!(sa, sb);
    }

    #[test]
    #[should_panic(expected = "unknown 'to' node")]
    fn linking_unknown_node_panics() {
        let mut net = Network::new();
        let a = net.add_host();
        net.add_link(a, NodeId(99), LinkConfig::default());
    }
}
