//! Unidirectional point-to-point links.
//!
//! A link models a single transmission direction between two nodes: a
//! serialisation stage (rate-limited by the link bandwidth, one packet at a
//! time), a drop-tail output queue feeding the transmitter, and a fixed
//! propagation delay. Full-duplex cables are modelled as two independent
//! links created in opposite directions by the topology builders.
//!
//! ## Batched drain
//!
//! When the transmitter frees up it commits up to [`LinkConfig::drain_batch`]
//! queued packets to the wire in one call, computing their back-to-back
//! serialisation windows, so the engine schedules one `TransmitComplete`
//! event per *burst* instead of per packet. Physics are preserved: a
//! committed packet still occupies the queue (for drop, ECN and depth
//! accounting) and stays out of the link counters until the simulated
//! instant its serialisation would have started, tracked by the `committed`
//! ledger, and its delivery time is identical to the packet-at-a-time
//! schedule. (The one degenerate exception — observations landing at exactly
//! a later burst packet's serialisation-start instant — is documented on the
//! private `Link::prune_committed`.)

use crate::ids::{LinkId, NodeId};
use crate::packet::Packet;
use crate::queue::{DropTailQueue, EnqueueOutcome, QueueConfig, QueueStats};
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration of one link direction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Bandwidth in bits per second.
    pub rate_bps: u64,
    /// Propagation delay.
    pub delay: SimDuration,
    /// Output queue configuration.
    pub queue: QueueConfig,
    /// Maximum number of queued packets committed to the wire per
    /// `TransmitComplete` dispatch. 1 reproduces the packet-at-a-time engine
    /// event-for-event; larger values cut calendar traffic on busy links
    /// without changing transmission or delivery times.
    pub drain_batch: usize,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            // 1 Gbps access links were the norm in 2015-era data-centre studies.
            rate_bps: 1_000_000_000,
            delay: SimDuration::from_micros(25),
            queue: QueueConfig::default(),
            drain_batch: 8,
        }
    }
}

/// Counters maintained per link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Packets fully transmitted onto the wire.
    pub tx_packets: u64,
    /// Wire bytes fully transmitted.
    pub tx_bytes: u64,
    /// Time the transmitter has spent busy, in nanoseconds (for utilisation).
    pub busy_ns: u64,
}

/// A cumulative telemetry snapshot of one link, taken by the flight-recorder
/// trace pipeline at a fixed cadence. Counters are cumulative since the start
/// of the run; the trace sink differences consecutive snapshots to produce
/// per-sample-window series (bytes carried, drops, ECN marks, utilisation),
/// while `queue_depth_packets` is the instantaneous occupancy at the sample
/// instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkTelemetry {
    /// Instantaneous queue depth in packets (committed-burst packets whose
    /// serialisation has not started yet still count, exactly as they do for
    /// drop and ECN decisions).
    pub queue_depth_packets: usize,
    /// Cumulative packets fully transmitted onto the wire.
    pub tx_packets: u64,
    /// Cumulative wire bytes transmitted.
    pub tx_bytes: u64,
    /// Cumulative transmitter busy time in nanoseconds.
    pub busy_ns: u64,
    /// Cumulative packets dropped by the output queue.
    pub dropped: u64,
    /// Cumulative ECN marks applied by the output queue.
    pub ecn_marked: u64,
}

/// One unidirectional link.
#[derive(Debug, Clone)]
pub struct Link {
    /// This link's id.
    pub id: LinkId,
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Static configuration.
    pub config: LinkConfig,
    queue: DropTailQueue,
    /// Whether the transmitter is currently serialising a packet (or a
    /// committed burst of packets).
    transmitting: bool,
    /// Packets dequeued as part of a burst whose serialisation has not
    /// started yet at the current simulated time: `(serialisation start, wire
    /// bytes, serialisation nanoseconds)`. They still count towards queue
    /// occupancy — and their transmission is not yet added to [`LinkStats`] —
    /// until their start time passes.
    committed: VecDeque<(SimTime, u64, u64)>,
    committed_bytes: u64,
    /// Bits per second currently reserved for fluid-mode flows crossing
    /// this link (see [`crate::fluid`]). Packet serialisation runs at the
    /// configured rate minus this reservation, so packet- and fluid-mode
    /// traffic contend for the same capacity. Zero (the default) leaves the
    /// packet path byte-identical to a build without the fluid engine.
    fluid_reserved_bps: u64,
    stats: LinkStats,
}

/// What the caller of [`Link::offer`] / [`Link::on_transmit_complete`] must do
/// next: if a transmission was started, schedule the corresponding
/// `TransmitComplete` and `Delivery` events.
#[derive(Debug, Clone, PartialEq)]
pub struct StartedTransmission {
    /// The packet that was put on the wire.
    pub packet: Packet,
    /// When serialisation finishes. For a burst, schedule one
    /// `TransmitComplete` at the *last* packet's time.
    pub transmit_done_at: SimTime,
    /// When the packet arrives at `to` (schedule `Delivery` then).
    pub delivered_at: SimTime,
}

impl Link {
    /// Create a link.
    pub fn new(id: LinkId, from: NodeId, to: NodeId, config: LinkConfig) -> Self {
        Link {
            id,
            from,
            to,
            config,
            queue: DropTailQueue::new(config.queue),
            transmitting: false,
            committed: VecDeque::new(),
            committed_bytes: 0,
            fluid_reserved_bps: 0,
            stats: LinkStats::default(),
        }
    }

    /// Install the fluid-mode capacity reservation in bits per second.
    /// Subsequent packet transmissions serialise at the configured rate
    /// minus the reservation (floored at 10 % of the rate so packet-mode
    /// control traffic always makes progress). In-progress transmissions
    /// keep the timings computed when they started.
    pub fn set_fluid_reservation(&mut self, bps: u64) {
        self.fluid_reserved_bps = bps;
    }

    /// The currently installed fluid reservation in bits per second.
    pub fn fluid_reservation(&self) -> u64 {
        self.fluid_reserved_bps
    }

    /// The serialisation rate packet transmissions currently see.
    fn effective_rate_bps(&self) -> u64 {
        if self.fluid_reserved_bps == 0 {
            self.config.rate_bps
        } else {
            let floor = (self.config.rate_bps / 10).max(1);
            self.config
                .rate_bps
                .saturating_sub(self.fluid_reserved_bps)
                .max(floor)
        }
    }

    /// Drop committed-ledger entries whose serialisation has started by
    /// `now`: those packets have physically left the queue, so they stop
    /// counting towards occupancy and start counting in [`LinkStats`] — the
    /// same instant the packet-at-a-time engine dequeues and counts them.
    ///
    /// Boundary convention: at exactly `now == start` the slot is treated as
    /// freed (as if the serialisation-start event had already processed).
    /// The packet-at-a-time engine's behaviour at that degenerate instant
    /// depends on the calendar seq order of the phantom `TransmitComplete`
    /// versus the observing event, so no fixed convention can match it in
    /// every tie; within one engine configuration the choice is applied
    /// consistently and runs stay deterministic.
    fn prune_committed(&mut self, now: SimTime) {
        while let Some(&(start, bytes, tx_ns)) = self.committed.front() {
            if start > now {
                break;
            }
            self.committed.pop_front();
            self.committed_bytes -= bytes;
            self.count_transmission(bytes, tx_ns);
        }
    }

    /// Account one packet's transmission in the link counters.
    fn count_transmission(&mut self, wire_bytes: u64, tx_ns: u64) {
        self.stats.tx_packets += 1;
        self.stats.tx_bytes += wire_bytes;
        self.stats.busy_ns += tx_ns;
    }

    /// Offer a packet for transmission at time `now`.
    ///
    /// Returns `Ok(Some(tx))` if the transmitter was idle and the packet went
    /// straight onto the wire, `Ok(None)` if it was queued behind others, and
    /// `Err(outcome)` if the queue dropped it.
    pub fn offer(
        &mut self,
        now: SimTime,
        packet: Packet,
    ) -> Result<Option<StartedTransmission>, EnqueueOutcome> {
        self.prune_committed(now);
        let outcome =
            self.queue
                .enqueue_with_extra(packet, self.committed.len(), self.committed_bytes);
        match outcome {
            EnqueueOutcome::Dropped => Err(EnqueueOutcome::Dropped),
            EnqueueOutcome::Queued | EnqueueOutcome::QueuedMarked => {
                if self.transmitting {
                    Ok(None)
                } else {
                    Ok(self.start_one(now))
                }
            }
        }
    }

    /// Notify the link that the burst it previously started has finished
    /// serialising; it commits the next burst of queued packets (if any) into
    /// `out`. The caller schedules one `Delivery` per entry and a single
    /// `TransmitComplete` at the last entry's `transmit_done_at`.
    pub fn on_transmit_complete(&mut self, now: SimTime, out: &mut Vec<StartedTransmission>) {
        // Every packet of the finished burst started serialising at or
        // before `now` (the burst's last transmit-done time), so this flushes
        // the whole ledger, counting any still-pending transmissions.
        self.prune_committed(now);
        debug_assert!(self.committed.is_empty());
        self.transmitting = false;

        let batch = self.config.drain_batch.max(1);
        let mut start_at = now;
        while out.len() < batch {
            let Some(tx) = self.transmit(start_at) else {
                break;
            };
            let wire = tx.packet.wire_bytes() as u64;
            let tx_ns = (tx.transmit_done_at - start_at).as_nanos();
            if start_at > now {
                // Serialisation starts in the future: the packet keeps its
                // queue slot (for drop/ECN/depth accounting) and its
                // transmission is not counted until then.
                self.committed.push_back((start_at, wire, tx_ns));
                self.committed_bytes += wire;
            } else {
                self.count_transmission(wire, tx_ns);
            }
            start_at = tx.transmit_done_at;
            out.push(tx);
        }
        self.transmitting = !out.is_empty();
    }

    /// Dequeue one packet and compute its wire timings from `start_at`.
    /// Counters are the caller's responsibility (they accrue when the
    /// serialisation actually starts, which for later burst packets is in
    /// the future).
    fn transmit(&mut self, start_at: SimTime) -> Option<StartedTransmission> {
        let packet = self.queue.dequeue()?;
        let wire = packet.wire_bytes() as u64;
        let tx_time = SimDuration::transmission(wire, self.effective_rate_bps());
        let transmit_done_at = start_at + tx_time;
        let delivered_at = transmit_done_at + self.config.delay;
        Some(StartedTransmission {
            packet,
            transmit_done_at,
            delivered_at,
        })
    }

    /// Start transmitting a single packet on an idle transmitter.
    fn start_one(&mut self, now: SimTime) -> Option<StartedTransmission> {
        debug_assert!(!self.transmitting && self.committed.is_empty());
        let tx = self.transmit(now)?;
        let wire = tx.packet.wire_bytes() as u64;
        self.count_transmission(wire, (tx.transmit_done_at - now).as_nanos());
        self.transmitting = true;
        Some(tx)
    }

    /// Settle the committed-burst ledger up to `now`: count transmissions
    /// whose serialisation has started in [`LinkStats`] and release their
    /// queue slots. The engine calls this before statistics are read (the
    /// ledger is otherwise only pruned by traffic on this link), so
    /// mid-burst measurement reads match the packet-at-a-time engine.
    pub fn settle(&mut self, now: SimTime) {
        self.prune_committed(now);
    }

    /// Current queue depth in packets at time `now`, excluding packets whose
    /// serialisation has begun.
    pub fn queue_len_at(&self, now: SimTime) -> usize {
        let pending = self
            .committed
            .iter()
            .filter(|&&(start, _, _)| start > now)
            .count();
        self.queue.len() + pending
    }

    /// Current queue depth in packets (excluding the packet on the wire, but
    /// including batch-committed packets that have not started serialising).
    pub fn queue_len(&self) -> usize {
        self.queue.len() + self.committed.len()
    }

    /// Packets accepted into the queue whose transmission has not been
    /// committed to the wire yet. Unlike [`Link::queue_len`], committed-burst
    /// packets are excluded: those already have `Delivery` events scheduled
    /// (they live in the engine's packet arena), so this is exactly the
    /// "enqueued but not yet in flight" term of the engine's packet
    /// conservation law.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Queue counters.
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Flight-recorder telemetry snapshot at time `now`. Read-only: callers
    /// that want the committed-burst ledger settled first (so `busy_ns` and
    /// `tx_*` reflect exactly the transmissions started by `now`) should call
    /// [`Link::settle`] beforehand, as the experiment loop does.
    pub fn telemetry(&self, now: SimTime) -> LinkTelemetry {
        let q = self.queue.stats();
        LinkTelemetry {
            queue_depth_packets: self.queue_len_at(now),
            tx_packets: self.stats.tx_packets,
            tx_bytes: self.stats.tx_bytes,
            busy_ns: self.stats.busy_ns,
            dropped: q.dropped,
            ecn_marked: q.ecn_marked,
        }
    }

    /// Link counters.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Utilisation of this link over `elapsed` time: fraction of time the
    /// transmitter was busy, in `[0, 1]`.
    pub fn utilisation(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        (self.stats.busy_ns as f64 / elapsed.as_nanos() as f64).min(1.0)
    }

    /// Is the transmitter currently busy?
    pub fn is_transmitting(&self) -> bool {
        self.transmitting
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Addr, FlowId};

    fn cfg() -> LinkConfig {
        LinkConfig {
            rate_bps: 1_000_000_000, // 1 Gbps
            delay: SimDuration::from_micros(10),
            queue: QueueConfig {
                limit_packets: 2,
                ..QueueConfig::default()
            },
            ..LinkConfig::default()
        }
    }

    fn pkt(seq: u64) -> Packet {
        Packet::data(
            Addr(0),
            Addr(1),
            50_000,
            80,
            FlowId(1),
            0,
            seq,
            seq,
            1446, // 1446 + 54 header = 1500 wire bytes -> 12 us at 1 Gbps
            SimTime::ZERO,
        )
    }

    fn complete(link: &mut Link, now: SimTime) -> Vec<StartedTransmission> {
        let mut out = Vec::new();
        link.on_transmit_complete(now, &mut out);
        out
    }

    #[test]
    fn idle_link_transmits_immediately() {
        let mut link = Link::new(LinkId(0), NodeId(0), NodeId(1), cfg());
        let now = SimTime::from_millis(1);
        let tx = link.offer(now, pkt(0)).unwrap().unwrap();
        assert_eq!(tx.transmit_done_at, now + SimDuration::from_micros(12));
        assert_eq!(
            tx.delivered_at,
            now + SimDuration::from_micros(12) + SimDuration::from_micros(10)
        );
        assert!(link.is_transmitting());
        assert_eq!(link.queue_len(), 0);
    }

    #[test]
    fn busy_link_queues_and_resumes() {
        let mut link = Link::new(LinkId(0), NodeId(0), NodeId(1), cfg());
        let now = SimTime::ZERO;
        let first = link.offer(now, pkt(0)).unwrap();
        assert!(first.is_some());
        // Transmitter busy: next packet only queues.
        assert!(link.offer(now, pkt(1)).unwrap().is_none());
        assert_eq!(link.queue_len(), 1);
        // When the first transmission completes, the queued packet starts.
        let done = first.unwrap().transmit_done_at;
        let second = complete(&mut link, done);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].packet.seq, 1);
        assert_eq!(
            second[0].transmit_done_at,
            done + SimDuration::from_micros(12)
        );
    }

    #[test]
    fn queue_overflow_drops() {
        let mut link = Link::new(LinkId(0), NodeId(0), NodeId(1), cfg());
        let now = SimTime::ZERO;
        link.offer(now, pkt(0)).unwrap(); // on the wire
        link.offer(now, pkt(1)).unwrap(); // queued
        link.offer(now, pkt(2)).unwrap(); // queued (limit 2)
        let dropped = link.offer(now, pkt(3));
        assert!(dropped.is_err());
        assert_eq!(link.queue_stats().dropped, 1);
    }

    #[test]
    fn transmit_complete_with_empty_queue_goes_idle() {
        let mut link = Link::new(LinkId(0), NodeId(0), NodeId(1), cfg());
        let tx = link.offer(SimTime::ZERO, pkt(0)).unwrap().unwrap();
        assert!(complete(&mut link, tx.transmit_done_at).is_empty());
        assert!(!link.is_transmitting());
    }

    #[test]
    fn utilisation_accounts_busy_time() {
        let mut link = Link::new(LinkId(0), NodeId(0), NodeId(1), cfg());
        let tx = link.offer(SimTime::ZERO, pkt(0)).unwrap().unwrap();
        complete(&mut link, tx.transmit_done_at);
        // One 12 us transmission in 24 us of elapsed time = 50 %.
        let u = link.utilisation(SimDuration::from_micros(24));
        assert!((u - 0.5).abs() < 1e-9, "utilisation {u}");
        assert_eq!(link.stats().tx_packets, 1);
        assert_eq!(link.stats().tx_bytes, 1500);
    }

    #[test]
    fn burst_is_committed_back_to_back() {
        let mut link = Link::new(
            LinkId(0),
            NodeId(0),
            NodeId(1),
            LinkConfig {
                queue: QueueConfig::default(),
                ..cfg()
            },
        );
        let now = SimTime::ZERO;
        let first = link.offer(now, pkt(0)).unwrap().unwrap();
        for i in 1..=4 {
            assert!(link.offer(now, pkt(i)).unwrap().is_none());
        }
        let burst = complete(&mut link, first.transmit_done_at);
        assert_eq!(burst.len(), 4, "whole backlog fits in one batch");
        let tx_us = 12u64;
        for (i, tx) in burst.iter().enumerate() {
            assert_eq!(tx.packet.seq, (i + 1) as u64);
            // Each packet's serialisation finishes one slot after the previous.
            assert_eq!(
                tx.transmit_done_at,
                first.transmit_done_at + SimDuration::from_micros(tx_us * (i as u64 + 1))
            );
            assert_eq!(tx.delivered_at, tx.transmit_done_at + link.config.delay);
        }
        assert!(link.is_transmitting());
        assert_eq!(link.queue_stats().dropped, 0);
    }

    #[test]
    fn committed_packets_still_occupy_the_queue() {
        // limit_packets = 2. One packet on the wire, two queued, then the
        // wire frees and the batch commits both queued packets. Until their
        // serialisation start times pass, new arrivals must still see a full
        // queue and be dropped — exactly as the packet-at-a-time engine
        // would.
        let mut link = Link::new(LinkId(0), NodeId(0), NodeId(1), cfg());
        let now = SimTime::ZERO;
        let first = link.offer(now, pkt(0)).unwrap().unwrap();
        link.offer(now, pkt(1)).unwrap();
        link.offer(now, pkt(2)).unwrap();
        let t1 = first.transmit_done_at; // pkt(1) starts serialising here
        let burst = complete(&mut link, t1);
        assert_eq!(burst.len(), 2);
        let t2 = burst[0].transmit_done_at; // pkt(2) starts serialising here

        // At t1, pkt(2) has not started: queue still holds one "slot".
        assert_eq!(link.queue_len_at(t1), 1);
        // An arrival at t1 sees depth 1 < limit 2 and is accepted.
        assert!(link.offer(t1, pkt(3)).unwrap().is_none());
        // Now the queue holds pkt(3) plus committed pkt(2): full again.
        assert!(link.offer(t1, pkt(4)).is_err());
        // Once pkt(2)'s serialisation starts, one slot frees up.
        assert!(link.offer(t2, pkt(5)).unwrap().is_none());
        assert_eq!(link.queue_stats().dropped, 1);
    }

    #[test]
    fn stats_accrue_at_serialisation_start_not_commit() {
        // A committed burst must not count transmissions whose serialisation
        // lies in the future, so truncated runs report the same LinkStats as
        // the packet-at-a-time engine.
        let config = LinkConfig {
            queue: QueueConfig::default(),
            ..cfg()
        };
        let mut link = Link::new(LinkId(0), NodeId(0), NodeId(1), config);
        let now = SimTime::ZERO;
        let first = link.offer(now, pkt(0)).unwrap().unwrap();
        for i in 1..=3 {
            link.offer(now, pkt(i)).unwrap();
        }
        assert_eq!(link.stats().tx_packets, 1, "only the wire packet counts");
        let t1 = first.transmit_done_at;
        let burst = complete(&mut link, t1);
        assert_eq!(burst.len(), 3);
        // Burst packet 0 starts at t1; packets 1 and 2 start later.
        assert_eq!(link.stats().tx_packets, 2);
        assert_eq!(link.stats().busy_ns, 2 * 12_000);
        // Once packet 1's start passes (observed via an offer), it counts.
        let t2 = burst[0].transmit_done_at;
        link.offer(t2, pkt(9)).unwrap();
        assert_eq!(link.stats().tx_packets, 3);
        // The burst-ending TransmitComplete flushes the rest.
        let end = burst.last().unwrap().transmit_done_at;
        complete(&mut link, end);
        assert_eq!(link.stats().tx_packets, 5, "4 burst-era packets + pkt(9)");
        assert_eq!(link.stats().tx_bytes, 5 * 1500);
    }

    #[test]
    fn fluid_reservation_slows_packet_serialisation() {
        let mut link = Link::new(LinkId(0), NodeId(0), NodeId(1), cfg());
        // Reserve half the link: 1500 wire bytes serialise in 24 us, not 12.
        link.set_fluid_reservation(500_000_000);
        let t0 = SimTime::ZERO;
        let tx = link.offer(t0, pkt(0)).unwrap().unwrap();
        assert_eq!(tx.transmit_done_at, t0 + SimDuration::from_micros(24));
        // Clearing the reservation restores the full rate for later packets.
        link.set_fluid_reservation(0);
        assert!(complete(&mut link, tx.transmit_done_at).is_empty());
        let t1 = tx.transmit_done_at;
        let tx2 = link.offer(t1, pkt(1)).unwrap().unwrap();
        assert_eq!(tx2.transmit_done_at, t1 + SimDuration::from_micros(12));
        // An over-reservation is floored at 10 % of the configured rate.
        assert!(complete(&mut link, tx2.transmit_done_at).is_empty());
        link.set_fluid_reservation(2_000_000_000);
        assert_eq!(link.fluid_reservation(), 2_000_000_000);
        let t2 = tx2.transmit_done_at;
        let tx3 = link.offer(t2, pkt(2)).unwrap().unwrap();
        assert_eq!(tx3.transmit_done_at, t2 + SimDuration::from_micros(120));
    }

    #[test]
    fn batch_of_one_reproduces_packet_at_a_time_schedule() {
        let batched = cfg();
        let unbatched = LinkConfig {
            drain_batch: 1,
            ..cfg()
        };
        let mut schedules: Vec<Vec<(SimTime, SimTime)>> = Vec::new();
        for config in [batched, unbatched] {
            let config = LinkConfig {
                queue: QueueConfig::default(),
                ..config
            };
            let mut link = Link::new(LinkId(0), NodeId(0), NodeId(1), config);
            let mut times = Vec::new();
            let first = link.offer(SimTime::ZERO, pkt(0)).unwrap().unwrap();
            for i in 1..=9 {
                link.offer(SimTime::ZERO, pkt(i)).unwrap();
            }
            times.push((first.transmit_done_at, first.delivered_at));
            let mut next_complete = first.transmit_done_at;
            loop {
                let burst = complete(&mut link, next_complete);
                if burst.is_empty() {
                    break;
                }
                for tx in &burst {
                    times.push((tx.transmit_done_at, tx.delivered_at));
                }
                next_complete = burst.last().unwrap().transmit_done_at;
            }
            schedules.push(times);
        }
        assert_eq!(
            schedules[0], schedules[1],
            "batched and unbatched drains must produce identical wire schedules"
        );
    }
}
