//! Unidirectional point-to-point links.
//!
//! A link models a single transmission direction between two nodes: a
//! serialisation stage (rate-limited by the link bandwidth, one packet at a
//! time), a drop-tail output queue feeding the transmitter, and a fixed
//! propagation delay. Full-duplex cables are modelled as two independent
//! links created in opposite directions by the topology builders.

use crate::ids::{LinkId, NodeId};
use crate::queue::{DropTailQueue, EnqueueOutcome, QueueConfig, QueueStats};
use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Configuration of one link direction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Bandwidth in bits per second.
    pub rate_bps: u64,
    /// Propagation delay.
    pub delay: SimDuration,
    /// Output queue configuration.
    pub queue: QueueConfig,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            // 1 Gbps access links were the norm in 2015-era data-centre studies.
            rate_bps: 1_000_000_000,
            delay: SimDuration::from_micros(25),
            queue: QueueConfig::default(),
        }
    }
}

/// Counters maintained per link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Packets fully transmitted onto the wire.
    pub tx_packets: u64,
    /// Wire bytes fully transmitted.
    pub tx_bytes: u64,
    /// Time the transmitter has spent busy, in nanoseconds (for utilisation).
    pub busy_ns: u64,
}

/// One unidirectional link.
#[derive(Debug, Clone)]
pub struct Link {
    /// This link's id.
    pub id: LinkId,
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Static configuration.
    pub config: LinkConfig,
    queue: DropTailQueue,
    /// Whether the transmitter is currently serialising a packet.
    transmitting: bool,
    stats: LinkStats,
}

/// What the caller of [`Link::offer`] / [`Link::on_transmit_complete`] must do
/// next: if a transmission was started, schedule the corresponding
/// `TransmitComplete` and `Delivery` events.
#[derive(Debug, Clone, PartialEq)]
pub struct StartedTransmission {
    /// The packet that was put on the wire.
    pub packet: Packet,
    /// When serialisation finishes (schedule `TransmitComplete` then).
    pub transmit_done_at: SimTime,
    /// When the packet arrives at `to` (schedule `Delivery` then).
    pub delivered_at: SimTime,
}

impl Link {
    /// Create a link.
    pub fn new(id: LinkId, from: NodeId, to: NodeId, config: LinkConfig) -> Self {
        Link {
            id,
            from,
            to,
            config,
            queue: DropTailQueue::new(config.queue),
            transmitting: false,
            stats: LinkStats::default(),
        }
    }

    /// Offer a packet for transmission at time `now`.
    ///
    /// Returns `Ok(Some(tx))` if the transmitter was idle and the packet went
    /// straight onto the wire, `Ok(None)` if it was queued behind others, and
    /// `Err(outcome)` if the queue dropped it.
    pub fn offer(
        &mut self,
        now: SimTime,
        packet: Packet,
    ) -> Result<Option<StartedTransmission>, EnqueueOutcome> {
        match self.queue.enqueue(packet) {
            EnqueueOutcome::Dropped => Err(EnqueueOutcome::Dropped),
            EnqueueOutcome::Queued | EnqueueOutcome::QueuedMarked => {
                if self.transmitting {
                    Ok(None)
                } else {
                    Ok(self.start_next(now))
                }
            }
        }
    }

    /// Notify the link that the serialisation it previously started has
    /// finished; it will begin transmitting the next queued packet if any.
    pub fn on_transmit_complete(&mut self, now: SimTime) -> Option<StartedTransmission> {
        self.transmitting = false;
        self.start_next(now)
    }

    fn start_next(&mut self, now: SimTime) -> Option<StartedTransmission> {
        let packet = self.queue.dequeue()?;
        let wire = packet.wire_bytes() as u64;
        let tx_time = SimDuration::transmission(wire, self.config.rate_bps);
        self.transmitting = true;
        self.stats.tx_packets += 1;
        self.stats.tx_bytes += wire;
        self.stats.busy_ns += tx_time.as_nanos();
        let transmit_done_at = now + tx_time;
        let delivered_at = transmit_done_at + self.config.delay;
        Some(StartedTransmission {
            packet,
            transmit_done_at,
            delivered_at,
        })
    }

    /// Current queue depth in packets (excluding the packet on the wire).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Queue counters.
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Link counters.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Utilisation of this link over `elapsed` time: fraction of time the
    /// transmitter was busy, in `[0, 1]`.
    pub fn utilisation(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        (self.stats.busy_ns as f64 / elapsed.as_nanos() as f64).min(1.0)
    }

    /// Is the transmitter currently busy?
    pub fn is_transmitting(&self) -> bool {
        self.transmitting
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Addr, FlowId};

    fn cfg() -> LinkConfig {
        LinkConfig {
            rate_bps: 1_000_000_000, // 1 Gbps
            delay: SimDuration::from_micros(10),
            queue: QueueConfig {
                limit_packets: 2,
                ..QueueConfig::default()
            },
        }
    }

    fn pkt(seq: u64) -> Packet {
        Packet::data(
            Addr(0),
            Addr(1),
            50_000,
            80,
            FlowId(1),
            0,
            seq,
            seq,
            1446, // 1446 + 54 header = 1500 wire bytes -> 12 us at 1 Gbps
            SimTime::ZERO,
        )
    }

    #[test]
    fn idle_link_transmits_immediately() {
        let mut link = Link::new(LinkId(0), NodeId(0), NodeId(1), cfg());
        let now = SimTime::from_millis(1);
        let tx = link.offer(now, pkt(0)).unwrap().unwrap();
        assert_eq!(tx.transmit_done_at, now + SimDuration::from_micros(12));
        assert_eq!(
            tx.delivered_at,
            now + SimDuration::from_micros(12) + SimDuration::from_micros(10)
        );
        assert!(link.is_transmitting());
        assert_eq!(link.queue_len(), 0);
    }

    #[test]
    fn busy_link_queues_and_resumes() {
        let mut link = Link::new(LinkId(0), NodeId(0), NodeId(1), cfg());
        let now = SimTime::ZERO;
        let first = link.offer(now, pkt(0)).unwrap();
        assert!(first.is_some());
        // Transmitter busy: next packet only queues.
        assert!(link.offer(now, pkt(1)).unwrap().is_none());
        assert_eq!(link.queue_len(), 1);
        // When the first transmission completes, the queued packet starts.
        let done = first.unwrap().transmit_done_at;
        let second = link.on_transmit_complete(done).unwrap();
        assert_eq!(second.packet.seq, 1);
        assert_eq!(second.transmit_done_at, done + SimDuration::from_micros(12));
    }

    #[test]
    fn queue_overflow_drops() {
        let mut link = Link::new(LinkId(0), NodeId(0), NodeId(1), cfg());
        let now = SimTime::ZERO;
        link.offer(now, pkt(0)).unwrap(); // on the wire
        link.offer(now, pkt(1)).unwrap(); // queued
        link.offer(now, pkt(2)).unwrap(); // queued (limit 2)
        let dropped = link.offer(now, pkt(3));
        assert!(dropped.is_err());
        assert_eq!(link.queue_stats().dropped, 1);
    }

    #[test]
    fn transmit_complete_with_empty_queue_goes_idle() {
        let mut link = Link::new(LinkId(0), NodeId(0), NodeId(1), cfg());
        let tx = link.offer(SimTime::ZERO, pkt(0)).unwrap().unwrap();
        assert!(link.on_transmit_complete(tx.transmit_done_at).is_none());
        assert!(!link.is_transmitting());
    }

    #[test]
    fn utilisation_accounts_busy_time() {
        let mut link = Link::new(LinkId(0), NodeId(0), NodeId(1), cfg());
        let tx = link.offer(SimTime::ZERO, pkt(0)).unwrap().unwrap();
        link.on_transmit_complete(tx.transmit_done_at);
        // One 12 us transmission in 24 us of elapsed time = 50 %.
        let u = link.utilisation(SimDuration::from_micros(24));
        assert!((u - 0.5).abs() < 1e-9, "utilisation {u}");
        assert_eq!(link.stats().tx_packets, 1);
        assert_eq!(link.stats().tx_bytes, 1500);
    }
}
