//! The interface between the simulator and transport endpoints.
//!
//! A transport protocol implementation (TCP sender, MPTCP receiver, …) is an
//! [`Agent`] attached to a host under the connection's [`FlowId`]. The
//! simulator drives agents with [`AgentEvent`]s and agents act on the world
//! exclusively through the [`AgentCtx`] handed to them: sending packets,
//! arming timers and emitting measurement [`Signal`]s. This keeps the
//! transport crates completely decoupled from the engine internals.

use crate::fluid::FluidHandoff;
use crate::ids::FlowId;
use crate::packet::Packet;
use crate::rng::SimRng;
use crate::signal::Signal;
use crate::time::SimTime;

/// Something that happened which an agent must react to.
#[derive(Debug, Clone)]
pub enum AgentEvent {
    /// The application asked the agent to start (e.g. begin transmitting).
    Start,
    /// A timer previously set with [`AgentCtx::set_timer`] fired. The token is
    /// whatever the agent passed when arming it.
    Timer(u64),
    /// A packet addressed to this agent's flow arrived at the host.
    Packet(Packet),
    /// The fluid fast path finished delivering the remainder of this flow
    /// (`bytes` = the fluid-delivered byte count, i.e. the `remaining` the
    /// agent handed off). The agent — not the engine — emits the
    /// `FlowCompleted` signal, exactly as it would in packet mode.
    FluidComplete {
        /// Bytes delivered analytically by the fluid engine.
        bytes: u64,
    },
    /// The simulation is ending; emit any final measurements (e.g. progress of
    /// unbounded background flows).
    Finalize,
}

/// The capabilities an agent has while handling an event.
pub struct AgentCtx<'a> {
    now: SimTime,
    flow: FlowId,
    rng: &'a mut SimRng,
    out: &'a mut Vec<Packet>,
    timers: &'a mut Vec<(SimTime, u64)>,
    signals: &'a mut Vec<Signal>,
    trace: bool,
    fluid_threshold: Option<u64>,
    fluid_handoff: Option<FluidHandoff>,
}

impl<'a> AgentCtx<'a> {
    /// Construct a context. Only the simulator (and tests) should need this.
    pub fn new(
        now: SimTime,
        flow: FlowId,
        rng: &'a mut SimRng,
        out: &'a mut Vec<Packet>,
        timers: &'a mut Vec<(SimTime, u64)>,
        signals: &'a mut Vec<Signal>,
    ) -> Self {
        AgentCtx {
            now,
            flow,
            rng,
            out,
            timers,
            signals,
            trace: false,
            fluid_threshold: None,
            fluid_handoff: None,
        }
    }

    /// Configure the fluid-handoff byte threshold for this activation. Set
    /// by the simulator when the hybrid engine is enabled; `None` (the
    /// default) means the packet engine is authoritative and transports
    /// must not hand flows off.
    pub fn set_fluid_threshold(&mut self, threshold: Option<u64>) {
        self.fluid_threshold = threshold;
    }

    /// The fluid-handoff byte threshold, if the hybrid engine is active: a
    /// transport whose *remaining* bytes exceed it (and which has left slow
    /// start) should hand the rest of the flow to the fluid fast path via
    /// [`AgentCtx::request_fluid_handoff`].
    pub fn fluid_threshold(&self) -> Option<u64> {
        self.fluid_threshold
    }

    /// Hand the remainder of this flow to the fluid fast path. The
    /// simulator collects the request after the activation and registers
    /// the flow with the fluid engine; from that point the transport must
    /// stop sending new data (in-flight packets still drain normally) and
    /// wait for [`AgentEvent::FluidComplete`]. At most one handoff per
    /// activation; later requests replace earlier ones.
    pub fn request_fluid_handoff(&mut self, handoff: FluidHandoff) {
        self.fluid_handoff = Some(handoff);
    }

    /// Take the handoff requested during this activation, if any. Called by
    /// the simulator after the agent returns.
    pub fn take_fluid_handoff(&mut self) -> Option<FluidHandoff> {
        self.fluid_handoff.take()
    }

    /// Enable (or disable) flight-recorder tracing for this activation. Set
    /// by the simulator from its experiment-wide tracing flag; agents should
    /// only *read* it via [`AgentCtx::trace_enabled`].
    pub fn set_trace_enabled(&mut self, on: bool) {
        self.trace = on;
    }

    /// Whether the experiment wants [`Signal::CwndSample`] telemetry from
    /// transports. Defaults to `false`, in which case transports must not
    /// construct samples at all — keeping the default hot path untouched.
    pub fn trace_enabled(&self) -> bool {
        self.trace
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The flow this agent is registered under.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// The simulation's deterministic random number generator.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Hand a packet to the host's NIC for transmission.
    pub fn send(&mut self, packet: Packet) {
        self.out.push(packet);
    }

    /// Arm a timer that will fire at absolute time `at` with the given token.
    ///
    /// Timers cannot be cancelled; agents are expected to ignore stale
    /// firings (e.g. by comparing the token against a generation counter),
    /// which is both simpler and closer to how retransmission timers are
    /// usually implemented in simulators.
    pub fn set_timer(&mut self, at: SimTime, token: u64) {
        self.timers.push((at, token));
    }

    /// Arm a timer `delay` from now.
    pub fn set_timer_after(&mut self, delay: crate::time::SimDuration, token: u64) {
        let at = self.now + delay;
        self.set_timer(at, token);
    }

    /// Emit a measurement signal towards the experiment harness.
    pub fn signal(&mut self, signal: Signal) {
        self.signals.push(signal);
    }

    /// Number of packets queued for sending so far in this activation
    /// (useful for pacing logic and tests).
    pub fn pending_sends(&self) -> usize {
        self.out.len()
    }
}

/// A transport endpoint (or any other host-resident protocol entity).
///
/// Agents must be `Send` so entire simulations can be moved across threads by
/// parameter-sweep harnesses (each simulation itself stays single-threaded).
pub trait Agent: Send {
    /// React to an event.
    fn handle(&mut self, ctx: &mut AgentCtx<'_>, event: AgentEvent);

    /// Short human-readable description, used in traces and debugging output.
    fn describe(&self) -> String {
        "agent".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Addr;
    use crate::time::SimDuration;

    /// A trivial agent that echoes every data packet back as an ACK and
    /// signals completion after a fixed number of packets.
    struct Echo {
        received: u32,
        want: u32,
    }

    impl Agent for Echo {
        fn handle(&mut self, ctx: &mut AgentCtx<'_>, event: AgentEvent) {
            match event {
                AgentEvent::Packet(p) => {
                    self.received += 1;
                    ctx.send(p.reply_template());
                    if self.received == self.want {
                        ctx.signal(Signal::FlowCompleted {
                            flow: ctx.flow(),
                            at: ctx.now(),
                            bytes: 0,
                        });
                    }
                }
                AgentEvent::Start => ctx.set_timer_after(SimDuration::from_millis(1), 7),
                AgentEvent::Timer(_) | AgentEvent::Finalize | AgentEvent::FluidComplete { .. } => {}
            }
        }
        fn describe(&self) -> String {
            "echo".into()
        }
    }

    #[test]
    fn ctx_collects_actions() {
        let mut rng = SimRng::new(1);
        let mut out = Vec::new();
        let mut timers = Vec::new();
        let mut signals = Vec::new();
        let mut agent = Echo {
            received: 0,
            want: 1,
        };

        let mut ctx = AgentCtx::new(
            SimTime::from_millis(10),
            FlowId(3),
            &mut rng,
            &mut out,
            &mut timers,
            &mut signals,
        );
        agent.handle(&mut ctx, AgentEvent::Start);
        let pkt = Packet::data(
            Addr(0),
            Addr(1),
            50_000,
            80,
            FlowId(3),
            0,
            0,
            0,
            100,
            SimTime::ZERO,
        );
        agent.handle(&mut ctx, AgentEvent::Packet(pkt));
        assert_eq!(ctx.pending_sends(), 1);

        assert_eq!(out.len(), 1);
        assert_eq!(out[0].src, Addr(1));
        assert_eq!(timers, vec![(SimTime::from_millis(11), 7)]);
        assert_eq!(signals.len(), 1);
        assert_eq!(signals[0].flow(), FlowId(3));
        assert_eq!(agent.describe(), "echo");
    }
}
