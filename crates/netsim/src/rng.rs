//! Deterministic random number generation for the simulator.
//!
//! Every source of randomness in an experiment — ECMP hash salts, MMPTCP
//! source-port draws, Poisson inter-arrival times, permutation shuffles —
//! derives from a single seeded generator so a given seed always reproduces
//! the exact same packet-level schedule.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// The simulator's random number generator.
///
/// A thin wrapper around a fast, seedable PRNG with a few convenience
/// helpers used by the network and transport code. Deliberately not
/// cryptographic — determinism and speed are what matter here.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    seed: u64,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child generator. Useful for giving workload
    /// generation and packet-level randomness separate streams so adding
    /// flows does not perturb ECMP decisions of existing ones.
    pub fn fork(&mut self, label: u64) -> SimRng {
        // Mix the label in so forks with different labels are decorrelated
        // even when requested back-to-back.
        let s = self
            .inner
            .next_u64()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(label.wrapping_mul(0xD1B5_4A32_D192_ED03));
        SimRng::new(s)
    }

    /// Uniform sample from a range, e.g. `rng.range(0..n)`.
    pub fn range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// An exponentially distributed sample with the given mean.
    ///
    /// Used for Poisson arrival processes: inter-arrival times of a Poisson
    /// process with rate λ are Exp(mean = 1/λ).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u = 1.0 - self.unit(); // in (0, 1], avoids ln(0)
        -mean * u.ln()
    }

    /// A uniformly random ephemeral (source) port in the 49152..=65535 range.
    pub fn ephemeral_port(&mut self) -> u16 {
        self.inner.gen_range(49152..=65535u16)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// A raw 64-bit draw (e.g. for hash salts).
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn fork_is_deterministic_and_decorrelated() {
        let mut parent1 = SimRng::new(7);
        let mut parent2 = SimRng::new(7);
        let mut c1 = parent1.fork(1);
        let mut c2 = parent2.fork(1);
        assert_eq!(c1.next_u64(), c2.next_u64());

        let mut p = SimRng::new(7);
        let mut a = p.fork(1);
        let mut b = p.fork(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut rng = SimRng::new(3);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() < 0.2,
            "observed mean {observed} too far from {mean}"
        );
    }

    #[test]
    fn ephemeral_ports_in_range() {
        let mut rng = SimRng::new(9);
        for _ in 0..1000 {
            let p = rng.ephemeral_port();
            assert!(p >= 49152);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(11);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0 + 1e-9));
    }
}
