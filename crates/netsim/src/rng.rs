//! Deterministic random number generation for the simulator.
//!
//! Every source of randomness in an experiment — ECMP hash salts, MMPTCP
//! source-port draws, Poisson inter-arrival times, permutation shuffles —
//! derives from a single seeded generator so a given seed always reproduces
//! the exact same packet-level schedule.
//!
//! The generator is a self-contained xoshiro256++ (seeded through SplitMix64,
//! the reference initialisation), so the simulator has no external
//! dependencies and its streams are bit-for-bit stable across toolchains.

/// The simulator's random number generator.
///
/// A thin wrapper around a fast, seedable PRNG with a few convenience
/// helpers used by the network and transport code. Deliberately not
/// cryptographic — determinism and speed are what matter here.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
    seed: u64,
}

/// SplitMix64 step, used to expand a 64-bit seed into xoshiro state.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        SimRng { state, seed }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child generator. Useful for giving workload
    /// generation and packet-level randomness separate streams so adding
    /// flows does not perturb ECMP decisions of existing ones.
    pub fn fork(&mut self, label: u64) -> SimRng {
        // Mix the label in so forks with different labels are decorrelated
        // even when requested back-to-back.
        let s = self
            .next_u64()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(label.wrapping_mul(0xD1B5_4A32_D192_ED03));
        SimRng::new(s)
    }

    /// Uniform sample from an integer range, e.g. `rng.range(0..n)` or
    /// `rng.range(1..=6)`.
    pub fn range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        let (lo, hi_inclusive) = range.bounds();
        T::sample(self, lo, hi_inclusive)
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 random mantissa bits, the standard conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// An exponentially distributed sample with the given mean.
    ///
    /// Used for Poisson arrival processes: inter-arrival times of a Poisson
    /// process with rate λ are Exp(mean = 1/λ).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u = 1.0 - self.unit(); // in (0, 1], avoids ln(0)
        -mean * u.ln()
    }

    /// A uniformly random ephemeral (source) port in the 49152..=65535 range.
    pub fn ephemeral_port(&mut self) -> u16 {
        self.range(49152..=65535u16)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range(0..=i);
            slice.swap(i, j);
        }
    }

    /// A raw 64-bit draw (e.g. for hash salts). xoshiro256++ output function.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A raw 32-bit draw.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform u64 in `[0, bound)` by Lemire-style rejection (unbiased).
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection sampling over the largest multiple of `bound`.
        let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone || zone == u64::MAX {
                return v % bound;
            }
        }
    }
}

/// Integer types that [`SimRng::range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample uniformly from `[lo, hi]` (both inclusive).
    fn sample(rng: &mut SimRng, lo: Self, hi: Self) -> Self;
    /// The previous representable value (used to convert exclusive upper
    /// bounds into inclusive ones).
    fn prev(self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut SimRng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sample range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
            fn prev(self) -> Self {
                self.checked_sub(1).expect("empty sample range")
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Ranges accepted by [`SimRng::range`]: `lo..hi` and `lo..=hi`.
pub trait SampleRange<T: SampleUniform> {
    /// The `(low, high_inclusive)` bounds of the range.
    fn bounds(self) -> (T, T);
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn bounds(self) -> (T, T) {
        (self.start, self.end.prev())
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn bounds(self) -> (T, T) {
        self.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn fork_is_deterministic_and_decorrelated() {
        let mut parent1 = SimRng::new(7);
        let mut parent2 = SimRng::new(7);
        let mut c1 = parent1.fork(1);
        let mut c2 = parent2.fork(1);
        assert_eq!(c1.next_u64(), c2.next_u64());

        let mut p = SimRng::new(7);
        let mut a = p.fork(1);
        let mut b = p.fork(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut rng = SimRng::new(3);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() < 0.2,
            "observed mean {observed} too far from {mean}"
        );
    }

    #[test]
    fn ephemeral_ports_in_range() {
        let mut rng = SimRng::new(9);
        for _ in 0..1000 {
            let p = rng.ephemeral_port();
            assert!(p >= 49152);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(11);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0 + 1e-9));
    }

    #[test]
    fn range_covers_bounds_uniformly() {
        let mut rng = SimRng::new(13);
        let mut counts = [0usize; 6];
        for _ in 0..6000 {
            counts[rng.range(0..6usize)] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(*c > 700, "value {i} drawn only {c} times");
        }
        // Inclusive ranges reach their upper bound.
        let mut hit_hi = false;
        for _ in 0..200 {
            if rng.range(0..=3u32) == 3 {
                hit_hi = true;
            }
        }
        assert!(hit_hi);
    }

    #[test]
    fn unit_is_in_half_open_interval() {
        let mut rng = SimRng::new(17);
        for _ in 0..10_000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
