//! The simulator's packet ("wire format").
//!
//! Rather than serialising real byte-level headers, the simulator carries a
//! structured [`Packet`] with the fields that the data-centre transports under
//! study need: a 5-tuple for ECMP hashing, subflow-level sequence/ack numbers,
//! MPTCP-style connection-level data sequence numbers, and ECN codepoints for
//! the DCTCP extension. This mirrors how ns-3 headers are used by the paper's
//! models while keeping the hot path allocation-free.

use crate::ids::{Addr, FlowId};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Nominal size of a TCP/IP header in bytes (IPv4 20 + TCP 20 + options 14),
/// matching the common ns-3 configuration used in data-centre studies.
pub const HEADER_BYTES: u32 = 54;

/// Default maximum segment size in bytes (Ethernet MTU 1500 minus headers,
/// rounded to the traditional 1400 used by the authors' ns-3 MPTCP model).
pub const DEFAULT_MSS: u32 = 1400;

/// What kind of segment this packet carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketKind {
    /// Connection/subflow establishment request.
    Syn,
    /// Establishment response.
    SynAck,
    /// A data-bearing segment.
    Data,
    /// A pure acknowledgement.
    Ack,
    /// Sender has no more data (carries the final sequence number).
    Fin,
    /// Acknowledgement of a `Fin`.
    FinAck,
}

/// Explicit Congestion Notification codepoint carried by the packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Ecn {
    /// Transport is not ECN-capable for this packet.
    #[default]
    NotCapable,
    /// ECN-capable transport, not marked.
    Capable,
    /// Congestion experienced — set by a switch whose queue exceeded its
    /// marking threshold (DCTCP-style).
    CongestionExperienced,
}

/// A simulated packet.
///
/// `Copy` is intentionally not derived (the struct is ~100 bytes); it is moved
/// through queues and events by value and never heap-allocates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Source host address.
    pub src: Addr,
    /// Destination host address.
    pub dst: Addr,
    /// Source (ephemeral) port. MMPTCP's packet-scatter phase randomises this
    /// per packet so hash-based ECMP sprays packets over all paths.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Connection identifier. All subflows of an MPTCP/MMPTCP connection share
    /// this id; receivers demultiplex on it.
    pub flow: FlowId,
    /// Subflow index within the connection (0 for single-path TCP and for the
    /// packet-scatter flow).
    pub subflow: u8,
    /// Segment kind.
    pub kind: PacketKind,
    /// Subflow-level sequence number (byte offset of the first payload byte).
    pub seq: u64,
    /// Subflow-level cumulative acknowledgement (next expected byte).
    pub ack: u64,
    /// Connection-level data sequence number (MPTCP DSS mapping). For plain
    /// TCP this equals `seq`.
    pub data_seq: u64,
    /// Connection-level cumulative data acknowledgement.
    pub data_ack: u64,
    /// Application payload length in bytes carried by this segment.
    pub payload: u32,
    /// Duplicate-SACK style hint: set on an ACK that re-acknowledges data the
    /// receiver had already received (used by reordering-robust policies).
    pub dup_hint: bool,
    /// ECN codepoint (set by switches when marking).
    pub ecn: Ecn,
    /// ECN-echo flag on ACKs (receiver -> sender congestion feedback).
    pub ecn_echo: bool,
    /// Time the packet was handed to the NIC by the sender; used for RTT
    /// sampling (stands in for the TCP timestamp option).
    pub sent_at: SimTime,
}

impl Packet {
    /// Total size of the packet on the wire, headers included.
    pub fn wire_bytes(&self) -> u32 {
        HEADER_BYTES + self.payload
    }

    /// Is this a pure control packet (no payload)?
    pub fn is_control(&self) -> bool {
        self.payload == 0
    }

    /// The ECMP 5-tuple hashed by switches, as an ordered array.
    pub fn ecmp_tuple(&self) -> [u64; 4] {
        [
            self.src.0 as u64,
            self.dst.0 as u64,
            ((self.src_port as u64) << 16) | self.dst_port as u64,
            0, // protocol field placeholder; constant so it never skews the hash
        ]
    }

    /// Builder-style constructor for a data segment.
    #[allow(clippy::too_many_arguments)]
    pub fn data(
        src: Addr,
        dst: Addr,
        src_port: u16,
        dst_port: u16,
        flow: FlowId,
        subflow: u8,
        seq: u64,
        data_seq: u64,
        payload: u32,
        now: SimTime,
    ) -> Self {
        Packet {
            src,
            dst,
            src_port,
            dst_port,
            flow,
            subflow,
            kind: PacketKind::Data,
            seq,
            ack: 0,
            data_seq,
            data_ack: 0,
            payload,
            dup_hint: false,
            ecn: Ecn::NotCapable,
            ecn_echo: false,
            sent_at: now,
        }
    }

    /// Builder-style constructor for a pure ACK travelling back to the sender.
    #[allow(clippy::too_many_arguments)]
    pub fn ack(
        src: Addr,
        dst: Addr,
        src_port: u16,
        dst_port: u16,
        flow: FlowId,
        subflow: u8,
        ack: u64,
        data_ack: u64,
        now: SimTime,
    ) -> Self {
        Packet {
            src,
            dst,
            src_port,
            dst_port,
            flow,
            subflow,
            kind: PacketKind::Ack,
            seq: 0,
            ack,
            data_seq: 0,
            data_ack,
            payload: 0,
            dup_hint: false,
            ecn: Ecn::NotCapable,
            ecn_echo: false,
            sent_at: now,
        }
    }

    /// Reverse the direction of this packet's addressing (convenience for
    /// constructing replies in tests).
    pub fn reply_template(&self) -> Packet {
        let mut p = self.clone();
        core::mem::swap(&mut p.src, &mut p.dst);
        core::mem::swap(&mut p.src_port, &mut p.dst_port);
        p.payload = 0;
        p.kind = PacketKind::Ack;
        p
    }
}

/// A generational handle into a [`PacketArena`].
///
/// Events carry this 8-byte handle instead of the ~100-byte [`Packet`], so
/// calendar nodes stay small and packets are never copied while sitting in
/// the calendar. The generation counter catches use-after-take bugs: a stale
/// handle (its slot was reused) panics instead of silently reading another
/// packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketRef {
    index: u32,
    generation: u32,
}

/// Slab arena of in-flight packets, indexed by [`PacketRef`].
///
/// Packets enter when a transmission is committed to the wire (the
/// `Delivery` event is scheduled) and leave when the delivery is dispatched;
/// freed slots are recycled through a free list, so steady-state simulation
/// does no allocation for packet transport.
#[derive(Debug, Default)]
pub struct PacketArena {
    slots: Vec<Slot>,
    free: Vec<u32>,
}

#[derive(Debug)]
struct Slot {
    generation: u32,
    packet: Option<Packet>,
}

impl PacketArena {
    /// Create an empty arena.
    pub fn new() -> Self {
        PacketArena::default()
    }

    /// Create an arena with room for `capacity` packets before growing.
    pub fn with_capacity(capacity: usize) -> Self {
        PacketArena {
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
        }
    }

    /// Store `packet`, returning its handle.
    pub fn insert(&mut self, packet: Packet) -> PacketRef {
        match self.free.pop() {
            Some(index) => {
                let slot = &mut self.slots[index as usize];
                debug_assert!(slot.packet.is_none());
                slot.packet = Some(packet);
                PacketRef {
                    index,
                    generation: slot.generation,
                }
            }
            None => {
                let index = u32::try_from(self.slots.len()).expect("packet arena full");
                self.slots.push(Slot {
                    generation: 0,
                    packet: Some(packet),
                });
                PacketRef {
                    index,
                    generation: 0,
                }
            }
        }
    }

    /// Remove and return the packet behind `handle`, freeing its slot.
    ///
    /// Panics if the handle is stale (already taken, or from another arena):
    /// that is always an engine bug, never a recoverable condition.
    pub fn take(&mut self, handle: PacketRef) -> Packet {
        let slot = &mut self.slots[handle.index as usize];
        assert_eq!(
            slot.generation, handle.generation,
            "stale PacketRef: slot reused since this handle was issued"
        );
        let packet = slot
            .packet
            .take()
            .expect("PacketRef taken twice (generation should have caught this)");
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(handle.index);
        packet
    }

    /// Read-only access to the packet behind `handle`, if it is still live.
    pub fn get(&self, handle: PacketRef) -> Option<&Packet> {
        let slot = self.slots.get(handle.index as usize)?;
        if slot.generation != handle.generation {
            return None;
        }
        slot.packet.as_ref()
    }

    /// Number of packets currently stored.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Whether the arena holds no packets.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slots ever allocated (high-water mark of in-flight packets).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Packet {
        Packet::data(
            Addr(1),
            Addr(2),
            50_000,
            80,
            FlowId(9),
            0,
            1400,
            1400,
            1400,
            SimTime::from_millis(1),
        )
    }

    #[test]
    fn wire_size_includes_header() {
        let p = sample();
        assert_eq!(p.wire_bytes(), 1400 + HEADER_BYTES);
        assert!(!p.is_control());
        let a = Packet::ack(
            Addr(2),
            Addr(1),
            80,
            50_000,
            FlowId(9),
            0,
            2800,
            2800,
            SimTime::ZERO,
        );
        assert_eq!(a.wire_bytes(), HEADER_BYTES);
        assert!(a.is_control());
    }

    #[test]
    fn ecmp_tuple_depends_on_ports() {
        let p = sample();
        let mut q = sample();
        q.src_port = 50_001;
        assert_ne!(p.ecmp_tuple(), q.ecmp_tuple());
    }

    #[test]
    fn reply_template_swaps_direction() {
        let p = sample();
        let r = p.reply_template();
        assert_eq!(r.src, p.dst);
        assert_eq!(r.dst, p.src);
        assert_eq!(r.src_port, p.dst_port);
        assert_eq!(r.dst_port, p.src_port);
        assert_eq!(r.payload, 0);
    }

    #[test]
    fn default_ecn_is_not_capable() {
        assert_eq!(Ecn::default(), Ecn::NotCapable);
    }

    #[test]
    fn arena_roundtrips_and_recycles_slots() {
        let mut arena = PacketArena::new();
        let a = arena.insert(sample());
        let mut second = sample();
        second.seq = 9_999;
        let b = arena.insert(second);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(a).unwrap().seq, 1400);
        let taken = arena.take(b);
        assert_eq!(taken.seq, 9_999);
        assert_eq!(arena.len(), 1);
        // The freed slot is reused with a new generation.
        let c = arena.insert(sample());
        assert_eq!(arena.capacity(), 2);
        assert_ne!(b, c);
        assert!(arena.get(b).is_none(), "stale handle must not resolve");
        assert!(arena.get(c).is_some());
        arena.take(a);
        arena.take(c);
        assert!(arena.is_empty());
    }

    #[test]
    #[should_panic(expected = "stale PacketRef")]
    fn arena_panics_on_stale_take() {
        let mut arena = PacketArena::new();
        let a = arena.insert(sample());
        arena.take(a);
        arena.insert(sample()); // reuses the slot, bumping the generation
        arena.take(a); // stale
    }
}
