//! Hash-based Equal-Cost Multi-Path selection.
//!
//! Data-centre switches pick one of several equal-cost next hops by hashing
//! the packet's 5-tuple; all packets of a TCP flow therefore follow the same
//! path (no reordering), while flows as a whole are spread across paths.
//! MMPTCP's packet-scatter phase exploits exactly this mechanism: by
//! randomising the *source port* per packet, each packet hashes to a
//! different path.

use crate::packet::Packet;

/// A 64-bit mixing function (SplitMix64 finaliser). Good avalanche behaviour,
/// deterministic, and dependency-free.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash a packet's forwarding 5-tuple together with a per-switch salt.
///
/// The salt models the fact that different switches use different (vendor
/// specific) hash functions/seeds, so a flow that collides on one switch does
/// not necessarily collide everywhere.
#[inline]
pub fn flow_hash(packet: &Packet, salt: u64) -> u64 {
    let a = ((packet.src.0 as u64) << 32) | packet.dst.0 as u64;
    let b = ((packet.src_port as u64) << 16) | packet.dst_port as u64;
    mix64(a ^ mix64(b ^ salt))
}

/// Pick an index in `0..n` for this packet using hash-based ECMP.
///
/// Panics if `n == 0` — a switch must always have at least one candidate
/// next hop for a reachable destination.
#[inline]
pub fn select(packet: &Packet, salt: u64, n: usize) -> usize {
    assert!(n > 0, "ECMP selection over an empty next-hop set");
    if n == 1 {
        return 0;
    }
    (flow_hash(packet, salt) % n as u64) as usize
}

/// Per-packet scatter selection: like [`select`] but folds a per-switch
/// `nonce` (a forwarding counter) into the hash, so consecutive packets of
/// the same flow spread over the candidate set. Used by switch-side
/// packet-spraying path policies (per-packet scatter and DiffFlow's mice
/// scattering); deterministic given the forwarding history, unlike drawing
/// from an RNG.
#[inline]
pub fn select_scatter(packet: &Packet, salt: u64, nonce: u64, n: usize) -> usize {
    assert!(n > 0, "ECMP selection over an empty next-hop set");
    if n == 1 {
        return 0;
    }
    (mix64(flow_hash(packet, salt) ^ mix64(nonce)) % n as u64) as usize
}

/// Flow-pinned selection that ignores the ports: hashes only source,
/// destination and flow id. DiffFlow-style switches use this for elephants so
/// a large flow stays on one stable path even when the transport randomises
/// its source port per packet, and so the pin moves deterministically to a
/// surviving sibling when the next-hop group shrinks after a link failure
/// (stateless `hash % n` re-pins on group-size change — no flow entry can go
/// stale and keep pointing at a removed link).
#[inline]
pub fn select_pinned(packet: &Packet, salt: u64, n: usize) -> usize {
    assert!(n > 0, "ECMP selection over an empty next-hop set");
    if n == 1 {
        return 0;
    }
    let a = ((packet.src.0 as u64) << 32) | packet.dst.0 as u64;
    (mix64(a ^ mix64(packet.flow.0 ^ salt)) % n as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Addr, FlowId};
    use crate::time::SimTime;

    fn pkt(src_port: u16) -> Packet {
        Packet::data(
            Addr(3),
            Addr(77),
            src_port,
            8080,
            FlowId(5),
            0,
            0,
            0,
            1400,
            SimTime::ZERO,
        )
    }

    #[test]
    fn same_tuple_same_choice() {
        let p = pkt(51_000);
        let q = pkt(51_000);
        for n in [2usize, 4, 8, 16] {
            assert_eq!(select(&p, 1234, n), select(&q, 1234, n));
        }
    }

    #[test]
    fn source_port_changes_spread_choices() {
        // The packet-scatter premise: varying the source port gives a roughly
        // uniform spread over the candidate set.
        let n = 8;
        let mut counts = vec![0usize; n];
        for port in 49152..(49152 + 4096) {
            counts[select(&pkt(port), 42, n)] += 1;
        }
        let expected = 4096 / n;
        for (i, c) in counts.iter().enumerate() {
            assert!(
                (*c as i64 - expected as i64).abs() < (expected as i64) / 2,
                "bucket {i} count {c} far from expected {expected}"
            );
        }
    }

    #[test]
    fn salt_decorrelates_switches() {
        // A pair of flows that collide under one salt should usually not
        // collide under a different salt.
        let mut collisions_both = 0;
        let mut collisions_first = 0;
        for port in 0..2048u16 {
            let a = pkt(49152 + port);
            let b = pkt(49152 + port.wrapping_add(7919));
            let n = 4;
            if select(&a, 1, n) == select(&b, 1, n) {
                collisions_first += 1;
                if select(&a, 2, n) == select(&b, 2, n) {
                    collisions_both += 1;
                }
            }
        }
        assert!(collisions_first > 0);
        // Roughly 1/n of the first-salt collisions should persist, certainly
        // not all of them.
        assert!(collisions_both < collisions_first);
    }

    #[test]
    fn single_candidate_short_circuits() {
        assert_eq!(select(&pkt(50_000), 9, 1), 0);
    }

    #[test]
    #[should_panic(expected = "empty next-hop set")]
    fn empty_candidate_set_panics() {
        select(&pkt(50_000), 9, 0);
    }

    #[test]
    fn scatter_nonce_spreads_a_single_flow() {
        // One pinned 5-tuple, varying only the nonce: the whole candidate set
        // must be exercised roughly uniformly.
        let n = 8;
        let p = pkt(50_000);
        let mut counts = vec![0usize; n];
        for nonce in 0..4096u64 {
            counts[select_scatter(&p, 42, nonce, n)] += 1;
        }
        let expected = 4096 / n;
        for (i, c) in counts.iter().enumerate() {
            assert!(
                (*c as i64 - expected as i64).abs() < (expected as i64) / 2,
                "bucket {i} count {c} far from expected {expected}"
            );
        }
        // Same nonce, same choice (determinism).
        assert_eq!(
            select_scatter(&p, 42, 7, n),
            select_scatter(&pkt(50_000), 42, 7, n)
        );
    }

    #[test]
    fn pinned_selection_ignores_ports() {
        // An elephant whose transport randomises source ports must still land
        // on one stable path.
        let n = 4;
        let first = select_pinned(&pkt(49_152), 9, n);
        for port in 49_153..49_153 + 256 {
            assert_eq!(select_pinned(&pkt(port), 9, n), first);
        }
        // Shrinking the group re-pins deterministically within range.
        for m in 1..=n {
            assert!(select_pinned(&pkt(50_000), 9, m) < m);
        }
    }

    #[test]
    fn mix64_avalanche() {
        // Flipping one input bit should flip roughly half the output bits.
        let x = 0xDEAD_BEEF_u64;
        let a = mix64(x);
        let b = mix64(x ^ 1);
        let differing = (a ^ b).count_ones();
        assert!(differing > 16, "only {differing} bits differ");
    }
}
