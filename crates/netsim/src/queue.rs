//! Output-port packet queues.
//!
//! Switch and host ports use a drop-tail FIFO bounded in packets and
//! (optionally) bytes, matching the shared-buffer commodity switches assumed
//! by the paper. An optional marking threshold implements DCTCP-style ECN.

use crate::packet::{Ecn, Packet};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration of a drop-tail queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// Maximum number of packets the queue will hold (the packet on the wire
    /// is not counted). 100 packets is the classic ns-3 data-centre default.
    pub limit_packets: usize,
    /// Optional byte limit; whichever limit is hit first causes a drop.
    pub limit_bytes: Option<u64>,
    /// Optional ECN marking threshold in packets (DCTCP's `K`). When the
    /// instantaneous queue length is at or above this value, ECN-capable
    /// packets are marked instead of dropped.
    pub ecn_threshold_packets: Option<usize>,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            limit_packets: 100,
            limit_bytes: None,
            ecn_threshold_packets: None,
        }
    }
}

/// Counters maintained by every queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Packets accepted into the queue.
    pub enqueued: u64,
    /// Packets dropped because the queue was full.
    pub dropped: u64,
    /// Bytes dropped (wire bytes).
    pub dropped_bytes: u64,
    /// Packets marked with Congestion Experienced.
    pub ecn_marked: u64,
    /// Highest instantaneous occupancy observed, in packets.
    pub max_depth_packets: usize,
}

/// The outcome of offering a packet to a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// The packet was queued.
    Queued,
    /// The packet was queued and ECN-marked.
    QueuedMarked,
    /// The packet was dropped.
    Dropped,
}

/// A bounded drop-tail FIFO of packets.
#[derive(Debug, Clone)]
pub struct DropTailQueue {
    config: QueueConfig,
    packets: VecDeque<Packet>,
    bytes: u64,
    stats: QueueStats,
}

impl DropTailQueue {
    /// Create a queue with the given configuration.
    pub fn new(config: QueueConfig) -> Self {
        DropTailQueue {
            config,
            packets: VecDeque::new(),
            bytes: 0,
            stats: QueueStats::default(),
        }
    }

    /// Offer a packet to the queue. On success the packet is stored (and
    /// possibly ECN-marked); on failure it is dropped and counted.
    pub fn enqueue(&mut self, packet: Packet) -> EnqueueOutcome {
        self.enqueue_with_extra(packet, 0, 0)
    }

    /// Offer a packet while `extra_packets`/`extra_bytes` of occupancy are
    /// conceptually still in the queue but stored elsewhere — used by the
    /// link's batched drain, whose committed-but-not-yet-serialising packets
    /// must keep counting towards drop and ECN decisions so batching does
    /// not change them (up to the exact-instant tie convention documented on
    /// the link's committed ledger).
    pub fn enqueue_with_extra(
        &mut self,
        mut packet: Packet,
        extra_packets: usize,
        extra_bytes: u64,
    ) -> EnqueueOutcome {
        let wire = packet.wire_bytes() as u64;
        let depth = self.packets.len() + extra_packets;
        let over_packets = depth >= self.config.limit_packets;
        let over_bytes = self
            .config
            .limit_bytes
            .map(|lim| self.bytes + extra_bytes + wire > lim)
            .unwrap_or(false);
        if over_packets || over_bytes {
            self.stats.dropped += 1;
            self.stats.dropped_bytes += wire;
            return EnqueueOutcome::Dropped;
        }

        let mut marked = false;
        if let Some(k) = self.config.ecn_threshold_packets {
            if depth >= k && packet.ecn == Ecn::Capable {
                packet.ecn = Ecn::CongestionExperienced;
                self.stats.ecn_marked += 1;
                marked = true;
            }
        }

        self.bytes += wire;
        self.packets.push_back(packet);
        self.stats.enqueued += 1;
        if depth + 1 > self.stats.max_depth_packets {
            self.stats.max_depth_packets = depth + 1;
        }
        if marked {
            EnqueueOutcome::QueuedMarked
        } else {
            EnqueueOutcome::Queued
        }
    }

    /// Remove the packet at the head of the queue.
    pub fn dequeue(&mut self) -> Option<Packet> {
        let p = self.packets.pop_front()?;
        self.bytes -= p.wire_bytes() as u64;
        Some(p)
    }

    /// Number of packets currently queued.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Bytes currently queued (wire bytes).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The queue's counters.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// The queue's configuration.
    pub fn config(&self) -> QueueConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Addr, FlowId};
    use crate::time::SimTime;

    fn pkt(payload: u32) -> Packet {
        Packet::data(
            Addr(0),
            Addr(1),
            50_000,
            80,
            FlowId(1),
            0,
            0,
            0,
            payload,
            SimTime::ZERO,
        )
    }

    fn ecn_pkt(payload: u32) -> Packet {
        let mut p = pkt(payload);
        p.ecn = Ecn::Capable;
        p
    }

    #[test]
    fn fifo_order() {
        let mut q = DropTailQueue::new(QueueConfig::default());
        for i in 0..5 {
            let mut p = pkt(100);
            p.seq = i;
            q.enqueue(p);
        }
        for i in 0..5 {
            assert_eq!(q.dequeue().unwrap().seq, i);
        }
        assert!(q.dequeue().is_none());
    }

    #[test]
    fn drops_when_packet_limit_hit() {
        let mut q = DropTailQueue::new(QueueConfig {
            limit_packets: 2,
            ..QueueConfig::default()
        });
        assert_eq!(q.enqueue(pkt(100)), EnqueueOutcome::Queued);
        assert_eq!(q.enqueue(pkt(100)), EnqueueOutcome::Queued);
        assert_eq!(q.enqueue(pkt(100)), EnqueueOutcome::Dropped);
        assert_eq!(q.stats().dropped, 1);
        assert_eq!(q.stats().enqueued, 2);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drops_when_byte_limit_hit() {
        let mut q = DropTailQueue::new(QueueConfig {
            limit_packets: 100,
            limit_bytes: Some(2_000),
            ecn_threshold_packets: None,
        });
        assert_eq!(q.enqueue(pkt(1400)), EnqueueOutcome::Queued);
        // The second 1400B packet would exceed 2000 wire bytes.
        assert_eq!(q.enqueue(pkt(1400)), EnqueueOutcome::Dropped);
        assert_eq!(
            q.stats().dropped_bytes,
            1400 + crate::packet::HEADER_BYTES as u64
        );
    }

    #[test]
    fn byte_accounting_tracks_wire_bytes() {
        let mut q = DropTailQueue::new(QueueConfig::default());
        q.enqueue(pkt(1000));
        q.enqueue(pkt(500));
        assert_eq!(
            q.bytes(),
            (1000 + 500 + 2 * crate::packet::HEADER_BYTES) as u64
        );
        q.dequeue();
        assert_eq!(q.bytes(), (500 + crate::packet::HEADER_BYTES) as u64);
    }

    #[test]
    fn ecn_marks_capable_packets_above_threshold() {
        let mut q = DropTailQueue::new(QueueConfig {
            limit_packets: 10,
            limit_bytes: None,
            ecn_threshold_packets: Some(2),
        });
        assert_eq!(q.enqueue(ecn_pkt(100)), EnqueueOutcome::Queued);
        assert_eq!(q.enqueue(ecn_pkt(100)), EnqueueOutcome::Queued);
        // Queue depth is now 2 == K, so this one gets marked.
        assert_eq!(q.enqueue(ecn_pkt(100)), EnqueueOutcome::QueuedMarked);
        // Non-capable packets are never marked.
        assert_eq!(q.enqueue(pkt(100)), EnqueueOutcome::Queued);
        assert_eq!(q.stats().ecn_marked, 1);
        // The marked packet carries CE when dequeued.
        q.dequeue();
        q.dequeue();
        assert_eq!(q.dequeue().unwrap().ecn, Ecn::CongestionExperienced);
    }

    #[test]
    fn max_depth_is_tracked() {
        let mut q = DropTailQueue::new(QueueConfig::default());
        for _ in 0..7 {
            q.enqueue(pkt(10));
        }
        q.dequeue();
        q.dequeue();
        assert_eq!(q.stats().max_depth_packets, 7);
    }
}
