//! Output-queued switches with hash-based ECMP forwarding.
//!
//! A switch owns a routing table mapping destination hosts to *groups* of
//! equal-cost output links. Forwarding a packet selects a group by destination
//! and a member link by ECMP hash. Drops are counted per switch so the metrics
//! crate can report per-layer (core / aggregation / edge) loss rates, one of
//! the quantities the paper reports in its §3 text.

use crate::ecmp;
use crate::ids::{Addr, LinkId, NodeId};
use crate::packet::Packet;
use serde::{Deserialize, Serialize};

/// Which tier of the data-centre fabric a switch belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SwitchLayer {
    /// Top-of-rack / edge switches directly connected to hosts.
    Edge,
    /// Aggregation (pod) switches.
    Aggregation,
    /// Core switches.
    Core,
}

impl SwitchLayer {
    /// Stable index used by per-layer statistics arrays.
    pub fn index(self) -> usize {
        match self {
            SwitchLayer::Edge => 0,
            SwitchLayer::Aggregation => 1,
            SwitchLayer::Core => 2,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SwitchLayer::Edge => "edge",
            SwitchLayer::Aggregation => "aggregation",
            SwitchLayer::Core => "core",
        }
    }
}

/// Per-switch forwarding counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchStats {
    /// Packets forwarded to an output queue (whether or not the queue
    /// subsequently dropped them).
    pub forwarded: u64,
    /// Packets with no route (should not happen on a well-formed topology;
    /// counted rather than panicking so malformed experiments are visible).
    pub no_route: u64,
}

/// An output-queued switch.
#[derive(Debug, Clone)]
pub struct Switch {
    /// This switch's node id.
    pub id: NodeId,
    /// The fabric tier this switch belongs to.
    pub layer: SwitchLayer,
    /// ECMP hash salt (models per-switch hash seed diversity).
    pub ecmp_salt: u64,
    /// For each destination host address (dense index), which next-hop group
    /// to use. `u16::MAX` means "no route".
    table: Vec<u16>,
    /// Next-hop groups: each is a non-empty set of equal-cost output links.
    groups: Vec<Vec<LinkId>>,
    stats: SwitchStats,
}

/// Sentinel meaning "destination not in the table".
const NO_ROUTE: u16 = u16::MAX;

impl Switch {
    /// Create a switch with an empty routing table sized for `num_hosts`
    /// destinations.
    pub fn new(id: NodeId, layer: SwitchLayer, num_hosts: usize, ecmp_salt: u64) -> Self {
        Switch {
            id,
            layer,
            ecmp_salt,
            table: vec![NO_ROUTE; num_hosts],
            groups: Vec::new(),
            stats: SwitchStats::default(),
        }
    }

    /// Register a next-hop group (a set of equal-cost output links) and return
    /// its index for use with [`Switch::set_route`].
    pub fn add_group(&mut self, links: Vec<LinkId>) -> u16 {
        assert!(!links.is_empty(), "next-hop group must not be empty");
        assert!(
            self.groups.len() < NO_ROUTE as usize,
            "too many next-hop groups"
        );
        self.groups.push(links);
        (self.groups.len() - 1) as u16
    }

    /// Route destination `dst` through group `group`.
    pub fn set_route(&mut self, dst: Addr, group: u16) {
        assert!((group as usize) < self.groups.len(), "unknown group");
        let idx = dst.index();
        assert!(idx < self.table.len(), "destination out of range");
        self.table[idx] = group;
    }

    /// Number of equal-cost next hops towards `dst` (0 if unreachable).
    pub fn path_count(&self, dst: Addr) -> usize {
        match self.table.get(dst.index()) {
            Some(&g) if g != NO_ROUTE => self.groups[g as usize].len(),
            _ => 0,
        }
    }

    /// Choose the output link for `packet` using hash-based ECMP.
    ///
    /// Returns `None` (and counts it) if the destination has no route.
    pub fn forward(&mut self, packet: &Packet) -> Option<LinkId> {
        let group = match self.table.get(packet.dst.index()) {
            Some(&g) if g != NO_ROUTE => &self.groups[g as usize],
            _ => {
                self.stats.no_route += 1;
                return None;
            }
        };
        let choice = ecmp::select(packet, self.ecmp_salt, group.len());
        self.stats.forwarded += 1;
        Some(group[choice])
    }

    /// Remove `link` from every next-hop group that has at least two members,
    /// e.g. when the link has failed and traffic must spread over the
    /// surviving equal-cost siblings. A group's last member is never removed
    /// (that would blackhole every destination routed through it); the return
    /// value is the number of groups the link was actually removed from.
    pub fn remove_link(&mut self, link: LinkId) -> usize {
        let mut removed = 0;
        for group in &mut self.groups {
            if group.len() > 1 {
                if let Some(pos) = group.iter().position(|&l| l == link) {
                    group.remove(pos);
                    removed += 1;
                }
            }
        }
        removed
    }

    /// Forwarding counters.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// All next-hop groups (used by topology tests to check invariants).
    pub fn groups(&self) -> &[Vec<LinkId>] {
        &self.groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::FlowId;
    use crate::time::SimTime;

    fn pkt(dst: u32, src_port: u16) -> Packet {
        Packet::data(
            Addr(0),
            Addr(dst),
            src_port,
            80,
            FlowId(1),
            0,
            0,
            0,
            1400,
            SimTime::ZERO,
        )
    }

    fn switch_with_two_groups() -> Switch {
        let mut sw = Switch::new(NodeId(10), SwitchLayer::Edge, 4, 99);
        let up = sw.add_group(vec![LinkId(0), LinkId(1), LinkId(2), LinkId(3)]);
        let down = sw.add_group(vec![LinkId(7)]);
        sw.set_route(Addr(0), down);
        sw.set_route(Addr(1), up);
        sw.set_route(Addr(2), up);
        sw
    }

    #[test]
    fn forwards_by_destination() {
        let mut sw = switch_with_two_groups();
        assert_eq!(sw.forward(&pkt(0, 50_000)), Some(LinkId(7)));
        let up_choice = sw.forward(&pkt(1, 50_000)).unwrap();
        assert!([LinkId(0), LinkId(1), LinkId(2), LinkId(3)].contains(&up_choice));
        assert_eq!(sw.stats().forwarded, 2);
    }

    #[test]
    fn unknown_destination_counts_no_route() {
        let mut sw = switch_with_two_groups();
        assert_eq!(sw.forward(&pkt(3, 50_000)), None);
        assert_eq!(sw.stats().no_route, 1);
    }

    #[test]
    fn same_flow_is_pinned_to_one_path() {
        let mut sw = switch_with_two_groups();
        let first = sw.forward(&pkt(1, 51_111)).unwrap();
        for _ in 0..50 {
            assert_eq!(sw.forward(&pkt(1, 51_111)).unwrap(), first);
        }
    }

    #[test]
    fn varying_source_port_uses_multiple_paths() {
        let mut sw = switch_with_two_groups();
        let mut seen = std::collections::HashSet::new();
        for port in 49152..49152 + 256 {
            seen.insert(sw.forward(&pkt(1, port)).unwrap());
        }
        assert_eq!(seen.len(), 4, "all four uplinks should be exercised");
    }

    #[test]
    fn path_count_reports_group_size() {
        let sw = switch_with_two_groups();
        assert_eq!(sw.path_count(Addr(1)), 4);
        assert_eq!(sw.path_count(Addr(0)), 1);
        assert_eq!(sw.path_count(Addr(3)), 0);
    }

    #[test]
    fn layer_indices_are_stable() {
        assert_eq!(SwitchLayer::Edge.index(), 0);
        assert_eq!(SwitchLayer::Aggregation.index(), 1);
        assert_eq!(SwitchLayer::Core.index(), 2);
        assert_eq!(SwitchLayer::Core.name(), "core");
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_group_rejected() {
        let mut sw = Switch::new(NodeId(0), SwitchLayer::Core, 1, 0);
        sw.add_group(vec![]);
    }

    #[test]
    fn remove_link_shrinks_groups_but_never_empties_them() {
        let mut sw = switch_with_two_groups();
        // LinkId(1) is in the four-member up group: removable.
        assert_eq!(sw.remove_link(LinkId(1)), 1);
        assert_eq!(sw.path_count(Addr(1)), 3);
        // LinkId(7) is the sole member of the down group: protected.
        assert_eq!(sw.remove_link(LinkId(7)), 0);
        assert_eq!(sw.path_count(Addr(0)), 1);
        // Removing an absent link is a no-op.
        assert_eq!(sw.remove_link(LinkId(99)), 0);
        // Forwarding never selects the removed link any more.
        for port in 49152..49152 + 256 {
            assert_ne!(sw.forward(&pkt(1, port)), Some(LinkId(1)));
        }
    }
}
