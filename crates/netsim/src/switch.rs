//! Output-queued switches with configurable multi-path forwarding.
//!
//! A switch owns a routing table mapping destination hosts to *groups* of
//! equal-cost output links. Forwarding a packet selects a group by destination
//! and a member link according to the switch's [`PathPolicy`]: classic
//! per-flow hash ECMP, per-packet scatter, or DiffFlow-style size-aware
//! routing (mice scattered, elephants pinned). Drops are counted per switch so
//! the metrics crate can report per-layer (core / aggregation / edge) loss
//! rates, one of the quantities the paper reports in its §3 text.

use crate::ecmp;
use crate::ids::{Addr, LinkId, NodeId};
use crate::packet::Packet;
use serde::{Deserialize, Serialize};

/// Which tier of the data-centre fabric a switch belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SwitchLayer {
    /// Top-of-rack / edge switches directly connected to hosts.
    Edge,
    /// Aggregation (pod) switches.
    Aggregation,
    /// Core switches.
    Core,
}

impl SwitchLayer {
    /// Stable index used by per-layer statistics arrays.
    pub fn index(self) -> usize {
        match self {
            SwitchLayer::Edge => 0,
            SwitchLayer::Aggregation => 1,
            SwitchLayer::Core => 2,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SwitchLayer::Edge => "edge",
            SwitchLayer::Aggregation => "aggregation",
            SwitchLayer::Core => "core",
        }
    }
}

/// How a switch picks one member of a multi-path next-hop group.
///
/// The policy is a property of the *fabric*, orthogonal to the transport: the
/// same TCP sender behaves very differently under per-flow ECMP (one path for
/// the flow's lifetime), per-packet scatter (maximal path diversity, maximal
/// reordering) and DiffFlow-style size-aware routing (scatter only while the
/// flow is still small, pin once it has proven to be an elephant).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum PathPolicy {
    /// Classic hash-based ECMP on the 5-tuple: every packet of a flow follows
    /// the same path (no reordering); flows as a whole spread across paths.
    #[default]
    FlowHash,
    /// Per-packet scatter: every data packet independently picks a member
    /// (via a per-switch forwarding nonce), regardless of its 5-tuple. Pure
    /// control packets (SYNs, ACKs) still follow the flow hash so handshakes
    /// and ACK clocking stay on stable paths, mirroring how spraying fabrics
    /// treat the data plane.
    PerPacketScatter,
    /// DiffFlow-style size-aware routing: data packets whose connection-level
    /// byte offset (`Packet::data_seq`, the byte count carried in the packet
    /// metadata) is still below `elephant_threshold` are treated as mice and
    /// scattered per packet; once a flow's offset crosses the threshold its
    /// packets are pinned to one stable path chosen by a port-agnostic flow
    /// hash, so the elephant stops causing reordering and keeps its ACK
    /// clock. Control packets follow the flow hash.
    DiffFlow {
        /// Byte offset at which a flow stops being a mouse.
        elephant_threshold: u64,
    },
}

impl PathPolicy {
    /// The conventional DiffFlow configuration: flows become elephants after
    /// 100 KB — the mice/elephant boundary of the datacentre traffic studies
    /// both RepFlow and DiffFlow build on.
    pub fn diffflow_default() -> Self {
        PathPolicy::DiffFlow {
            elephant_threshold: 100_000,
        }
    }

    /// Short label for run names and reports.
    pub fn label(&self) -> &'static str {
        match self {
            PathPolicy::FlowHash => "ecmp",
            PathPolicy::PerPacketScatter => "scatter",
            PathPolicy::DiffFlow { .. } => "diffflow",
        }
    }
}

/// Per-switch forwarding counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchStats {
    /// Packets forwarded to an output queue (whether or not the queue
    /// subsequently dropped them).
    pub forwarded: u64,
    /// Packets with no route (should not happen on a well-formed topology;
    /// counted rather than panicking so malformed experiments are visible).
    pub no_route: u64,
}

/// An output-queued switch.
#[derive(Debug, Clone)]
pub struct Switch {
    /// This switch's node id.
    pub id: NodeId,
    /// The fabric tier this switch belongs to.
    pub layer: SwitchLayer,
    /// ECMP hash salt (models per-switch hash seed diversity).
    pub ecmp_salt: u64,
    /// For each destination host address (dense index), which next-hop group
    /// to use. `u16::MAX` means "no route".
    table: Vec<u16>,
    /// Next-hop groups: each is a non-empty set of equal-cost output links.
    groups: Vec<Vec<LinkId>>,
    /// Multi-path member selection policy.
    policy: PathPolicy,
    /// Forwarding nonce for per-packet scatter policies (incremented per
    /// scattered packet; deterministic across runs).
    scatter_nonce: u64,
    stats: SwitchStats,
}

/// Sentinel meaning "destination not in the table".
const NO_ROUTE: u16 = u16::MAX;

impl Switch {
    /// Create a switch with an empty routing table sized for `num_hosts`
    /// destinations.
    pub fn new(id: NodeId, layer: SwitchLayer, num_hosts: usize, ecmp_salt: u64) -> Self {
        Switch {
            id,
            layer,
            ecmp_salt,
            table: vec![NO_ROUTE; num_hosts],
            groups: Vec::new(),
            policy: PathPolicy::FlowHash,
            scatter_nonce: 0,
            stats: SwitchStats::default(),
        }
    }

    /// The multi-path member selection policy.
    pub fn path_policy(&self) -> PathPolicy {
        self.policy
    }

    /// Install a multi-path member selection policy.
    pub fn set_path_policy(&mut self, policy: PathPolicy) {
        self.policy = policy;
    }

    /// Register a next-hop group (a set of equal-cost output links) and return
    /// its index for use with [`Switch::set_route`].
    pub fn add_group(&mut self, links: Vec<LinkId>) -> u16 {
        assert!(!links.is_empty(), "next-hop group must not be empty");
        assert!(
            self.groups.len() < NO_ROUTE as usize,
            "too many next-hop groups"
        );
        self.groups.push(links);
        (self.groups.len() - 1) as u16
    }

    /// Route destination `dst` through group `group`.
    pub fn set_route(&mut self, dst: Addr, group: u16) {
        assert!((group as usize) < self.groups.len(), "unknown group");
        let idx = dst.index();
        assert!(idx < self.table.len(), "destination out of range");
        self.table[idx] = group;
    }

    /// Number of equal-cost next hops towards `dst` (0 if unreachable).
    pub fn path_count(&self, dst: Addr) -> usize {
        match self.table.get(dst.index()) {
            Some(&g) if g != NO_ROUTE => self.groups[g as usize].len(),
            _ => 0,
        }
    }

    /// Choose the output link for `packet` according to the switch's
    /// [`PathPolicy`].
    ///
    /// Returns `None` (and counts it) if the destination has no route.
    pub fn forward(&mut self, packet: &Packet) -> Option<LinkId> {
        let group = match self.table.get(packet.dst.index()) {
            Some(&g) if g != NO_ROUTE => &self.groups[g as usize],
            _ => {
                self.stats.no_route += 1;
                return None;
            }
        };
        let n = group.len();
        let salt = self.ecmp_salt;
        let scatter = |nonce: &mut u64| {
            let choice = ecmp::select_scatter(packet, salt, *nonce, n);
            *nonce = nonce.wrapping_add(1);
            choice
        };
        let choice = match self.policy {
            PathPolicy::FlowHash => ecmp::select(packet, salt, n),
            PathPolicy::PerPacketScatter if packet.payload > 0 => scatter(&mut self.scatter_nonce),
            PathPolicy::DiffFlow { elephant_threshold } if packet.payload > 0 => {
                if packet.data_seq < elephant_threshold {
                    scatter(&mut self.scatter_nonce)
                } else {
                    ecmp::select_pinned(packet, salt, n)
                }
            }
            // Control packets under the spraying policies keep the flow hash.
            PathPolicy::PerPacketScatter | PathPolicy::DiffFlow { .. } => {
                ecmp::select(packet, salt, n)
            }
        };
        self.stats.forwarded += 1;
        Some(group[choice])
    }

    /// The *stable* output link the fluid fast path attributes to `packet`'s
    /// flow, without touching forwarding state (no stats, no scatter nonce).
    ///
    /// Matches [`Switch::forward`] exactly for the policies that pin flows:
    /// flow-hash ECMP, control packets under the spraying policies, and
    /// DiffFlow elephants (`data_seq` at or past the threshold map to the
    /// same `select_pinned` member real elephant packets use, so fluid
    /// elephants share their path — and re-pin after `remove_link` — just
    /// like packet elephants). Per-packet-scattered traffic has no single
    /// path by construction; its fluid stand-in is the flow-hash member,
    /// which spreads a *population* of fluid flows across the group the way
    /// scatter spreads packets.
    pub fn route_stable(&self, packet: &Packet) -> Option<LinkId> {
        let group = match self.table.get(packet.dst.index()) {
            Some(&g) if g != NO_ROUTE => &self.groups[g as usize],
            _ => return None,
        };
        let n = group.len();
        let salt = self.ecmp_salt;
        let choice = match self.policy {
            PathPolicy::DiffFlow { elephant_threshold }
                if packet.payload > 0 && packet.data_seq >= elephant_threshold =>
            {
                ecmp::select_pinned(packet, salt, n)
            }
            _ => ecmp::select(packet, salt, n),
        };
        Some(group[choice])
    }

    /// Remove `link` from every next-hop group that has at least two members,
    /// e.g. when the link has failed and traffic must spread over the
    /// surviving equal-cost siblings. A group's last member is never removed
    /// (that would blackhole every destination routed through it); the return
    /// value is the number of groups the link was actually removed from.
    pub fn remove_link(&mut self, link: LinkId) -> usize {
        let mut removed = 0;
        for group in &mut self.groups {
            if group.len() > 1 {
                if let Some(pos) = group.iter().position(|&l| l == link) {
                    group.remove(pos);
                    removed += 1;
                }
            }
        }
        removed
    }

    /// Forwarding counters.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// All next-hop groups (used by topology tests to check invariants).
    pub fn groups(&self) -> &[Vec<LinkId>] {
        &self.groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::FlowId;
    use crate::time::SimTime;

    fn pkt(dst: u32, src_port: u16) -> Packet {
        Packet::data(
            Addr(0),
            Addr(dst),
            src_port,
            80,
            FlowId(1),
            0,
            0,
            0,
            1400,
            SimTime::ZERO,
        )
    }

    fn switch_with_two_groups() -> Switch {
        let mut sw = Switch::new(NodeId(10), SwitchLayer::Edge, 4, 99);
        let up = sw.add_group(vec![LinkId(0), LinkId(1), LinkId(2), LinkId(3)]);
        let down = sw.add_group(vec![LinkId(7)]);
        sw.set_route(Addr(0), down);
        sw.set_route(Addr(1), up);
        sw.set_route(Addr(2), up);
        sw
    }

    #[test]
    fn forwards_by_destination() {
        let mut sw = switch_with_two_groups();
        assert_eq!(sw.forward(&pkt(0, 50_000)), Some(LinkId(7)));
        let up_choice = sw.forward(&pkt(1, 50_000)).unwrap();
        assert!([LinkId(0), LinkId(1), LinkId(2), LinkId(3)].contains(&up_choice));
        assert_eq!(sw.stats().forwarded, 2);
    }

    #[test]
    fn unknown_destination_counts_no_route() {
        let mut sw = switch_with_two_groups();
        assert_eq!(sw.forward(&pkt(3, 50_000)), None);
        assert_eq!(sw.stats().no_route, 1);
    }

    #[test]
    fn same_flow_is_pinned_to_one_path() {
        let mut sw = switch_with_two_groups();
        let first = sw.forward(&pkt(1, 51_111)).unwrap();
        for _ in 0..50 {
            assert_eq!(sw.forward(&pkt(1, 51_111)).unwrap(), first);
        }
    }

    #[test]
    fn varying_source_port_uses_multiple_paths() {
        let mut sw = switch_with_two_groups();
        let mut seen = std::collections::HashSet::new();
        for port in 49152..49152 + 256 {
            seen.insert(sw.forward(&pkt(1, port)).unwrap());
        }
        assert_eq!(seen.len(), 4, "all four uplinks should be exercised");
    }

    #[test]
    fn path_count_reports_group_size() {
        let sw = switch_with_two_groups();
        assert_eq!(sw.path_count(Addr(1)), 4);
        assert_eq!(sw.path_count(Addr(0)), 1);
        assert_eq!(sw.path_count(Addr(3)), 0);
    }

    #[test]
    fn layer_indices_are_stable() {
        assert_eq!(SwitchLayer::Edge.index(), 0);
        assert_eq!(SwitchLayer::Aggregation.index(), 1);
        assert_eq!(SwitchLayer::Core.index(), 2);
        assert_eq!(SwitchLayer::Core.name(), "core");
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_group_rejected() {
        let mut sw = Switch::new(NodeId(0), SwitchLayer::Core, 1, 0);
        sw.add_group(vec![]);
    }

    fn data_pkt(dst: u32, src_port: u16, data_seq: u64, payload: u32) -> Packet {
        Packet::data(
            Addr(0),
            Addr(dst),
            src_port,
            80,
            FlowId(1),
            0,
            data_seq,
            data_seq,
            payload,
            SimTime::ZERO,
        )
    }

    #[test]
    fn per_packet_scatter_sprays_one_flow_over_all_uplinks() {
        let mut sw = switch_with_two_groups();
        sw.set_path_policy(PathPolicy::PerPacketScatter);
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u64 {
            seen.insert(sw.forward(&data_pkt(1, 51_111, i * 1400, 1400)).unwrap());
        }
        assert_eq!(seen.len(), 4, "one pinned 5-tuple must use all uplinks");
    }

    #[test]
    fn scatter_policies_keep_control_packets_on_the_flow_hash() {
        let mut pinned = switch_with_two_groups();
        let mut scattering = switch_with_two_groups();
        scattering.set_path_policy(PathPolicy::PerPacketScatter);
        for _ in 0..32 {
            let ctrl = data_pkt(1, 51_111, 0, 0); // zero payload = control
            assert_eq!(pinned.forward(&ctrl), scattering.forward(&ctrl));
        }
    }

    #[test]
    fn diffflow_scatters_mice_and_pins_elephants() {
        let mut sw = switch_with_two_groups();
        sw.set_path_policy(PathPolicy::DiffFlow {
            elephant_threshold: 100_000,
        });
        // Below the threshold: the flow sprays.
        let mut mice_links = std::collections::HashSet::new();
        for i in 0..64u64 {
            mice_links.insert(sw.forward(&data_pkt(1, 51_111, i * 1400, 1400)).unwrap());
        }
        assert!(mice_links.len() > 1, "mice must scatter");
        // Beyond the threshold: pinned to one path even with random ports.
        let first = sw.forward(&data_pkt(1, 49_152, 200_000, 1400)).unwrap();
        for port in 49_153..49_153 + 64 {
            assert_eq!(
                sw.forward(&data_pkt(1, port, 200_000 + port as u64, 1400))
                    .unwrap(),
                first,
                "elephant packets must stay pinned"
            );
        }
    }

    #[test]
    fn diffflow_elephant_repins_when_the_group_shrinks() {
        let mut sw = switch_with_two_groups();
        sw.set_path_policy(PathPolicy::diffflow_default());
        let pinned = sw.forward(&data_pkt(1, 50_000, 500_000, 1400)).unwrap();
        // Fail the pinned link: the elephant must move to a surviving sibling
        // immediately (stateless re-pin), never to the removed link.
        assert_eq!(sw.remove_link(pinned), 1);
        for port in 49_152..49_152 + 64 {
            let link = sw
                .forward(&data_pkt(1, port, 500_000 + port as u64, 1400))
                .unwrap();
            assert_ne!(link, pinned, "must never strand on the failed link");
        }
        // And the new pin is again a single stable path.
        let repinned = sw.forward(&data_pkt(1, 50_000, 600_000, 1400)).unwrap();
        for _ in 0..16 {
            assert_eq!(
                sw.forward(&data_pkt(1, 50_000, 600_000, 1400)).unwrap(),
                repinned
            );
        }
    }

    #[test]
    fn default_policy_is_flow_hash() {
        let sw = Switch::new(NodeId(1), SwitchLayer::Core, 1, 0);
        assert_eq!(sw.path_policy(), PathPolicy::FlowHash);
        assert_eq!(PathPolicy::FlowHash.label(), "ecmp");
        assert_eq!(PathPolicy::PerPacketScatter.label(), "scatter");
        assert_eq!(PathPolicy::diffflow_default().label(), "diffflow");
        assert_eq!(
            PathPolicy::diffflow_default(),
            PathPolicy::DiffFlow {
                elephant_threshold: 100_000
            }
        );
    }

    #[test]
    fn route_stable_matches_forward_for_pinned_traffic() {
        let mut sw = switch_with_two_groups();
        // Flow-hash ECMP: identical member, and no forwarding state touched.
        for port in 49_152..49_152 + 32 {
            let p = pkt(1, port);
            let stable = sw.route_stable(&p);
            assert_eq!(stable, sw.forward(&p));
        }
        // DiffFlow elephants (data_seq past the threshold) pin identically.
        sw.set_path_policy(PathPolicy::diffflow_default());
        for port in 49_152..49_152 + 32 {
            let p = data_pkt(1, port, 500_000, 1400);
            assert_eq!(sw.route_stable(&p), sw.forward(&p));
        }
        // Unknown destinations stay unroutable (and are not counted).
        let no_route_before = sw.stats().no_route;
        assert_eq!(sw.route_stable(&pkt(3, 50_000)), None);
        assert_eq!(sw.stats().no_route, no_route_before);
    }

    #[test]
    fn remove_link_shrinks_groups_but_never_empties_them() {
        let mut sw = switch_with_two_groups();
        // LinkId(1) is in the four-member up group: removable.
        assert_eq!(sw.remove_link(LinkId(1)), 1);
        assert_eq!(sw.path_count(Addr(1)), 3);
        // LinkId(7) is the sole member of the down group: protected.
        assert_eq!(sw.remove_link(LinkId(7)), 0);
        assert_eq!(sw.path_count(Addr(0)), 1);
        // Removing an absent link is a no-op.
        assert_eq!(sw.remove_link(LinkId(99)), 0);
        // Forwarding never selects the removed link any more.
        for port in 49152..49152 + 256 {
            assert_ne!(sw.forward(&pkt(1, port)), Some(LinkId(1)));
        }
    }
}
