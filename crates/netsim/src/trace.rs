//! Simulation tracing: queue-occupancy sampling and per-flow packet
//! accounting.
//!
//! The paper's evaluation relies on quantities that are only visible inside
//! the network — how full the fabric queues get, how many packets of a given
//! flow each layer carries — in addition to the endpoint-visible flow
//! completion times. [`QueueMonitor`] samples queue depths at a fixed cadence
//! (driven by the experiment loop), and [`LinkSnapshot`] captures per-link
//! packet/byte/drop counters so deltas between two instants can be computed.
//! Both are optional: experiments that do not use them pay nothing. (The
//! richer flight-recorder pipeline — decimating ring series, CSV export —
//! lives in the `metrics` crate's `trace` module, on top of the per-link
//! telemetry hook `crate::link::Link::telemetry`.)

use crate::ids::LinkId;
use crate::network::Network;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// One queue-depth sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueSample {
    /// When the sample was taken.
    pub at: SimTime,
    /// Which link's queue.
    pub link: LinkId,
    /// Instantaneous queue depth in packets.
    pub depth_packets: usize,
    /// Instantaneous queue depth in wire bytes.
    pub depth_bytes: u64,
}

/// Samples the occupancy of a chosen set of queues over time.
///
/// Typical use: sample the uplinks of one edge switch every 100 µs to plot
/// queue build-up during an incast, or to compare MPTCP's and MMPTCP's
/// pressure on the fabric.
#[derive(Debug, Default, Clone)]
pub struct QueueMonitor {
    links: Vec<LinkId>,
    samples: Vec<QueueSample>,
}

impl QueueMonitor {
    /// Monitor the given links.
    pub fn new(links: Vec<LinkId>) -> Self {
        QueueMonitor {
            links,
            samples: Vec::new(),
        }
    }

    /// Monitor every link in the network.
    pub fn all_links(network: &Network) -> Self {
        QueueMonitor::new(network.links().iter().map(|l| l.id).collect())
    }

    /// Take one sample of every monitored queue.
    pub fn sample(&mut self, now: SimTime, network: &Network) {
        for &link in &self.links {
            let l = network.link(link);
            self.samples.push(QueueSample {
                at: now,
                link,
                depth_packets: l.queue_len_at(now),
                depth_bytes: 0, // queue byte depth is derivable from packets * MSS; kept cheap
            });
        }
    }

    /// All samples taken so far.
    pub fn samples(&self) -> &[QueueSample] {
        &self.samples
    }

    /// The deepest observed occupancy (packets) of any monitored queue.
    pub fn max_depth(&self) -> usize {
        self.samples
            .iter()
            .map(|s| s.depth_packets)
            .max()
            .unwrap_or(0)
    }

    /// Mean occupancy (packets) of one monitored link across all samples.
    pub fn mean_depth(&self, link: LinkId) -> f64 {
        let depths: Vec<usize> = self
            .samples
            .iter()
            .filter(|s| s.link == link)
            .map(|s| s.depth_packets)
            .collect();
        if depths.is_empty() {
            0.0
        } else {
            depths.iter().sum::<usize>() as f64 / depths.len() as f64
        }
    }

    /// Number of samples taken.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether any samples were taken.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Cumulative per-link transmission snapshot, used to compute deltas between
/// two points in simulated time (e.g. "bytes the core carried while the short
/// flows were active").
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkSnapshot {
    /// (tx_packets, tx_bytes, dropped) per link, indexed by link id.
    pub per_link: Vec<(u64, u64, u64)>,
}

impl LinkSnapshot {
    /// Snapshot the current counters of every link.
    pub fn capture(network: &Network) -> Self {
        LinkSnapshot {
            per_link: network
                .links()
                .iter()
                .map(|l| {
                    let q = l.queue_stats();
                    (l.stats().tx_packets, l.stats().tx_bytes, q.dropped)
                })
                .collect(),
        }
    }

    /// Difference `later - self`, per link. Links added after `self` was taken
    /// are ignored.
    pub fn delta(&self, later: &LinkSnapshot) -> Vec<(u64, u64, u64)> {
        self.per_link
            .iter()
            .zip(later.per_link.iter())
            .map(|(a, b)| (b.0 - a.0, b.1 - a.1, b.2 - a.2))
            .collect()
    }

    /// Total (packets, bytes, drops) transmitted between this snapshot and
    /// `later`.
    pub fn total_delta(&self, later: &LinkSnapshot) -> (u64, u64, u64) {
        self.delta(later)
            .into_iter()
            .fold((0, 0, 0), |acc, d| (acc.0 + d.0, acc.1 + d.1, acc.2 + d.2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Addr, FlowId};
    use crate::link::LinkConfig;
    use crate::packet::Packet;
    use crate::switch::SwitchLayer;

    fn tiny_net() -> (Network, LinkId) {
        let mut net = Network::new();
        let h0 = net.add_host();
        let sw = net.add_switch(SwitchLayer::Edge, 1);
        let (up, _down) = net.add_duplex_link(h0, sw, LinkConfig::default());
        (net, up)
    }

    fn pkt(seq: u64) -> Packet {
        Packet::data(
            Addr(0),
            Addr(0),
            1,
            2,
            FlowId(1),
            0,
            seq,
            seq,
            1400,
            SimTime::ZERO,
        )
    }

    #[test]
    fn queue_monitor_observes_build_up() {
        let (mut net, up) = tiny_net();
        let mut mon = QueueMonitor::new(vec![up]);
        mon.sample(SimTime::ZERO, &net);
        // Three packets: one goes on the wire, two queue behind it.
        for i in 0..3 {
            let _ = net.link_mut(up).offer(SimTime::ZERO, pkt(i));
        }
        mon.sample(SimTime::from_micros(1), &net);
        assert_eq!(mon.len(), 2);
        assert_eq!(mon.max_depth(), 2);
        assert_eq!(mon.mean_depth(up), 1.0);
        assert!(!mon.is_empty());
    }

    #[test]
    fn all_links_monitor_covers_every_link() {
        let (net, _) = tiny_net();
        let mon = QueueMonitor::all_links(&net);
        assert_eq!(mon.links.len(), net.link_count());
    }

    #[test]
    fn snapshots_compute_deltas() {
        let (mut net, up) = tiny_net();
        let before = LinkSnapshot::capture(&net);
        let _ = net.link_mut(up).offer(SimTime::ZERO, pkt(0));
        let after = LinkSnapshot::capture(&net);
        let (pkts, bytes, drops) = before.total_delta(&after);
        assert_eq!(pkts, 1);
        assert_eq!(bytes, 1400 + crate::packet::HEADER_BYTES as u64);
        assert_eq!(drops, 0);
        // Per-link delta places the transmission on the right link.
        let per = before.delta(&after);
        assert_eq!(per[up.index()].0, 1);
    }

    #[test]
    fn empty_monitor_reports_zeroes() {
        let (net, up) = tiny_net();
        let mon = QueueMonitor::new(vec![]);
        assert!(mon.is_empty());
        assert_eq!(mon.max_depth(), 0);
        assert_eq!(mon.mean_depth(up), 0.0);
        let snap = LinkSnapshot::capture(&net);
        assert_eq!(snap.total_delta(&snap), (0, 0, 0));
    }
}
