//! End hosts (servers).
//!
//! A host owns its attachment links (one for single-homed topologies, several
//! for the multi-homed designs the paper's roadmap discusses) and a table of
//! transport agents keyed by flow id. Packet demultiplexing is by flow id,
//! which all subflows of a connection share — this sidesteps the fact that
//! MMPTCP's packet-scatter phase deliberately varies the source port per
//! packet, making classic 5-tuple demux unusable.

use crate::agent::{Agent, AgentCtx, AgentEvent};
use crate::ids::{Addr, FlowId, LinkId, NodeId};
use crate::packet::Packet;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-host counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostStats {
    /// Packets delivered to a local agent.
    pub delivered: u64,
    /// Packets that arrived with no matching agent (counted, not fatal:
    /// e.g. late retransmissions arriving after an experiment tears a flow
    /// down).
    pub unmatched: u64,
    /// Packets that arrived addressed to a different host (indicates a
    /// routing bug; surfaced through statistics and asserted on in tests).
    pub misrouted: u64,
}

/// An end host.
pub struct Host {
    /// This host's node id.
    pub id: NodeId,
    /// This host's network address.
    pub addr: Addr,
    /// Outgoing attachment links (towards edge switches), in attachment order.
    pub uplinks: Vec<LinkId>,
    /// Salt used to pick among multiple uplinks (multi-homed hosts).
    pub ecmp_salt: u64,
    agents: HashMap<FlowId, Box<dyn Agent>>,
    stats: HostStats,
}

impl std::fmt::Debug for Host {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Host")
            .field("id", &self.id)
            .field("addr", &self.addr)
            .field("uplinks", &self.uplinks)
            .field("agents", &self.agents.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Host {
    /// Create a host. Uplinks are attached later by the topology builder.
    pub fn new(id: NodeId, addr: Addr, ecmp_salt: u64) -> Self {
        Host {
            id,
            addr,
            uplinks: Vec::new(),
            ecmp_salt,
            agents: HashMap::new(),
            stats: HostStats::default(),
        }
    }

    /// Attach an outgoing link.
    pub fn attach_uplink(&mut self, link: LinkId) {
        self.uplinks.push(link);
    }

    /// Install an agent under `flow`. Replaces (and returns) any previous
    /// agent registered under the same flow.
    pub fn register_agent(
        &mut self,
        flow: FlowId,
        agent: Box<dyn Agent>,
    ) -> Option<Box<dyn Agent>> {
        self.agents.insert(flow, agent)
    }

    /// Remove the agent registered under `flow`.
    pub fn remove_agent(&mut self, flow: FlowId) -> Option<Box<dyn Agent>> {
        self.agents.remove(&flow)
    }

    /// Number of agents installed.
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// Does an agent exist for `flow`?
    pub fn has_agent(&self, flow: FlowId) -> bool {
        self.agents.contains_key(&flow)
    }

    /// Deliver a packet to the matching agent.
    pub fn deliver(&mut self, ctx: &mut AgentCtx<'_>, packet: Packet) {
        if packet.dst != self.addr {
            self.stats.misrouted += 1;
            return;
        }
        match self.agents.get_mut(&packet.flow) {
            Some(agent) => {
                self.stats.delivered += 1;
                agent.handle(ctx, AgentEvent::Packet(packet));
            }
            None => {
                self.stats.unmatched += 1;
            }
        }
    }

    /// Dispatch a non-packet event (start, timer, finalize) to the agent for
    /// `flow`, if present. Returns whether an agent handled it.
    pub fn dispatch(&mut self, ctx: &mut AgentCtx<'_>, flow: FlowId, event: AgentEvent) -> bool {
        match self.agents.get_mut(&flow) {
            Some(agent) => {
                agent.handle(ctx, event);
                true
            }
            None => false,
        }
    }

    /// Iterate over all flow ids with agents on this host (sorted, so
    /// iteration order is deterministic).
    pub fn agent_flows(&self) -> Vec<FlowId> {
        let mut flows: Vec<FlowId> = self.agents.keys().copied().collect();
        flows.sort_unstable();
        flows
    }

    /// Choose the uplink for an outgoing packet. Single-homed hosts always use
    /// their only uplink; multi-homed hosts hash the packet's 5-tuple so that,
    /// like in the fabric, per-packet source-port randomisation spreads load.
    pub fn select_uplink(&self, packet: &Packet) -> Option<LinkId> {
        match self.uplinks.len() {
            0 => None,
            1 => Some(self.uplinks[0]),
            n => {
                let idx = crate::ecmp::select(packet, self.ecmp_salt, n);
                Some(self.uplinks[idx])
            }
        }
    }

    /// This host's counters.
    pub fn stats(&self) -> HostStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use crate::signal::Signal;
    use crate::time::SimTime;

    struct Counter {
        packets: u32,
        timers: u32,
    }
    impl Agent for Counter {
        fn handle(&mut self, _ctx: &mut AgentCtx<'_>, event: AgentEvent) {
            match event {
                AgentEvent::Packet(_) => self.packets += 1,
                AgentEvent::Timer(_) => self.timers += 1,
                _ => {}
            }
        }
    }

    type Timers = Vec<(SimTime, u64)>;

    fn ctx_parts() -> (SimRng, Vec<Packet>, Timers, Vec<Signal>) {
        (SimRng::new(1), Vec::new(), Vec::new(), Vec::new())
    }

    fn pkt(dst: u32, flow: u64, src_port: u16) -> Packet {
        Packet::data(
            Addr(0),
            Addr(dst),
            src_port,
            80,
            FlowId(flow),
            0,
            0,
            0,
            100,
            SimTime::ZERO,
        )
    }

    #[test]
    fn demux_by_flow_id() {
        let mut host = Host::new(NodeId(5), Addr(2), 0);
        host.register_agent(
            FlowId(1),
            Box::new(Counter {
                packets: 0,
                timers: 0,
            }),
        );
        let (mut rng, mut out, mut timers, mut signals) = ctx_parts();
        let mut ctx = AgentCtx::new(
            SimTime::ZERO,
            FlowId(1),
            &mut rng,
            &mut out,
            &mut timers,
            &mut signals,
        );
        host.deliver(&mut ctx, pkt(2, 1, 50_000));
        host.deliver(&mut ctx, pkt(2, 9, 50_000)); // no such agent
        host.deliver(&mut ctx, pkt(3, 1, 50_000)); // wrong address
        assert_eq!(host.stats().delivered, 1);
        assert_eq!(host.stats().unmatched, 1);
        assert_eq!(host.stats().misrouted, 1);
    }

    #[test]
    fn dispatch_reports_missing_agent() {
        let mut host = Host::new(NodeId(5), Addr(2), 0);
        host.register_agent(
            FlowId(1),
            Box::new(Counter {
                packets: 0,
                timers: 0,
            }),
        );
        let (mut rng, mut out, mut timers, mut signals) = ctx_parts();
        let mut ctx = AgentCtx::new(
            SimTime::ZERO,
            FlowId(1),
            &mut rng,
            &mut out,
            &mut timers,
            &mut signals,
        );
        assert!(host.dispatch(&mut ctx, FlowId(1), AgentEvent::Timer(0)));
        assert!(!host.dispatch(&mut ctx, FlowId(2), AgentEvent::Timer(0)));
    }

    #[test]
    fn register_remove_and_list() {
        let mut host = Host::new(NodeId(5), Addr(2), 0);
        host.register_agent(
            FlowId(3),
            Box::new(Counter {
                packets: 0,
                timers: 0,
            }),
        );
        host.register_agent(
            FlowId(1),
            Box::new(Counter {
                packets: 0,
                timers: 0,
            }),
        );
        assert_eq!(host.agent_count(), 2);
        assert!(host.has_agent(FlowId(3)));
        assert_eq!(host.agent_flows(), vec![FlowId(1), FlowId(3)]);
        assert!(host.remove_agent(FlowId(3)).is_some());
        assert!(!host.has_agent(FlowId(3)));
        assert_eq!(host.agent_count(), 1);
    }

    #[test]
    fn single_homed_uplink_selection() {
        let mut host = Host::new(NodeId(5), Addr(2), 0);
        assert_eq!(host.select_uplink(&pkt(9, 1, 50_000)), None);
        host.attach_uplink(LinkId(4));
        assert_eq!(host.select_uplink(&pkt(9, 1, 50_000)), Some(LinkId(4)));
    }

    #[test]
    fn multi_homed_uses_both_uplinks() {
        let mut host = Host::new(NodeId(5), Addr(2), 1234);
        host.attach_uplink(LinkId(4));
        host.attach_uplink(LinkId(5));
        let mut seen = std::collections::HashSet::new();
        for port in 49152..49152 + 64 {
            seen.insert(host.select_uplink(&pkt(9, 1, port)).unwrap());
        }
        assert_eq!(seen.len(), 2);
    }
}
