//! Out-of-band signals emitted by transport agents towards the experiment
//! harness (flow lifecycle, retransmission timeouts, phase switches, …).
//!
//! Signals are the simulator's measurement plane: the metrics crate consumes
//! them to compute flow completion times, RTO counts and phase statistics
//! without the transports having to know anything about the experiment.

use crate::ids::FlowId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// An event of interest to the experiment harness / metrics pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Signal {
    /// A sender began transmitting its first segment.
    FlowStarted {
        /// The flow.
        flow: FlowId,
        /// When it started.
        at: SimTime,
        /// Total bytes the application wants to transfer (`u64::MAX` for
        /// unbounded background flows).
        bytes: u64,
    },
    /// A receiver has received (and acknowledged) every byte of the flow.
    FlowCompleted {
        /// The flow.
        flow: FlowId,
        /// When the last byte was received.
        at: SimTime,
        /// Bytes delivered.
        bytes: u64,
    },
    /// A retransmission timeout fired at the sender.
    RetransmissionTimeout {
        /// The flow.
        flow: FlowId,
        /// Subflow on which the timeout occurred.
        subflow: u8,
        /// When it fired.
        at: SimTime,
    },
    /// A fast retransmission was triggered at the sender.
    FastRetransmit {
        /// The flow.
        flow: FlowId,
        /// Subflow on which it occurred.
        subflow: u8,
        /// When.
        at: SimTime,
    },
    /// An MMPTCP connection switched from the packet-scatter phase to the
    /// MPTCP phase.
    PhaseSwitched {
        /// The flow.
        flow: FlowId,
        /// When the switch happened.
        at: SimTime,
        /// Connection-level bytes acknowledged at the moment of switching.
        bytes_sent: u64,
    },
    /// Progress report from a long-running (background) flow, emitted when the
    /// experiment ends so throughput can be computed for unbounded flows.
    FlowProgress {
        /// The flow.
        flow: FlowId,
        /// When the report was taken.
        at: SimTime,
        /// Bytes delivered so far.
        bytes: u64,
    },
    /// A spurious retransmission was detected (the "lost" segment had in fact
    /// been delivered — the hazard of packet scatter reordering).
    SpuriousRetransmit {
        /// The flow.
        flow: FlowId,
        /// Subflow.
        subflow: u8,
        /// When it was detected.
        at: SimTime,
    },
    /// Redundant bytes a sender put on the wire beyond what the application
    /// needed — replica copies (RepFlow/RepSYN) plus retransmissions. Every
    /// bounded sender emits this once when the flow completes (or at
    /// finalize if it never did, measured against the bytes acknowledged by
    /// then), and only when the excess is non-zero — so the metric compares
    /// the wire price of replication- and retransmission-based recovery on
    /// equal terms across transports.
    RedundantBytes {
        /// The flow.
        flow: FlowId,
        /// When the accounting was taken.
        at: SimTime,
        /// Data bytes sent in excess of the flow size.
        bytes: u64,
    },
    /// Flight-recorder sample of one subflow's congestion state, emitted by
    /// the per-path TCP engine after every state-changing activation — but
    /// only when the simulator has flow tracing enabled
    /// ([`crate::AgentCtx::trace_enabled`]); the default is off and then no
    /// sample is ever constructed, so the hot path pays a single branch.
    /// The metrics crate's trace sink turns these into the per-flow cwnd /
    /// RTT / outstanding time series behind the paper's Figure-4-style
    /// plots; the flow-completion pipeline ignores them entirely.
    CwndSample {
        /// The flow.
        flow: FlowId,
        /// Subflow index within the connection (0 = the packet-scatter flow
        /// or the only subflow of a single-path transport).
        subflow: u8,
        /// When the sample was taken.
        at: SimTime,
        /// Congestion window in bytes (truncated from the engine's float).
        cwnd: u64,
        /// Smoothed RTT in microseconds (0 until the first sample exists).
        srtt_us: u64,
        /// Subflow-level bytes in flight.
        outstanding: u64,
        /// Stable label of the congestion controller driving this subflow
        /// ("reno" / "cubic" / "bbr"), so traces distinguish controllers.
        cc: &'static str,
    },
}

impl Signal {
    /// The flow this signal refers to.
    pub fn flow(&self) -> FlowId {
        match self {
            Signal::FlowStarted { flow, .. }
            | Signal::FlowCompleted { flow, .. }
            | Signal::RetransmissionTimeout { flow, .. }
            | Signal::FastRetransmit { flow, .. }
            | Signal::PhaseSwitched { flow, .. }
            | Signal::FlowProgress { flow, .. }
            | Signal::SpuriousRetransmit { flow, .. }
            | Signal::RedundantBytes { flow, .. }
            | Signal::CwndSample { flow, .. } => *flow,
        }
    }

    /// The simulated time at which the signal was emitted.
    pub fn at(&self) -> SimTime {
        match self {
            Signal::FlowStarted { at, .. }
            | Signal::FlowCompleted { at, .. }
            | Signal::RetransmissionTimeout { at, .. }
            | Signal::FastRetransmit { at, .. }
            | Signal::PhaseSwitched { at, .. }
            | Signal::FlowProgress { at, .. }
            | Signal::SpuriousRetransmit { at, .. }
            | Signal::RedundantBytes { at, .. }
            | Signal::CwndSample { at, .. } => *at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_all_variants() {
        let signals = [
            Signal::FlowStarted {
                flow: FlowId(1),
                at: SimTime::from_millis(1),
                bytes: 70_000,
            },
            Signal::FlowCompleted {
                flow: FlowId(2),
                at: SimTime::from_millis(2),
                bytes: 70_000,
            },
            Signal::RetransmissionTimeout {
                flow: FlowId(3),
                subflow: 1,
                at: SimTime::from_millis(3),
            },
            Signal::FastRetransmit {
                flow: FlowId(4),
                subflow: 0,
                at: SimTime::from_millis(4),
            },
            Signal::PhaseSwitched {
                flow: FlowId(5),
                at: SimTime::from_millis(5),
                bytes_sent: 100_000,
            },
            Signal::FlowProgress {
                flow: FlowId(6),
                at: SimTime::from_millis(6),
                bytes: 1,
            },
            Signal::SpuriousRetransmit {
                flow: FlowId(7),
                subflow: 0,
                at: SimTime::from_millis(7),
            },
            Signal::RedundantBytes {
                flow: FlowId(8),
                at: SimTime::from_millis(8),
                bytes: 70_000,
            },
            Signal::CwndSample {
                flow: FlowId(9),
                subflow: 0,
                at: SimTime::from_millis(9),
                cwnd: 14_000,
                srtt_us: 120,
                outstanding: 2_800,
                cc: "reno",
            },
        ];
        for (i, s) in signals.iter().enumerate() {
            assert_eq!(s.flow(), FlowId(i as u64 + 1));
            assert_eq!(s.at(), SimTime::from_millis(i as u64 + 1));
        }
    }
}
