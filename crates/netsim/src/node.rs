//! Network nodes: either a host or a switch.

use crate::host::Host;
use crate::ids::NodeId;
use crate::switch::Switch;

/// A node in the network graph.
#[derive(Debug)]
pub enum Node {
    /// An end host running transport agents.
    Host(Host),
    /// A fabric switch forwarding packets.
    Switch(Switch),
}

impl Node {
    /// This node's id.
    pub fn id(&self) -> NodeId {
        match self {
            Node::Host(h) => h.id,
            Node::Switch(s) => s.id,
        }
    }

    /// Borrow as a host, if it is one.
    pub fn as_host(&self) -> Option<&Host> {
        match self {
            Node::Host(h) => Some(h),
            Node::Switch(_) => None,
        }
    }

    /// Mutably borrow as a host, if it is one.
    pub fn as_host_mut(&mut self) -> Option<&mut Host> {
        match self {
            Node::Host(h) => Some(h),
            Node::Switch(_) => None,
        }
    }

    /// Borrow as a switch, if it is one.
    pub fn as_switch(&self) -> Option<&Switch> {
        match self {
            Node::Switch(s) => Some(s),
            Node::Host(_) => None,
        }
    }

    /// Mutably borrow as a switch, if it is one.
    pub fn as_switch_mut(&mut self) -> Option<&mut Switch> {
        match self {
            Node::Switch(s) => Some(s),
            Node::Host(_) => None,
        }
    }

    /// Is this node a host?
    pub fn is_host(&self) -> bool {
        matches!(self, Node::Host(_))
    }

    /// Is this node a switch?
    pub fn is_switch(&self) -> bool {
        matches!(self, Node::Switch(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Addr;
    use crate::switch::SwitchLayer;

    #[test]
    fn accessors() {
        let host = Node::Host(Host::new(NodeId(1), Addr(0), 0));
        let switch = Node::Switch(Switch::new(NodeId(2), SwitchLayer::Core, 4, 0));
        assert!(host.is_host());
        assert!(!host.is_switch());
        assert!(switch.is_switch());
        assert_eq!(host.id(), NodeId(1));
        assert_eq!(switch.id(), NodeId(2));
        assert!(host.as_host().is_some());
        assert!(host.as_switch().is_none());
        assert!(switch.as_switch().is_some());
        assert!(switch.as_host().is_none());
    }
}
