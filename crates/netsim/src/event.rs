//! Simulation events and the calendar (event queue).
//!
//! The calendar is a hierarchical timing wheel: events in the near future
//! land in fixed-width slots (O(1) schedule/advance), events inside the
//! active slot sit in a small binary heap that resolves exact `(time, seq)`
//! order, and events beyond the wheel horizon wait in an overflow heap that
//! is migrated into the wheel as it turns. The insertion sequence number
//! breaks ties between simultaneous events so processing is FIFO and every
//! run is bit-for-bit reproducible — the pop order is *identical* to the
//! plain binary-heap calendar it replaced ([`BinaryHeapQueue`], kept as a
//! reference for differential tests and benchmarks).
//!
//! Why a wheel: the hot loop of every experiment is `schedule`/`pop` at
//! hundreds of thousands of pending events (one per packet on the wire plus
//! one per armed RTO). A binary heap pays O(log n) per operation on a
//! working set too large for L2; the wheel pays O(1) for everything outside
//! the active ~4 µs slot, and the active slot rarely holds more than a
//! handful of events.

use crate::ids::{FlowId, LinkId, NodeId};
use crate::packet::PacketRef;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled simulation event.
///
/// Kept deliberately small (the `Delivery` payload is an arena handle, not
/// the ~100-byte packet itself) so calendar nodes stay cache-friendly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A packet finishes propagating over `link` and arrives at the link's
    /// destination node.
    Delivery {
        /// Link the packet travelled on.
        link: LinkId,
        /// Arena handle of the packet in flight (see
        /// [`crate::packet::PacketArena`]).
        packet: PacketRef,
    },
    /// The transmitter of `link` finishes serialising the packet (or
    /// back-to-back batch of packets) currently on the wire and may start on
    /// the next queued packet.
    TransmitComplete {
        /// The link whose transmitter became free.
        link: LinkId,
    },
    /// A transport-layer timer (e.g. an RTO) fires for agent `flow` on `node`.
    AgentTimer {
        /// Host the agent lives on.
        node: NodeId,
        /// The agent's flow id.
        flow: FlowId,
        /// Opaque token chosen by the agent when the timer was set.
        token: u64,
    },
    /// The application asks agent `flow` on `node` to start.
    FlowStart {
        /// Host the agent lives on.
        node: NodeId,
        /// The agent's flow id.
        flow: FlowId,
    },
    /// Recompute the fluid fast path's rate shares (see [`crate::fluid`]):
    /// advance fluid flows analytically, process completions and re-derive
    /// per-link max-min allocations. Scheduled by the simulator at flow
    /// handoffs/departures, packet drops on shared links, topology changes
    /// and the fluid refresh interval.
    FluidEpoch,
    /// The experiment harness asked to stop the simulation at this time.
    Stop,
}

/// An event plus its scheduled time and FIFO tie-break sequence number.
#[derive(Debug, Clone, Copy)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. `seq` is unique, so this is a total order.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Width of one wheel slot in nanoseconds (power of two so the slot index is
/// a shift). 4096 ns ≈ the serialisation time of three MTU packets at
/// 1 Gbps, which keeps active-slot heaps small across the studied topologies.
const SLOT_NS: u64 = 1 << 12;
/// Number of slots (power of two). Horizon = `SLOT_NS * NUM_SLOTS` ≈ 8.4 ms,
/// comfortably beyond one RTT; only long RTO timers overflow.
const NUM_SLOTS: usize = 1 << 11;
/// The wheel's time span in nanoseconds.
const SPAN_NS: u64 = SLOT_NS * NUM_SLOTS as u64;

/// The simulator's calendar: timing wheel + active-slot heap + overflow heap.
#[derive(Debug)]
pub struct EventQueue {
    /// Events inside the active slot (and any "late" events scheduled at or
    /// before it), in exact `(time, seq)` order.
    current: BinaryHeap<Scheduled>,
    /// The wheel. `slots[cursor]` is the active slot and is always empty:
    /// events for the active window go straight into `current`.
    slots: Vec<Vec<Scheduled>>,
    /// Ring index of the active slot.
    cursor: usize,
    /// Absolute time (ns) at which the active slot starts.
    slot_start: u64,
    /// Events currently stored in wheel slots (excludes `current`).
    wheel_len: usize,
    /// Events at or beyond the wheel horizon.
    overflow: BinaryHeap<Scheduled>,
    /// Next FIFO tie-break sequence number; doubles as the total ever
    /// scheduled (`len`/`scheduled_total` are derived, never mirrored).
    next_seq: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue {
            current: BinaryHeap::new(),
            slots: (0..NUM_SLOTS).map(|_| Vec::new()).collect(),
            cursor: 0,
            slot_start: 0,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// The wheel horizon: events at or beyond this time go to the overflow
    /// heap.
    fn horizon(&self) -> u64 {
        self.slot_start.saturating_add(SPAN_NS)
    }

    /// Schedule `event` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let s = Scheduled { at, seq, event };
        self.place(s);
    }

    /// Put a scheduled event into the right tier.
    fn place(&mut self, s: Scheduled) {
        let t = s.at.as_nanos();
        if t < self.slot_start.saturating_add(SLOT_NS) {
            // Active slot (or earlier — tolerated; the heap orders it
            // correctly and it will pop before everything else).
            self.current.push(s);
        } else if t < self.horizon() {
            let idx = ((t - self.slot_start) / SLOT_NS) as usize;
            debug_assert!((1..NUM_SLOTS).contains(&idx));
            let ring = (self.cursor + idx) & (NUM_SLOTS - 1);
            self.slots[ring].push(s);
            self.wheel_len += 1;
        } else {
            self.overflow.push(s);
        }
    }

    /// Move overflow events that now fall inside the horizon into the wheel.
    fn migrate_overflow(&mut self) {
        let horizon = self.horizon();
        while let Some(s) = self.overflow.peek() {
            if s.at.as_nanos() >= horizon {
                break;
            }
            let s = self.overflow.pop().expect("peeked");
            self.place(s);
        }
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.pop_at_or_before(SimTime::MAX)
    }

    /// Remove and return the earliest event if its time is at or before
    /// `until`; otherwise leave it pending and return `None`.
    ///
    /// This is the engine's windowed-run primitive: unlike
    /// `peek_time`-then-`pop`, it locates the next event only once (the wheel
    /// may turn to reach it, which is harmless — ordering depends only on
    /// event times, not on the cursor position).
    pub fn pop_at_or_before(&mut self, until: SimTime) -> Option<(SimTime, Event)> {
        loop {
            if let Some(s) = self.current.peek() {
                if s.at > until {
                    return None;
                }
                let s = self.current.pop().expect("peeked");
                return Some((s.at, s.event));
            }
            if self.wheel_len > 0 {
                // Find the next non-empty slot. Every wheel event precedes
                // every overflow event, so it is safe to turn the wheel to it
                // directly; overflow events uncovered by the moving horizon
                // land in strictly later slots.
                let step = (1..=NUM_SLOTS)
                    .find(|i| !self.slots[(self.cursor + i) & (NUM_SLOTS - 1)].is_empty())
                    .expect("wheel_len > 0 but all slots empty");
                self.cursor = (self.cursor + step) & (NUM_SLOTS - 1);
                self.slot_start += step as u64 * SLOT_NS;
                self.migrate_overflow();
                // Drain (rather than take) so each slot keeps its capacity
                // across wheel turns: steady-state churn stays allocation-free.
                let bucket = &mut self.slots[self.cursor];
                self.wheel_len -= bucket.len();
                for s in bucket.drain(..) {
                    self.current.push(s);
                }
                continue;
            }
            if let Some(first) = self.overflow.pop() {
                // The wheel (and `current`) are empty: re-base the wheel at
                // the overflow's earliest event and pull everything inside
                // the new horizon in.
                let t = first.at.as_nanos();
                self.slot_start = t - (t % SLOT_NS);
                self.current.push(first);
                self.migrate_overflow();
                continue;
            }
            return None;
        }
    }

    /// Time of the earliest scheduled event, if any. Does not advance the
    /// wheel.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(s) = self.current.peek() {
            return Some(s.at);
        }
        if self.wheel_len > 0 {
            for i in 1..=NUM_SLOTS {
                let bucket = &self.slots[(self.cursor + i) & (NUM_SLOTS - 1)];
                if let Some(min) = bucket.iter().map(|s| s.at).min() {
                    return Some(min);
                }
            }
            unreachable!("wheel_len > 0 but all slots empty");
        }
        self.overflow.peek().map(|s| s.at)
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.current.len() + self.wheel_len + self.overflow.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled (for engine statistics).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

/// The original binary-heap calendar, kept as the reference implementation:
/// differential tests assert the wheel pops in exactly this order, and the
/// `engine` bench compares the two at depth.
#[derive(Debug, Default)]
pub struct BinaryHeapQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl BinaryHeapQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        BinaryHeapQueue::default()
    }

    /// Schedule `event` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Time of the earliest scheduled event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn stop_at(q: &mut EventQueue, ms: u64) {
        q.schedule(SimTime::from_millis(ms), Event::Stop);
    }

    fn flow_start(flow: u64) -> Event {
        Event::FlowStart {
            node: NodeId(0),
            flow: FlowId(flow),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        stop_at(&mut q, 30);
        stop_at(&mut q, 10);
        stop_at(&mut q, 20);
        let times: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t.as_millis())).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10u64 {
            q.schedule(t, flow_start(i));
        }
        let mut order = Vec::new();
        while let Some((_, ev)) = q.pop() {
            if let Event::FlowStart { flow, .. } = ev {
                order.push(flow.0);
            }
        }
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        stop_at(&mut q, 7);
        stop_at(&mut q, 3);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn far_future_events_cross_the_horizon() {
        let mut q = EventQueue::new();
        // Beyond the ~8.4 ms wheel span: lands in overflow.
        stop_at(&mut q, 1_000);
        stop_at(&mut q, 500);
        stop_at(&mut q, 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
        let times: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t.as_millis())).collect();
        assert_eq!(times, vec![2, 500, 1_000]);
        assert!(q.is_empty());
    }

    #[test]
    fn events_scheduled_while_draining_keep_order() {
        // An event scheduled at the exact time the calendar is currently
        // draining must pop after already-queued events at the same time
        // (FIFO) and before later ones.
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(100);
        q.schedule(t, flow_start(0));
        q.schedule(t + crate::time::SimDuration::from_nanos(1), flow_start(1));
        let (at0, _) = q.pop().unwrap();
        assert_eq!(at0, t);
        // Schedule another event at the same nanosecond as the next one.
        q.schedule(t + crate::time::SimDuration::from_nanos(1), flow_start(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, ev)| match ev {
                Event::FlowStart { flow, .. } => flow.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn bounded_pop_leaves_out_of_window_events_pending() {
        let mut q = EventQueue::new();
        stop_at(&mut q, 10);
        stop_at(&mut q, 500); // overflow tier
                              // Window before the first event: nothing pops, nothing is lost.
        assert_eq!(q.pop_at_or_before(SimTime::from_millis(5)), None);
        assert_eq!(q.len(), 2);
        // Window covering the first event only.
        let (t, _) = q.pop_at_or_before(SimTime::from_millis(10)).unwrap();
        assert_eq!(t, SimTime::from_millis(10));
        assert_eq!(q.pop_at_or_before(SimTime::from_millis(499)), None);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(500)));
        // An unbounded pop still retrieves it.
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_millis(500));
        assert!(q.is_empty());
    }

    #[test]
    fn wheel_matches_reference_heap_on_random_schedules() {
        // Differential test: interleave random schedule/pop operations and
        // assert both calendars produce the identical (time, event) stream.
        for seed in 0..20u64 {
            let mut rng = SimRng::new(seed);
            let mut wheel = EventQueue::new();
            let mut heap = BinaryHeapQueue::new();
            let mut now = 0u64;
            let mut next_flow = 0u64;
            for _round in 0..400 {
                // Burst of schedules at a mix of horizons relative to "now":
                // same-slot, near, in-wheel, and far-overflow times.
                for _ in 0..rng.range(0usize..8) {
                    let dt = match rng.range(0u32..4) {
                        0 => rng.range(0u64..SLOT_NS),
                        1 => rng.range(0u64..100_000),
                        2 => rng.range(0u64..SPAN_NS),
                        _ => rng.range(0u64..10 * SPAN_NS),
                    };
                    let at = SimTime::from_nanos(now + dt);
                    let ev = flow_start(next_flow);
                    next_flow += 1;
                    wheel.schedule(at, ev);
                    heap.schedule(at, ev);
                }
                assert_eq!(wheel.peek_time(), heap.peek_time());
                assert_eq!(wheel.len(), heap.len());
                // Drain a few.
                for _ in 0..rng.range(0usize..6) {
                    let a = wheel.pop();
                    let b = heap.pop();
                    assert_eq!(a, b, "divergent pop (seed {seed})");
                    if let Some((t, _)) = a {
                        now = now.max(t.as_nanos());
                    }
                }
            }
            // Full drain must agree too.
            loop {
                let a = wheel.pop();
                let b = heap.pop();
                assert_eq!(a, b, "divergent drain (seed {seed})");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn len_tracks_across_tiers() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), Event::Stop); // current
        q.schedule(SimTime::from_micros(100), Event::Stop); // wheel
        q.schedule(SimTime::from_secs(1), Event::Stop); // overflow
        assert_eq!(q.len(), 3);
        q.pop();
        assert_eq!(q.len(), 2);
        q.pop();
        q.pop();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 3);
    }
}
