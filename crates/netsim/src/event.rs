//! Simulation events and the calendar (event queue).
//!
//! The event queue is a binary heap ordered by `(time, insertion sequence)`.
//! The insertion sequence guarantees FIFO processing of simultaneous events,
//! which keeps runs bit-for-bit reproducible regardless of heap internals.

use crate::ids::{FlowId, LinkId, NodeId};
use crate::packet::Packet;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled simulation event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A packet finishes propagating over `link` and arrives at the link's
    /// destination node.
    Delivery {
        /// Link the packet travelled on.
        link: LinkId,
        /// The packet itself.
        packet: Packet,
    },
    /// The transmitter of `link` finishes serialising the packet currently on
    /// the wire and may start on the next queued packet.
    TransmitComplete {
        /// The link whose transmitter became free.
        link: LinkId,
    },
    /// A transport-layer timer (e.g. an RTO) fires for agent `flow` on `node`.
    AgentTimer {
        /// Host the agent lives on.
        node: NodeId,
        /// The agent's flow id.
        flow: FlowId,
        /// Opaque token chosen by the agent when the timer was set.
        token: u64,
    },
    /// The application asks agent `flow` on `node` to start.
    FlowStart {
        /// Host the agent lives on.
        node: NodeId,
        /// The agent's flow id.
        flow: FlowId,
    },
    /// The experiment harness asked to stop the simulation at this time.
    Stop,
}

/// An event plus its scheduled time and FIFO tie-break sequence number.
#[derive(Debug, Clone)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The simulator's calendar.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
    scheduled_total: u64,
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedule `event` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Time of the earliest scheduled event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (for engine statistics).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stop_at(q: &mut EventQueue, ms: u64) {
        q.schedule(SimTime::from_millis(ms), Event::Stop);
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        stop_at(&mut q, 30);
        stop_at(&mut q, 10);
        stop_at(&mut q, 20);
        let times: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t.as_millis())).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10u64 {
            q.schedule(
                t,
                Event::FlowStart {
                    node: NodeId(0),
                    flow: FlowId(i),
                },
            );
        }
        let mut order = Vec::new();
        while let Some((_, ev)) = q.pop() {
            if let Event::FlowStart { flow, .. } = ev {
                order.push(flow.0);
            }
        }
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        stop_at(&mut q, 7);
        stop_at(&mut q, 3);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
        assert_eq!(q.scheduled_total(), 2);
    }
}
