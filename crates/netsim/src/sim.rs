//! The discrete-event simulation engine.
//!
//! [`Simulator`] owns the network graph, the event calendar, the clock and
//! the deterministic RNG. It advances by popping the earliest event and
//! dispatching it: packet deliveries to switches (which forward) or hosts
//! (which hand them to transport agents), transmit-complete notifications to
//! links, and timers / start requests to agents.

use crate::agent::{Agent, AgentCtx, AgentEvent};
use crate::event::{Event, EventQueue};
use crate::fluid::{FluidEngine, FluidHandoff};
use crate::ids::{FlowId, LinkId, NodeId};
use crate::link::StartedTransmission;
use crate::network::Network;
use crate::packet::{Packet, PacketArena, PacketRef};
use crate::rng::SimRng;
use crate::signal::Signal;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Engine-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimCounters {
    /// Events processed so far.
    pub events_processed: u64,
    /// Packets delivered to host agents.
    pub delivered_to_hosts: u64,
    /// Packets forwarded by switches.
    pub forwarded: u64,
    /// Packets dropped anywhere (full queues or unroutable).
    pub dropped: u64,
    /// Packets a host could not send because it has no uplink.
    pub unsendable: u64,
}

/// The discrete-event simulator.
pub struct Simulator {
    network: Network,
    queue: EventQueue,
    /// In-flight packets, owned here and referenced from `Delivery` events by
    /// small generational handles.
    arena: PacketArena,
    now: SimTime,
    rng: SimRng,
    signals: Vec<Signal>,
    counters: SimCounters,
    stopped: bool,
    /// When true, every agent activation sees `AgentCtx::trace_enabled()` and
    /// transports emit `Signal::CwndSample` telemetry. Off by default.
    trace_flows: bool,
    // Reusable scratch buffers for agent activations and link bursts (avoids
    // per-event allocation).
    scratch_out: Vec<Packet>,
    scratch_timers: Vec<(SimTime, u64)>,
    scratch_tx: Vec<StartedTransmission>,
    /// The fluid fast path (see [`crate::fluid`]). Dormant — and the packet
    /// engine byte-identical to a build without it — unless a handoff
    /// threshold is installed.
    fluid: FluidEngine,
    /// `Some(threshold)` enables the hybrid engine: transports see the
    /// threshold via [`AgentCtx::fluid_threshold`] and may hand elephant
    /// remainders to the fluid engine.
    fluid_threshold: Option<u64>,
    /// Earliest `FluidEpoch` event currently in the calendar, for
    /// coalescing (stale later events recompute harmlessly).
    fluid_epoch_at: Option<SimTime>,
}

impl Simulator {
    /// Create a simulator over a finished network graph.
    pub fn new(network: Network, seed: u64) -> Self {
        Simulator {
            network,
            queue: EventQueue::new(),
            arena: PacketArena::with_capacity(256),
            now: SimTime::ZERO,
            rng: SimRng::new(seed),
            signals: Vec::new(),
            counters: SimCounters::default(),
            stopped: false,
            trace_flows: false,
            scratch_out: Vec::with_capacity(64),
            scratch_timers: Vec::with_capacity(16),
            scratch_tx: Vec::with_capacity(16),
            fluid: FluidEngine::new(),
            fluid_threshold: None,
            fluid_epoch_at: None,
        }
    }

    /// Enable the hybrid fluid/packet engine with the given elephant byte
    /// threshold, or disable it with `None` (the default — pure packet
    /// mode). With a threshold installed, transports that opt in hand a
    /// flow's remainder to the fluid fast path once it has left slow start
    /// and more than `threshold` bytes remain.
    pub fn set_fluid_threshold(&mut self, threshold: Option<u64>) {
        self.fluid_threshold = threshold;
    }

    /// The hybrid engine's handoff threshold, if enabled.
    pub fn fluid_threshold(&self) -> Option<u64> {
        self.fluid_threshold
    }

    /// Bytes delivered analytically by the fluid fast path so far (the
    /// fluid term of the experiment-level conservation ledger).
    pub fn fluid_delivered_bytes(&self) -> u64 {
        self.fluid.delivered_bytes()
    }

    /// Number of flows currently in fluid mode.
    pub fn fluid_flows_active(&self) -> usize {
        self.fluid.len()
    }

    /// Tell the fluid fast path the topology changed (link failure or
    /// repair): schedules an immediate epoch so paths are re-walked and
    /// shares recomputed. No-op when the hybrid engine is off or idle.
    pub fn notify_topology_changed(&mut self) {
        if self.fluid_threshold.is_some() && !self.fluid.is_empty() {
            let now = self.now;
            self.schedule_fluid_epoch(now);
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The network graph (read access).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The network graph (mutable access, e.g. for installing agents during
    /// set-up or inspecting statistics afterwards).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// The simulator's RNG (for workload generation that wants to share the
    /// experiment seed).
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Engine counters.
    pub fn counters(&self) -> SimCounters {
        self.counters
    }

    /// Signals emitted so far (without draining them).
    pub fn signals(&self) -> &[Signal] {
        &self.signals
    }

    /// Remove and return all signals emitted so far.
    pub fn drain_signals(&mut self) -> Vec<Signal> {
        std::mem::take(&mut self.signals)
    }

    /// Enable flight-recorder flow tracing: every subsequent agent activation
    /// sees [`AgentCtx::trace_enabled`] and transports emit
    /// [`Signal::CwndSample`] telemetry alongside the regular signal stream.
    /// Off by default; leaving it off keeps the engine's behaviour and output
    /// byte-identical to a build without telemetry.
    pub fn set_flow_tracing(&mut self, on: bool) {
        self.trace_flows = on;
    }

    /// Whether flow tracing is currently enabled.
    pub fn flow_tracing(&self) -> bool {
        self.trace_flows
    }

    /// Install `agent` for `flow` on host `host`.
    pub fn register_agent(&mut self, host: NodeId, flow: FlowId, agent: Box<dyn Agent>) {
        self.network.host_mut(host).register_agent(flow, agent);
    }

    /// Schedule agent `flow` on `host` to receive [`AgentEvent::Start`] at `at`.
    pub fn schedule_flow_start(&mut self, at: SimTime, host: NodeId, flow: FlowId) {
        self.queue
            .schedule(at, Event::FlowStart { node: host, flow });
    }

    /// Schedule the simulation to stop at `at` (events after `at` remain in
    /// the calendar but will not be processed by [`Simulator::run`]).
    pub fn schedule_stop(&mut self, at: SimTime) {
        self.queue.schedule(at, Event::Stop);
    }

    /// Number of events waiting in the calendar.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Number of packets currently in flight (owned by the packet arena).
    pub fn in_flight_packets(&self) -> usize {
        self.arena.len()
    }

    /// Whether a `Stop` event has been processed.
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    /// Process a single event. Returns `false` when the calendar is empty or a
    /// stop event was processed.
    pub fn step(&mut self) -> bool {
        let Some((at, event)) = self.queue.pop() else {
            return false;
        };
        self.process(at, event)
    }

    /// Advance the clock to `at` and dispatch one popped event. Returns
    /// `false` if it was a stop event.
    fn process(&mut self, at: SimTime, event: Event) -> bool {
        debug_assert!(at >= self.now, "event scheduled in the past");
        self.now = at;
        self.counters.events_processed += 1;
        match event {
            Event::Delivery { link, packet } => self.handle_delivery(link, packet),
            Event::TransmitComplete { link } => self.handle_transmit_complete(link),
            Event::AgentTimer { node, flow, token } => {
                self.dispatch_agent(node, flow, AgentEvent::Timer(token));
            }
            Event::FlowStart { node, flow } => {
                self.dispatch_agent(node, flow, AgentEvent::Start);
            }
            Event::FluidEpoch => self.handle_fluid_epoch(),
            Event::Stop => {
                self.stopped = true;
                return false;
            }
        }
        true
    }

    /// Run until the calendar is empty or a stop event fires.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until simulated time reaches `until` (inclusive of events at
    /// exactly `until`), the calendar empties, or a stop event fires.
    ///
    /// Unless a stop event fired, the clock is always left at `until` —
    /// including when the calendar empties mid-window or was empty to begin
    /// with — so back-to-back `run_until` calls advance time monotonically
    /// and interval-based harness logic (progress sampling, load injection)
    /// can rely on `now()` afterwards.
    pub fn run_until(&mut self, until: SimTime) {
        while !self.stopped {
            // Bounded pop: locates the next event once (no peek-then-pop
            // double scan of the wheel) and leaves it pending if it lies
            // beyond the window.
            let Some((at, event)) = self.queue.pop_at_or_before(until) else {
                break;
            };
            if !self.process(at, event) {
                break;
            }
        }
        if !self.stopped && self.now < until {
            self.now = until;
        }
    }

    /// Send [`AgentEvent::Finalize`] to every agent on every host so they can
    /// emit closing measurements (e.g. background-flow progress reports), and
    /// settle every link's batched-drain ledger so link statistics read after
    /// the run reflect exactly the transmissions that started by `now` —
    /// independent of `drain_batch`.
    pub fn finalize(&mut self) {
        let now = self.now;
        for link in self.network.links_mut() {
            link.settle(now);
        }
        if self.fluid_threshold.is_some() && !self.fluid.is_empty() {
            let (completions, progress) = self.fluid.finalize(now, &mut self.network);
            for c in completions {
                self.dispatch_agent(c.node, c.flow, AgentEvent::FluidComplete { bytes: c.bytes });
            }
            // Unfinished fluid flows: the engine reports their cumulative
            // progress (the transport froze its own byte count at handoff).
            self.signals.extend(progress);
        }
        let hosts: Vec<NodeId> = self.network.hosts().to_vec();
        for host in hosts {
            let flows = self
                .network
                .node(host)
                .as_host()
                .map(|h| h.agent_flows())
                .unwrap_or_default();
            for flow in flows {
                self.dispatch_agent(host, flow, AgentEvent::Finalize);
            }
        }
    }

    /// Inject a packet directly at a host's NIC, as if an agent had sent it.
    /// Primarily for tests and hand-crafted scenarios.
    pub fn inject_from_host(&mut self, host: NodeId, packet: Packet) {
        self.send_from_host(host, packet);
    }

    // --- event handlers -------------------------------------------------

    fn handle_delivery(&mut self, link: LinkId, handle: PacketRef) {
        let packet = self.arena.take(handle);
        let to = self.network.link(link).to;
        if self.network.node(to).is_switch() {
            let out = self.network.switch_mut(to).forward(&packet);
            match out {
                Some(next) => {
                    self.counters.forwarded += 1;
                    self.offer_to_link(next, packet);
                }
                None => {
                    self.counters.dropped += 1;
                }
            }
        } else {
            self.counters.delivered_to_hosts += 1;
            let flow = packet.flow;
            self.with_agent_ctx(to, flow, |host, ctx| {
                host.deliver(ctx, packet);
            });
        }
    }

    fn handle_transmit_complete(&mut self, link: LinkId) {
        let mut burst = std::mem::take(&mut self.scratch_tx);
        burst.clear();
        self.network
            .link_mut(link)
            .on_transmit_complete(self.now, &mut burst);
        if let Some(last) = burst.last() {
            // One TransmitComplete for the whole burst, one Delivery per
            // packet. Scheduling the completion first mirrors the order the
            // packet-at-a-time engine used, so `drain_batch = 1` reproduces
            // its event sequence exactly.
            self.queue
                .schedule(last.transmit_done_at, Event::TransmitComplete { link });
            for tx in burst.drain(..) {
                let handle = self.arena.insert(tx.packet);
                self.queue.schedule(
                    tx.delivered_at,
                    Event::Delivery {
                        link,
                        packet: handle,
                    },
                );
            }
        }
        self.scratch_tx = burst;
    }

    fn dispatch_agent(&mut self, node: NodeId, flow: FlowId, event: AgentEvent) {
        self.with_agent_ctx(node, flow, |host, ctx| {
            host.dispatch(ctx, flow, event);
        });
    }

    /// Run `f` with the host and a fresh agent context, then flush whatever
    /// the agent produced (outgoing packets, timers) into the engine.
    fn with_agent_ctx<F>(&mut self, node: NodeId, flow: FlowId, f: F)
    where
        F: FnOnce(&mut crate::host::Host, &mut AgentCtx<'_>),
    {
        let mut out = std::mem::take(&mut self.scratch_out);
        let mut timers = std::mem::take(&mut self.scratch_timers);
        out.clear();
        timers.clear();
        let handoff;
        {
            let host = self.network.host_mut(node);
            let mut ctx = AgentCtx::new(
                self.now,
                flow,
                &mut self.rng,
                &mut out,
                &mut timers,
                &mut self.signals,
            );
            ctx.set_trace_enabled(self.trace_flows);
            ctx.set_fluid_threshold(self.fluid_threshold);
            f(host, &mut ctx);
            handoff = ctx.take_fluid_handoff();
        }
        for packet in out.drain(..) {
            self.send_from_host(node, packet);
        }
        for (at, token) in timers.drain(..) {
            self.queue
                .schedule(at, Event::AgentTimer { node, flow, token });
        }
        self.scratch_out = out;
        self.scratch_timers = timers;
        if let Some(h) = handoff {
            self.accept_fluid_handoff(node, h);
        }
    }

    /// Register a transport's fluid handoff and schedule the arrival epoch.
    fn accept_fluid_handoff(&mut self, node: NodeId, handoff: FluidHandoff) {
        if self.fluid_threshold.is_none() {
            return;
        }
        self.fluid.accept(self.now, node, handoff, &self.network);
        let now = self.now;
        self.schedule_fluid_epoch(now);
    }

    /// Schedule a `FluidEpoch` at `at` unless an earlier one is already in
    /// the calendar.
    fn schedule_fluid_epoch(&mut self, at: SimTime) {
        let at = at.max(self.now);
        if self.fluid_epoch_at.is_none_or(|t| at < t) {
            self.fluid_epoch_at = Some(at);
            self.queue.schedule(at, Event::FluidEpoch);
        }
    }

    /// Run one fluid epoch: advance fluid flows, hand completions back to
    /// their transports, and reschedule.
    fn handle_fluid_epoch(&mut self) {
        if self.fluid_epoch_at == Some(self.now) {
            self.fluid_epoch_at = None;
        }
        if self.fluid_threshold.is_none() || self.fluid.is_empty() {
            return;
        }
        let outcome = self.fluid.epoch(self.now, &mut self.network);
        for c in outcome.completions {
            self.dispatch_agent(c.node, c.flow, AgentEvent::FluidComplete { bytes: c.bytes });
        }
        if let Some(next) = outcome.next_epoch {
            self.schedule_fluid_epoch(next);
        }
    }

    fn send_from_host(&mut self, node: NodeId, packet: Packet) {
        let uplink = self
            .network
            .node(node)
            .as_host()
            .and_then(|h| h.select_uplink(&packet));
        match uplink {
            Some(link) => self.offer_to_link(link, packet),
            None => {
                self.counters.unsendable += 1;
            }
        }
    }

    fn offer_to_link(&mut self, link: LinkId, packet: Packet) {
        let now = self.now;
        let result = self.network.link_mut(link).offer(now, packet);
        match result {
            Ok(Some(tx)) => {
                self.queue
                    .schedule(tx.transmit_done_at, Event::TransmitComplete { link });
                let handle = self.arena.insert(tx.packet);
                self.queue.schedule(
                    tx.delivered_at,
                    Event::Delivery {
                        link,
                        packet: handle,
                    },
                );
            }
            Ok(None) => {}
            Err(_) => {
                self.counters.dropped += 1;
                // A packet drop on a link shared with fluid flows is
                // congestion feedback for them too: Reno-halve their caps
                // at an immediate epoch.
                if self.fluid_threshold.is_some() && self.fluid.note_drop(link) {
                    self.schedule_fluid_epoch(now);
                }
            }
        }
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("pending_events", &self.queue.len())
            .field("counters", &self.counters)
            .field("nodes", &self.network.node_count())
            .field("links", &self.network.link_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Addr;
    use crate::link::LinkConfig;
    use crate::packet::{Packet, PacketKind};
    use crate::switch::SwitchLayer;
    use crate::time::SimDuration;

    /// Minimal stop-and-wait sender used to exercise the engine end to end.
    struct StopAndWaitSender {
        src: Addr,
        dst: Addr,
        flow: FlowId,
        segments_left: u32,
        seq: u64,
        payload: u32,
    }

    impl Agent for StopAndWaitSender {
        fn handle(&mut self, ctx: &mut AgentCtx<'_>, event: AgentEvent) {
            match event {
                AgentEvent::Start => {
                    ctx.signal(Signal::FlowStarted {
                        flow: self.flow,
                        at: ctx.now(),
                        bytes: (self.segments_left * self.payload) as u64,
                    });
                    self.send_next(ctx);
                }
                AgentEvent::Packet(p) if p.kind == PacketKind::Ack => {
                    self.segments_left -= 1;
                    if self.segments_left == 0 {
                        ctx.signal(Signal::FlowCompleted {
                            flow: self.flow,
                            at: ctx.now(),
                            bytes: self.seq,
                        });
                    } else {
                        self.send_next(ctx);
                    }
                }
                _ => {}
            }
        }
    }

    impl StopAndWaitSender {
        fn send_next(&mut self, ctx: &mut AgentCtx<'_>) {
            let pkt = Packet::data(
                self.src,
                self.dst,
                50_000,
                80,
                self.flow,
                0,
                self.seq,
                self.seq,
                self.payload,
                ctx.now(),
            );
            self.seq += self.payload as u64;
            ctx.send(pkt);
        }
    }

    /// Receiver that ACKs every data packet.
    struct AckEverything;
    impl Agent for AckEverything {
        fn handle(&mut self, ctx: &mut AgentCtx<'_>, event: AgentEvent) {
            if let AgentEvent::Packet(p) = event {
                if p.kind == PacketKind::Data {
                    let mut ack = p.reply_template();
                    ack.ack = p.seq + p.payload as u64;
                    ack.sent_at = ctx.now();
                    ctx.send(ack);
                }
            }
        }
    }

    fn two_host_network() -> (Network, NodeId, NodeId) {
        let mut net = Network::new();
        let h0 = net.add_host();
        let h1 = net.add_host();
        let sw = net.add_switch(SwitchLayer::Edge, 2);
        let cfg = LinkConfig {
            rate_bps: 1_000_000_000,
            delay: SimDuration::from_micros(10),
            ..LinkConfig::default()
        };
        let (_h0_up, h0_down) = net.add_duplex_link(h0, sw, cfg);
        let (_h1_up, h1_down) = net.add_duplex_link(h1, sw, cfg);
        // Switch routes: to host 0 via its downlink, to host 1 likewise.
        let sw_ref = net.switch_mut(sw);
        let g0 = sw_ref.add_group(vec![h0_down]);
        let g1 = sw_ref.add_group(vec![h1_down]);
        sw_ref.set_route(Addr(0), g0);
        sw_ref.set_route(Addr(1), g1);
        (net, h0, h1)
    }

    fn run_transfer(segments: u32) -> (Simulator, Vec<Signal>) {
        let (net, h0, h1) = two_host_network();
        let mut sim = Simulator::new(net, 7);
        let flow = FlowId(1);
        sim.register_agent(
            h0,
            flow,
            Box::new(StopAndWaitSender {
                src: Addr(0),
                dst: Addr(1),
                flow,
                segments_left: segments,
                seq: 0,
                payload: 1400,
            }),
        );
        sim.register_agent(h1, flow, Box::new(AckEverything));
        sim.schedule_flow_start(SimTime::from_millis(1), h0, flow);
        sim.run();
        let signals = sim.drain_signals();
        (sim, signals)
    }

    #[test]
    fn end_to_end_stop_and_wait_transfer() {
        let (sim, signals) = run_transfer(10);
        let completed = signals
            .iter()
            .find(|s| matches!(s, Signal::FlowCompleted { .. }))
            .expect("flow should complete");
        assert_eq!(completed.flow(), FlowId(1));
        // 10 data packets and 10 ACKs delivered to hosts.
        assert_eq!(sim.counters().delivered_to_hosts, 20);
        // Every packet traversed exactly one switch.
        assert_eq!(sim.counters().forwarded, 20);
        assert_eq!(sim.counters().dropped, 0);
    }

    #[test]
    fn stop_and_wait_latency_matches_analysis() {
        // One segment: data (1454B wire) + ACK (54B) over two 1 Gbps hops with
        // 10 us propagation each. Completion time relative to start:
        //   data: 2 * (tx 11.632us + prop 10us)  [store-and-forward]
        //   ack:  2 * (tx 0.432us + prop 10us)
        let (_, signals) = run_transfer(1);
        let start = signals
            .iter()
            .find_map(|s| match s {
                Signal::FlowStarted { at, .. } => Some(*at),
                _ => None,
            })
            .unwrap();
        let done = signals
            .iter()
            .find_map(|s| match s {
                Signal::FlowCompleted { at, .. } => Some(*at),
                _ => None,
            })
            .unwrap();
        let elapsed = done - start;
        let data_wire = (1400 + crate::packet::HEADER_BYTES) as u64;
        let ack_wire = crate::packet::HEADER_BYTES as u64;
        let expected = SimDuration::transmission(data_wire, 1_000_000_000) * 2
            + SimDuration::transmission(ack_wire, 1_000_000_000) * 2
            + SimDuration::from_micros(10) * 4;
        assert_eq!(elapsed, expected, "elapsed {elapsed} expected {expected}");
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let (sim_a, sig_a) = run_transfer(25);
        let (sim_b, sig_b) = run_transfer(25);
        assert_eq!(sig_a, sig_b);
        assert_eq!(sim_a.counters(), sim_b.counters());
    }

    #[test]
    fn run_until_respects_bound() {
        let (net, h0, h1) = two_host_network();
        let mut sim = Simulator::new(net, 7);
        let flow = FlowId(1);
        sim.register_agent(
            h0,
            flow,
            Box::new(StopAndWaitSender {
                src: Addr(0),
                dst: Addr(1),
                flow,
                segments_left: 1000,
                seq: 0,
                payload: 1400,
            }),
        );
        sim.register_agent(h1, flow, Box::new(AckEverything));
        sim.schedule_flow_start(SimTime::from_millis(1), h0, flow);
        sim.run_until(SimTime::from_millis(2));
        assert_eq!(sim.now(), SimTime::from_millis(2));
        assert!(sim.pending_events() > 0, "transfer should still be running");
    }

    #[test]
    fn stop_event_halts_the_run() {
        let (net, h0, h1) = two_host_network();
        let mut sim = Simulator::new(net, 7);
        let flow = FlowId(1);
        sim.register_agent(
            h0,
            flow,
            Box::new(StopAndWaitSender {
                src: Addr(0),
                dst: Addr(1),
                flow,
                segments_left: 100_000,
                seq: 0,
                payload: 1400,
            }),
        );
        sim.register_agent(h1, flow, Box::new(AckEverything));
        sim.schedule_flow_start(SimTime::from_millis(1), h0, flow);
        sim.schedule_stop(SimTime::from_millis(5));
        sim.run();
        assert!(sim.is_stopped());
        assert_eq!(sim.now(), SimTime::from_millis(5));
    }

    #[test]
    fn finalize_reaches_agents() {
        struct FinalizeProbe;
        impl Agent for FinalizeProbe {
            fn handle(&mut self, ctx: &mut AgentCtx<'_>, event: AgentEvent) {
                if matches!(event, AgentEvent::Finalize) {
                    ctx.signal(Signal::FlowProgress {
                        flow: ctx.flow(),
                        at: ctx.now(),
                        bytes: 42,
                    });
                }
            }
        }
        let (net, h0, _h1) = two_host_network();
        let mut sim = Simulator::new(net, 1);
        sim.register_agent(h0, FlowId(9), Box::new(FinalizeProbe));
        sim.finalize();
        let signals = sim.drain_signals();
        assert_eq!(signals.len(), 1);
        assert!(matches!(signals[0], Signal::FlowProgress { bytes: 42, .. }));
    }

    #[test]
    fn run_until_advances_clock_when_calendar_empties_mid_window() {
        // Regression: the clock must land on `until` even when the last event
        // fires well before the window ends (and when the calendar was empty
        // to begin with), so interval-driven harness loops see monotone time.
        let (net, h0, h1) = two_host_network();
        let mut sim = Simulator::new(net, 7);
        let flow = FlowId(1);
        sim.register_agent(
            h0,
            flow,
            Box::new(StopAndWaitSender {
                src: Addr(0),
                dst: Addr(1),
                flow,
                segments_left: 1,
                seq: 0,
                payload: 1400,
            }),
        );
        sim.register_agent(h1, flow, Box::new(AckEverything));
        sim.schedule_flow_start(SimTime::from_millis(1), h0, flow);
        // The one-segment transfer finishes within ~1.05 ms; the window ends
        // at 50 ms.
        sim.run_until(SimTime::from_millis(50));
        assert_eq!(sim.pending_events(), 0, "calendar must have emptied");
        assert_eq!(sim.now(), SimTime::from_millis(50));
        // An empty calendar still advances the clock.
        sim.run_until(SimTime::from_millis(80));
        assert_eq!(sim.now(), SimTime::from_millis(80));
        // ... but never backwards.
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.now(), SimTime::from_millis(80));
    }

    #[test]
    fn run_until_leaves_clock_at_stop_time_when_stopped() {
        let (net, _h0, _h1) = two_host_network();
        let mut sim = Simulator::new(net, 7);
        sim.schedule_stop(SimTime::from_millis(3));
        sim.run_until(SimTime::from_millis(50));
        assert!(sim.is_stopped());
        assert_eq!(sim.now(), SimTime::from_millis(3));
    }

    /// A sender that blasts `count` segments in one activation, forcing queue
    /// build-up and batched drains on its uplink.
    struct BurstSender {
        src: Addr,
        dst: Addr,
        flow: FlowId,
        count: u32,
        payload: u32,
    }

    impl Agent for BurstSender {
        fn handle(&mut self, ctx: &mut AgentCtx<'_>, event: AgentEvent) {
            if matches!(event, AgentEvent::Start) {
                for i in 0..self.count {
                    let seq = (i * self.payload) as u64;
                    ctx.send(Packet::data(
                        self.src,
                        self.dst,
                        50_000,
                        80,
                        self.flow,
                        0,
                        seq,
                        seq,
                        self.payload,
                        ctx.now(),
                    ));
                }
            }
        }
    }

    /// Receiver that signals the arrival time of every packet (so tests can
    /// compare full delivery schedules, not just totals).
    struct ArrivalRecorder;
    impl Agent for ArrivalRecorder {
        fn handle(&mut self, ctx: &mut AgentCtx<'_>, event: AgentEvent) {
            if let AgentEvent::Packet(p) = event {
                ctx.signal(Signal::FlowProgress {
                    flow: ctx.flow(),
                    at: ctx.now(),
                    bytes: p.seq,
                });
            }
        }
    }

    fn run_burst(drain_batch: usize, count: u32) -> (SimCounters, Vec<Signal>) {
        let mut net = Network::new();
        let h0 = net.add_host();
        let h1 = net.add_host();
        let sw = net.add_switch(SwitchLayer::Edge, 2);
        let cfg = LinkConfig {
            rate_bps: 1_000_000_000,
            delay: SimDuration::from_micros(10),
            drain_batch,
            // Small queue so the burst also exercises identical drop
            // behaviour under both drain modes.
            queue: crate::queue::QueueConfig {
                limit_packets: 20,
                ..Default::default()
            },
        };
        let (_h0_up, h0_down) = net.add_duplex_link(h0, sw, cfg);
        let (_h1_up, h1_down) = net.add_duplex_link(h1, sw, cfg);
        let sw_ref = net.switch_mut(sw);
        let g0 = sw_ref.add_group(vec![h0_down]);
        let g1 = sw_ref.add_group(vec![h1_down]);
        sw_ref.set_route(Addr(0), g0);
        sw_ref.set_route(Addr(1), g1);

        let mut sim = Simulator::new(net, 11);
        let flow = FlowId(1);
        sim.register_agent(
            h0,
            flow,
            Box::new(BurstSender {
                src: Addr(0),
                dst: Addr(1),
                flow,
                count,
                payload: 1400,
            }),
        );
        sim.register_agent(h1, flow, Box::new(ArrivalRecorder));
        sim.schedule_flow_start(SimTime::from_millis(1), h0, flow);
        sim.run();
        let signals = sim.drain_signals();
        (sim.counters(), signals)
    }

    #[test]
    fn batched_drain_matches_packet_at_a_time_engine() {
        // Same burst through drain_batch = 1 (the legacy engine, one
        // TransmitComplete per packet) and drain_batch = 8: every packet must
        // arrive at the same simulated instant with the same drops.
        let (c1, s1) = run_burst(1, 60);
        let (c8, s8) = run_burst(8, 60);
        assert_eq!(s1, s8, "delivery schedule must be identical");
        assert_eq!(c1.delivered_to_hosts, c8.delivered_to_hosts);
        assert_eq!(c1.forwarded, c8.forwarded);
        assert_eq!(c1.dropped, c8.dropped);
        assert!(c1.dropped > 0, "burst should overflow the 20-packet queue");
        // Batching is the whole point: strictly fewer calendar events.
        assert!(
            c8.events_processed < c1.events_processed,
            "batched: {} vs unbatched: {}",
            c8.events_processed,
            c1.events_processed
        );
    }

    #[test]
    fn truncated_run_link_stats_match_packet_at_a_time_engine() {
        // Stop mid-burst and read link stats the way the experiment harness
        // does (finalize, then network stats): the batched engine must report
        // exactly the transmissions that started by the truncation instant,
        // like drain_batch = 1 would.
        let run_truncated = |drain_batch: usize| {
            let mut net = Network::new();
            let h0 = net.add_host();
            let h1 = net.add_host();
            let sw = net.add_switch(SwitchLayer::Edge, 2);
            let cfg = LinkConfig {
                rate_bps: 1_000_000_000,
                delay: SimDuration::from_micros(10),
                drain_batch,
                queue: crate::queue::QueueConfig::default(),
            };
            let (_h0_up, h0_down) = net.add_duplex_link(h0, sw, cfg);
            let (_h1_up, h1_down) = net.add_duplex_link(h1, sw, cfg);
            let sw_ref = net.switch_mut(sw);
            let g0 = sw_ref.add_group(vec![h0_down]);
            let g1 = sw_ref.add_group(vec![h1_down]);
            sw_ref.set_route(Addr(0), g0);
            sw_ref.set_route(Addr(1), g1);
            let mut sim = Simulator::new(net, 3);
            let flow = FlowId(1);
            sim.register_agent(
                h0,
                flow,
                Box::new(BurstSender {
                    src: Addr(0),
                    dst: Addr(1),
                    flow,
                    count: 40,
                    payload: 1400,
                }),
            );
            sim.register_agent(h1, flow, Box::new(ArrivalRecorder));
            sim.schedule_flow_start(SimTime::from_millis(1), h0, flow);
            // 1454B wire = 11.632 us serialisation; truncate mid-way through
            // the third committed burst on the uplink.
            sim.run_until(SimTime::from_millis(1) + SimDuration::from_micros(250));
            sim.finalize();
            let totals = sim
                .network()
                .links()
                .iter()
                .map(|l| l.stats())
                .fold((0u64, 0u64, 0u64), |acc, s| {
                    (acc.0 + s.tx_packets, acc.1 + s.tx_bytes, acc.2 + s.busy_ns)
                });
            totals
        };
        let batched = run_truncated(8);
        let unbatched = run_truncated(1);
        assert_eq!(batched, unbatched, "(tx_packets, tx_bytes, busy_ns)");
        assert!(batched.0 > 0, "some packets must have started by the cut");
    }

    #[test]
    fn in_flight_packets_return_to_arena() {
        let (sim, _signals) = run_transfer(10);
        assert_eq!(sim.in_flight_packets(), 0, "arena must drain with calendar");
    }

    #[test]
    fn unsendable_packets_are_counted() {
        let mut net = Network::new();
        let h0 = net.add_host(); // no uplink
        let mut sim = Simulator::new(net, 1);
        let pkt = Packet::data(
            Addr(0),
            Addr(0),
            1,
            2,
            FlowId(1),
            0,
            0,
            0,
            10,
            SimTime::ZERO,
        );
        sim.inject_from_host(h0, pkt);
        assert_eq!(sim.counters().unsendable, 1);
    }
}
