//! # netsim — deterministic packet-level data-centre network simulator
//!
//! This crate is the substrate underneath the MMPTCP reproduction: a
//! discrete-event simulator with store-and-forward links, drop-tail queues,
//! output-queued switches performing hash-based ECMP, and hosts that run
//! pluggable transport [`Agent`]s.
//!
//! The design deliberately mirrors the slice of ns-3 that the paper's
//! evaluation relies on:
//!
//! * packet granularity by default, so queue build-ups, drops, duplicate
//!   ACKs and retransmission timeouts emerge naturally (an opt-in hybrid
//!   mode moves elephant-flow remainders to the [`fluid`] fast path while
//!   mice and all control traffic stay packet-level);
//! * per-switch ECMP hashing of the 5-tuple, which is what MMPTCP's
//!   source-port randomisation exploits;
//! * a single-threaded, seeded event loop so every experiment is exactly
//!   reproducible.
//!
//! ## Quick tour
//!
//! ```
//! use netsim::prelude::*;
//!
//! // Two hosts connected through one edge switch.
//! let mut net = Network::new();
//! let h0 = net.add_host();
//! let h1 = net.add_host();
//! let sw = net.add_switch(SwitchLayer::Edge, 2);
//! let (_up0, down0) = net.add_duplex_link(h0, sw, LinkConfig::default());
//! let (_up1, down1) = net.add_duplex_link(h1, sw, LinkConfig::default());
//! let s = net.switch_mut(sw);
//! let g0 = s.add_group(vec![down0]);
//! let g1 = s.add_group(vec![down1]);
//! s.set_route(Addr(0), g0);
//! s.set_route(Addr(1), g1);
//!
//! let sim = Simulator::new(net, 42);
//! assert_eq!(sim.network().host_count(), 2);
//! ```
//!
//! Transport protocols (TCP, MPTCP, MMPTCP, DCTCP) live in the `transport`
//! crate; topologies (FatTree, VL2, …) in `topology`; workload generation in
//! `workload`; measurement in `metrics`; and the user-facing experiment API in
//! `mmptcp`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod agent;
pub mod ecmp;
pub mod event;
pub mod fluid;
pub mod host;
pub mod ids;
pub mod link;
pub mod network;
pub mod node;
pub mod packet;
pub mod queue;
pub mod rng;
pub mod signal;
pub mod sim;
pub mod time;
pub mod trace;

pub use agent::{Agent, AgentCtx, AgentEvent};
pub use event::{BinaryHeapQueue, Event, EventQueue};
pub use fluid::{FluidCc, FluidCompletion, FluidEngine, FluidHandoff};
pub use ids::{Addr, FlowId, LinkId, NodeId};
pub use link::{Link, LinkConfig, LinkStats, LinkTelemetry};
pub use network::Network;
pub use node::Node;
pub use packet::{Ecn, Packet, PacketArena, PacketKind, PacketRef, DEFAULT_MSS, HEADER_BYTES};
pub use queue::{DropTailQueue, EnqueueOutcome, QueueConfig, QueueStats};
pub use rng::SimRng;
pub use signal::Signal;
pub use sim::{SimCounters, Simulator};
pub use switch::{PathPolicy, Switch, SwitchLayer, SwitchStats};
pub use time::{SimDuration, SimTime};
pub use trace::{LinkSnapshot, QueueMonitor, QueueSample};

pub mod switch;

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::agent::{Agent, AgentCtx, AgentEvent};
    pub use crate::ids::{Addr, FlowId, LinkId, NodeId};
    pub use crate::link::LinkConfig;
    pub use crate::network::Network;
    pub use crate::packet::{Ecn, Packet, PacketKind, DEFAULT_MSS, HEADER_BYTES};
    pub use crate::queue::QueueConfig;
    pub use crate::rng::SimRng;
    pub use crate::signal::Signal;
    pub use crate::sim::Simulator;
    pub use crate::switch::{PathPolicy, SwitchLayer};
    pub use crate::time::{SimDuration, SimTime};
}
