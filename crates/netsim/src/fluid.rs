//! Flow-level fluid fast path for elephant flows.
//!
//! Long bulk transfers dominate the event count of packet-level simulation:
//! a 100 MB flow is tens of thousands of delivery/ACK events that mostly
//! ack-clock a steady congestion window. The fluid engine removes that cost
//! by modelling *fluid-mode* flows as rates instead of packets: a
//! [`FluidEngine`] computes per-link max-min fair shares for every fluid
//! flow (progressive water-filling, each flow additionally capped by a
//! pacing rate derived from its transport's cwnd/RTT at handoff) and
//! advances delivered bytes analytically between *epochs*. Mice, handshakes
//! and all control traffic stay packet-level.
//!
//! ## Epochs
//!
//! Rates only change at epochs, so between epochs delivered bytes are a
//! closed-form `rate × Δt`. An epoch is scheduled when
//!
//! * a flow is handed off to fluid mode (arrival),
//! * a fluid flow finishes (departure),
//! * a packet-mode drop happens on a link carried by a fluid flow
//!   (congestion feedback: the affected flows' rate caps are halved,
//!   Reno-style),
//! * the topology changes (link failure/repair — paths are re-walked), or
//! * a refresh interval expires (rate caps grow additively between losses,
//!   approximating congestion avoidance, so shares must be recomputed
//!   periodically even in the absence of discrete events).
//!
//! ## Sharing capacity with the packet world
//!
//! Each link's fluid capacity is its configured rate minus an EWMA of the
//! packet-level bytes it recently carried (floored at 10 % of the rate so
//! fluid flows always make progress). In the other direction, the sum of
//! fluid rates allocated on a link is installed as a *reservation*
//! ([`crate::link::Link::set_fluid_reservation`]) that shrinks the
//! serialisation rate packet-mode traffic sees, so the two worlds contend
//! for the same capacity rather than both seeing the full link.
//!
//! ## Determinism (rule #7)
//!
//! All engine state lives in `BTreeMap`/`BTreeSet` keyed by `FlowId` /
//! `LinkId`, every epoch recomputation iterates in key order, and no wall
//! clock or unkeyed hash map is consulted anywhere — epoch recomputation
//! order is a pure function of the seed-determined event sequence, so
//! hybrid runs are bit-for-bit reproducible like packet runs.

use crate::ids::{FlowId, LinkId, NodeId};
use crate::network::Network;
use crate::packet::Packet;
use crate::signal::Signal;
use crate::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// Shares must be recomputed at least this often while fluid flows are
/// active: rate caps grow additively (congestion avoidance) and the packet
/// traffic EWMA decays, so a stale allocation drifts from fair.
pub const FLUID_REFRESH: SimDuration = SimDuration::from_millis(2);

/// Fraction of a link's rate fluid flows can never take (the packet world
/// always keeps at least this much), and symmetrically the floor of the
/// fluid capacity on a fully packet-busy link.
const RESERVE_HEADROOM: f64 = 0.10;

/// Which congestion controller's growth/backoff rules a fluid flow's pacing
/// cap follows between epochs — the flow-level approximation of the
/// transport's `CongestionController` (netsim cannot depend on the transport
/// crate, so the axis is mirrored here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FluidCc {
    /// AIMD: halve the cap on a shared-link drop, grow one MSS per RTT
    /// otherwise. The pre-refactor behaviour, pinned by the goldens.
    #[default]
    Reno,
    /// CUBIC: 0.7 backoff on drop, then cubic cap growth
    /// `W(t) = C·(t−K)³ + W_max` translated to rate space via the base RTT.
    Cubic,
    /// BBR: gentle 0.7 backoff on drop (loss is not the primary signal),
    /// multiplicative probing between drops — the 1.25× probe phase
    /// amortised over the 8-phase gain cycle.
    Bbr,
}

/// A transport's request to move the rest of a flow into fluid mode,
/// produced via [`crate::agent::AgentCtx::request_fluid_handoff`].
#[derive(Debug, Clone)]
pub struct FluidHandoff {
    /// A representative *data* packet for the remainder of the transfer:
    /// its addresses/ports drive the path walk (ECMP hashes), and its
    /// `data_seq` lets size-aware switch policies (DiffFlow) pin it like
    /// the real elephant packets they stand for.
    pub template: Packet,
    /// Bytes still to deliver in fluid mode (total minus bytes already sent
    /// at packet level; in-flight packets drain normally in parallel).
    pub remaining: u64,
    /// Connection-level bytes already handled at packet level when the
    /// handoff happened; progress reports add fluid-delivered bytes on top.
    pub base_bytes: u64,
    /// Initial pacing-rate cap in bits/s, derived from the transport's
    /// cwnd/RTT (see [`pacing_rate_bps`]) so congestion-control behaviour
    /// is approximated rather than bypassed.
    pub rate_cap_bps: u64,
    /// Base (minimum observed) RTT at handoff; drives the additive cap
    /// growth between drop epochs. Transports pass min-RTT rather than
    /// smoothed RTT: srtt is queue-inflated when elephants hand off, and
    /// a frozen inflated value would throttle additive increase for the
    /// rest of the flow's life — a distortion packet mode escapes through
    /// ack clocking as the queue drains, but a fluid model cannot.
    pub srtt: SimDuration,
    /// The transport's segment size (additive growth is one MSS per RTT).
    pub mss: u32,
    /// The congestion-control rule set the cap follows between epochs.
    pub cc: FluidCc,
}

/// Translate a congestion window and smoothed RTT into a pacing rate in
/// bits per second — the rate cap a fluid flow starts from at handoff.
pub fn pacing_rate_bps(cwnd_bytes: f64, srtt: SimDuration) -> u64 {
    let srtt_s = srtt.as_secs_f64().max(1e-6);
    ((cwnd_bytes * 8.0) / srtt_s) as u64
}

/// A flow completion discovered by an epoch: the engine's caller dispatches
/// [`crate::agent::AgentEvent::FluidComplete`] to the owning agent, which
/// emits the `FlowCompleted` signal itself (keeping signal emission with the
/// transport, exactly as in packet mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FluidCompletion {
    /// Host the sending agent lives on.
    pub node: NodeId,
    /// The completed flow.
    pub flow: FlowId,
    /// Bytes the fluid engine delivered for this flow (its `remaining` at
    /// handoff).
    pub bytes: u64,
}

/// Result of one epoch recomputation.
#[derive(Debug, Default)]
pub struct EpochOutcome {
    /// Flows that finished their fluid remainder during this epoch.
    pub completions: Vec<FluidCompletion>,
    /// When the next epoch must run (earliest projected completion or the
    /// refresh interval), or `None` when no fluid flows remain.
    pub next_epoch: Option<SimTime>,
}

/// Per-flow fluid state.
#[derive(Debug, Clone)]
struct FluidFlow {
    node: NodeId,
    template: Packet,
    path: Vec<LinkId>,
    remaining: u64,
    delivered: u64,
    base_bytes: u64,
    /// Pacing cap (congestion-control approximation), adjusted at epochs.
    cap_bps: f64,
    /// Currently allocated max-min share.
    rate_bps: u64,
    srtt: SimDuration,
    mss: u32,
    last_advance: SimTime,
    /// Cap dynamics rule set (mirrors the transport's controller).
    cc: FluidCc,
    /// CUBIC state: cap (bps) at the last backoff.
    cc_wmax_bps: f64,
    /// CUBIC state: seconds elapsed in the current growth epoch.
    cc_epoch_s: f64,
}

impl FluidFlow {
    /// Floor for the pacing cap: one MSS per RTT, i.e. the slowest a live
    /// TCP connection would pace itself.
    fn min_cap_bps(&self) -> f64 {
        let srtt_s = self.srtt.as_secs_f64().max(1e-6);
        (self.mss as f64 * 8.0) / srtt_s
    }
}

/// Per-link view of recent packet-level traffic, used to size the fluid
/// capacity left over on a shared link.
#[derive(Debug, Clone, Copy)]
struct LinkLoad {
    last_tx_bytes: u64,
    last_sample: SimTime,
    ewma_bps: f64,
}

/// The fluid-flow rate solver. Owned by the simulator; all mutation happens
/// through the epoch entry points so state stays consistent with the event
/// calendar.
#[derive(Debug, Default)]
pub struct FluidEngine {
    flows: BTreeMap<FlowId, FluidFlow>,
    /// Packet-traffic samplers for links currently used by fluid flows.
    loads: BTreeMap<LinkId, LinkLoad>,
    /// Links fluid flows currently cross (rebuilt each epoch; paths only
    /// change at epochs, so it is accurate in between).
    users: BTreeMap<LinkId, u32>,
    /// Links with a packet-mode drop since the last epoch.
    dropped: BTreeSet<LinkId>,
    /// Links that currently carry a non-zero installed reservation.
    reserved: BTreeSet<LinkId>,
    delivered_bytes: u64,
}

impl FluidEngine {
    /// Create an empty engine.
    pub fn new() -> Self {
        FluidEngine::default()
    }

    /// Number of flows currently in fluid mode.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether any flow is in fluid mode.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Total bytes delivered analytically across all fluid flows so far —
    /// the new term of the experiment-level conservation ledger.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes
    }

    /// The currently allocated rate of a fluid flow, if it is one.
    pub fn flow_rate_bps(&self, flow: FlowId) -> Option<u64> {
        self.flows.get(&flow).map(|f| f.rate_bps)
    }

    /// Does any fluid flow currently cross `link`?
    pub fn uses_link(&self, link: LinkId) -> bool {
        self.users.contains_key(&link)
    }

    /// Record a packet-mode drop on `link`. Returns `true` (and marks the
    /// link for Reno-style cap halving at the next epoch) if a fluid flow
    /// shares it — the caller then schedules an immediate epoch.
    pub fn note_drop(&mut self, link: LinkId) -> bool {
        if self.uses_link(link) {
            self.dropped.insert(link);
            true
        } else {
            false
        }
    }

    /// Accept a transport's handoff: walk the flow's stable path through
    /// the current topology and start fluid accounting at `now`. The caller
    /// must schedule an epoch at `now` so the new flow gets a rate.
    pub fn accept(&mut self, now: SimTime, node: NodeId, handoff: FluidHandoff, network: &Network) {
        let flow = handoff.template.flow;
        let path = walk_path(network, node, &handoff.template);
        let srtt = handoff.srtt;
        let f = FluidFlow {
            node,
            template: handoff.template,
            path,
            remaining: handoff.remaining,
            delivered: 0,
            base_bytes: handoff.base_bytes,
            cap_bps: (handoff.rate_cap_bps as f64).max(1.0),
            rate_bps: 0,
            srtt: if srtt.is_zero() {
                SimDuration::from_micros(100)
            } else {
                srtt
            },
            mss: handoff.mss.max(1),
            last_advance: now,
            cc: handoff.cc,
            cc_wmax_bps: (handoff.rate_cap_bps as f64).max(1.0),
            cc_epoch_s: 0.0,
        };
        for l in &f.path {
            *self.users.entry(*l).or_insert(0) += 1;
        }
        self.flows.insert(flow, f);
    }

    /// Run one epoch at `now`: advance delivered bytes under the old rates,
    /// collect completions, apply congestion feedback to the rate caps,
    /// re-walk paths (picking up topology changes), recompute max-min fair
    /// shares and install the matching link reservations.
    pub fn epoch(&mut self, now: SimTime, network: &mut Network) -> EpochOutcome {
        let mut out = EpochOutcome::default();

        // 1. Advance everyone to `now` under the rates set at the previous
        //    epoch, and adjust the pacing caps: halve on paths that saw a
        //    packet drop (Reno), otherwise grow by one MSS per RTT
        //    (congestion avoidance).
        let dropped = std::mem::take(&mut self.dropped);
        let mut delivered_delta = 0u64;
        for f in self.flows.values_mut() {
            let dt = now.duration_since(f.last_advance);
            if !dt.is_zero() {
                if f.rate_bps > 0 {
                    let bytes =
                        (f.rate_bps as u128 * dt.as_nanos() as u128 / 8_000_000_000u128) as u64;
                    let bytes = bytes.min(f.remaining - f.delivered);
                    f.delivered += bytes;
                    delivered_delta += bytes;
                }
                let hit = f.path.iter().any(|l| dropped.contains(l));
                match f.cc {
                    FluidCc::Reno => {
                        if hit {
                            f.cap_bps = (f.cap_bps / 2.0).max(f.min_cap_bps());
                        } else {
                            // d(rate)/dt of one-MSS-per-RTT additive increase.
                            let srtt_s = f.srtt.as_secs_f64().max(1e-6);
                            f.cap_bps += 8.0 * f.mss as f64 * dt.as_secs_f64() / (srtt_s * srtt_s);
                        }
                    }
                    FluidCc::Cubic => {
                        if hit {
                            f.cc_wmax_bps = f.cap_bps;
                            f.cap_bps = (f.cap_bps * 0.7).max(f.min_cap_bps());
                            f.cc_epoch_s = 0.0;
                        } else {
                            // RFC 8312's W(t) = C·(t−K)³ + W_max, windows in
                            // bytes converted to rates via the base RTT.
                            f.cc_epoch_s += dt.as_secs_f64();
                            let srtt_s = f.srtt.as_secs_f64().max(1e-6);
                            let c_bytes = 0.4 * f.mss as f64;
                            let wmax_bytes = f.cc_wmax_bps * srtt_s / 8.0;
                            let k = (wmax_bytes * 0.3 / c_bytes).cbrt();
                            let w = c_bytes * (f.cc_epoch_s - k).powi(3) + wmax_bytes;
                            f.cap_bps = (w * 8.0 / srtt_s).max(f.min_cap_bps());
                        }
                    }
                    FluidCc::Bbr => {
                        if hit {
                            f.cap_bps = (f.cap_bps * 0.7).max(f.min_cap_bps());
                        } else {
                            // The 1.25× probe phase, amortised over the
                            // 8-phase gain cycle (one phase per RTT).
                            let srtt_s = f.srtt.as_secs_f64().max(1e-6);
                            let gain = 1.0 + 0.25 * (dt.as_secs_f64() / (8.0 * srtt_s)).min(1.0);
                            f.cap_bps *= gain;
                        }
                    }
                }
                f.last_advance = now;
            }
        }
        self.delivered_bytes += delivered_delta;

        // 2. Completions: fluid remainder fully delivered.
        let done: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, f)| f.delivered >= f.remaining)
            .map(|(id, _)| *id)
            .collect();
        for id in done {
            let f = self.flows.remove(&id).expect("listed");
            out.completions.push(FluidCompletion {
                node: f.node,
                flow: id,
                bytes: f.remaining,
            });
        }

        // 3. Re-walk every path: link failures (or repairs) re-route flows
        //    exactly like the stateless re-pin the packet engine performs.
        //    Epochs are rare, so the walk cost is negligible.
        for f in self.flows.values_mut() {
            let path = walk_path(network, f.node, &f.template);
            if !path.is_empty() {
                f.path = path;
            }
        }

        // 4. Rebuild link membership and refresh the packet-traffic EWMAs
        //    for links in use.
        self.users.clear();
        for f in self.flows.values() {
            for l in &f.path {
                *self.users.entry(*l).or_insert(0) += 1;
            }
        }
        self.loads.retain(|l, _| self.users.contains_key(l));
        let mut caps: BTreeMap<LinkId, f64> = BTreeMap::new();
        for (&link, _) in self.users.iter() {
            let stats = network.link(link).stats();
            let rate = network.link(link).config.rate_bps as f64;
            let load = self.loads.entry(link).or_insert(LinkLoad {
                last_tx_bytes: stats.tx_bytes,
                last_sample: now,
                ewma_bps: 0.0,
            });
            let dt = now.duration_since(load.last_sample);
            if !dt.is_zero() {
                let delta = stats.tx_bytes.saturating_sub(load.last_tx_bytes);
                let inst = delta as f64 * 8e9 / dt.as_nanos() as f64;
                load.ewma_bps = 0.5 * load.ewma_bps + 0.5 * inst;
                load.last_tx_bytes = stats.tx_bytes;
                load.last_sample = now;
            }
            let cap = (rate - load.ewma_bps).max(rate * RESERVE_HEADROOM);
            caps.insert(link, cap);
        }

        // 5. Max-min fair shares with per-flow caps (progressive filling),
        //    iterated strictly in key order for determinism.
        let alloc = water_fill(&self.flows, &caps);
        for (id, rate) in &alloc {
            if let Some(f) = self.flows.get_mut(id) {
                f.rate_bps = (*rate).max(1.0) as u64;
            }
        }

        // 6. Install reservations: packet traffic on a shared link now
        //    serialises at `rate - reservation`. Links no longer shared get
        //    their reservation cleared.
        let mut reserved_now: BTreeSet<LinkId> = BTreeSet::new();
        let mut link_sum: BTreeMap<LinkId, f64> = BTreeMap::new();
        for (id, f) in self.flows.iter() {
            let rate = alloc.get(id).copied().unwrap_or(0.0);
            for l in &f.path {
                *link_sum.entry(*l).or_insert(0.0) += rate;
            }
        }
        for (&link, &sum) in link_sum.iter() {
            let rate = network.link(link).config.rate_bps as f64;
            let reservation = sum.min(rate * (1.0 - RESERVE_HEADROOM)) as u64;
            network.link_mut(link).set_fluid_reservation(reservation);
            if reservation > 0 {
                reserved_now.insert(link);
            }
        }
        for &link in self.reserved.difference(&reserved_now) {
            network.link_mut(link).set_fluid_reservation(0);
        }
        self.reserved = reserved_now;

        // 7. Next epoch: earliest projected completion, bounded by the
        //    refresh interval. Keeping an epoch scheduled while flows are
        //    active also guarantees the calendar never runs dry under a
        //    live fluid flow.
        if !self.flows.is_empty() {
            let mut next = now + FLUID_REFRESH;
            for f in self.flows.values() {
                let left = f.remaining - f.delivered;
                if f.rate_bps > 0 {
                    // Round *up*: rounding down would produce an epoch at
                    // which `rate × Δt` truncates to less than `left`, and
                    // the final byte would respin epochs every 8e9/rate ns
                    // forever instead of completing.
                    let ns = (left as u128 * 8_000_000_000u128).div_ceil(f.rate_bps as u128) as u64;
                    next = next.min(now + SimDuration::from_nanos(ns.max(1)));
                }
            }
            out.next_epoch = Some(next);
        }
        out
    }

    /// End-of-run settlement: advance everyone to `now` one last time.
    /// Flows that finished are returned as completions (the caller
    /// dispatches `FluidComplete` so the transport emits `FlowCompleted`);
    /// unfinished flows get a `FlowProgress` signal with their cumulative
    /// (packet base + fluid) bytes, standing in for the progress report the
    /// transport would have emitted in packet mode.
    pub fn finalize(
        &mut self,
        now: SimTime,
        network: &mut Network,
    ) -> (Vec<FluidCompletion>, Vec<Signal>) {
        let out = self.epoch(now, network);
        let mut progress = Vec::new();
        for (id, f) in self.flows.iter() {
            progress.push(Signal::FlowProgress {
                flow: *id,
                at: now,
                bytes: f.base_bytes + f.delivered,
            });
        }
        (out.completions, progress)
    }
}

/// Walk the stable path a data packet with `template`'s headers takes from
/// host `src` to its destination under the current routing state. Empty on
/// any routing anomaly (the flow then runs cap-limited, unconstrained by
/// links — it cannot happen on the well-formed topologies the builders
/// produce, where groups are never empty).
fn walk_path(network: &Network, src: NodeId, template: &Packet) -> Vec<LinkId> {
    let Some(host) = network.node(src).as_host() else {
        return Vec::new();
    };
    let Some(mut link) = host.select_uplink(template) else {
        return Vec::new();
    };
    let mut path = Vec::new();
    // Hop bound well above any fabric diameter we build; trips cycles.
    for _ in 0..32 {
        path.push(link);
        let to = network.link(link).to;
        match network.node(to).as_switch() {
            Some(sw) => match sw.route_stable(template) {
                Some(next) => link = next,
                None => return Vec::new(),
            },
            None => return path, // reached a host
        }
    }
    Vec::new()
}

/// Progressive water-filling: max-min fair shares over `caps` with each
/// flow additionally bounded by its pacing cap. Deterministic: all
/// iteration is in `BTreeMap` key order and each round freezes at least one
/// flow, so the loop runs at most `flows.len()` rounds.
fn water_fill(
    flows: &BTreeMap<FlowId, FluidFlow>,
    caps: &BTreeMap<LinkId, f64>,
) -> BTreeMap<FlowId, f64> {
    let mut alloc: BTreeMap<FlowId, f64> = BTreeMap::new();
    let mut remaining: BTreeMap<LinkId, f64> = caps.clone();
    let mut active_on: BTreeMap<LinkId, u32> = BTreeMap::new();
    let mut active: BTreeSet<FlowId> = BTreeSet::new();
    for (id, f) in flows.iter() {
        active.insert(*id);
        for l in &f.path {
            if caps.contains_key(l) {
                *active_on.entry(*l).or_insert(0) += 1;
            }
        }
    }
    // Each active flow's current limit: its cap, or the fair share of its
    // tightest link.
    fn limit_of(
        f: &FluidFlow,
        remaining: &BTreeMap<LinkId, f64>,
        active_on: &BTreeMap<LinkId, u32>,
    ) -> f64 {
        let mut lim = f.cap_bps;
        for l in &f.path {
            if let (Some(cap), Some(&n)) = (remaining.get(l), active_on.get(l)) {
                if n > 0 {
                    lim = lim.min(cap / n as f64);
                }
            }
        }
        lim.max(0.0)
    }
    while !active.is_empty() {
        let level = active
            .iter()
            .map(|id| limit_of(&flows[id], &remaining, &active_on))
            .fold(f64::INFINITY, f64::min);
        let frozen: Vec<(FlowId, f64)> = active
            .iter()
            .filter_map(|id| {
                let lim = limit_of(&flows[id], &remaining, &active_on);
                (lim <= level * (1.0 + 1e-9) + 1e-6).then_some((*id, lim))
            })
            .collect();
        debug_assert!(!frozen.is_empty());
        for (id, share) in frozen {
            let f = &flows[&id];
            alloc.insert(id, share);
            active.remove(&id);
            for l in &f.path {
                if let Some(cap) = remaining.get_mut(l) {
                    *cap = (*cap - share).max(0.0);
                }
                if let Some(n) = active_on.get_mut(l) {
                    *n = n.saturating_sub(1);
                }
            }
        }
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Addr;
    use crate::link::LinkConfig;
    use crate::switch::SwitchLayer;

    /// host0 --1Gbps--> sw --1Gbps--> host1, plus the reverse direction.
    fn line_network() -> (Network, NodeId, NodeId) {
        let mut net = Network::new();
        let h0 = net.add_host();
        let h1 = net.add_host();
        let sw = net.add_switch(SwitchLayer::Edge, 2);
        let cfg = LinkConfig::default();
        let (_h0_up, h0_down) = net.add_duplex_link(h0, sw, cfg);
        let (_h1_up, h1_down) = net.add_duplex_link(h1, sw, cfg);
        let sw_ref = net.switch_mut(sw);
        let g0 = sw_ref.add_group(vec![h0_down]);
        let g1 = sw_ref.add_group(vec![h1_down]);
        sw_ref.set_route(Addr(0), g0);
        sw_ref.set_route(Addr(1), g1);
        (net, h0, h1)
    }

    fn handoff(flow: u64, src_port: u16, remaining: u64, cap_bps: u64) -> FluidHandoff {
        FluidHandoff {
            template: Packet::data(
                Addr(0),
                Addr(1),
                src_port,
                80,
                FlowId(flow),
                0,
                200_000,
                200_000,
                1400,
                SimTime::ZERO,
            ),
            remaining,
            base_bytes: 200_000,
            rate_cap_bps: cap_bps,
            srtt: SimDuration::from_micros(200),
            mss: 1400,
            cc: FluidCc::Reno,
        }
    }

    #[test]
    fn two_uncapped_flows_split_the_bottleneck_evenly() {
        let (mut net, h0, _h1) = line_network();
        let mut eng = FluidEngine::new();
        let t0 = SimTime::from_millis(1);
        eng.accept(
            t0,
            h0,
            handoff(1, 50_000, 10_000_000, 100_000_000_000),
            &net,
        );
        eng.accept(
            t0,
            h0,
            handoff(2, 50_001, 10_000_000, 100_000_000_000),
            &net,
        );
        let out = eng.epoch(t0, &mut net);
        assert!(out.completions.is_empty());
        let r1 = eng.flow_rate_bps(FlowId(1)).unwrap() as f64;
        let r2 = eng.flow_rate_bps(FlowId(2)).unwrap() as f64;
        assert!((r1 - r2).abs() / r1 < 1e-6, "equal shares: {r1} vs {r2}");
        // Together they get the whole 1 Gbps (no packet traffic measured).
        assert!((r1 + r2 - 1e9).abs() / 1e9 < 1e-6, "sum {}", r1 + r2);
    }

    #[test]
    fn capped_flow_leaves_the_rest_to_its_sibling() {
        let (mut net, h0, _h1) = line_network();
        let mut eng = FluidEngine::new();
        let t0 = SimTime::from_millis(1);
        eng.accept(t0, h0, handoff(1, 50_000, 10_000_000, 100_000_000), &net); // capped at 100 Mbps
        eng.accept(
            t0,
            h0,
            handoff(2, 50_001, 10_000_000, 100_000_000_000),
            &net,
        );
        eng.epoch(t0, &mut net);
        let r1 = eng.flow_rate_bps(FlowId(1)).unwrap() as f64;
        let r2 = eng.flow_rate_bps(FlowId(2)).unwrap() as f64;
        assert!((r1 - 1e8).abs() / 1e8 < 1e-3, "capped flow pinned: {r1}");
        assert!(
            (r2 - 9e8).abs() / 9e8 < 1e-3,
            "sibling takes the rest: {r2}"
        );
    }

    #[test]
    fn delivered_bytes_advance_analytically_and_complete() {
        let (mut net, h0, _h1) = line_network();
        let mut eng = FluidEngine::new();
        let t0 = SimTime::from_millis(1);
        // 1 MB at (up to) 1 Gbps => 8 ms.
        eng.accept(t0, h0, handoff(1, 50_000, 1_000_000, 100_000_000_000), &net);
        let out = eng.epoch(t0, &mut net);
        let next = out.next_epoch.unwrap();
        assert_eq!(next, t0 + SimDuration::from_millis(2), "refresh bounds it");
        // March through refresh epochs until the completion epoch.
        let mut now = next;
        let mut completions = Vec::new();
        for _ in 0..10 {
            let out = eng.epoch(now, &mut net);
            completions.extend(out.completions);
            match out.next_epoch {
                Some(t) => now = t,
                None => break,
            }
        }
        assert_eq!(completions.len(), 1);
        assert_eq!(completions[0].flow, FlowId(1));
        assert_eq!(completions[0].bytes, 1_000_000);
        assert_eq!(eng.delivered_bytes(), 1_000_000);
        assert!(eng.is_empty());
        // Completion at ~9 ms: 8 ms of transfer from t0 = 1 ms, quantised to
        // the 2 ms refresh grid.
        assert!(now <= SimTime::from_millis(11), "completed by {now}");
    }

    #[test]
    fn drop_on_a_shared_link_halves_the_cap() {
        let (mut net, h0, _h1) = line_network();
        let mut eng = FluidEngine::new();
        let t0 = SimTime::from_millis(1);
        eng.accept(t0, h0, handoff(1, 50_000, 100_000_000, 400_000_000), &net);
        eng.epoch(t0, &mut net);
        let before = eng.flow_rate_bps(FlowId(1)).unwrap();
        assert!(
            (before as f64 - 4e8).abs() / 4e8 < 1e-3,
            "cap-limited start"
        );
        let link = eng.flows[&FlowId(1)].path[0];
        assert!(eng.uses_link(link));
        assert!(eng.note_drop(link));
        let t1 = t0 + SimDuration::from_micros(10);
        eng.epoch(t1, &mut net);
        let after = eng.flow_rate_bps(FlowId(1)).unwrap();
        assert!(
            (after as f64 - before as f64 / 2.0).abs() / (before as f64) < 1e-2,
            "halved: {before} -> {after}"
        );
        // A link no fluid flow crosses is not an epoch trigger.
        assert!(!eng.note_drop(LinkId(9999)));
    }

    #[test]
    fn reservation_is_installed_and_cleared() {
        let (mut net, h0, _h1) = line_network();
        let mut eng = FluidEngine::new();
        let t0 = SimTime::from_millis(1);
        eng.accept(t0, h0, handoff(1, 50_000, 10_000, 100_000_000_000), &net);
        eng.epoch(t0, &mut net);
        let link = eng.flows[&FlowId(1)].path[0];
        let reserved = net.link(link).fluid_reservation();
        assert!(reserved > 0, "shared link carries a reservation");
        assert!(reserved <= 900_000_000, "clamped below the headroom");
        // Finish the flow: the next epoch clears the reservation.
        let t1 = t0 + SimDuration::from_millis(2);
        let out = eng.epoch(t1, &mut net);
        assert_eq!(out.completions.len(), 1);
        assert_eq!(net.link(link).fluid_reservation(), 0);
        assert_eq!(out.next_epoch, None);
    }

    #[test]
    fn finalize_reports_progress_for_unfinished_flows() {
        let (mut net, h0, _h1) = line_network();
        let mut eng = FluidEngine::new();
        let t0 = SimTime::from_millis(1);
        eng.accept(
            t0,
            h0,
            handoff(1, 50_000, 1_000_000_000, 1_000_000_000),
            &net,
        );
        eng.epoch(t0, &mut net);
        let t1 = t0 + SimDuration::from_millis(1);
        let (completions, progress) = eng.finalize(t1, &mut net);
        assert!(completions.is_empty());
        assert_eq!(progress.len(), 1);
        match progress[0] {
            Signal::FlowProgress { flow, bytes, .. } => {
                assert_eq!(flow, FlowId(1));
                // ~1 ms at ≤1 Gbps on top of the 200 KB packet base.
                assert!(bytes > 200_000, "bytes {bytes}");
                assert!(bytes <= 200_000 + 125_000 + 1, "bytes {bytes}");
            }
            _ => panic!("expected FlowProgress"),
        }
    }
}
