//! No-op stand-in for serde's derive macros.
//!
//! The build environment is fully offline, so the real `serde` crate cannot
//! be fetched. The simulator's types carry `#[derive(Serialize, Deserialize)]`
//! purely as forward-compatible annotations — nothing in the workspace
//! serialises anything yet — so these derives expand to nothing. When the
//! workspace gains network access, point the `serde` entry in the root
//! `[workspace.dependencies]` at crates.io and everything keeps compiling.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` helper attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` helper attributes)
/// and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
