//! Integration tests for the extension features layered on top of the paper's
//! core scenario: deadline-aware workloads and D²TCP, the combined
//! topology-aware/adaptive duplicate-ACK policy, the fixed-horizon goodput
//! measurement and the co-existence of protocols on one fabric.

use mmptcp::prelude::*;

/// A small paper-style workload on the 16-host FatTree with deadlines.
fn deadline_config(protocol: Protocol, deadlines: DeadlineModel, seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig {
        topology: TopologySpec::FatTree(FatTreeConfig::small()),
        workload: WorkloadSpec::Paper(PaperWorkloadConfig {
            flows_per_short_host: 2,
            deadlines,
            arrivals: ArrivalProcess::Poisson {
                mean_interarrival: SimDuration::from_millis(20),
            },
            ..PaperWorkloadConfig::default()
        }),
        protocol,
        seed,
        max_sim_time: SimDuration::from_secs(10),
        ..ExperimentConfig::default()
    };
    cfg.goodput_horizon = Some(SimDuration::from_millis(500));
    cfg
}

#[test]
fn generous_deadlines_are_all_met_by_d2tcp() {
    let r = mmptcp::run(deadline_config(
        Protocol::D2tcp,
        DeadlineModel::Fixed(SimDuration::from_secs(8)),
        3,
    ));
    assert!(r.all_short_completed);
    let (missed, total) = r.deadline_misses();
    assert!(total > 0, "short flows must carry deadlines");
    assert_eq!(missed, 0, "an 8 s deadline for 70 KB cannot be missed");
    assert_eq!(r.deadline_miss_rate(), 0.0);
}

#[test]
fn impossible_deadlines_are_all_missed() {
    let r = mmptcp::run(deadline_config(
        Protocol::D2tcp,
        DeadlineModel::Fixed(SimDuration::from_micros(1)),
        3,
    ));
    let (missed, total) = r.deadline_misses();
    assert_eq!(missed, total, "nobody can move 70 KB in a microsecond");
    assert!(total > 0);
    assert!((r.deadline_miss_rate() - 1.0).abs() < 1e-9);
}

#[test]
fn deadline_accounting_covers_every_protocol() {
    // Deadlines are a property of the workload, not of the transport: the
    // miss-rate accounting must work for protocols that ignore them too.
    for protocol in [Protocol::Tcp, Protocol::mmptcp_default()] {
        let r = mmptcp::run(deadline_config(
            protocol,
            DeadlineModel::Slack {
                slack: 50.0,
                reference_gbps: 1.0,
                floor: SimDuration::from_millis(50),
            },
            5,
        ));
        let (missed, total) = r.deadline_misses();
        assert!(total > 0);
        assert!(missed <= total);
    }
}

#[test]
fn d2tcp_completes_the_paper_workload() {
    let r = mmptcp::run(deadline_config(
        Protocol::D2tcp,
        DeadlineModel::Fixed(SimDuration::from_millis(100)),
        7,
    ));
    assert!(r.all_short_completed);
    assert!(r.short_fct_summary().count > 0);
    // D2TCP requires ECN: the run must have been configured with marking, so
    // at least some window reductions happen without drops dominating.
    assert!(r.overall_utilisation > 0.0);
}

#[test]
fn goodput_horizon_bounds_the_measurement_window() {
    // The same run measured over a 500 ms horizon and over the whole run:
    // both must be positive; the horizon version reflects only the loaded
    // period and therefore never exceeds the line-rate bound of the access
    // links times the number of long flows.
    let with_horizon = mmptcp::run(deadline_config(Protocol::Tcp, DeadlineModel::None, 11));
    assert!(with_horizon.all_short_completed);
    let goodput = with_horizon.long_goodput_bps();
    assert!(
        goodput > 0.0,
        "long flows must have made progress by 500 ms"
    );
    let long_flows = with_horizon.long_ids.len() as f64;
    assert!(
        goodput <= long_flows * 1e9 * 1.05,
        "aggregate long-flow goodput {goodput} cannot exceed access capacity"
    );

    let mut cfg = deadline_config(Protocol::Tcp, DeadlineModel::None, 11);
    cfg.goodput_horizon = None;
    let whole_run = mmptcp::run(cfg);
    assert!(whole_run.long_goodput_bps() > 0.0);
}

#[test]
fn congestion_event_switching_works_end_to_end() {
    let cfg = ExperimentConfig {
        topology: TopologySpec::FatTree(FatTreeConfig::small()),
        workload: WorkloadSpec::Custom(vec![FlowSpec::new(
            0,
            Addr(0),
            Addr(12),
            Some(3_000_000),
            SimTime::from_millis(1),
            FlowClass::Short,
        )]),
        protocol: Protocol::Mmptcp {
            subflows: 4,
            switch: SwitchStrategy::CongestionEvent,
            dupack: None,
        },
        seed: 9,
        ..ExperimentConfig::default()
    };
    let r = mmptcp::run(cfg);
    assert!(r.all_short_completed, "the transfer must complete");
    // Whether it switched depends on whether any congestion event occurred;
    // the accounting must be consistent either way.
    assert!(r.phase_switches() <= 1);
}

#[test]
fn mixed_protocols_coexist_on_one_fabric() {
    // Short flows on MMPTCP while the long background flows run legacy MPTCP:
    // the co-existence scenario from §3. Everything must still complete and
    // both classes must make progress.
    let mut cfg = deadline_config(Protocol::mmptcp_default(), DeadlineModel::None, 13);
    cfg.long_protocol = Some(Protocol::mptcp8());
    let r = mmptcp::run(cfg);
    assert!(r.all_short_completed);
    assert!(r.long_goodput_bps() > 0.0);
    assert!(r.short_fct_summary().count > 0);
}

#[test]
fn d2tcp_protocol_resolves_and_names_correctly() {
    assert_eq!(Protocol::D2tcp.name(), "d2tcp");
    let r = mmptcp::run(ExperimentConfig {
        topology: TopologySpec::Parallel(ParallelPathConfig::default()),
        workload: WorkloadSpec::Custom(vec![FlowSpec {
            deadline: Some(SimDuration::from_millis(50)),
            ..FlowSpec::new(
                0,
                Addr(0),
                Addr(1),
                Some(70_000),
                SimTime::from_millis(1),
                FlowClass::Short,
            )
        }]),
        protocol: Protocol::D2tcp,
        seed: 2,
        ..ExperimentConfig::default()
    });
    assert!(r.all_short_completed);
    assert_eq!(
        r.deadline_misses(),
        (0, 1),
        "an uncontended 70 KB flow meets 50 ms"
    );
}
