//! Cross-crate property-style tests: invariants that must hold for arbitrary
//! topologies, workloads and packet arrival orders.
//!
//! The build environment is offline, so instead of proptest these tests draw
//! their case parameters from a seeded [`SimRng`] — every run explores the
//! same (deterministic) sample of the input space, which keeps failures
//! reproducible without a shrinker.

use mmptcp::prelude::*;
use netsim::{Addr as NAddr, AgentCtx, FlowId as NFlowId, Packet, SimRng};
use transport::TransportReceiver;

/// Number of sampled cases per property, mirroring the old proptest config.
const CASES: u64 = 64;

/// Deterministic per-case parameter source.
fn case_rng(test: u64, case: u64) -> SimRng {
    SimRng::new(0xC0FFEE ^ (test << 32) ^ case)
}

/// The permutation traffic matrix never maps a host to itself and never
/// assigns two senders the same destination.
#[test]
fn permutation_matrix_is_a_derangement() {
    for case in 0..CASES {
        let mut params = case_rng(1, case);
        let n = params.range(2usize..200);
        let seed = params.range(0u64..1000);
        let hosts: Vec<Addr> = (0..n as u32).map(Addr).collect();
        let mut rng = SimRng::new(seed);
        let pairs =
            workload::assign_destinations(TrafficMatrix::Permutation, &hosts, &hosts, &mut rng);
        assert_eq!(pairs.len(), n);
        let mut seen = std::collections::HashSet::new();
        for (s, d) in pairs {
            assert_ne!(s, d, "n={n} seed={seed}");
            assert!(seen.insert(d), "duplicate destination (n={n} seed={seed})");
        }
    }
}

/// FatTree construction invariants hold for every legal (k, oversubscription).
#[test]
fn fattree_structure_invariants() {
    for k in [4usize, 6, 8] {
        for oversub in 1usize..=4 {
            let cfg = FatTreeConfig {
                k,
                oversubscription: oversub,
                ..FatTreeConfig::default()
            };
            let topo = topology::fattree::build(cfg);
            // Host count formula.
            assert_eq!(topo.host_count(), oversub * k * k * k / 4);
            // Link tier list covers every link.
            assert_eq!(topo.link_tiers.len(), topo.network.link_count());
            // Every switch can reach every host.
            for node in topo.network.nodes() {
                if let Some(sw) = node.as_switch() {
                    for h in 0..topo.host_count() {
                        assert!(sw.path_count(Addr(h as u32)) >= 1);
                    }
                }
            }
            // Path-count model is monotone in topological distance.
            let same_edge = topo.path_count(Addr(0), Addr(1));
            let inter_pod = topo.path_count(Addr(0), Addr((topo.host_count() - 1) as u32));
            assert!(same_edge <= inter_pod);
            assert_eq!(inter_pod, (k / 2) * (k / 2));
        }
    }
}

/// The receiver reassembles a randomly-ordered stream without losing or
/// duplicating bytes, regardless of arrival order and duplication.
#[test]
fn receiver_reassembly_is_lossless() {
    for case in 0..CASES {
        let mut params = case_rng(2, case);
        let segments = params.range(1usize..60);
        let seed = params.range(0u64..500);
        let duplicate_every = params.range(2usize..10);

        let mss = 1_000u64;
        let total = segments as u64 * mss;
        let mut order: Vec<usize> = (0..segments).collect();
        let mut rng = SimRng::new(seed);
        rng.shuffle(&mut order);

        let mut rx = TransportReceiver::new(NFlowId(1));
        let mut out = Vec::new();
        let mut timers = Vec::new();
        let mut signals = Vec::new();
        let mut last_data_ack = 0;
        for (i, &seg) in order.iter().enumerate() {
            let reps = if i % duplicate_every == 0 { 2 } else { 1 };
            for _ in 0..reps {
                let pkt = Packet::data(
                    NAddr(0),
                    NAddr(1),
                    50_000,
                    80,
                    NFlowId(1),
                    0,
                    seg as u64 * mss,
                    seg as u64 * mss,
                    mss as u32,
                    SimTime::from_micros(i as u64),
                );
                let mut ctx = AgentCtx::new(
                    SimTime::from_millis(1 + i as u64),
                    NFlowId(1),
                    &mut rng,
                    &mut out,
                    &mut timers,
                    &mut signals,
                );
                netsim::Agent::handle(&mut rx, &mut ctx, netsim::AgentEvent::Packet(pkt));
            }
            if let Some(ack) = out.last() {
                assert!(ack.data_ack >= last_data_ack, "data ack went backwards");
                last_data_ack = ack.data_ack;
            }
        }
        assert_eq!(rx.contiguous_bytes(), total);
        assert_eq!(last_data_ack, total);
    }
}

/// Summary statistics are internally consistent for arbitrary samples.
#[test]
fn summary_statistics_are_consistent() {
    for case in 0..CASES {
        let mut params = case_rng(3, case);
        let len = params.range(1usize..200);
        let samples: Vec<f64> = (0..len).map(|_| params.unit() * 1e6).collect();
        let s = metrics::Summary::of(&samples);
        assert_eq!(s.count, samples.len());
        assert!(s.min <= s.median + 1e-9);
        assert!(s.median <= s.p95 + 1e-9);
        assert!(s.p95 <= s.p99 + 1e-9);
        assert!(s.p99 <= s.max + 1e-9);
        assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        assert!(s.std_dev >= 0.0);
    }
}

/// Paper workload generation: flow counts, classes and sizes are coherent
/// for arbitrary host counts and seeds.
#[test]
fn paper_workload_is_coherent() {
    for case in 0..CASES {
        let mut params = case_rng(4, case);
        let hosts = params.range(6usize..80);
        let seed = params.range(0u64..200);
        let flows_per_host = params.range(1usize..5);
        let addrs: Vec<Addr> = (0..hosts as u32).map(Addr).collect();
        let cfg = PaperWorkloadConfig {
            flows_per_short_host: flows_per_host,
            ..PaperWorkloadConfig::default()
        };
        let mut rng = SimRng::new(seed);
        let w = workload::paper_workload(&addrs, &cfg, &mut rng);
        let long = w.long_count();
        let short = w.short_count();
        assert!(long >= 1);
        assert_eq!(short, (hosts - long) * flows_per_host);
        for f in &w.flows {
            assert!(f.src.index() < hosts);
            assert!(f.dst.index() < hosts);
            assert_ne!(f.src, f.dst);
            match f.class {
                FlowClass::Long => assert!(f.size.is_none()),
                FlowClass::Short => assert_eq!(f.size, Some(70_000)),
            }
        }
    }
}

/// ECMP selection is deterministic per 5-tuple and always in range.
#[test]
fn ecmp_selection_in_range() {
    for case in 0..CASES {
        let mut params = case_rng(5, case);
        let src = params.range(0u32..1024);
        let dst = params.range(0u32..1024);
        let sport = params.range(1024u16..65535);
        let salt = params.next_u64();
        let n = params.range(1usize..64);
        let pkt = Packet::data(
            NAddr(src),
            NAddr(dst),
            sport,
            80,
            NFlowId(1),
            0,
            0,
            0,
            1400,
            SimTime::ZERO,
        );
        let a = netsim::ecmp::select(&pkt, salt, n);
        let b = netsim::ecmp::select(&pkt, salt, n);
        assert_eq!(a, b);
        assert!(a < n);
    }
}

/// Slack-based deadlines scale with flow size, never fall below the floor,
/// and are monotone in size.
#[test]
fn slack_deadlines_are_monotone_and_floored() {
    for case in 0..CASES {
        let mut params = case_rng(6, case);
        let small = params.range(1_000u64..50_000);
        let extra = params.range(1u64..10_000_000);
        let slack = 0.1 + params.unit() * 49.9;
        let floor_ms = params.range(1u64..100);
        let model = DeadlineModel::Slack {
            slack,
            reference_gbps: 1.0,
            floor: SimDuration::from_millis(floor_ms),
        };
        let floor = SimDuration::from_millis(floor_ms);
        let d_small = model.deadline_for(small).unwrap();
        let d_large = model.deadline_for(small + extra).unwrap();
        assert!(d_small >= floor);
        assert!(d_large >= d_small);
        // None and Fixed behave as documented regardless of size.
        assert_eq!(DeadlineModel::None.deadline_for(small), None);
        assert_eq!(
            DeadlineModel::Fixed(floor).deadline_for(small + extra),
            Some(floor)
        );
    }
}

/// Every duplicate-ACK policy yields an initial threshold of at least the
/// TCP default where it is meant to, and adaptive variants advertise an
/// upper bound no smaller than where they start.
#[test]
fn dupack_policies_are_sane() {
    for case in 0..CASES {
        let mut params = case_rng(7, case);
        let paths = params.range(1u32..256);
        let factor = 0.1 + params.unit() * 3.9;
        let aware = DupAckPolicy::TopologyAware { paths, factor };
        assert!(aware.initial_threshold() >= 3);
        let combined = DupAckPolicy::topology_adaptive(paths);
        assert!(combined.initial_threshold() >= 3);
        let (_step, max) = combined.adaptation().expect("combined policy adapts");
        assert!(max >= combined.initial_threshold());
        assert_eq!(DupAckPolicy::Fixed(0).initial_threshold(), 1);
    }
}

/// The incast workload builder produces `fan_in` senders per receiver, no
/// self-flows and one shared destination per group.
#[test]
fn incast_workload_structure() {
    for case in 0..CASES {
        let mut params = case_rng(8, case);
        let hosts = params.range(6usize..120);
        let fan_in = params.range(2usize..16);
        if hosts <= fan_in {
            continue;
        }
        let addrs: Vec<Addr> = (0..hosts as u32).map(Addr).collect();
        let w = workload::incast_workload(&addrs, fan_in, 32_000, SimTime::from_millis(1));
        assert!(!w.flows.is_empty());
        assert_eq!(w.flows.len() % fan_in, 0);
        for group in w.flows.chunks(fan_in) {
            let dst = group[0].dst;
            for f in group {
                assert_eq!(f.dst, dst);
                assert_ne!(f.src, f.dst);
                assert_eq!(f.size, Some(32_000));
            }
        }
    }
}

/// Hotspot matrices keep the sender count and never create self-flows, for
/// any hot-set size and fraction.
#[test]
fn hotspot_matrix_is_valid() {
    for case in 0..CASES {
        let mut params = case_rng(9, case);
        let n = params.range(4usize..150);
        let hot_hosts = params.range(1usize..8);
        let fraction = params.range(0u32..1000);
        let seed = params.range(0u64..300);
        let hosts: Vec<Addr> = (0..n as u32).map(Addr).collect();
        let mut rng = SimRng::new(seed);
        let pairs = workload::assign_destinations(
            TrafficMatrix::Hotspot {
                hot_hosts,
                hot_fraction_millis: fraction,
            },
            &hosts,
            &hosts,
            &mut rng,
        );
        assert_eq!(pairs.len(), n);
        for (s, d) in pairs {
            assert_ne!(s, d);
            assert!(d.index() < n);
        }
    }
}

/// Windowed goodput is non-negative and non-decreasing in the window end,
/// for an arbitrary (sorted) progress series.
#[test]
fn windowed_goodput_monotone_in_delivered_bytes() {
    for case in 0..CASES {
        let mut params = case_rng(10, case);
        let len = params.range(1usize..40);
        let mut points: Vec<(u64, u64)> = (0..len)
            .map(|_| (params.range(1u64..5_000), params.range(1u64..1_000_000)))
            .collect();
        points.sort();
        let mut metrics = metrics::FlowMetrics::new();
        let mut cumulative = 0u64;
        let mut last_t = 0u64;
        for (dt, db) in &points {
            last_t += dt;
            cumulative += db;
            metrics.ingest(&[netsim::Signal::FlowProgress {
                flow: NFlowId(1),
                at: SimTime::from_micros(last_t),
                bytes: cumulative,
            }]);
        }
        let end = SimTime::from_micros(last_t);
        assert_eq!(metrics.bytes_delivered_by(NFlowId(1), end), cumulative);
        assert_eq!(metrics.bytes_delivered_by(NFlowId(1), SimTime::ZERO), 0);
        // Bytes delivered by t never decrease as t grows.
        let mut prev = 0u64;
        for (i, _) in points.iter().enumerate() {
            let t = SimTime::from_micros((i as u64 + 1) * 100);
            let b = metrics.bytes_delivered_by(NFlowId(1), t);
            assert!(b >= prev);
            prev = b;
        }
        let g = metrics.goodput_bps_windowed(|_| true, SimTime::ZERO, end);
        assert!(g >= 0.0);
    }
}

/// Stride and random matrices never map a sender to itself.
#[test]
fn stride_and_random_matrices_avoid_self() {
    for case in 0..CASES {
        let mut params = case_rng(11, case);
        let n = params.range(3usize..100);
        let k = params.range(1usize..50);
        let seed = params.range(0u64..100);
        let hosts: Vec<Addr> = (0..n as u32).map(Addr).collect();
        let mut rng = SimRng::new(seed);
        for matrix in [TrafficMatrix::Stride(k), TrafficMatrix::Random] {
            let pairs = workload::assign_destinations(matrix, &hosts, &hosts, &mut rng);
            assert_eq!(pairs.len(), n);
            for (s, d) in pairs {
                assert_ne!(s, d);
            }
        }
    }
}

/// Empirical-CDF sampling is a pure function of the RNG stream: the same
/// seed always reproduces the same sample sequence, and different seeds
/// explore different sequences.
#[test]
fn empirical_cdf_sampling_is_deterministic_per_seed() {
    for case in 0..CASES {
        let mut params = case_rng(12, case);
        let seed = params.range(0u64..10_000);
        for cdf in [&workload::WEB_SEARCH, &workload::DATA_MINING] {
            let draw = |seed: u64| -> Vec<u64> {
                let mut rng = SimRng::new(seed);
                (0..32).map(|_| cdf.sample(&mut rng)).collect()
            };
            let a = draw(seed);
            let b = draw(seed);
            assert_eq!(a, b, "{} seed={seed}", cdf.name);
            let c = draw(seed ^ 0x5EED_0001);
            assert_ne!(a, c, "{} different seeds must differ", cdf.name);
            for v in a {
                assert!(
                    (cdf.min_bytes()..=cdf.max_bytes()).contains(&v),
                    "{} sample {v} out of CDF support",
                    cdf.name
                );
            }
        }
    }
}

/// Inverse-transform sampling converges: the mean over many samples
/// approaches the analytic piecewise-linear mean of the CDF.
#[test]
fn empirical_cdf_sample_means_converge_to_the_analytic_mean() {
    const SAMPLES: usize = 200_000;
    for (cdf, tolerance) in [
        // Web-search mass is spread broadly: tight tolerance.
        (&workload::WEB_SEARCH, 0.05),
        // Data-mining is dominated by its extreme tail (top 2 % of flows
        // carry most bytes), so the sample mean has higher variance.
        (&workload::DATA_MINING, 0.10),
    ] {
        cdf.validate();
        let mut rng = SimRng::new(0xCDF_CA5E);
        let sum: f64 = (0..SAMPLES).map(|_| cdf.sample(&mut rng) as f64).sum();
        let sample_mean = sum / SAMPLES as f64;
        let analytic = cdf.mean();
        let rel = (sample_mean - analytic).abs() / analytic;
        assert!(
            rel < tolerance,
            "{}: sample mean {sample_mean:.0} vs analytic {analytic:.0} (rel err {rel:.4})",
            cdf.name
        );
    }
}

/// Every congestion controller behind the `transport::cc` trait keeps its
/// state machine sane under arbitrary interleavings of ACK / dup-ACK /
/// fast-retransmit loss / ECN / RTO / round-trip / undo events:
///
/// * `cwnd` stays finite and never drops below 1 MSS — the universal floor.
///   (The ISSUE-level "2 MSS" floor holds right after a fast-retransmit
///   loss, and that is asserted here at the loss site; it cannot hold
///   universally because RFC 5681 collapses the window to one segment on an
///   RTO, and a DCTCP-style ECN response may pin `ssthresh = cwnd` below
///   2 MSS.)
/// * `ssthresh` stays finite and strictly positive.
/// * The advertised pacing rate, when present, is a positive number of bps.
#[test]
fn congestion_controllers_keep_their_state_sane_under_random_events() {
    use transport::{CongestionControl, RttEstimator, TransportConfig};
    let cfg = TransportConfig::default();
    let mss = cfg.mss as f64;
    let controllers = [
        CongestionControl::Reno,
        CongestionControl::Cubic,
        CongestionControl::Bbr,
    ];
    for case in 0..CASES {
        for (ci, cc) in controllers.iter().enumerate() {
            let mut params = case_rng(7, case * 8 + ci as u64);
            let mut rtt = RttEstimator::new(cfg.min_rto, cfg.initial_rto, cfg.max_rto);
            let mut now = SimTime::from_millis(1);
            let mut ctl = cc.build(&cfg);
            ctl.on_established(now, &rtt);
            for step in 0..200u32 {
                now += SimDuration::from_micros(params.range(1u64..5_000));
                if params.chance(0.7) {
                    rtt.on_sample(SimDuration::from_micros(params.range(20u64..5_000)));
                }
                let flight = params.range(0u64..400_000);
                match params.range(0u32..100) {
                    0..=44 => {
                        let newly = params.range(1u64..(3 * cfg.mss as u64));
                        ctl.on_ack(newly, now, &rtt, None);
                    }
                    45..=54 => ctl.on_dup_ack(),
                    55..=64 => {
                        ctl.on_loss(flight);
                        assert!(
                            ctl.cwnd() >= 2.0 * mss,
                            "{} case={case} step={step}: cwnd {} < 2 MSS right after \
                             a fast-retransmit loss",
                            cc.name(),
                            ctl.cwnd()
                        );
                    }
                    65..=72 => ctl.on_recovery_exit(),
                    73..=80 => {
                        let penalty = params.range(0u64..=1_000) as f64 / 1_000.0;
                        ctl.on_ecn(penalty);
                    }
                    81..=87 => ctl.on_rto(flight),
                    88..=94 => ctl.on_round_trip(now, &rtt),
                    _ => ctl.undo(),
                }
                let (w, s) = (ctl.cwnd(), ctl.ssthresh());
                assert!(
                    w.is_finite() && w >= mss,
                    "{} case={case} step={step}: cwnd {w} broke the 1-MSS floor",
                    cc.name()
                );
                assert!(
                    s.is_finite() && s > 0.0,
                    "{} case={case} step={step}: ssthresh {s} not finite-positive",
                    cc.name()
                );
                if let Some(rate) = ctl.pacing_rate_bps() {
                    assert!(
                        rate > 0,
                        "{} case={case} step={step}: zero pacing rate advertised",
                        cc.name()
                    );
                }
            }
        }
    }
}

/// The quantile function is monotone non-decreasing over [0, 1] — the basic
/// soundness requirement for inverse-transform sampling.
#[test]
fn empirical_cdf_quantile_is_monotone() {
    for cdf in [&workload::WEB_SEARCH, &workload::DATA_MINING] {
        let mut prev = 0u64;
        for i in 0..=1_000 {
            let q = cdf.quantile(i as f64 / 1_000.0);
            assert!(q >= prev, "{} quantile not monotone at {i}", cdf.name);
            prev = q;
        }
        assert_eq!(cdf.quantile(0.0), cdf.min_bytes());
        assert_eq!(cdf.quantile(1.0), cdf.max_bytes());
    }
}
