//! Cross-crate integration tests: transports running over real simulated
//! topologies, checked against analytic expectations.

use mmptcp::prelude::*;

/// One flow between a host pair on a topology.
fn one_flow(
    topology: TopologySpec,
    protocol: Protocol,
    src: u32,
    dst: u32,
    bytes: u64,
    seed: u64,
) -> ExperimentConfig {
    ExperimentConfig {
        topology,
        workload: WorkloadSpec::Custom(vec![FlowSpec {
            id: 0,
            src: Addr(src),
            dst: Addr(dst),
            size: Some(bytes),
            start: SimTime::from_millis(1),
            class: FlowClass::Short,
            deadline: None,
        }]),
        protocol,
        seed,
        ..ExperimentConfig::default()
    }
}

#[test]
fn tcp_bulk_transfer_approaches_link_rate_on_dumbbell() {
    // 10 MB over an uncontended 1 Gbps dumbbell: the ideal transfer time is
    // 80 ms. Unpaced slow start overshoots the 100-packet NIC queue once, so
    // the flow pays one burst-loss recovery episode on top of that — the same
    // behaviour ns-3's TCP shows with default device queues — which is why the
    // acceptance band extends to 400 ms (≥ 200 Mbps effective).
    let cfg = one_flow(
        TopologySpec::Dumbbell(DumbbellConfig::default()),
        Protocol::Tcp,
        0,
        2,
        10_000_000,
        1,
    );
    let r = mmptcp::run(cfg);
    assert!(r.all_short_completed);
    let fct_ms = r.short_fct_summary().mean;
    assert!(
        fct_ms > 80.0 && fct_ms < 400.0,
        "10 MB at 1 Gbps should take 80-400 ms, got {fct_ms} ms"
    );
    assert!(
        r.metrics.total_rtos(|_| true) <= 2,
        "at most the initial slow-start overshoot may cost an RTO"
    );
}

/// The congestion-control axis swaps the controller without breaking the
/// transport state machine around it: CUBIC and BBR both drive the same
/// 10 MB dumbbell transfer to completion at a sane effective rate (the same
/// 80–400 ms acceptance band the Reno bulk-transfer test uses).
#[test]
fn cubic_and_bbr_complete_bulk_transfers_on_the_dumbbell() {
    use mmptcp::transport::CongestionControl;
    for cc in [CongestionControl::Cubic, CongestionControl::Bbr] {
        let mut cfg = one_flow(
            TopologySpec::Dumbbell(DumbbellConfig::default()),
            Protocol::Tcp,
            0,
            2,
            10_000_000,
            1,
        );
        cfg.transport.cc = cc;
        let r = mmptcp::run(cfg);
        assert!(r.all_short_completed, "{} did not complete", cc.name());
        let fct_ms = r.short_fct_summary().mean;
        assert!(
            fct_ms > 80.0 && fct_ms < 400.0,
            "{}: 10 MB at 1 Gbps should take 80-400 ms, got {fct_ms} ms",
            cc.name()
        );
        r.check_conservation()
            .unwrap_or_else(|e| panic!("{}: {e}", cc.name()));
    }
}

#[test]
fn two_tcp_flows_share_the_bottleneck_roughly_fairly() {
    let cfg = ExperimentConfig {
        topology: TopologySpec::Dumbbell(DumbbellConfig::default()),
        workload: WorkloadSpec::Custom(vec![
            FlowSpec {
                id: 0,
                src: Addr(0),
                dst: Addr(2),
                size: Some(5_000_000),
                start: SimTime::from_millis(1),
                class: FlowClass::Short,
                deadline: None,
            },
            FlowSpec {
                id: 1,
                src: Addr(1),
                dst: Addr(3),
                size: Some(5_000_000),
                start: SimTime::from_millis(1),
                class: FlowClass::Short,
                deadline: None,
            },
        ]),
        protocol: Protocol::Tcp,
        seed: 2,
        ..ExperimentConfig::default()
    };
    let r = mmptcp::run(cfg);
    assert!(r.all_short_completed);
    let fcts = r.short_fcts_ms();
    assert_eq!(fcts.len(), 2);
    // Both flows share a 1 Gbps bottleneck: each 5 MB transfer needs at least
    // 2 * 40 ms; fairness means their completion times are comparable.
    for f in &fcts {
        assert!(*f >= 75.0, "flow finished implausibly fast: {f} ms");
    }
    let ratio = fcts[0].max(fcts[1]) / fcts[0].min(fcts[1]);
    assert!(ratio < 1.6, "completion times too unequal: {fcts:?}");
}

#[test]
fn mptcp_aggregates_bandwidth_across_parallel_paths() {
    // Access links 4 Gbps, four 1 Gbps paths: single-path TCP is limited to
    // one path (~1 Gbps), MPTCP with 4 subflows can use all four.
    let topo = TopologySpec::Parallel(ParallelPathConfig {
        host_pairs: 1,
        paths: 4,
        access_rate_bps: 4_000_000_000,
        path_rate_bps: 1_000_000_000,
        ..ParallelPathConfig::default()
    });
    let bytes = 8_000_000;
    let tcp = mmptcp::run(one_flow(topo, Protocol::Tcp, 0, 1, bytes, 3));
    let mptcp = mmptcp::run(one_flow(
        topo,
        Protocol::Mptcp { subflows: 4 },
        0,
        1,
        bytes,
        3,
    ));
    assert!(tcp.all_short_completed && mptcp.all_short_completed);
    let t_tcp = tcp.short_fct_summary().mean;
    let t_mptcp = mptcp.short_fct_summary().mean;
    assert!(
        t_mptcp < t_tcp / 2.0,
        "MPTCP ({t_mptcp} ms) should be at least 2x faster than TCP ({t_tcp} ms) over 4 paths"
    );
}

#[test]
fn mmptcp_short_flow_finishes_in_packet_scatter_phase() {
    let topo = TopologySpec::FatTree(FatTreeConfig::small());
    let r = mmptcp::run(one_flow(topo, Protocol::mmptcp_default(), 0, 12, 70_000, 4));
    assert!(r.all_short_completed);
    assert_eq!(
        r.phase_switches(),
        0,
        "70 KB must finish before the 210 KB switch threshold"
    );
}

#[test]
fn mmptcp_long_flow_switches_to_mptcp_phase() {
    let topo = TopologySpec::FatTree(FatTreeConfig::small());
    let r = mmptcp::run(one_flow(
        topo,
        Protocol::mmptcp_default(),
        0,
        12,
        2_000_000,
        4,
    ));
    assert!(r.all_short_completed);
    assert_eq!(
        r.phase_switches(),
        1,
        "a 2 MB flow must switch to the MPTCP phase"
    );
}

#[test]
fn dctcp_keeps_fabric_queues_shallow() {
    // Two long-ish competing flows through the same destination edge: with
    // ECN-based DCTCP the drop count should be zero or minimal, while plain
    // TCP fills the drop-tail queue until it overflows.
    let mk = |protocol| ExperimentConfig {
        topology: TopologySpec::FatTree(FatTreeConfig::small()),
        workload: WorkloadSpec::Custom(vec![
            FlowSpec {
                id: 0,
                src: Addr(0),
                dst: Addr(14),
                size: Some(6_000_000),
                start: SimTime::from_millis(1),
                class: FlowClass::Short,
                deadline: None,
            },
            FlowSpec {
                id: 1,
                src: Addr(2),
                dst: Addr(15),
                size: Some(6_000_000),
                start: SimTime::from_millis(1),
                class: FlowClass::Short,
                deadline: None,
            },
        ]),
        protocol,
        seed: 5,
        ..ExperimentConfig::default()
    };
    let dctcp = mmptcp::run(mk(Protocol::Dctcp));
    assert!(dctcp.all_short_completed);
    // ECN marking should largely replace drops.
    assert!(
        dctcp.loss.total_dropped() <= 5,
        "DCTCP should avoid drops, saw {}",
        dctcp.loss.total_dropped()
    );
}

#[test]
fn packet_scatter_spreads_traffic_over_all_core_links() {
    // A single large packet-scatter flow between different pods should light
    // up every aggregation->core link in its pod rather than just one.
    let cfg = one_flow(
        TopologySpec::FatTree(FatTreeConfig::small()),
        Protocol::PacketScatter,
        0,
        12,
        2_000_000,
        6,
    );
    let r = mmptcp::run(cfg);
    assert!(r.all_short_completed);
    // Core utilisation report: several links must have carried bytes.
    assert!(
        r.core_utilisation.bytes > 0,
        "core links should carry traffic"
    );
    assert!(
        r.core_utilisation.mean > 0.0,
        "mean core utilisation should be non-zero"
    );
}

#[test]
fn incast_completes_under_every_protocol() {
    for protocol in [
        Protocol::Tcp,
        Protocol::mptcp8(),
        Protocol::mmptcp_default(),
    ] {
        let cfg = ExperimentConfig {
            topology: TopologySpec::FatTree(FatTreeConfig::small()),
            workload: WorkloadSpec::Incast {
                fan_in: 8,
                bytes: 32_000,
                start: SimTime::from_millis(1),
            },
            protocol,
            seed: 7,
            ..ExperimentConfig::default()
        };
        let r = mmptcp::run(cfg);
        assert!(
            r.all_short_completed,
            "incast under {:?} did not complete",
            protocol
        );
    }
}
