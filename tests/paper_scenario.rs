//! Integration test of the paper's evaluation scenario at reduced scale:
//! a 4:1 over-subscribed FatTree, one third of hosts running long background
//! flows, the rest sending Poisson-arriving 70 KB short flows over a
//! permutation matrix — compared across MPTCP and MMPTCP.
//!
//! These are *shape* checks (who wins, where the tail comes from), not
//! absolute-number checks; the absolute numbers depend on scale.

use mmptcp::prelude::*;

fn scenario(protocol: Protocol, seed: u64) -> ExperimentConfig {
    ExperimentConfig {
        // k=4 with 2:1 over-subscription (32 hosts): enough contention for the
        // paper's effect to show, small enough for the debug-mode test suite.
        topology: TopologySpec::FatTree(FatTreeConfig {
            k: 4,
            oversubscription: 2,
            ..FatTreeConfig::default()
        }),
        workload: WorkloadSpec::Paper(PaperWorkloadConfig {
            flows_per_short_host: 3,
            arrivals: ArrivalProcess::Poisson {
                mean_interarrival: SimDuration::from_millis(30),
            },
            ..PaperWorkloadConfig::default()
        }),
        protocol,
        seed,
        ..ExperimentConfig::default()
    }
}

#[test]
fn both_protocols_complete_the_paper_workload() {
    for protocol in [Protocol::mptcp8(), Protocol::mmptcp_default()] {
        let r = mmptcp::run(scenario(protocol, 1));
        assert!(
            r.all_short_completed,
            "{:?}: not all short flows completed within the cap",
            protocol
        );
        assert!(r.short_fct_summary().count > 10);
        assert!(
            r.long_goodput_bps() > 0.0,
            "long flows should make progress"
        );
    }
}

#[test]
fn mmptcp_tail_is_no_worse_than_mptcp_tail() {
    // Average over a few seeds to damp run-to-run noise at this small scale.
    let seeds = [1u64, 2, 3];
    let mut mptcp_rto_flows = 0usize;
    let mut mmptcp_rto_flows = 0usize;
    let mut mptcp_std = 0.0;
    let mut mmptcp_std = 0.0;
    for &s in &seeds {
        let a = mmptcp::run(scenario(Protocol::mptcp8(), s));
        let b = mmptcp::run(scenario(Protocol::mmptcp_default(), s));
        mptcp_rto_flows += a.short_flows_with_rto();
        mmptcp_rto_flows += b.short_flows_with_rto();
        mptcp_std += a.short_fct_summary().std_dev;
        mmptcp_std += b.short_fct_summary().std_dev;
    }
    println!(
        "RTO-affected short flows over {} seeds: mptcp={mptcp_rto_flows} mmptcp={mmptcp_rto_flows}; \
         summed std: mptcp={mptcp_std:.1} ms mmptcp={mmptcp_std:.1} ms",
        seeds.len()
    );
    assert!(
        mmptcp_rto_flows <= mptcp_rto_flows + 1,
        "MMPTCP should not have (noticeably) more RTO-affected short flows ({mmptcp_rto_flows}) than MPTCP ({mptcp_rto_flows})"
    );
    // At this deliberately small scale the MPTCP pathology the paper targets
    // (tiny per-subflow windows forcing RTOs) barely appears, so the standard
    // deviations are dominated by a handful of 1 s initial-RTO outliers and a
    // strict ordering assertion would be noise-driven. The full-contrast shape
    // check lives in `figure1_shape_at_benchmark_scale` below (run with
    // `cargo test --release -- --ignored`) and in the `fig1bc` harness.
    assert!(
        mmptcp_std <= 3.0 * (mptcp_std + 100.0),
        "MMPTCP FCT spread ({mmptcp_std:.1} ms summed) is implausibly larger than MPTCP's ({mptcp_std:.1} ms summed)"
    );
}

/// The benchmark-scale (64-host, 4:1 over-subscribed) shape check matching
/// Figure 1(b)/(c) and the §3 statistics: MMPTCP has (substantially) fewer
/// RTO-affected short flows and a smaller FCT standard deviation than MPTCP-8,
/// while long-flow goodput stays comparable. Ignored by default because it
/// takes a couple of minutes in release mode (and much longer in debug); run
/// with `cargo test --release -- --ignored`.
#[test]
#[ignore]
fn figure1_shape_at_benchmark_scale() {
    let cfg = |protocol| ExperimentConfig::figure1(protocol, 3, false, 6);
    let mptcp = mmptcp::run(cfg(Protocol::mptcp8()));
    let mmptcp_r = mmptcp::run(cfg(Protocol::mmptcp_default()));
    let (sa, sb) = (mptcp.short_fct_summary(), mmptcp_r.short_fct_summary());
    println!(
        "benchmark scale: mptcp mean {:.1} std {:.1} rto-flows {}; mmptcp mean {:.1} std {:.1} rto-flows {}",
        sa.mean, sa.std_dev, mptcp.short_flows_with_rto(),
        sb.mean, sb.std_dev, mmptcp_r.short_flows_with_rto()
    );
    // The robust part of the paper's claim at this scale: fewer short flows
    // are RTO-bound under MMPTCP, and the long flows keep their throughput.
    // (The mean/sigma contrast of the paper's §3 additionally needs the
    // full 512-host, 16-path scale — see EXPERIMENTS.md.)
    assert!(mmptcp_r.short_flows_with_rto() < mptcp.short_flows_with_rto());
    let (ga, gb) = (mptcp.long_goodput_bps(), mmptcp_r.long_goodput_bps());
    assert!(ga > 0.0 && gb > 0.0);
    assert!(
        ga.max(gb) / ga.min(gb) < 1.3,
        "long goodput should match: {ga:.2e} vs {gb:.2e}"
    );
}

#[test]
fn long_flow_throughput_is_comparable_between_protocols() {
    let a = mmptcp::run(scenario(Protocol::mptcp8(), 5));
    let b = mmptcp::run(scenario(Protocol::mmptcp_default(), 5));
    let ga = a.long_goodput_bps();
    let gb = b.long_goodput_bps();
    println!(
        "long-flow goodput: mptcp {ga:.2e} bps over {}, mmptcp {gb:.2e} bps over {}",
        a.elapsed, b.elapsed
    );
    assert!(ga > 0.0 && gb > 0.0);
    // The two runs end at different simulated times (the MPTCP run waits for
    // its RTO-bound stragglers), so the goodput windows differ; "comparable"
    // here means within a small factor, not equality.
    let ratio = ga.max(gb) / ga.min(gb);
    assert!(
        ratio < 2.5,
        "long-flow goodput should be comparable (paper: 'same average throughput'), got {ga:.2e} vs {gb:.2e}"
    );
    // Each long flow must still achieve a meaningful share of its 1 Gbps
    // access link on average.
    let per_long_a = ga / a.long_ids.len().max(1) as f64;
    let per_long_b = gb / b.long_ids.len().max(1) as f64;
    assert!(
        per_long_a > 5e7,
        "MPTCP long flows too slow: {per_long_a:.2e} bps each"
    );
    assert!(
        per_long_b > 5e7,
        "MMPTCP long flows too slow: {per_long_b:.2e} bps each"
    );
}

#[test]
fn deterministic_reproduction_of_the_full_scenario() {
    let a = mmptcp::run(scenario(Protocol::mmptcp_default(), 9));
    let b = mmptcp::run(scenario(Protocol::mmptcp_default(), 9));
    assert_eq!(a.short_fcts_ms(), b.short_fcts_ms());
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.loss, b.loss);
    assert_eq!(a.core_utilisation.bytes, b.core_utilisation.bytes);
}

#[test]
fn workload_accounting_matches_results() {
    let r = mmptcp::run(scenario(Protocol::mmptcp_default(), 4));
    // Every flow in the workload is classified exactly once.
    assert_eq!(
        r.short_ids.len() + r.long_ids.len(),
        r.flows.len(),
        "short + long ids must cover the workload"
    );
    // Completed short flows transferred exactly 70 KB each.
    for (id, rec) in r.metrics.sorted_records() {
        if r.short_ids.contains(&id) && rec.completed.is_some() {
            assert_eq!(rec.bytes, 70_000, "flow {id:?} reported wrong byte count");
        }
    }
}
