//! The cross-transport conformance layer: invariants every transport (and
//! every future transport) must satisfy, checked end-to-end on the real
//! simulator.
//!
//! * **Conservation**: packets injected into the fabric are exactly
//!   delivered + dropped + still-in-network, and completed flows delivered
//!   exactly their size — for every catalog scenario at fast fidelity,
//!   across a spread of seeds (the release-profile `scenarios conserve`
//!   subcommand sweeps 16+ seeds per scenario in CI).
//! * **Differential**: MMPTCP in its packet-scatter phase is byte-for-byte
//!   the packet-scatter-only ablation until the phase switch.
//! * **Degeneracy**: on a single-path dumbbell with zero loss, every
//!   transport collapses to plain TCP's completion time exactly (±0) —
//!   multi-path machinery must cost nothing when there are no paths to use.

use mmptcp::prelude::*;
use mmptcp::scenario::{catalog, Fidelity};
use netsim::{Agent as _, Packet};
use netsim::{AgentCtx, AgentEvent, PathPolicy, SimRng};
use transport::{CongestionControl, MmptcpConfig, MmptcpSender};

/// Conservation across the catalog: the first fast config of every scenario,
/// two distinct seeds each (seeds never repeat across scenarios, so the
/// sweep covers well over 16 seeds in total; the CI `scenarios conserve`
/// job extends this to 16 seeds per scenario at release speed).
#[test]
fn conservation_laws_hold_across_the_catalog() {
    let mut configs = Vec::new();
    for (i, s) in catalog().iter().enumerate() {
        let mut expanded = s.configs(Fidelity::Fast);
        assert!(!expanded.is_empty());
        let (label, cfg) = expanded.swap_remove(0);
        for k in 0..2u64 {
            let seed = 1 + (i as u64) * 2 + k;
            let mut c = cfg.clone();
            c.seed = seed;
            configs.push((format!("{} / {label} seed={seed}", s.name), c));
        }
    }
    assert!(
        configs.len() >= 16,
        "the sweep must span at least 16 seeded runs"
    );
    let results = Driver::new().run_labelled(configs);
    for (label, r) in &results {
        r.check_conservation()
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        // The audit itself must be meaningful: something was injected.
        assert!(
            r.counters.delivered_to_hosts > 0,
            "{label}: no packets delivered?"
        );
    }
}

/// Minimal deterministic transport harness: drives one sender against the
/// shared receiver over an ideal network and records every packet the sender
/// emits, in order, with its emission time.
struct RecordedRun {
    sent: Vec<(SimTime, Packet)>,
    switch_signal: Option<SimTime>,
}

fn drive_mmptcp(cfg: MmptcpConfig, total: u64, rounds: usize) -> RecordedRun {
    let flow = netsim::FlowId(1);
    let mut tx = MmptcpSender::new(cfg, flow, Addr(0), Addr(1), 50_000, 80, Some(total));
    let mut rx = transport::TransportReceiver::new(flow);
    let mut rng = SimRng::new(5);
    let mut timers: Vec<(SimTime, u64)> = Vec::new();
    let mut signals: Vec<netsim::Signal> = Vec::new();
    let mut now = SimTime::from_millis(1);
    let mut to_rx: Vec<Packet> = Vec::new();
    let mut to_tx: Vec<Packet> = Vec::new();
    let mut sent: Vec<(SimTime, Packet)> = Vec::new();

    {
        let mut out = Vec::new();
        let mut ctx = AgentCtx::new(now, flow, &mut rng, &mut out, &mut timers, &mut signals);
        tx.handle(&mut ctx, AgentEvent::Start);
        sent.extend(out.iter().map(|p| (now, p.clone())));
        to_rx.extend(out);
    }
    for _ in 0..rounds {
        if tx.is_completed() {
            break;
        }
        now += SimDuration::from_micros(100);
        let mut acks = Vec::new();
        for pkt in std::mem::take(&mut to_rx) {
            let mut ctx = AgentCtx::new(now, flow, &mut rng, &mut acks, &mut timers, &mut signals);
            rx.handle(&mut ctx, AgentEvent::Packet(pkt));
        }
        to_tx.extend(acks);
        now += SimDuration::from_micros(100);
        let mut out = Vec::new();
        for pkt in std::mem::take(&mut to_tx) {
            let mut ctx = AgentCtx::new(now, flow, &mut rng, &mut out, &mut timers, &mut signals);
            tx.handle(&mut ctx, AgentEvent::Packet(pkt));
        }
        sent.extend(out.iter().map(|p| (now, p.clone())));
        to_rx.extend(out);
        let due: Vec<(SimTime, u64)> = timers.iter().copied().filter(|(t, _)| *t <= now).collect();
        timers.retain(|(t, _)| *t > now);
        for (_, token) in due {
            let mut out = Vec::new();
            let mut ctx = AgentCtx::new(now, flow, &mut rng, &mut out, &mut timers, &mut signals);
            tx.handle(&mut ctx, AgentEvent::Timer(token));
            sent.extend(out.iter().map(|p| (now, p.clone())));
            to_rx.extend(out);
        }
    }
    let switch_signal = signals.iter().find_map(|s| match s {
        netsim::Signal::PhaseSwitched { at, .. } => Some(*at),
        _ => None,
    });
    RecordedRun {
        sent,
        switch_signal,
    }
}

/// Differential conformance: an MMPTCP connection in its packet-scatter
/// phase must be *indistinguishable* from the packet-scatter-only ablation —
/// identical packets (ports, sequence numbers, timing) up to the instant the
/// phase switch fires. The PS phase is not "roughly" packet scatter, it IS
/// packet scatter.
#[test]
fn mmptcp_packet_scatter_phase_equals_the_ps_only_ablation() {
    let total = 600_000u64; // well beyond the 210 KB switch threshold
    let hybrid = drive_mmptcp(MmptcpConfig::default(), total, 4_000);
    let ps_only = drive_mmptcp(MmptcpConfig::packet_scatter_only(), total, 4_000);

    let switch_at = hybrid
        .switch_signal
        .expect("a 600 KB flow must switch phase");
    assert!(
        ps_only.switch_signal.is_none(),
        "the ablation never switches"
    );

    // Everything the hybrid sender emitted on the scatter flow before the
    // switch instant must equal the ablation's stream, packet for packet.
    let prefix: Vec<&(SimTime, Packet)> = hybrid
        .sent
        .iter()
        .take_while(|(at, p)| *at < switch_at && p.subflow == 0)
        .collect();
    assert!(
        prefix.len() > 50,
        "the PS phase must have carried a substantial stream ({} pkts)",
        prefix.len()
    );
    assert!(
        ps_only.sent.len() >= prefix.len(),
        "ablation sent fewer packets ({}) than the hybrid's PS phase ({})",
        ps_only.sent.len(),
        prefix.len()
    );
    for (i, ((at_a, pkt_a), (at_b, pkt_b))) in prefix.iter().zip(ps_only.sent.iter()).enumerate() {
        assert_eq!(at_a, at_b, "packet {i}: emission times diverge");
        assert_eq!(pkt_a, pkt_b, "packet {i}: contents diverge");
    }
}

/// One bounded flow crossing the dumbbell bottleneck.
fn dumbbell_flow(protocol: Protocol, bytes: u64) -> ExperimentConfig {
    ExperimentConfig {
        topology: TopologySpec::Dumbbell(DumbbellConfig::default()),
        workload: WorkloadSpec::Custom(vec![FlowSpec::new(
            0,
            Addr(0),
            Addr(2),
            Some(bytes),
            SimTime::from_millis(1),
            FlowClass::Short,
        )]),
        protocol,
        seed: 11,
        ..ExperimentConfig::default()
    }
}

/// Degeneracy conformance: on a single-path topology under zero loss, every
/// transport's completion time equals plain TCP's *exactly*. Multi-path
/// machinery (subflow scheduling, packet scatter, replication) must add
/// nothing when there is nothing to exploit: scatter hashes onto the only
/// path, MPTCP-1 is one subflow, RepFlow/RepSYN see path_count == 1 and do
/// not replicate, DCTCP/D²TCP see no ECN marks without queue build-up.
#[test]
fn every_transport_degenerates_to_plain_tcp_on_a_single_path_dumbbell() {
    let bytes = 70_000;
    let baseline = mmptcp::run(dumbbell_flow(Protocol::Tcp, bytes));
    assert!(baseline.all_short_completed);
    assert_eq!(baseline.loss.total_dropped(), 0, "the premise is zero loss");
    let tcp_fct = baseline.short_fcts_ms()[0];

    for protocol in [
        Protocol::Dctcp,
        Protocol::D2tcp,
        Protocol::Mptcp { subflows: 1 },
        Protocol::PacketScatter,
        Protocol::mmptcp_default(),
        Protocol::repflow(),
        Protocol::repsyn(),
    ] {
        let r = mmptcp::run(dumbbell_flow(protocol, bytes));
        assert!(r.all_short_completed, "{protocol:?} did not complete");
        assert_eq!(r.loss.total_dropped(), 0, "{protocol:?} saw drops");
        let fct = r.short_fcts_ms()[0];
        assert_eq!(
            fct, tcp_fct,
            "{protocol:?} FCT {fct} ms != TCP {tcp_fct} ms on a single path"
        );
        r.check_conservation()
            .unwrap_or_else(|e| panic!("{protocol:?}: {e}"));
    }
}

/// One battle-matrix run extracted from the golden document.
struct GoldenRun {
    label: String,
    mice_p99_ms: f64,
    long_goodput_gbps: f64,
}

/// Parse the canonical battle-matrix golden snapshot (fixed key order, one
/// key per line) into per-run records.
fn parse_battle_matrix_golden() -> Vec<GoldenRun> {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/battle-matrix.json"
    );
    let doc = std::fs::read_to_string(path).expect("battle-matrix golden must exist");
    let field = |chunk: &str, key: &str, skip: usize| -> f64 {
        chunk
            .match_indices(&format!("\"{key}\": "))
            .nth(skip)
            .map(|(i, m)| {
                let rest = &chunk[i + m.len()..];
                let end = rest.find([',', '\n']).unwrap_or(rest.len());
                rest[..end].parse::<f64>().unwrap_or(f64::NAN)
            })
            .unwrap_or(f64::NAN)
    };
    doc.split("\"label\": \"")
        .skip(1)
        .map(|chunk| {
            let label = chunk[..chunk.find('"').unwrap()].to_string();
            GoldenRun {
                label,
                // Key order is canonical: short_fct's p99 first, mice_fct's
                // second.
                mice_p99_ms: field(chunk, "p99_ms", 1),
                long_goodput_gbps: field(chunk, "long_goodput_gbps", 0),
            }
        })
        .collect()
}

/// The battleground's headline, as pinned by the golden snapshot (which the
/// CI golden job keeps equal to actual behaviour): RepFlow beats single-path
/// TCP on mice p99 FCT in every cell at load <= 0.6, while MMPTCP holds
/// aggregate long-flow goodput within 5% of MPTCP across the matrix.
#[test]
fn battle_matrix_golden_witnesses_the_headline_claims() {
    let runs = parse_battle_matrix_golden();
    assert_eq!(
        runs.len(),
        40,
        "5 variants x 2 workloads x 2 loads x 2 seeds"
    );

    let cell_of = |label: &str| -> String {
        label
            .split_once(" | ")
            .map(|(_, rest)| rest.to_string())
            .expect("label format: variant | workload @ load L seed=S")
    };
    let by_variant = |variant: &str| -> Vec<&GoldenRun> {
        runs.iter()
            .filter(|r| r.label.split(" | ").next() == Some(variant))
            .collect()
    };

    // RepFlow vs TCP, mice p99, cell by cell (every fast load is <= 0.6).
    let tcp = by_variant("tcp");
    let repflow = by_variant("repflow");
    assert_eq!(tcp.len(), 8);
    assert_eq!(repflow.len(), 8);
    for t in &tcp {
        let cell = cell_of(&t.label);
        let r = repflow
            .iter()
            .find(|r| cell_of(&r.label) == cell)
            .unwrap_or_else(|| panic!("no repflow run for cell {cell}"));
        assert!(
            r.mice_p99_ms < t.mice_p99_ms,
            "repflow mice p99 {} must beat tcp {} in cell {cell}",
            r.mice_p99_ms,
            t.mice_p99_ms
        );
    }

    // MMPTCP vs MPTCP, aggregate long-flow goodput across the matrix.
    let sum = |v: &[&GoldenRun]| -> f64 { v.iter().map(|r| r.long_goodput_gbps).sum() };
    let mmptcp = sum(&by_variant("mmptcp-8"));
    let mptcp = sum(&by_variant("mptcp-8"));
    assert!(mptcp > 0.0);
    assert!(
        mmptcp >= 0.95 * mptcp,
        "mmptcp aggregate long goodput {mmptcp:.3} Gbps must stay within 5% of mptcp {mptcp:.3}"
    );
}

/// The congestion-control axis must cost nothing by default: setting
/// `cc = Reno` explicitly (what `scenarios run --cc reno` does) reproduces
/// the committed fig1bc golden snapshot byte-for-byte. Those bytes were
/// pinned before the controller state machine moved behind the
/// `transport::cc::CongestionController` trait, so this is the differential
/// witness that the extracted Reno arithmetic — and the trait plumbing
/// around it — is exactly the legacy inline implementation.
#[test]
fn explicit_reno_reproduces_the_fig1bc_golden_byte_for_byte() {
    let scenario = mmptcp::scenario::find("fig1bc").expect("fig1bc is in the catalog");
    let configs: Vec<(String, ExperimentConfig)> = scenario
        .configs(Fidelity::Fast)
        .into_iter()
        .map(|(label, mut cfg)| {
            assert_eq!(
                cfg.transport.cc,
                CongestionControl::Reno,
                "{label}: Reno must be the default controller"
            );
            cfg.transport.cc = CongestionControl::Reno;
            (label, cfg)
        })
        .collect();
    let results = Driver::new().run_labelled(configs);
    let report = mmptcp::scenario::report("fig1bc", Fidelity::Fast, &results);
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/fig1bc.json"
    ))
    .expect("fig1bc golden must exist");
    assert_eq!(
        report.to_json(),
        golden,
        "trait-based Reno must reproduce the pre-refactor golden bytes"
    );
}

/// One cc-battle run extracted from the golden document.
struct CcBattleRun {
    label: String,
    long_goodput_gbps: f64,
    ecn_marks_total: f64,
}

/// Parse the canonical cc-battle golden snapshot (fixed key order, one key
/// per line; the first `"total"` per run is drops, the second ECN marks).
fn parse_cc_battle_golden() -> Vec<CcBattleRun> {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/cc-battle.json"
    );
    let doc = std::fs::read_to_string(path).expect("cc-battle golden must exist");
    let field = |chunk: &str, key: &str, skip: usize| -> f64 {
        chunk
            .match_indices(&format!("\"{key}\": "))
            .nth(skip)
            .map(|(i, m)| {
                let rest = &chunk[i + m.len()..];
                let end = rest.find([',', '\n']).unwrap_or(rest.len());
                rest[..end].parse::<f64>().unwrap_or(f64::NAN)
            })
            .unwrap_or(f64::NAN)
    };
    doc.split("\"label\": \"")
        .skip(1)
        .map(|chunk| CcBattleRun {
            label: chunk[..chunk.find('"').unwrap()].to_string(),
            long_goodput_gbps: field(chunk, "long_goodput_gbps", 0),
            ecn_marks_total: field(chunk, "total", 1),
        })
        .collect()
}

/// The controller duel's headline, as pinned by the cc-battle golden (kept
/// equal to actual behaviour by the CI golden job): BBR's model-based pacing
/// matches or beats Reno's loss-probing on long-flow goodput — single-path
/// and under MMPTCP — and the DCTCP cell is the one whose ECN responder
/// actually engages (the loss-based cells never see a mark, so DCTCP's
/// alpha arithmetic — now layered on the trait via `EcnResponder`, with its
/// legacy-equivalence pinned by `transport::cc`'s unit tests — is what the
/// frozen snapshot captures).
#[test]
fn cc_battle_golden_witnesses_the_controller_claims() {
    let runs = parse_cc_battle_golden();
    assert_eq!(runs.len(), 6, "6 controller cells");
    let run = |name: &str| -> &CcBattleRun {
        runs.iter()
            .find(|r| r.label == name)
            .unwrap_or_else(|| panic!("missing cc-battle cell {name}"))
    };

    let bbr = run("tcp-bbr").long_goodput_gbps;
    let reno = run("tcp-reno").long_goodput_gbps;
    assert!(reno > 0.0);
    assert!(
        bbr >= reno,
        "BBR long-flow goodput {bbr:.3} Gbps must be >= Reno's {reno:.3}"
    );
    let mm_bbr = run("mmptcp-8-bbr").long_goodput_gbps;
    let mm_reno = run("mmptcp-8-reno").long_goodput_gbps;
    assert!(
        mm_bbr >= mm_reno,
        "MMPTCP/BBR goodput {mm_bbr:.3} Gbps must be >= MMPTCP/Reno's {mm_reno:.3}"
    );

    assert!(
        run("dctcp").ecn_marks_total > 0.0,
        "the DCTCP cell must actually exercise the ECN responder"
    );
    for loss_based in ["tcp-reno", "tcp-cubic", "tcp-bbr"] {
        assert_eq!(
            run(loss_based).ecn_marks_total,
            0.0,
            "{loss_based} must not see ECN marks (no responder installed)"
        );
    }
}

/// Link failure × size-aware routing: on the fig-style fat-tree with 25% of
/// the aggregation→core uplinks withdrawn, DiffFlow's pinned elephants must
/// re-pin onto surviving links (stateless hash % group-size) — no flow may
/// strand, blackhole (no-route) or over/under-deliver.
#[test]
fn diffflow_link_failure_never_strands_a_pinned_elephant() {
    let mut flows = Vec::new();
    // Inter-pod elephants (well above the 100 KB pin threshold) and a few
    // mice sharing the degraded fabric.
    for (i, (src, dst, bytes)) in [
        (0u32, 8u32, 600_000u64),
        (1, 12, 600_000),
        (4, 13, 500_000),
        (5, 9, 70_000),
        (2, 14, 70_000),
    ]
    .iter()
    .enumerate()
    {
        flows.push(FlowSpec::new(
            i as u64,
            Addr(*src),
            Addr(*dst),
            Some(*bytes),
            SimTime::from_millis(1),
            FlowClass::Short,
        ));
    }
    let cfg = ExperimentConfig {
        topology: TopologySpec::FatTree(FatTreeConfig {
            failures: LinkFailureSpec::agg_core(250, 42),
            ..FatTreeConfig::small()
        }),
        workload: WorkloadSpec::Custom(flows),
        protocol: Protocol::Tcp,
        path_policy: PathPolicy::diffflow_default(),
        seed: 3,
        ..ExperimentConfig::default()
    };
    let r = mmptcp::run(cfg);
    assert!(
        r.all_short_completed,
        "a pinned elephant stranded on the degraded fabric"
    );
    assert_eq!(r.audit.no_route, 0, "no packet may be blackholed");
    r.check_conservation().expect("conservation under failures");
}

// --- Hybrid fluid/packet engine conformance ------------------------------

/// Relative tolerance for FCT percentiles between the packet and hybrid
/// engines. The fluid fast path *approximates* an elephant's congestion
/// control (max-min shares under a pacing cap instead of per-ACK dynamics),
/// so elephants — and the mice that share links with them — legitimately
/// finish somewhat earlier or later than under packet simulation. 35 %
/// keeps both engines in the same regime (an elephant can never look like a
/// mouse) while absorbing the loss of per-packet burstiness.
const ENGINE_REL_TOL: f64 = 0.35;
/// Absolute floor (ms) for elephant percentiles: sub-2 ms shifts are within
/// a handful of RTTs on these fabrics.
const ELEPHANT_ABS_TOL_MS: f64 = 2.0;
/// Absolute floor (ms) for mice percentiles, sized to the two ways the
/// engines legitimately reshape a mouse that shares a link with an
/// elephant. Under the hybrid engine the mouse serialises at the 10 %
/// reserve headroom while a fluid reservation holds — `size / (0.10 ×
/// link rate)` ≈ 10 ms for a ~100 KB mouse — because the fluid elephant
/// claims its max-min share instantly where its packet twin is still
/// ramping. Under the packet engine the same mouse instead takes drops in
/// the elephant-dominated queue and pays a couple of (low-preset, 10 ms)
/// RTO cycles that reservations smooth away entirely. Either effect can
/// land on either side, so the floor covers ~3 such cycles; gross
/// starvation (100 ms-scale gaps, an unfinished mouse) still fails.
const MICE_ABS_TOL_MS: f64 = 30.0;

fn percentiles_close(what: &str, packet: &Summary, hybrid: &Summary, abs_tol_ms: f64) {
    assert_eq!(
        packet.count, hybrid.count,
        "{what}: both engines must complete the same flows"
    );
    for (name, p, h) in [
        ("p50", packet.median, hybrid.median),
        ("p95", packet.p95, hybrid.p95),
        ("p99", packet.p99, hybrid.p99),
    ] {
        let tol = (p.max(h) * ENGINE_REL_TOL).max(abs_tol_ms);
        assert!(
            (p - h).abs() <= tol,
            "{what} {name}: packet {p:.3} ms vs hybrid {h:.3} ms exceeds ±{tol:.3} ms"
        );
    }
}

/// FCT summary over an explicit flow-id set.
fn fct_summary_of(r: &ExperimentResults, ids: &[u64]) -> Summary {
    r.metrics.fct_summary_ms(|f| ids.contains(&f.0))
}

/// Mixed mice/elephant grids for the engine-differential tests. Elephants
/// are well above the 1 MB default handoff threshold; mice are all below
/// the 100 KB mice boundary.
fn mixed_flows(pairs: &[(u32, u32, u64)]) -> Vec<FlowSpec> {
    pairs
        .iter()
        .enumerate()
        .map(|(i, (src, dst, bytes))| {
            FlowSpec::new(
                i as u64,
                Addr(*src),
                Addr(*dst),
                Some(*bytes),
                SimTime::from_millis(1 + i as u64),
                FlowClass::Short,
            )
        })
        .collect()
}

fn split_by_size(pairs: &[(u32, u32, u64)]) -> (Vec<u64>, Vec<u64>) {
    let mut mice = Vec::new();
    let mut elephants = Vec::new();
    for (i, (_, _, bytes)) in pairs.iter().enumerate() {
        if *bytes <= 100_000 {
            mice.push(i as u64);
        } else {
            elephants.push(i as u64);
        }
    }
    (mice, elephants)
}

/// Differential conformance between the engines on one grid: run the same
/// configuration under `Engine::Packet` and `Engine::Hybrid`, require that
/// the hybrid run actually exercised the fluid path, that every flow still
/// completes, and that mice and elephant FCT percentiles stay within the
/// documented tolerance.
fn assert_engines_agree(
    what: &str,
    base: ExperimentConfig,
    pairs: &[(u32, u32, u64)],
    threshold: u64,
) {
    let packet = mmptcp::run(ExperimentConfig {
        engine: Engine::Packet,
        ..base.clone()
    });
    let hybrid = mmptcp::run(ExperimentConfig {
        engine: Engine::Hybrid {
            elephant_threshold: threshold,
        },
        ..base
    });
    for (label, r) in [("packet", &packet), ("hybrid", &hybrid)] {
        assert!(r.all_short_completed, "{what}/{label}: flows stranded");
        r.check_conservation()
            .unwrap_or_else(|e| panic!("{what}/{label}: {e}"));
    }
    assert_eq!(
        packet.audit.fluid_delivered_bytes, 0,
        "{what}: packet engine ran fluid?"
    );
    assert!(
        hybrid.audit.fluid_delivered_bytes > 0,
        "{what}: hybrid run never handed an elephant to the fluid path"
    );
    let (mice, elephants) = split_by_size(pairs);
    percentiles_close(
        &format!("{what}/mice"),
        &fct_summary_of(&packet, &mice),
        &fct_summary_of(&hybrid, &mice),
        MICE_ABS_TOL_MS,
    );
    percentiles_close(
        &format!("{what}/elephants"),
        &fct_summary_of(&packet, &elephants),
        &fct_summary_of(&hybrid, &elephants),
        ELEPHANT_ABS_TOL_MS,
    );
}

/// Engine-differential on the dumbbell: two elephants contending on the
/// shared bottleneck, mice same-side so they share access links (and thus
/// fluid reservations) with the elephants but not the drop-prone
/// bottleneck queue — a mouse drop there would halve *both* fluid
/// elephants' caps where the packet engine penalises only the dropping
/// mouse, a deliberate modelling asymmetry the fat-tree grid absorbs in
/// its tolerance instead. Both differential grids use a finite initial
/// ssthresh (deterministic handoff eligibility) and the low min-RTO
/// preset: the fluid model reproduces congestion-avoidance dynamics, not
/// 200 ms minimum-timeout stalls, so a default-RTO packet run would
/// diverge by whole RTO multiples rather than model error.
#[test]
fn hybrid_engine_matches_packet_fcts_on_the_dumbbell() {
    // 10 MB elephants: the fluid ramp-in (EWMA capacity recovery plus
    // pacing-cap growth after handoff) costs tens of milliseconds, so the
    // transfer must be long enough for steady state to dominate — exactly
    // the regime the fast path targets.
    let pairs: &[(u32, u32, u64)] = &[
        (0, 2, 10_000_000),
        (1, 3, 10_000_000),
        (0, 1, 50_000),
        (2, 3, 70_000),
    ];
    let cfg = ExperimentConfig {
        topology: TopologySpec::Dumbbell(DumbbellConfig::default()),
        workload: WorkloadSpec::Custom(mixed_flows(pairs)),
        protocol: Protocol::Tcp,
        transport: TransportConfig {
            initial_ssthresh: 100_000,
            ..TransportConfig::low_min_rto()
        },
        seed: 21,
        ..ExperimentConfig::default()
    };
    assert_engines_agree("dumbbell", cfg, pairs, 500_000);
}

/// Engine-differential on the small FatTree: inter-pod elephants and mice.
/// A finite initial ssthresh makes the elephants leave slow start (and thus
/// hand off) deterministically rather than waiting for an ECMP collision.
#[test]
fn hybrid_engine_matches_packet_fcts_on_the_fattree() {
    let pairs: &[(u32, u32, u64)] = &[
        (0, 8, 3_000_000),
        (1, 12, 2_500_000),
        (4, 13, 2_000_000),
        (5, 9, 70_000),
        (2, 14, 50_000),
        (6, 10, 90_000),
        (3, 11, 30_000),
    ];
    let cfg = ExperimentConfig {
        topology: TopologySpec::FatTree(FatTreeConfig::small()),
        workload: WorkloadSpec::Custom(mixed_flows(pairs)),
        protocol: Protocol::Tcp,
        transport: TransportConfig {
            initial_ssthresh: 100_000,
            ..TransportConfig::low_min_rto()
        },
        seed: 23,
        ..ExperimentConfig::default()
    };
    assert_engines_agree("fattree", cfg, pairs, 500_000);
}

/// Flows that never reach the fluid path must be *byte-identical* between
/// the engines: with every flow below the handoff threshold the hybrid
/// engine installs no reservation and schedules no epoch, so the packet
/// schedule — and therefore every FCT and every counter — is exactly the
/// packet engine's.
#[test]
fn hybrid_engine_is_byte_identical_when_no_flow_goes_fluid() {
    let pairs: &[(u32, u32, u64)] = &[
        (0, 8, 70_000),
        (1, 12, 90_000),
        (5, 9, 50_000),
        (2, 14, 30_000),
    ];
    let base = ExperimentConfig {
        topology: TopologySpec::FatTree(FatTreeConfig::small()),
        workload: WorkloadSpec::Custom(mixed_flows(pairs)),
        protocol: Protocol::mmptcp_default(),
        seed: 29,
        ..ExperimentConfig::default()
    };
    let packet = mmptcp::run(ExperimentConfig {
        engine: Engine::Packet,
        ..base.clone()
    });
    let hybrid = mmptcp::run(ExperimentConfig {
        engine: Engine::hybrid_default(),
        ..base
    });
    assert_eq!(hybrid.audit.fluid_delivered_bytes, 0);
    assert_eq!(packet.short_fcts_ms(), hybrid.short_fcts_ms());
    assert_eq!(packet.counters, hybrid.counters);
    assert_eq!(packet.loss, hybrid.loss);
}

/// Conservation across the catalog under the hybrid engine: every
/// scenario's first fast config re-run with `Engine::hybrid_default()`
/// (plus the link-failure scenario's degraded-fabric config, so build-time
/// failures and fluid handoff are exercised together). The packet law is
/// untouched by fluid bytes and the fluid ledger stays within the bounded
/// workload.
#[test]
fn conservation_laws_hold_on_the_hybrid_engine() {
    let mut configs = Vec::new();
    for (i, s) in catalog().iter().enumerate() {
        let mut expanded = s.configs(Fidelity::Fast);
        let (label, mut cfg) = expanded.swap_remove(0);
        cfg.engine = Engine::hybrid_default();
        cfg.seed = 101 + i as u64;
        configs.push((format!("{} / {label} hybrid", s.name), cfg));
    }
    // The degraded-fabric config of the link-failure scenario (its first
    // config is the 0-failures baseline).
    let failure = catalog()
        .iter()
        .find(|s| s.name == "link-failure")
        .expect("link-failure scenario exists");
    let (label, mut cfg) = failure
        .configs(Fidelity::Fast)
        .into_iter()
        .last()
        .expect("link-failure expands");
    assert!(label.contains("250/1000"), "expected the degraded config");
    cfg.engine = Engine::hybrid_default();
    cfg.seed = 251;
    configs.push((format!("link-failure / {label} hybrid"), cfg));

    let results = Driver::new().run_labelled(configs);
    for (label, r) in &results {
        r.check_conservation()
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert!(
            r.counters.delivered_to_hosts > 0,
            "{label}: no packets delivered?"
        );
    }
}

/// Mid-run link failure while flows are in fluid mode: the epoch triggered
/// by `notify_topology_changed` must re-walk every fluid path onto the
/// surviving ECMP members, the flows must still complete with exactly their
/// sizes, and the packet conservation law must hold across the transition.
#[test]
fn fluid_flows_survive_a_mid_run_link_failure() {
    let topo = topology::fattree::build(FatTreeConfig::small());
    let hosts = topo.hosts.clone();
    // Every aggregation->core link (both directions), harvested before the
    // simulator takes the network. Removing each from its emitting switch's
    // groups degrades the fabric as far as ECMP allows (a group's last
    // member is never removed, so nothing blackholes).
    let agg_core: Vec<(netsim::LinkId, netsim::NodeId)> = topo
        .links_of_tier(topology::LinkTier::AggregationCore)
        .into_iter()
        .map(|id| (id, topo.network.link(id).from))
        .collect();
    assert!(!agg_core.is_empty(), "small fat-tree has agg-core links");

    let mut sim = netsim::Simulator::new(topo.network, 1);
    sim.set_fluid_threshold(Some(200_000));
    let sizes: &[(u32, u32, u64)] = &[(0, 8, 3_000_000), (1, 12, 3_000_000)];
    for (i, (src, dst, bytes)) in sizes.iter().enumerate() {
        let flow = netsim::FlowId(i as u64);
        // Finite ssthresh: leave slow start (and hand off) without needing
        // a loss first.
        let cfg = TransportConfig {
            initial_ssthresh: 64_000,
            ..TransportConfig::default()
        };
        let tx = transport::TcpSender::new(
            cfg,
            flow,
            Addr(*src),
            Addr(*dst),
            40_000 + i as u16,
            80,
            Some(*bytes),
        );
        sim.register_agent(hosts[*src as usize], flow, Box::new(tx));
        sim.register_agent(
            hosts[*dst as usize],
            flow,
            Box::new(transport::TransportReceiver::new(flow)),
        );
        sim.schedule_flow_start(SimTime::from_millis(1), hosts[*src as usize], flow);
    }

    let cap = SimTime::from_secs(5);
    let mut failed_at = None;
    let mut completions = std::collections::HashMap::new();
    while sim.now() < cap && sim.pending_events() > 0 {
        let next = (sim.now() + SimDuration::from_millis(1)).min(cap);
        sim.run_until(next);
        for s in sim.drain_signals() {
            if let netsim::Signal::FlowCompleted { flow, bytes, .. } = s {
                completions.insert(flow, bytes);
            }
        }
        if failed_at.is_none() && sim.fluid_flows_active() > 0 {
            // Both elephants are in fluid mode (or about to be): withdraw
            // the aggregation->core uplinks mid-run.
            for (link, from) in &agg_core {
                sim.network_mut().switch_mut(*from).remove_link(*link);
            }
            sim.notify_topology_changed();
            failed_at = Some(sim.now());
        }
        if completions.len() == sizes.len() {
            break;
        }
    }
    assert!(
        failed_at.is_some(),
        "no flow ever entered fluid mode — the handoff premise broke"
    );
    sim.finalize();
    for s in sim.drain_signals() {
        if let netsim::Signal::FlowCompleted { flow, bytes, .. } = s {
            completions.insert(flow, bytes);
        }
    }
    for (i, (_, _, bytes)) in sizes.iter().enumerate() {
        assert_eq!(
            completions.get(&netsim::FlowId(i as u64)),
            Some(bytes),
            "flow {i} must deliver exactly its size across the failure"
        );
    }
    assert!(sim.fluid_delivered_bytes() > 0, "fluid path never engaged");
    assert!(sim.fluid_delivered_bytes() <= sizes.iter().map(|(_, _, b)| *b).sum::<u64>());

    // Packet conservation across the transition: fluid bytes ride no
    // packets, so the law is exactly the packet engine's.
    let loss = metrics::loss_report(sim.network());
    let offered =
        loss.edge.offered + loss.aggregation.offered + loss.core.offered + loss.host.offered;
    let backlog: u64 = sim
        .network()
        .links()
        .iter()
        .map(|l| l.backlog() as u64)
        .sum();
    let counters = sim.counters();
    assert_eq!(
        offered,
        counters.delivered_to_hosts
            + counters.forwarded
            + counters.dropped
            + sim.in_flight_packets() as u64
            + backlog,
        "packet conservation across the mid-run failure"
    );
}

/// The same degraded fabric under every spraying policy: completion and
/// conservation hold regardless of how the fabric spreads packets.
#[test]
fn all_path_policies_survive_link_failures() {
    for policy in [
        PathPolicy::FlowHash,
        PathPolicy::PerPacketScatter,
        PathPolicy::diffflow_default(),
    ] {
        let cfg = ExperimentConfig {
            topology: TopologySpec::FatTree(FatTreeConfig {
                failures: LinkFailureSpec::agg_core(125, 7),
                ..FatTreeConfig::small()
            }),
            workload: WorkloadSpec::Custom(vec![FlowSpec::new(
                0,
                Addr(0),
                Addr(12),
                Some(300_000),
                SimTime::from_millis(1),
                FlowClass::Short,
            )]),
            protocol: Protocol::Tcp,
            path_policy: policy,
            seed: 9,
            ..ExperimentConfig::default()
        };
        let r = mmptcp::run(cfg);
        assert!(r.all_short_completed, "{policy:?} stranded the flow");
        r.check_conservation()
            .unwrap_or_else(|e| panic!("{policy:?}: {e}"));
    }
}
