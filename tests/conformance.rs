//! The cross-transport conformance layer: invariants every transport (and
//! every future transport) must satisfy, checked end-to-end on the real
//! simulator.
//!
//! * **Conservation**: packets injected into the fabric are exactly
//!   delivered + dropped + still-in-network, and completed flows delivered
//!   exactly their size — for every catalog scenario at fast fidelity,
//!   across a spread of seeds (the release-profile `scenarios conserve`
//!   subcommand sweeps 16+ seeds per scenario in CI).
//! * **Differential**: MMPTCP in its packet-scatter phase is byte-for-byte
//!   the packet-scatter-only ablation until the phase switch.
//! * **Degeneracy**: on a single-path dumbbell with zero loss, every
//!   transport collapses to plain TCP's completion time exactly (±0) —
//!   multi-path machinery must cost nothing when there are no paths to use.

use mmptcp::prelude::*;
use mmptcp::scenario::{catalog, Fidelity};
use netsim::{Agent as _, Packet};
use netsim::{AgentCtx, AgentEvent, PathPolicy, SimRng};
use transport::{MmptcpConfig, MmptcpSender};

/// Conservation across the catalog: the first fast config of every scenario,
/// two distinct seeds each (seeds never repeat across scenarios, so the
/// sweep covers well over 16 seeds in total; the CI `scenarios conserve`
/// job extends this to 16 seeds per scenario at release speed).
#[test]
fn conservation_laws_hold_across_the_catalog() {
    let mut configs = Vec::new();
    for (i, s) in catalog().iter().enumerate() {
        let mut expanded = s.configs(Fidelity::Fast);
        assert!(!expanded.is_empty());
        let (label, cfg) = expanded.swap_remove(0);
        for k in 0..2u64 {
            let seed = 1 + (i as u64) * 2 + k;
            let mut c = cfg.clone();
            c.seed = seed;
            configs.push((format!("{} / {label} seed={seed}", s.name), c));
        }
    }
    assert!(
        configs.len() >= 16,
        "the sweep must span at least 16 seeded runs"
    );
    let results = Driver::new().run_labelled(configs);
    for (label, r) in &results {
        r.check_conservation()
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        // The audit itself must be meaningful: something was injected.
        assert!(
            r.counters.delivered_to_hosts > 0,
            "{label}: no packets delivered?"
        );
    }
}

/// Minimal deterministic transport harness: drives one sender against the
/// shared receiver over an ideal network and records every packet the sender
/// emits, in order, with its emission time.
struct RecordedRun {
    sent: Vec<(SimTime, Packet)>,
    switch_signal: Option<SimTime>,
}

fn drive_mmptcp(cfg: MmptcpConfig, total: u64, rounds: usize) -> RecordedRun {
    let flow = netsim::FlowId(1);
    let mut tx = MmptcpSender::new(cfg, flow, Addr(0), Addr(1), 50_000, 80, Some(total));
    let mut rx = transport::TransportReceiver::new(flow);
    let mut rng = SimRng::new(5);
    let mut timers: Vec<(SimTime, u64)> = Vec::new();
    let mut signals: Vec<netsim::Signal> = Vec::new();
    let mut now = SimTime::from_millis(1);
    let mut to_rx: Vec<Packet> = Vec::new();
    let mut to_tx: Vec<Packet> = Vec::new();
    let mut sent: Vec<(SimTime, Packet)> = Vec::new();

    {
        let mut out = Vec::new();
        let mut ctx = AgentCtx::new(now, flow, &mut rng, &mut out, &mut timers, &mut signals);
        tx.handle(&mut ctx, AgentEvent::Start);
        sent.extend(out.iter().map(|p| (now, p.clone())));
        to_rx.extend(out);
    }
    for _ in 0..rounds {
        if tx.is_completed() {
            break;
        }
        now += SimDuration::from_micros(100);
        let mut acks = Vec::new();
        for pkt in std::mem::take(&mut to_rx) {
            let mut ctx = AgentCtx::new(now, flow, &mut rng, &mut acks, &mut timers, &mut signals);
            rx.handle(&mut ctx, AgentEvent::Packet(pkt));
        }
        to_tx.extend(acks);
        now += SimDuration::from_micros(100);
        let mut out = Vec::new();
        for pkt in std::mem::take(&mut to_tx) {
            let mut ctx = AgentCtx::new(now, flow, &mut rng, &mut out, &mut timers, &mut signals);
            tx.handle(&mut ctx, AgentEvent::Packet(pkt));
        }
        sent.extend(out.iter().map(|p| (now, p.clone())));
        to_rx.extend(out);
        let due: Vec<(SimTime, u64)> = timers.iter().copied().filter(|(t, _)| *t <= now).collect();
        timers.retain(|(t, _)| *t > now);
        for (_, token) in due {
            let mut out = Vec::new();
            let mut ctx = AgentCtx::new(now, flow, &mut rng, &mut out, &mut timers, &mut signals);
            tx.handle(&mut ctx, AgentEvent::Timer(token));
            sent.extend(out.iter().map(|p| (now, p.clone())));
            to_rx.extend(out);
        }
    }
    let switch_signal = signals.iter().find_map(|s| match s {
        netsim::Signal::PhaseSwitched { at, .. } => Some(*at),
        _ => None,
    });
    RecordedRun {
        sent,
        switch_signal,
    }
}

/// Differential conformance: an MMPTCP connection in its packet-scatter
/// phase must be *indistinguishable* from the packet-scatter-only ablation —
/// identical packets (ports, sequence numbers, timing) up to the instant the
/// phase switch fires. The PS phase is not "roughly" packet scatter, it IS
/// packet scatter.
#[test]
fn mmptcp_packet_scatter_phase_equals_the_ps_only_ablation() {
    let total = 600_000u64; // well beyond the 210 KB switch threshold
    let hybrid = drive_mmptcp(MmptcpConfig::default(), total, 4_000);
    let ps_only = drive_mmptcp(MmptcpConfig::packet_scatter_only(), total, 4_000);

    let switch_at = hybrid
        .switch_signal
        .expect("a 600 KB flow must switch phase");
    assert!(
        ps_only.switch_signal.is_none(),
        "the ablation never switches"
    );

    // Everything the hybrid sender emitted on the scatter flow before the
    // switch instant must equal the ablation's stream, packet for packet.
    let prefix: Vec<&(SimTime, Packet)> = hybrid
        .sent
        .iter()
        .take_while(|(at, p)| *at < switch_at && p.subflow == 0)
        .collect();
    assert!(
        prefix.len() > 50,
        "the PS phase must have carried a substantial stream ({} pkts)",
        prefix.len()
    );
    assert!(
        ps_only.sent.len() >= prefix.len(),
        "ablation sent fewer packets ({}) than the hybrid's PS phase ({})",
        ps_only.sent.len(),
        prefix.len()
    );
    for (i, ((at_a, pkt_a), (at_b, pkt_b))) in prefix.iter().zip(ps_only.sent.iter()).enumerate() {
        assert_eq!(at_a, at_b, "packet {i}: emission times diverge");
        assert_eq!(pkt_a, pkt_b, "packet {i}: contents diverge");
    }
}

/// One bounded flow crossing the dumbbell bottleneck.
fn dumbbell_flow(protocol: Protocol, bytes: u64) -> ExperimentConfig {
    ExperimentConfig {
        topology: TopologySpec::Dumbbell(DumbbellConfig::default()),
        workload: WorkloadSpec::Custom(vec![FlowSpec::new(
            0,
            Addr(0),
            Addr(2),
            Some(bytes),
            SimTime::from_millis(1),
            FlowClass::Short,
        )]),
        protocol,
        seed: 11,
        ..ExperimentConfig::default()
    }
}

/// Degeneracy conformance: on a single-path topology under zero loss, every
/// transport's completion time equals plain TCP's *exactly*. Multi-path
/// machinery (subflow scheduling, packet scatter, replication) must add
/// nothing when there is nothing to exploit: scatter hashes onto the only
/// path, MPTCP-1 is one subflow, RepFlow/RepSYN see path_count == 1 and do
/// not replicate, DCTCP/D²TCP see no ECN marks without queue build-up.
#[test]
fn every_transport_degenerates_to_plain_tcp_on_a_single_path_dumbbell() {
    let bytes = 70_000;
    let baseline = mmptcp::run(dumbbell_flow(Protocol::Tcp, bytes));
    assert!(baseline.all_short_completed);
    assert_eq!(baseline.loss.total_dropped(), 0, "the premise is zero loss");
    let tcp_fct = baseline.short_fcts_ms()[0];

    for protocol in [
        Protocol::Dctcp,
        Protocol::D2tcp,
        Protocol::Mptcp { subflows: 1 },
        Protocol::PacketScatter,
        Protocol::mmptcp_default(),
        Protocol::repflow(),
        Protocol::repsyn(),
    ] {
        let r = mmptcp::run(dumbbell_flow(protocol, bytes));
        assert!(r.all_short_completed, "{protocol:?} did not complete");
        assert_eq!(r.loss.total_dropped(), 0, "{protocol:?} saw drops");
        let fct = r.short_fcts_ms()[0];
        assert_eq!(
            fct, tcp_fct,
            "{protocol:?} FCT {fct} ms != TCP {tcp_fct} ms on a single path"
        );
        r.check_conservation()
            .unwrap_or_else(|e| panic!("{protocol:?}: {e}"));
    }
}

/// One battle-matrix run extracted from the golden document.
struct GoldenRun {
    label: String,
    mice_p99_ms: f64,
    long_goodput_gbps: f64,
}

/// Parse the canonical battle-matrix golden snapshot (fixed key order, one
/// key per line) into per-run records.
fn parse_battle_matrix_golden() -> Vec<GoldenRun> {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/battle-matrix.json"
    );
    let doc = std::fs::read_to_string(path).expect("battle-matrix golden must exist");
    let field = |chunk: &str, key: &str, skip: usize| -> f64 {
        chunk
            .match_indices(&format!("\"{key}\": "))
            .nth(skip)
            .map(|(i, m)| {
                let rest = &chunk[i + m.len()..];
                let end = rest.find([',', '\n']).unwrap_or(rest.len());
                rest[..end].parse::<f64>().unwrap_or(f64::NAN)
            })
            .unwrap_or(f64::NAN)
    };
    doc.split("\"label\": \"")
        .skip(1)
        .map(|chunk| {
            let label = chunk[..chunk.find('"').unwrap()].to_string();
            GoldenRun {
                label,
                // Key order is canonical: short_fct's p99 first, mice_fct's
                // second.
                mice_p99_ms: field(chunk, "p99_ms", 1),
                long_goodput_gbps: field(chunk, "long_goodput_gbps", 0),
            }
        })
        .collect()
}

/// The battleground's headline, as pinned by the golden snapshot (which the
/// CI golden job keeps equal to actual behaviour): RepFlow beats single-path
/// TCP on mice p99 FCT in every cell at load <= 0.6, while MMPTCP holds
/// aggregate long-flow goodput within 5% of MPTCP across the matrix.
#[test]
fn battle_matrix_golden_witnesses_the_headline_claims() {
    let runs = parse_battle_matrix_golden();
    assert_eq!(
        runs.len(),
        40,
        "5 variants x 2 workloads x 2 loads x 2 seeds"
    );

    let cell_of = |label: &str| -> String {
        label
            .split_once(" | ")
            .map(|(_, rest)| rest.to_string())
            .expect("label format: variant | workload @ load L seed=S")
    };
    let by_variant = |variant: &str| -> Vec<&GoldenRun> {
        runs.iter()
            .filter(|r| r.label.split(" | ").next() == Some(variant))
            .collect()
    };

    // RepFlow vs TCP, mice p99, cell by cell (every fast load is <= 0.6).
    let tcp = by_variant("tcp");
    let repflow = by_variant("repflow");
    assert_eq!(tcp.len(), 8);
    assert_eq!(repflow.len(), 8);
    for t in &tcp {
        let cell = cell_of(&t.label);
        let r = repflow
            .iter()
            .find(|r| cell_of(&r.label) == cell)
            .unwrap_or_else(|| panic!("no repflow run for cell {cell}"));
        assert!(
            r.mice_p99_ms < t.mice_p99_ms,
            "repflow mice p99 {} must beat tcp {} in cell {cell}",
            r.mice_p99_ms,
            t.mice_p99_ms
        );
    }

    // MMPTCP vs MPTCP, aggregate long-flow goodput across the matrix.
    let sum = |v: &[&GoldenRun]| -> f64 { v.iter().map(|r| r.long_goodput_gbps).sum() };
    let mmptcp = sum(&by_variant("mmptcp-8"));
    let mptcp = sum(&by_variant("mptcp-8"));
    assert!(mptcp > 0.0);
    assert!(
        mmptcp >= 0.95 * mptcp,
        "mmptcp aggregate long goodput {mmptcp:.3} Gbps must stay within 5% of mptcp {mptcp:.3}"
    );
}

/// Link failure × size-aware routing: on the fig-style fat-tree with 25% of
/// the aggregation→core uplinks withdrawn, DiffFlow's pinned elephants must
/// re-pin onto surviving links (stateless hash % group-size) — no flow may
/// strand, blackhole (no-route) or over/under-deliver.
#[test]
fn diffflow_link_failure_never_strands_a_pinned_elephant() {
    let mut flows = Vec::new();
    // Inter-pod elephants (well above the 100 KB pin threshold) and a few
    // mice sharing the degraded fabric.
    for (i, (src, dst, bytes)) in [
        (0u32, 8u32, 600_000u64),
        (1, 12, 600_000),
        (4, 13, 500_000),
        (5, 9, 70_000),
        (2, 14, 70_000),
    ]
    .iter()
    .enumerate()
    {
        flows.push(FlowSpec::new(
            i as u64,
            Addr(*src),
            Addr(*dst),
            Some(*bytes),
            SimTime::from_millis(1),
            FlowClass::Short,
        ));
    }
    let cfg = ExperimentConfig {
        topology: TopologySpec::FatTree(FatTreeConfig {
            failures: LinkFailureSpec::agg_core(250, 42),
            ..FatTreeConfig::small()
        }),
        workload: WorkloadSpec::Custom(flows),
        protocol: Protocol::Tcp,
        path_policy: PathPolicy::diffflow_default(),
        seed: 3,
        ..ExperimentConfig::default()
    };
    let r = mmptcp::run(cfg);
    assert!(
        r.all_short_completed,
        "a pinned elephant stranded on the degraded fabric"
    );
    assert_eq!(r.audit.no_route, 0, "no packet may be blackholed");
    r.check_conservation().expect("conservation under failures");
}

/// The same degraded fabric under every spraying policy: completion and
/// conservation hold regardless of how the fabric spreads packets.
#[test]
fn all_path_policies_survive_link_failures() {
    for policy in [
        PathPolicy::FlowHash,
        PathPolicy::PerPacketScatter,
        PathPolicy::diffflow_default(),
    ] {
        let cfg = ExperimentConfig {
            topology: TopologySpec::FatTree(FatTreeConfig {
                failures: LinkFailureSpec::agg_core(125, 7),
                ..FatTreeConfig::small()
            }),
            workload: WorkloadSpec::Custom(vec![FlowSpec::new(
                0,
                Addr(0),
                Addr(12),
                Some(300_000),
                SimTime::from_millis(1),
                FlowClass::Short,
            )]),
            protocol: Protocol::Tcp,
            path_policy: policy,
            seed: 9,
            ..ExperimentConfig::default()
        };
        let r = mmptcp::run(cfg);
        assert!(r.all_short_completed, "{policy:?} stranded the flow");
        r.check_conservation()
            .unwrap_or_else(|e| panic!("{policy:?}: {e}"));
    }
}
